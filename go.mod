module fadingcr

go 1.22
