module fadingcr

go 1.24
