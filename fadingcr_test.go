package fadingcr_test

import (
	"strings"
	"testing"

	fadingcr "fadingcr"
)

func TestSolveQuickstartPath(t *testing.T) {
	d, err := fadingcr.UniformDisk(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fadingcr.Solve(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res)
	}
	if res.Winner < 0 || res.Winner >= 64 {
		t.Errorf("winner %d out of range", res.Winner)
	}
}

func TestSolveTwoNode(t *testing.T) {
	res, err := fadingcr.Solve(fadingcr.TwoNode(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("two-node deployment unsolved: %+v", res)
	}
}

func TestSolveDeterministic(t *testing.T) {
	d, err := fadingcr.UniformDisk(9, 40)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fadingcr.Solve(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fadingcr.Solve(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Solve not deterministic: %+v vs %+v", a, b)
	}
}

func TestFacadeChannelsInterchangeable(t *testing.T) {
	// A radio channel satisfies the same Channel interface as SINR: the
	// facade's Run accepts both.
	ch, err := fadingcr.NewRadioChannel(8, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fadingcr.Run(ch, fadingcr.ProbabilitySweep{}, 7, fadingcr.Config{MaxRounds: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Errorf("sweep unsolved on radio: %+v", res)
	}
}

func TestFacadeHittingGame(t *testing.T) {
	ref, err := fadingcr.NewHittingReferee(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := fadingcr.NewFixedDensityPlayer(16, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	rounds, won, err := fadingcr.PlayHittingGame(ref, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !won || rounds < 1 {
		t.Errorf("rounds=%d won=%v", rounds, won)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	if got := len(fadingcr.Experiments()); got != 18 {
		t.Errorf("Experiments() returned %d, want 18", got)
	}
	if _, ok := fadingcr.ExperimentByID("E1"); !ok {
		t.Error("E1 missing")
	}
}

func TestFacadeRayleighChannel(t *testing.T) {
	d := fadingcr.TwoNode()
	params := fadingcr.DefaultParams()
	params.Power = fadingcr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, fadingcr.DefaultSingleHopMargin)
	ch, err := fadingcr.NewRayleighChannel(params, d.Points, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fadingcr.Run(ch, fadingcr.FixedProbability{}, 2, fadingcr.Config{MaxRounds: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Errorf("unsolved on Rayleigh channel: %+v", res)
	}
}

func TestFacadeScheduler(t *testing.T) {
	d, err := fadingcr.UniformDisk(5, 48)
	if err != nil {
		t.Fatal(err)
	}
	params := fadingcr.DefaultParams()
	params.Power = fadingcr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, fadingcr.DefaultSingleHopMargin)
	requests := fadingcr.NearestNeighborLinks(d.Points)
	chosen, err := fadingcr.GreedySchedule(params, d.Points, requests)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) < 2 {
		t.Errorf("capacity %d; expected spatial reuse", len(chosen))
	}
	ok, err := fadingcr.ScheduleFeasible(params, d.Points, chosen)
	if err != nil || !ok {
		t.Errorf("greedy schedule infeasible (ok=%v err=%v)", ok, err)
	}
	rounds, err := fadingcr.ScheduleAll(params, d.Points, requests)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 || len(rounds) >= len(requests) {
		t.Errorf("%d rounds for %d requests", len(rounds), len(requests))
	}
}

func TestFacadePointsIO(t *testing.T) {
	d, err := fadingcr.UniformDisk(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := fadingcr.WritePoints(&b, d.Points); err != nil {
		t.Fatal(err)
	}
	pts, err := fadingcr.ReadPoints(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Errorf("round trip gave %d points", len(pts))
	}
}
