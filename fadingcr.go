package fadingcr

import (
	"math"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/experiments"
	"fadingcr/internal/geom"
	"fadingcr/internal/hitting"
	"fadingcr/internal/radio"
	"fadingcr/internal/schedule"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// Re-exported core types. Aliases (not definitions) so values flow freely
// between the facade and any internal helper a power user reaches for.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Deployment is a normalised placement of nodes (shortest link = 1).
	Deployment = geom.Deployment
	// LinkClasses partitions active nodes by nearest-neighbour distance.
	LinkClasses = geom.LinkClasses

	// Params are the SINR physical-layer constants (α, β, N, P).
	Params = sinr.Params
	// SINRChannel is the paper's fading channel.
	SINRChannel = sinr.Channel
	// RayleighChannel adds stochastic per-pair fading.
	RayleighChannel = sinr.RayleighChannel
	// RadioChannel is the classical single-hop collision channel.
	RadioChannel = radio.Channel

	// Channel is one-round message delivery (SINR, Rayleigh, or radio).
	Channel = sim.Channel
	// Builder constructs a protocol's per-node state machines.
	Builder = sim.Builder
	// Node is a per-node protocol state machine.
	Node = sim.Node
	// Config controls an execution (round budget, collision detection,
	// tracing).
	Config = sim.Config
	// Result summarises an execution.
	Result = sim.Result
	// Tracer observes every executed round.
	Tracer = sim.Tracer

	// FixedProbability is the paper's algorithm (Section 1).
	FixedProbability = core.FixedProbability
	// Analyzer reconstructs the paper's analysis quantities per round.
	Analyzer = core.Analyzer
	// ClassBounds are the q_t envelope vectors of Section 3.3.
	ClassBounds = core.ClassBounds
	// Snapshot is one analysed round.
	Snapshot = core.Snapshot

	// ProbabilitySweep is the classical Θ(log² n) radio strategy.
	ProbabilitySweep = baselines.ProbabilitySweep
	// Decay is BGI decay with knowledge of an upper bound N.
	Decay = baselines.Decay
	// BinaryExponentialBackoff is the folklore windowed strategy.
	BinaryExponentialBackoff = baselines.BinaryExponentialBackoff
	// DampenedSweep is the Jurdziński–Stachowiak-shaped accelerated sweep.
	DampenedSweep = baselines.DampenedSweep
	// CollisionDetectHalving is Θ(log n) leader election with collision
	// detection.
	CollisionDetectHalving = baselines.CollisionDetectHalving
	// CDBinaryEstimate is Willard-style O(log log n)-expected leader
	// election by contention estimation (full-sensing collision detection).
	CDBinaryEstimate = baselines.CDBinaryEstimate
	// Interleaved alternates two protocols (§3.1: for unknown R).
	Interleaved = core.Interleaved
	// StaggeredStart delays each node's wake-up by a random offset
	// (robustness beyond the synchronous-start model).
	StaggeredStart = core.StaggeredStart
	// WithKnockout grafts the paper's knock-out rule onto any protocol.
	WithKnockout = core.WithKnockout
	// CrashFaults injects crash-stop failures into any protocol.
	CrashFaults = core.CrashFaults

	// HittingReferee administers the restricted k-hitting game.
	HittingReferee = hitting.Referee
	// HittingPlayer is a hitting-game strategy.
	HittingPlayer = hitting.Player
	// TwoPlayerResult summarises a two-player symmetry-breaking game.
	TwoPlayerResult = hitting.TwoPlayerResult

	// Link is a directed transmission request for the centralized
	// scheduler.
	Link = schedule.Link

	// Experiment is one registered reproduction target.
	Experiment = experiments.Experiment
	// ExperimentConfig scales an experiment run.
	ExperimentConfig = experiments.Config

	// ChannelOption configures an SINR channel's gain-cache delivery
	// engine; options change speed and memory, never results.
	ChannelOption = sinr.Option
	// GainCacheStats is a snapshot of the process-wide gain-cache
	// construction counters.
	GainCacheStats = sinr.GainCacheStats
)

// DefaultSingleHopMargin is the paper's constant c ≥ 4 in the single-hop
// power condition P > c·β·N·d^α.
const DefaultSingleHopMargin = sinr.DefaultSingleHopMargin

// DefaultGainCacheCap is the default memory cap for one channel's
// precomputed gain matrix; larger deployments fall back to on-the-fly
// attenuation computation.
const DefaultGainCacheCap = sinr.DefaultGainCacheCap

// MaxDeliverParallelism bounds WithDeliverParallelism worker counts.
const MaxDeliverParallelism = sinr.MaxDeliverParallelism

// SINR delivery engine controls. Every SINR channel precomputes the
// pairwise attenuation matrix by default (up to DefaultGainCacheCap) and
// delivers rounds allocation-free from the cached rows; the gain-cache
// options tune or disable that engine without ever changing delivery
// results. WithFarFieldEps and WithDeliverParallelism select the scaling
// engines of DESIGN.md §8: ε pruning changes receptions within a
// documented one-sided bound, and the parallel option is byte-identical
// at any worker count (the Rayleigh channel switches its fade stream).
var (
	// WithGainCache enables (default) or disables the precomputed matrix.
	WithGainCache = sinr.WithGainCache
	// WithGainCacheCap bounds the matrix size in bytes (≤ 0 = unlimited).
	WithGainCacheCap = sinr.WithGainCacheCap
	// WithFarFieldEps enables ε far-field pruning (0 < ε < 0.5).
	WithFarFieldEps = sinr.WithFarFieldEps
	// WithDeliverParallelism runs Deliver across intra-round workers.
	WithDeliverParallelism = sinr.WithDeliverParallelism
	// GainCacheOptions parses a mode string ("auto"|"on"|"off") into options.
	GainCacheOptions = sinr.GainCacheOptions
	// EngineOptions combines the mode string with the ε and parallelism
	// knobs — the shared flag-parsing path of every CLI.
	EngineOptions = sinr.EngineOptions
	// ReadGainCacheStats snapshots the process-wide cache counters.
	ReadGainCacheStats = sinr.ReadGainCacheStats
)

// Deployment generators.
var (
	// NewDeployment normalises raw positions (shortest link becomes 1).
	NewDeployment = geom.NewDeployment
	// UniformDisk places n nodes uniformly in a constant-density disk.
	UniformDisk = geom.UniformDisk
	// UniformSquare places n nodes uniformly in a constant-density square.
	UniformSquare = geom.UniformSquare
	// PerturbedGrid places n nodes on a jittered unit grid.
	PerturbedGrid = geom.PerturbedGrid
	// Clusters places n nodes into k circular clusters.
	Clusters = geom.Clusters
	// ExponentialChain realises a chosen number of link classes exactly.
	ExponentialChain = geom.ExponentialChain
	// TwoNode is the minimal two-node deployment at distance 1.
	TwoNode = geom.TwoNode
	// CoLocatedPairs is the adversarial all-in-class-0 deployment.
	CoLocatedPairs = geom.CoLocatedPairs
	// RandomSubset draws m distinct node indices — the adversary's
	// activation choice for partial-activation runs.
	RandomSubset = geom.RandomSubset
	// ReadPoints parses node positions from CSV (one "x,y" per line);
	// WritePoints is its inverse. Together they let users simulate their
	// own deployments.
	ReadPoints  = geom.ReadPoints
	WritePoints = geom.WritePoints
)

// Channels and games.
var (
	// NewSINRChannel builds the paper's fading channel over a deployment's
	// positions.
	NewSINRChannel = sinr.New
	// NewRayleighChannel builds the stochastically faded variant.
	NewRayleighChannel = sinr.NewRayleigh
	// NewRadioChannel builds the classical collision channel.
	NewRadioChannel = radio.New
	// NewPowerChannel builds an SINR channel with per-node powers.
	NewPowerChannel = sinr.NewWithPowers
	// MinSingleHopPower derives the smallest power satisfying the
	// single-hop condition for a maximum link length.
	MinSingleHopPower = sinr.MinSingleHopPower
	// ChannelFor builds the default single-hop SINR channel over a
	// deployment, deriving the minimum feasible power when Params.Power
	// is 0. It is the shared helper behind Solve, the experiment suite,
	// and crverify, so the derivation cannot drift between them.
	ChannelFor = sinr.ChannelFor

	// Run executes a protocol over a channel until a solo broadcast or the
	// round budget.
	Run = sim.Run

	// NewHittingReferee starts a restricted k-hitting game with a random
	// target.
	NewHittingReferee = hitting.NewReferee
	// NewSimulationPlayer is the Lemma 14 reduction from any contention
	// resolution algorithm to a hitting-game player.
	NewSimulationPlayer = hitting.NewSimulationPlayer
	// NewFixedDensityPlayer proposes constant-density random sets.
	NewFixedDensityPlayer = hitting.NewFixedDensityPlayer
	// PlayHittingGame runs a hitting game to completion or a budget.
	PlayHittingGame = hitting.Play
	// PlayTwoPlayer runs the two-player symmetry-breaking game.
	PlayTwoPlayer = hitting.PlayTwoPlayer
	// ObliviousWorstCase computes the exact adversarial hitting-game value
	// for an oblivious player.
	ObliviousWorstCase = hitting.ObliviousWorstCase

	// NearestNeighborLinks builds the canonical capacity request set.
	NearestNeighborLinks = schedule.NearestNeighborLinks
	// GreedySchedule computes a maximal feasible simultaneous link set.
	GreedySchedule = schedule.Greedy
	// ScheduleAll partitions requests into consecutive feasible rounds.
	ScheduleAll = schedule.ScheduleAll
	// ScheduleFeasible checks a simultaneous link set against the SINR
	// equation.
	ScheduleFeasible = schedule.Feasible

	// Experiments returns every registered reproduction experiment.
	Experiments = experiments.All
	// ExperimentByID looks an experiment up by its DESIGN.md id (e.g. "E1").
	ExperimentByID = experiments.ByID
)

// DefaultParams returns the repository-standard physical constants
// (α = 3, β = 1.5, N = 1) with Power unset; derive a power with
// MinSingleHopPower or let Solve do it. It is sinr.DefaultParams, the one
// shared definition used by every harness entry point.
func DefaultParams() Params {
	return sinr.DefaultParams()
}

// Solve runs the paper's algorithm on the deployment with default physical
// parameters, the minimum feasible single-hop power, and a generous
// Θ(log n + log R) round budget. It is the one-call entry point used by the
// quickstart example.
func Solve(d *Deployment, seed uint64) (Result, error) {
	ch, err := ChannelFor(DefaultParams(), d)
	if err != nil {
		return Result{}, err
	}
	budget := 400 + 100*int(math.Ceil(math.Log2(float64(d.N())+1)))
	if d.R > 1 {
		budget += 100 * int(math.Ceil(math.Log2(d.R)))
	}
	return Run(ch, FixedProbability{}, seed, Config{MaxRounds: budget})
}
