// Package fadingcr is a from-scratch Go reproduction of "Contention
// Resolution on a Fading Channel" (Fineman, Gilbert, Kuhn, Newport, PODC
// 2016).
//
// The paper shows that on a fading (SINR) channel, the simplest conceivable
// protocol — every active node broadcasts with a fixed constant probability
// and deactivates upon receiving any message — resolves contention in
// O(log n + log R) rounds with high probability, beating the Ω(log² n)
// lower bound of the classical radio network model by leveraging spatial
// reuse. It complements this with an Ω(log n) lower bound via a reduction
// from the restricted k-hitting game.
//
// This package is the public facade over the repository's internal
// subsystems:
//
//   - deployments of nodes in the plane (uniform, grid, clustered,
//     exponential-chain) with the paper's normalisation (shortest link = 1),
//   - the SINR channel of the paper's Equation (1), an optional
//     Rayleigh-faded variant, and the classical collision (radio) channel,
//   - the paper's fixed-probability algorithm plus five baseline algorithms,
//   - a synchronous round engine with a solo-broadcast termination oracle,
//   - the restricted k-hitting game and two-player reduction of the lower
//     bound, and
//   - the experiment harness regenerating every reproduction target of
//     DESIGN.md §6.
//
// # Quick start
//
//	d, err := fadingcr.UniformDisk(1, 128)      // 128 nodes, seed 1
//	if err != nil { ... }
//	res, err := fadingcr.Solve(d, 2)            // run the paper's algorithm
//	fmt.Printf("solved in %d rounds by node %d\n", res.Rounds, res.Winner)
//
// See examples/ for runnable programs and cmd/ for the CLIs.
package fadingcr
