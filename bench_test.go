package fadingcr_test

// One benchmark per reproduction experiment of DESIGN.md §6 (E1–E11): each
// bench regenerates the experiment's tables at quick scale and reports the
// key headline number as a custom metric, so `go test -bench .` replays the
// entire reproduction. The full-scale tables in EXPERIMENTS.md come from
// `go run ./cmd/crbench`.
//
// The file also carries micro-benchmarks of the performance-critical
// substrate operations (SINR delivery, link class computation).

import (
	"context"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	fadingcr "fadingcr"
	"fadingcr/internal/core"
	"fadingcr/internal/experiments"
	"fadingcr/internal/geom"
	"fadingcr/internal/obs"
	"fadingcr/internal/runner"
	"fadingcr/internal/shard"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// benchExperiment runs one registered experiment per iteration at quick
// scale, varying the seed so iterations do independent work.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Config{Seed: uint64(i + 1), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s returned no tables", id)
		}
	}
}

// BenchmarkE1ScalingN regenerates Figure 1: rounds vs n (Theorem 1 shape).
func BenchmarkE1ScalingN(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2ScalingR regenerates Figure 2: rounds vs link classes (log R term).
func BenchmarkE2ScalingR(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Comparison regenerates Table 1: all algorithms head-to-head.
func BenchmarkE3Comparison(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4ClassDecay regenerates Figure 3: q_t envelope decay.
func BenchmarkE4ClassDecay(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5GoodNodes regenerates Figure 4: Lemma 6 good-node fractions.
func BenchmarkE5GoodNodes(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Hitting regenerates Figure 5: hitting-game horizons (Lemma 13).
func BenchmarkE6Hitting(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7HighProbability regenerates Table 2: failure rates under C·log n budgets.
func BenchmarkE7HighProbability(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8RadioBaselines regenerates Table 3: radio baselines vs their bounds.
func BenchmarkE8RadioBaselines(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Ablation regenerates Figure 6: p and α ablations.
func BenchmarkE9Ablation(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10SpatialReuse regenerates Figure 7: spatial reuse on/off.
func BenchmarkE10SpatialReuse(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11TwoPlayer regenerates Table 4: two-player horizons (Lemma 14).
func BenchmarkE11TwoPlayer(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Rayleigh regenerates the Rayleigh-fading robustness extension.
func BenchmarkE12Rayleigh(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Interleaving regenerates the unknown-R interleaving extension.
func BenchmarkE13Interleaving(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Adversary regenerates the worst-case-referee hitting values.
func BenchmarkE14Adversary(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Activation regenerates the partial-activation / embedding runs.
func BenchmarkE15Activation(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Energy regenerates the transmissions-to-solve accounting.
func BenchmarkE16Energy(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17Mechanism regenerates the knock-out mechanism ablation.
func BenchmarkE17Mechanism(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Capacity regenerates the centralized spatial-reuse capacities.
func BenchmarkE18Capacity(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkSolve measures one full contention resolution on the fading
// channel at several n — the end-to-end hot path.
func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			d, err := fadingcr.UniformDisk(1, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := fadingcr.Solve(d, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Solved {
					b.Fatal("unsolved")
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/solve")
		})
	}
}

// benchRunner drives the Monte Carlo engine with a fixed workload — 16
// fixed-probability solves on fresh 128-node disks — at the given
// parallelism, so the sequential/parallel pair below makes the engine's
// speedup (or single-core parity) visible in the bench trajectory.
func benchRunner(b *testing.B, parallelism int) {
	b.Helper()
	const trials, n = 16, 128
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(context.Background(), trials, func(_ context.Context, trial int) (int, error) {
			dseed, pseed := runner.TrialSeeds(uint64(i+1), trial)
			d, err := geom.UniformDisk(dseed, n)
			if err != nil {
				return 0, err
			}
			ch, err := sinr.ChannelFor(sinr.DefaultParams(), d)
			if err != nil {
				return 0, err
			}
			r, err := sim.Run(ch, core.FixedProbability{}, pseed, sim.Config{MaxRounds: 2000})
			if err != nil {
				return 0, err
			}
			return r.Rounds, nil
		}, runner.Options[int]{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.FirstErr(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkRunnerSequential is the engine at parallelism 1 — the baseline
// matching the hand-rolled loops the engine replaced.
func BenchmarkRunnerSequential(b *testing.B) { benchRunner(b, 1) }

// BenchmarkRunnerParallel is the same workload across GOMAXPROCS workers.
func BenchmarkRunnerParallel(b *testing.B) { benchRunner(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSINRDeliver measures one round of SINR delivery, the inner loop
// of every fading-channel experiment, swept over deployment size, transmit
// density, and delivery engine. "cached" is the precomputed-gain-matrix
// engine (forced on regardless of size), "uncached" the on-the-fly fallback;
// the two produce bit-identical receptions, so the ratio is pure speedup.
// Sparse sets transmit n/32 nodes (late-protocol contention), dense n/5
// (the default p = 0.2 of early rounds).
func BenchmarkSINRDeliver(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		for _, density := range []struct {
			name  string
			every int
		}{{"sparse", 32}, {"dense", 5}} {
			for _, engine := range []struct {
				name string
				opt  fadingcr.ChannelOption
			}{
				{"cached", fadingcr.WithGainCacheCap(0)},
				{"uncached", fadingcr.WithGainCache(false)},
			} {
				name := "n=" + strconv.Itoa(n) + "/" + density.name + "/" + engine.name
				b.Run(name, func(b *testing.B) {
					d, err := geom.UniformDisk(1, n)
					if err != nil {
						b.Fatal(err)
					}
					params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
					params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
					ch, err := sinr.New(params, d.Points, engine.opt)
					if err != nil {
						b.Fatal(err)
					}
					tx := make([]bool, n)
					for i := 0; i < n; i += density.every {
						tx[i] = true
					}
					recv := make([]int, n)
					ch.Deliver(tx, recv) // warm the scratch buffers
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ch.Deliver(tx, recv)
					}
				})
			}
		}
	}
}

// benchGridPoints places n nodes on a unit grid (row-major). A unit grid is
// already normalised (shortest link 1), so the O(n²) pairwise scan of
// geom.NewDeployment is skipped — the only way to build 100 000-node
// deployments in benchmark setup time.
func benchGridPoints(n int) []geom.Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geom.Point, 0, n)
	for y := 0; len(pts) < n; y++ {
		for x := 0; x < side && len(pts) < n; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	return pts
}

// BenchmarkSINRDeliverScale measures one Deliver round at simulation-farm
// scale, isolating the ε far-field and parallel engines of DESIGN.md §8:
// every engine computes attenuations on the fly (the gain cache cannot hold
// n=100 000 anyway), so the exact/eps ratio is pure pruning and eps/
// eps-parallel pure intra-round parallelism. α=4 (the regime the pruning
// radius (~1/ε)^{1/α} is designed for), dense transmit set (n/5, the
// early-round default p = 0.2), ε=1e-2 — the pruning radius scales like
// (1/ε)^{1/α}, and the cross-check test bounds the resulting one-sided
// disagreement rate. Sizes above 16384 need FADINGCR_BENCH_LARGE=1: one
// exact n=100 000 round alone costs seconds, so CI runs the large sizes at
// -benchtime=1x only. Workers are floored at 2 so the parallel engine is
// exercised even on single-core boxes (where it honestly reports its
// coordination overhead rather than silently degenerating to sequential).
func BenchmarkSINRDeliverScale(b *testing.B) {
	const eps = 1e-2
	workers := min(max(2, runtime.GOMAXPROCS(0)), sinr.MaxDeliverParallelism)
	for _, n := range []int{4096, 16384, 65536, 100000} {
		engines := []struct {
			name string
			opts []fadingcr.ChannelOption
		}{
			{"exact", []fadingcr.ChannelOption{fadingcr.WithGainCache(false)}},
			{"eps", []fadingcr.ChannelOption{fadingcr.WithGainCache(false), fadingcr.WithFarFieldEps(eps)}},
			{"eps-parallel", []fadingcr.ChannelOption{
				fadingcr.WithGainCache(false), fadingcr.WithFarFieldEps(eps), fadingcr.WithDeliverParallelism(workers),
			}},
		}
		for _, eng := range engines {
			b.Run("n="+strconv.Itoa(n)+"/"+eng.name, func(b *testing.B) {
				if n > 16384 && os.Getenv("FADINGCR_BENCH_LARGE") == "" {
					b.Skip("set FADINGCR_BENCH_LARGE=1 to run the large sizes")
				}
				pts := benchGridPoints(n)
				side := math.Ceil(math.Sqrt(float64(n)))
				params := sinr.Params{Alpha: 4, Beta: 1.5, Noise: 1}
				params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise,
					(side-1)*math.Sqrt2, sinr.DefaultSingleHopMargin)
				ch, err := sinr.New(params, pts, eng.opts...)
				if err != nil {
					b.Fatal(err)
				}
				tx := make([]bool, n)
				for i := 0; i < n; i += 5 {
					tx[i] = true
				}
				recv := make([]int, n)
				ch.Deliver(tx, recv) // warm the scratch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch.Deliver(tx, recv)
				}
			})
		}
	}
}

// BenchmarkSINRDeliverMetrics measures the observability overhead on the
// delivery hot path: the identical cached Deliver call with metrics
// recording enabled (the process default; BenchmarkSINRDeliver above runs
// this way) versus disabled via obs.SetEnabled(false). The delta is the
// cost of the per-call atomic counter increments — BENCH_obs.json records
// both sides, and the acceptance bar is overhead within run-to-run noise.
func BenchmarkSINRDeliverMetrics(b *testing.B) {
	const n = 512
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"on", true}, {"off", false}} {
		b.Run("metrics="+mode.name, func(b *testing.B) {
			d, err := geom.UniformDisk(1, n)
			if err != nil {
				b.Fatal(err)
			}
			params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
			params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
			ch, err := sinr.New(params, d.Points, fadingcr.WithGainCacheCap(0))
			if err != nil {
				b.Fatal(err)
			}
			tx := make([]bool, n)
			for i := 0; i < n; i += 5 {
				tx[i] = true
			}
			recv := make([]int, n)
			ch.Deliver(tx, recv) // warm the scratch buffers
			obs.SetEnabled(mode.enabled)
			defer obs.SetEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.Deliver(tx, recv)
			}
		})
	}
}

// BenchmarkCoordinatorSpans measures the coordinator-side span-tracing
// overhead on a sharded E1 run: the identical coordinator + assembly work
// with span recording off (Spans nil, the default) versus on (spans to
// io.Discard). The instrumentation is a handful of NDJSON lines per shard
// against milliseconds of trial execution, so the acceptance bar — recorded
// in BENCH_obs.json alongside the metrics overhead — is a delta within
// run-to-run noise.
func BenchmarkCoordinatorSpans(b *testing.B) {
	req := shard.Request{
		Spec:   experiments.Spec{IDs: "E1", Quick: true, Trials: 2, Seed: 7},
		Shards: 4,
	}
	for _, mode := range []struct {
		name  string
		spans bool
	}{{"on", true}, {"off", false}} {
		b.Run("spans="+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				coord := shard.Coordinator{Executors: []shard.Executor{&shard.Local{Parallelism: 2}}}
				if mode.spans {
					coord.Spans = obs.NewSpanLog(io.Discard)
				}
				m, err := coord.Run(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if m.Shards != req.Shards {
					b.Fatal("merged shard count wrong")
				}
			}
		})
	}
}

// BenchmarkLinkClasses measures the analysis-side link class partition.
func BenchmarkLinkClasses(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			d, err := geom.UniformDisk(1, n)
			if err != nil {
				b.Fatal(err)
			}
			active := make([]bool, n)
			for i := range active {
				active[i] = true
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				geom.ComputeLinkClasses(d.Points, active)
			}
		})
	}
}

// BenchmarkFixedProbabilityRound measures the per-round protocol overhead
// (coin flips) without the channel.
func BenchmarkFixedProbabilityRound(b *testing.B) {
	nodes := core.FixedProbability{}.Build(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range nodes {
			if u.Act(i+1) == sim.Transmit {
				u.Hear(i+1, -1, sim.Unknown)
			}
		}
	}
}
