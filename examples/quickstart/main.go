// Quickstart: the smallest possible contact with the library — deploy nodes,
// run the paper's algorithm, print the outcome.
package main

import (
	"fmt"
	"log"

	fadingcr "fadingcr"
)

func main() {
	// 128 wireless nodes dropped uniformly in a constant-density disk. The
	// deployment is normalised so the shortest link has length 1; R is the
	// longest link.
	d, err := fadingcr.UniformDisk(1, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes, link ratio R = %.1f\n", d.N(), d.R)

	// Solve contention: every active node broadcasts with constant
	// probability each round and deactivates upon receiving any message.
	// On the SINR (fading) channel this finishes in O(log n + log R)
	// rounds with high probability (Theorem 1 of the paper).
	res, err := fadingcr.Solve(d, 2)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("unsolved within the round budget: %+v", res)
	}
	fmt.Printf("contention resolved in %d rounds: node %d transmitted alone\n", res.Rounds, res.Winner)
	fmt.Printf("total energy: %d transmissions across all nodes\n", res.Transmissions)
}
