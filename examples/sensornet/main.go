// Sensornet: leader election after a mass wake-up in a clustered sensor
// deployment — the scenario the paper's introduction motivates. A field of
// sensors arranged in dense clusters all wake simultaneously and must elect
// a leader (first solo broadcast) on the shared fading channel. The example
// traces the execution with the paper's own analysis machinery: link class
// sizes per round, knock-out counts, and the staggered emptying of classes.
package main

import (
	"fmt"
	"log"

	fadingcr "fadingcr"
)

func main() {
	// 180 sensors in 12 clusters spread across the field: a two-scale
	// deployment where intra-cluster links are short (small link classes,
	// high contention) and inter-cluster links long.
	const n, clusters = 180, 12
	d, err := fadingcr.Clusters(7, n, clusters, 2.0, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d nodes in %d clusters, R = %.1f (%d possible link classes)\n",
		d.N(), clusters, d.R, d.LinkClassCount())

	params := fadingcr.DefaultParams()
	params.Power = fadingcr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, fadingcr.DefaultSingleHopMargin)
	ch, err := fadingcr.NewSINRChannel(params, d.Points)
	if err != nil {
		log.Fatal(err)
	}

	// Attach the analysis tracer from Section 3 of the paper.
	an := &fadingcr.Analyzer{Points: d.Points, Alpha: params.Alpha, R: d.R}
	res, err := fadingcr.Run(ch, fadingcr.FixedProbability{}, 99,
		fadingcr.Config{MaxRounds: 4000, Tracer: an})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("no leader elected in %d rounds", res.Rounds)
	}

	fmt.Printf("leader elected in round %d: sensor %d\n\n", res.Rounds, res.Winner)
	fmt.Println("round  active  tx  knocked-out  link class sizes (d_0, d_1, ...)")
	for _, s := range an.Snapshots {
		if s.Round%5 != 1 && s.Round != res.Rounds {
			continue // print every 5th round plus the finale
		}
		fmt.Printf("%5d  %6d  %2d  %11d  %v\n", s.Round, s.Active, s.Transmitters, s.Knockouts, s.ClassSizes)
	}

	// The Section 3.3 prediction: classes empty small-to-large, and the
	// whole schedule needs Θ(log n + log R) steps.
	cb := fadingcr.ClassBounds{GammaSlow: 0.8, Rho: 0.5}
	fmt.Printf("\nq_t envelope steps to empty (Claim 8): %d; observed solve round: %d\n",
		cb.StepsToZero(n, d.LinkClassCount()), res.Rounds)
}
