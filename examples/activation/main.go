// Activation: the paper's problem statement activates an *unknown subset* of
// the deployed nodes — nodes receive no a-priori information about how many
// others woke up. This example deploys a 1024-node network, activates random
// subsets of different sizes, and shows that the solve time tracks the
// activated count m (the algorithm needs no knowledge of m), including the
// degenerate m = 2 case that the Ω(log n) lower bound builds on.
package main

import (
	"fmt"
	"log"
	"sort"

	fadingcr "fadingcr"
	"fadingcr/internal/xrand"
)

const (
	networkSize = 1024
	trials      = 12
)

func main() {
	fmt.Printf("network: %d deployed nodes; activating random subsets\n\n", networkSize)
	fmt.Println("m activated   median rounds   max rounds")
	fmt.Println("------------------------------------------")
	for _, m := range []int{2, 4, 16, 64, 256, 1024} {
		med, maxR := run(m)
		fmt.Printf("%-13d %-15.0f %d\n", m, med, maxR)
	}
	fmt.Println()
	fmt.Println("Rounds grow with log(m), not with the deployed network size —")
	fmt.Println("the algorithm needs no knowledge of how many nodes woke up.")
}

func run(m int) (median float64, maxRounds int) {
	var rounds []float64
	for trial := 0; trial < trials; trial++ {
		seed := xrand.Split(42, uint64(trial))
		d, err := fadingcr.UniformDisk(seed, networkSize)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := fadingcr.RandomSubset(seed+1, networkSize, m)
		if err != nil {
			log.Fatal(err)
		}
		active, err := d.Subset(idx)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fadingcr.Solve(active, seed+2)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			log.Fatalf("m=%d trial %d unsolved", m, trial)
		}
		rounds = append(rounds, float64(res.Rounds))
		if res.Rounds > maxRounds {
			maxRounds = res.Rounds
		}
	}
	sort.Float64s(rounds)
	return rounds[len(rounds)/2], maxRounds
}
