// Lowerbound: the paper's Section 4 made executable. The Ω(log n) lower
// bound reduces the restricted k-hitting game to two-player contention
// resolution: a contention resolution algorithm simulated on k virtual nodes
// (every node fed silence) is a legal hitting-game player, so the game's
// Ω(log k) bound applies to the algorithm. This example plays both games
// with the paper's algorithm and shows the matching log k horizons.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	fadingcr "fadingcr"
	"fadingcr/internal/xrand"
)

const trials = 400

func main() {
	fmt.Println("k      hitting-game horizon   two-player horizon   log2(k)")
	fmt.Println("--------------------------------------------------------------")
	for _, k := range []int{16, 64, 256, 1024} {
		hit := hittingHorizon(k)
		two := twoPlayerHorizon(k)
		fmt.Printf("%-6d %-22.1f %-20.1f %.1f\n", k, hit, two, math.Log2(float64(k)))
	}
	fmt.Println()
	fmt.Println("Both horizons (the round budget needed for success probability")
	fmt.Println("1 − 1/k) grow linearly in log k — the empirical face of the")
	fmt.Println("paper's Ω(log n) lower bound (Lemmas 13 and 14).")
}

// hittingHorizon plays the restricted k-hitting game with the Lemma 14
// reduction player built from the paper's algorithm and returns the
// (1 − 1/k)-quantile of the winning round.
func hittingHorizon(k int) float64 {
	var rounds []float64
	for trial := 0; trial < trials; trial++ {
		ref, err := fadingcr.NewHittingReferee(k, xrand.Split(1, uint64(trial)))
		if err != nil {
			log.Fatal(err)
		}
		p, err := fadingcr.NewSimulationPlayer(fadingcr.FixedProbability{}, k, xrand.Split(2, uint64(trial)))
		if err != nil {
			log.Fatal(err)
		}
		r, won, err := fadingcr.PlayHittingGame(ref, p, 1000000)
		if err != nil || !won {
			log.Fatalf("trial %d: won=%v err=%v", trial, won, err)
		}
		rounds = append(rounds, float64(r))
	}
	return quantile(rounds, 1-1/float64(k))
}

// twoPlayerHorizon plays two-player contention resolution directly and
// returns the same quantile.
func twoPlayerHorizon(k int) float64 {
	var rounds []float64
	for trial := 0; trial < trials; trial++ {
		res, err := fadingcr.PlayTwoPlayer(fadingcr.FixedProbability{}, xrand.Split(3, uint64(trial)), 1000000)
		if err != nil || !res.Won {
			log.Fatalf("trial %d: %+v err=%v", trial, res, err)
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	return quantile(rounds, 1-1/float64(k))
}

func quantile(xs []float64, q float64) float64 {
	sort.Float64s(xs)
	idx := int(q * float64(len(xs)-1))
	return xs[idx]
}
