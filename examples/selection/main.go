// Selection: the classic application the paper alludes to when it notes that
// contention resolution "reduces to most non-trivial tasks in MAC models" —
// k-selection / broadcast scheduling. Every station holds a packet; the goal
// is for every station to deliver its packet in a solo broadcast. We run the
// paper's contention resolution repeatedly: each execution elects one
// winner, the winner leaves, and the remainder contend again. Total cost is
// Σ O(log m) over the shrinking participant set ≈ O(k log k) rounds for k
// packets — each round of which is a fading-channel contention resolution.
package main

import (
	"fmt"
	"log"

	fadingcr "fadingcr"
	"fadingcr/internal/xrand"
)

const k = 24 // stations with packets

func main() {
	d, err := fadingcr.UniformDisk(11, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d stations, each with one packet; electing solo broadcasters until all deliver\n\n", k)

	remaining := make([]int, k)
	for i := range remaining {
		remaining[i] = i
	}
	totalRounds := 0
	epoch := 0
	for len(remaining) > 0 {
		epoch++
		if len(remaining) == 1 {
			// A lone station broadcasts alone immediately.
			totalRounds++
			fmt.Printf("epoch %2d: station %2d delivers (alone, 1 round)\n", epoch, remaining[0])
			remaining = remaining[:0]
			break
		}
		sub, err := d.Subset(remaining)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fadingcr.Solve(sub, xrand.Split(99, uint64(epoch)))
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			log.Fatalf("epoch %d: contention unresolved", epoch)
		}
		winner := remaining[res.Winner]
		totalRounds += res.Rounds
		fmt.Printf("epoch %2d: station %2d delivers after %2d rounds (%d still waiting)\n",
			epoch, winner, res.Rounds, len(remaining)-1)
		remaining = append(remaining[:res.Winner], remaining[res.Winner+1:]...)
	}
	fmt.Printf("\nall %d packets delivered in %d rounds total (≈ %.1f rounds/packet)\n",
		k, totalRounds, float64(totalRounds)/k)
}
