// Showdown: the paper's headline claim as a head-to-head race. The same
// contention resolution problem is solved by (a) the paper's
// fixed-probability algorithm on the fading channel, and (b) the classical
// radio-network strategies on the collision channel — demonstrating the
// log n vs log² n separation that resolves the spectrum-reuse conjecture.
package main

import (
	"fmt"
	"log"
	"sort"

	fadingcr "fadingcr"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

const trials = 15

func main() {
	tab := table.New("median rounds to resolve contention (15 trials)",
		"algorithm / channel", "n=32", "n=128", "n=512")
	ns := []int{32, 128, 512}

	rows := []struct {
		label string
		run   func(n int, seed uint64) (fadingcr.Result, error)
	}{
		{"fixed-probability / SINR fading", runFading},
		{"probability-sweep / collision", runRadio(fadingcr.ProbabilitySweep{}, false)},
		{"decay / collision", func(n int, seed uint64) (fadingcr.Result, error) {
			return runRadio(fadingcr.Decay{N: n}, false)(n, seed)
		}},
		{"cd-halving / collision+CD", runRadio(fadingcr.CollisionDetectHalving{}, true)},
	}
	for _, row := range rows {
		cells := []string{row.label}
		for _, n := range ns {
			med, err := median(row.run, n)
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, fmt.Sprintf("%.0f", med))
		}
		tab.AddRow(cells...)
	}
	fmt.Print(tab.Text())
	fmt.Println("\nThe fading channel matches the collision-detection bound with no")
	fmt.Println("collision detection — the paper's central result.")
}

func median(run func(n int, seed uint64) (fadingcr.Result, error), n int) (float64, error) {
	var rounds []float64
	for trial := 0; trial < trials; trial++ {
		res, err := run(n, xrand.Split(123, uint64(trial)))
		if err != nil {
			return 0, err
		}
		if !res.Solved {
			return 0, fmt.Errorf("n=%d trial %d unsolved after %d rounds", n, trial, res.Rounds)
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	sort.Float64s(rounds)
	return rounds[len(rounds)/2], nil
}

func runFading(n int, seed uint64) (fadingcr.Result, error) {
	d, err := fadingcr.UniformDisk(seed, n)
	if err != nil {
		return fadingcr.Result{}, err
	}
	return fadingcr.Solve(d, seed+1)
}

func runRadio(b fadingcr.Builder, cd bool) func(n int, seed uint64) (fadingcr.Result, error) {
	return func(n int, seed uint64) (fadingcr.Result, error) {
		ch, err := fadingcr.NewRadioChannel(n, cd)
		if err != nil {
			return fadingcr.Result{}, err
		}
		return fadingcr.Run(ch, b, seed, fadingcr.Config{MaxRounds: 100000, CollisionDetection: cd})
	}
}
