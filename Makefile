# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short vet lint bench results clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# Mirror of CI's lint job: the repo's own determinism/hot-path analyzers
# (cmd/crlint) run through the go vet driver; staticcheck and govulncheck run
# when installed and are skipped with a note otherwise, so `make lint` works
# in offline sandboxes.
lint:
	go build -o bin/crlint ./cmd/crlint
	go vet -vettool=$(CURDIR)/bin/crlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -run '^$$' -bench . -benchmem ./...

# Regenerate every reproduction experiment at full scale (minutes).
results:
	go run ./cmd/crbench -seed 7 -o results_full.txt

clean:
	go clean ./...
	rm -rf bin
