# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short vet bench results clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -bench . -benchmem

# Regenerate every reproduction experiment at full scale (minutes).
results:
	go run ./cmd/crbench -seed 7 -o results_full.txt

clean:
	go clean ./...
