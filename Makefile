# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short vet lint bench results obs-smoke trace-smoke serve-smoke shard-smoke fleet-obs-smoke clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# Mirror of CI's lint job: the repo's own determinism/hot-path analyzers
# (cmd/crlint) run through the go vet driver, then standalone with -json to
# write the bin/crlint.ndjson diagnostics artifact (diag events + a summary
# line, even when clean); staticcheck and govulncheck run when installed and
# are skipped with a note otherwise, so `make lint` works in offline
# sandboxes.
lint:
	go build -o bin/crlint ./cmd/crlint
	go vet -vettool=$(CURDIR)/bin/crlint ./...
	bin/crlint -json ./... > bin/crlint.ndjson
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -run '^$$' -bench . -benchmem ./...

# Regenerate every reproduction experiment at full scale (minutes).
results:
	go run ./cmd/crbench -seed 7 -o results_full.txt

# Mirror of CI's obs-smoke job: exercise the -metrics/-cpuprofile/-memprofile
# flags end to end and validate the NDJSON report (jq when installed).
obs-smoke:
	go run ./cmd/crsim -n 64 -trials 3 -seed 7 \
		-metrics bin/metrics.ndjson -cpuprofile bin/cpu.pprof -memprofile bin/mem.pprof
	@if command -v jq >/dev/null 2>&1; then jq -ce . bin/metrics.ndjson > /dev/null && echo "NDJSON report valid"; \
	else echo "jq not installed, skipping NDJSON validation"; fi
	@test -s bin/cpu.pprof && test -s bin/mem.pprof && echo "profiles written"

# Mirror of CI's trace-smoke job: traced and untraced runs must have
# identical stdout, same-seed traces must be byte-identical (crtrace diff
# exits 0), and bounded Monte Carlo capture must sample deterministically.
trace-smoke:
	mkdir -p bin
	go run ./cmd/crsim -n 64 -seed 7 -trace-out bin/trace-a.ndjson -trace-classes > bin/out-traced.txt
	go run ./cmd/crsim -n 64 -seed 7 > bin/out-plain.txt
	cmp bin/out-traced.txt bin/out-plain.txt
	go run ./cmd/crsim -n 64 -seed 7 -trace-out bin/trace-b.ndjson -trace-classes > /dev/null
	cmp bin/trace-a.ndjson bin/trace-b.ndjson
	go run ./cmd/crtrace diff bin/trace-a.ndjson bin/trace-b.ndjson
	rm -rf bin/traces
	go run ./cmd/crsim -n 64 -trials 6 -seed 7 -trace-dir bin/traces -trace-every 2 > /dev/null
	go run ./cmd/crtrace summary bin/traces/*.ndjson
	@if command -v jq >/dev/null 2>&1; then jq -ce . bin/trace-a.ndjson > /dev/null && echo "trace NDJSON valid"; \
	else echo "jq not installed, skipping NDJSON validation"; fi

# Mirror of CI's serve-smoke job: boot the crserve daemon, run the whole
# client workflow over HTTP (submit → stream → result), prove the cache hit
# serves bytes identical to the cold run, and drain gracefully on SIGTERM.
serve-smoke:
	./scripts/serve-smoke.sh

# Mirror of CI's shard-smoke job: sharded runs (crbench -shards, crshard over
# two crserve daemons, and a run that loses a daemon and re-dispatches) must
# all be byte-identical to the unsharded run.
shard-smoke:
	./scripts/shard-smoke.sh

# Mirror of CI's fleet-obs-smoke job: a sharded -trace-dir run over two
# crserve daemons must reassemble a trace directory byte-identical to the
# unsharded capture, the coordinator span log must summarise through
# `crtrace spans`, and `crshard -metrics-fleet` must emit a valid merged
# metrics snapshot.
fleet-obs-smoke:
	./scripts/fleet-obs-smoke.sh

clean:
	go clean ./...
	rm -rf bin
