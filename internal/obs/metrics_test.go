package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.SetMax(3)
	if got := g.Load(); got != 7 {
		t.Errorf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Load(); got != 11 {
		t.Errorf("SetMax(11) left the gauge at %d", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name returned distinct counters")
	}
	if r.Histogram("h", 1, 4) != r.Histogram("h", 1, 4) {
		t.Error("same name returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	// base 1, 3 doublings: buckets [<1), [1,2), [2,4), [≥4].
	h := r.Histogram("h", 1, 3)
	for _, v := range []float64{0.5, 0, -3, math.NaN(), // bucket 0
		1, 1.99, // bucket 1
		2, 3.9, // bucket 2
		4, 100, math.Inf(1)} { // bucket 3
		h.Observe(v)
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Kind != "histogram" || s.Count != 11 {
		t.Fatalf("snapshot = %+v, want histogram with 11 observations", s)
	}
	wantCounts := []int64{4, 2, 2, 3}
	wantLts := []string{"1", "2", "4", "+Inf"}
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] || b.Lt != wantLts[i] {
			t.Errorf("bucket %d = {%s, %d}, want {%s, %d}", i, b.Lt, b.Count, wantLts[i], wantCounts[i])
		}
	}
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1e-6, 10)
	for _, v := range []float64{0.25, 0.5, 1.25} {
		h.Observe(v)
	}
	if got := h.Sum(); got != 2.0 {
		t.Errorf("Sum = %v, want 2", got)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

func TestSnapshotOrderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra")
	r.Gauge("alpha")
	r.Histogram("middle", 1, 2)
	var names []string
	for _, m := range r.Snapshot() {
		names = append(names, m.Name)
	}
	want := []string{"alpha", "middle", "zebra"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
}

func TestSetEnabledStopsRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 1, 2)
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	g.Set(9)
	g.SetMax(9)
	h.Observe(1)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Errorf("disabled recording moved metrics: counter=%d gauge=%d hist=%d",
			c.Load(), g.Load(), h.Count())
	}
	if Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
	SetEnabled(true)
	c.Inc()
	if c.Load() != 1 {
		t.Error("re-enabled counter did not record")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", 1, 8)
	g := r.Gauge("g")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
				g.SetMax(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per {
		t.Errorf("histogram sum = %v, want %d", got, workers*per)
	}
	if got := g.Load(); got != workers*per-1 {
		t.Errorf("gauge high-water = %d, want %d", got, workers*per-1)
	}
}
