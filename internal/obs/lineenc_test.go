package obs

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestLineEncoderShapes(t *testing.T) {
	var b strings.Builder
	e := NewLineEncoder(&b)

	e.Begin("header")
	e.Int("n", 64)
	e.Uint("seed", math.MaxUint64)
	e.Float("beta", 1.5)
	e.Bool("solved", true)
	e.Str("algo", `fi"xed`)
	if err := e.End(); err != nil {
		t.Fatal(err)
	}

	e.Begin("classes")
	e.Arr("sizes")
	e.ElemInt(5)
	e.ElemInt(3)
	e.ArrEnd()
	e.Arr("points")
	e.ElemArr()
	e.ElemFloat(0.5)
	e.ElemFloat(-2)
	e.ArrEnd()
	e.ArrEnd()
	if err := e.End(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	want0 := `{"event":"header","n":64,"seed":18446744073709551615,"beta":1.5,"solved":true,"algo":"fi\"xed"}`
	if lines[0] != want0 {
		t.Errorf("line 0 = %s, want %s", lines[0], want0)
	}
	want1 := `{"event":"classes","sizes":[5,3],"points":[[0.5,-2]]}`
	if lines[1] != want1 {
		t.Errorf("line 1 = %s, want %s", lines[1], want1)
	}
	// Every line must be valid JSON.
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %d is not valid JSON: %v", i, err)
		}
	}
}

func TestLineEncoderRaw(t *testing.T) {
	var b strings.Builder
	e := NewLineEncoder(&b)
	e.Begin("shard")
	e.Raw("summary", []byte(`{"n":3,"mean":1.5}`))
	e.Arr("values")
	e.ElemRaw([]byte(`{"rounds":7,"solved":true}`))
	e.ElemRaw([]byte(`42`))
	e.ArrEnd()
	if err := e.End(); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(b.String())
	want := `{"event":"shard","summary":{"n":3,"mean":1.5},"values":[{"rounds":7,"solved":true},42]}`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(got), &v); err != nil {
		t.Errorf("Raw line is not valid JSON: %v", err)
	}
}

func TestLineEncoderNonFiniteFloats(t *testing.T) {
	var b strings.Builder
	e := NewLineEncoder(&b)
	e.Begin("x")
	e.Float("nan", math.NaN())
	e.Float("inf", math.Inf(1))
	if err := e.End(); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(b.String())
	want := `{"event":"x","nan":null,"inf":null}`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errLineWrite }

var errLineWrite = errors.New("line write failed")

func TestLineEncoderStickyError(t *testing.T) {
	e := NewLineEncoder(failingWriter{})
	e.Begin("a")
	if err := e.End(); !errors.Is(err, errLineWrite) {
		t.Fatalf("End err = %v", err)
	}
	e.Begin("b")
	if err := e.End(); !errors.Is(err, errLineWrite) {
		t.Fatalf("second End err = %v", err)
	}
	if err := e.Err(); !errors.Is(err, errLineWrite) {
		t.Fatalf("Err = %v", err)
	}
}

func TestLineEncoderSteadyStateAllocs(t *testing.T) {
	var b strings.Builder
	e := NewLineEncoder(&b)
	emit := func() {
		e.Begin("recv")
		e.Int("round", 12)
		e.Int("node", 7)
		e.Int("from", 3)
		e.Float("sinr", 2.25)
		_ = e.End()
	}
	emit() // warm the buffer
	b.Reset()
	if allocs := testing.AllocsPerRun(100, func() { b.Reset(); emit() }); allocs > 1 {
		// strings.Builder.Write copies into its own buffer (one possible
		// growth); the encoder itself must not allocate per line.
		t.Errorf("steady-state line emit allocates %.1f times, want ≤ 1", allocs)
	}
}
