package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// parseLines decodes every NDJSON line, failing the test on any malformed
// one, and returns the decoded objects.
func parseLines(t *testing.T, data string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimSuffix(data, "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d %q: %v", i+1, line, err)
		}
		out = append(out, obj)
	}
	return out
}

func TestSinkEmit(t *testing.T) {
	var b strings.Builder
	s := NewSink(&b)
	if err := s.Emit("run", F("cmd", "crsim"), F("n", 3), F("ok", true)); err != nil {
		t.Fatal(err)
	}
	want := `{"event":"run","cmd":"crsim","n":3,"ok":true}` + "\n"
	if b.String() != want {
		t.Errorf("Emit wrote %q, want %q", b.String(), want)
	}
}

func TestSinkRejectsUnencodableValue(t *testing.T) {
	var b strings.Builder
	s := NewSink(&b)
	if err := s.Emit("bad", F("f", func() {})); err == nil {
		t.Error("unencodable value accepted")
	}
	if b.Len() != 0 {
		t.Errorf("failed Emit wrote a partial line: %q", b.String())
	}
}

func TestSinkConcurrentEmitsStayLineAtomic(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	s := NewSink(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Emit("tick", F("i", i)); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	lines := parseLines(t, b.String())
	if len(lines) != 400 {
		t.Errorf("got %d lines, want 400", len(lines))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRegistryEmitTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.level").Set(5)
	h := r.Histogram("c.hist", 1, 2)
	h.Observe(1.5)
	var b strings.Builder
	if err := r.EmitTo(NewSink(&b)); err != nil {
		t.Fatal(err)
	}
	lines := parseLines(t, b.String())
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), b.String())
	}
	// Ascending name order: a.level, b.count, c.hist.
	if lines[0]["event"] != "gauge" || lines[0]["name"] != "a.level" || lines[0]["value"] != float64(5) {
		t.Errorf("line 1 = %v", lines[0])
	}
	if lines[1]["event"] != "counter" || lines[1]["name"] != "b.count" || lines[1]["value"] != float64(3) {
		t.Errorf("line 2 = %v", lines[1])
	}
	if lines[2]["event"] != "histogram" || lines[2]["name"] != "c.hist" || lines[2]["count"] != float64(1) {
		t.Errorf("line 3 = %v", lines[2])
	}
	buckets, ok := lines[2]["buckets"].([]any)
	if !ok || len(buckets) != 3 {
		t.Fatalf("histogram buckets = %v, want 3 entries", lines[2]["buckets"])
	}
	last := buckets[2].(map[string]any)
	if last["lt"] != "+Inf" {
		t.Errorf("overflow bucket lt = %v, want +Inf", last["lt"])
	}
}
