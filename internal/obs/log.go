package obs

import "io"

// A Logger emits structured diagnostic lines as NDJSON — the machine-
// parseable replacement for bare fmt.Fprintf(os.Stderr, ...) status
// messages. Every line is one event object
//
//	{"event":"<event>","msg":"<msg>",...fields}
//
// with the human-readable message first and structured context after it, in
// call order, so lines are deterministic and grep-able by both substring and
// jq filter. It shares Sink's concurrency contract: one line per Log call,
// never torn. A nil *Logger is a valid no-op, mirroring SpanLog.
type Logger struct {
	sink  *Sink
	event string
}

// NewLogger returns a logger whose lines carry the given event
// discriminator (e.g. "shard" for the coordinator's diagnostics, matching
// crserve's "http" request log). The caller retains ownership of w.
func NewLogger(w io.Writer, event string) *Logger {
	return &Logger{sink: NewSink(w), event: event}
}

// Log writes one diagnostic line. Write errors are swallowed: diagnostics
// must never fail the operation they describe.
func (l *Logger) Log(msg string, fields ...Field) {
	if l == nil {
		return
	}
	all := make([]Field, 0, 1+len(fields))
	all = append(all, F("msg", msg))
	_ = l.sink.Emit(l.event, append(all, fields...)...)
}
