package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz.last").Add(7)
	r.Counter("aa.first").Add(1)
	r.Gauge("mm.middle").Set(3)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), rec.Body.String())
	}
	// Deterministic order: ascending metric name, fields in fixed order.
	var names []string
	for _, line := range lines {
		var ev struct {
			Event string `json:"event"`
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		names = append(names, ev.Name)
	}
	want := []string{"aa.first", "mm.middle", "zz.last"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("name order = %v, want %v", names, want)
		}
	}
	if !strings.HasPrefix(lines[0], `{"event":"counter","name":"aa.first","value":1}`) {
		t.Errorf("first line shape: %q", lines[0])
	}

	// Byte-identical across snapshots of unchanged values.
	rec2 := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.String() != rec2.Body.String() {
		t.Error("two snapshots of unchanged metrics differ")
	}
}
