package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// FleetSchemaVersion identifies the merged fleet-metrics NDJSON layout: a
// {"event":"fleet","schema":1,...} header followed by standard metric lines
// (see EmitSnapshots).
const FleetSchemaVersion = 1

// ParseMetricsNDJSON reads an NDJSON metrics export — the /metrics response
// body or the -metrics report — back into snapshots, preserving line order.
// Non-metric events (the "run" report header, a "fleet" header) are skipped;
// malformed lines are errors so truncated scrapes never merge silently.
func ParseMetricsNDJSON(r io.Reader) ([]MetricSnapshot, error) {
	var out []MetricSnapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev struct {
			Event   string   `json:"event"`
			Name    string   `json:"name"`
			Value   int64    `json:"value"`
			Count   int64    `json:"count"`
			Sum     float64  `json:"sum"`
			P50     float64  `json:"p50"`
			P95     float64  `json:"p95"`
			P99     float64  `json:"p99"`
			Buckets []Bucket `json:"buckets"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		switch ev.Event {
		case "counter", "gauge":
			out = append(out, MetricSnapshot{Name: ev.Name, Kind: ev.Event, Value: ev.Value})
		case "histogram":
			out = append(out, MetricSnapshot{
				Name: ev.Name, Kind: ev.Event,
				Count: ev.Count, Sum: ev.Sum,
				P50: ev.P50, P95: ev.P95, P99: ev.P99,
				Buckets: ev.Buckets,
			})
		default:
			// Header or foreign event line: observability exports are
			// allowed to interleave non-metric records.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics: %w", err)
	}
	return out, nil
}

// MergeSnapshots folds per-process metric snapshots into one fleet-wide
// snapshot under deterministic rules:
//
//   - the output holds the union of metric names in ascending order;
//   - counters sum across sources;
//   - gauges keep the last source's value (sources are merged in argument
//     order, so callers fix the precedence — crshard passes endpoints in
//     flag order with the coordinator's own registry last);
//   - histograms add counts and sums bucket-by-bucket (bucket layouts must
//     match — every process runs the same binary, so a layout mismatch means
//     the sources are incomparable and is an error), and the p50/p95/p99
//     estimates are recomputed from the merged buckets.
//
// A name registered with different kinds in different sources is an error.
func MergeSnapshots(sources ...[]MetricSnapshot) ([]MetricSnapshot, error) {
	merged := map[string]*MetricSnapshot{}
	var names []string
	for _, src := range sources {
		for i := range src {
			m := src[i]
			prev, ok := merged[m.Name]
			if !ok {
				cp := m
				cp.Buckets = append([]Bucket(nil), m.Buckets...)
				merged[m.Name] = &cp
				names = append(names, m.Name)
				continue
			}
			if prev.Kind != m.Kind {
				return nil, fmt.Errorf("obs: metric %q is a %s in one source and a %s in another", m.Name, prev.Kind, m.Kind)
			}
			switch m.Kind {
			case "counter":
				prev.Value += m.Value
			case "gauge":
				prev.Value = m.Value
			case "histogram":
				if len(prev.Buckets) != len(m.Buckets) {
					return nil, fmt.Errorf("obs: histogram %q bucket layouts differ across sources (%d vs %d buckets)", m.Name, len(prev.Buckets), len(m.Buckets))
				}
				for b := range m.Buckets {
					if prev.Buckets[b].Lt != m.Buckets[b].Lt {
						return nil, fmt.Errorf("obs: histogram %q bucket %d bound differs across sources (%s vs %s)", m.Name, b, prev.Buckets[b].Lt, m.Buckets[b].Lt)
					}
					prev.Buckets[b].Count += m.Buckets[b].Count
				}
				prev.Count += m.Count
				prev.Sum += m.Sum
			default:
				return nil, fmt.Errorf("obs: metric %q has unknown kind %q", m.Name, m.Kind)
			}
		}
	}
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		m := *merged[name]
		if m.Kind == "histogram" {
			fillQuantiles(&m)
		}
		out = append(out, m)
	}
	return out, nil
}

// ScrapeMetrics fetches and parses one process' /metrics endpoint. baseURL
// is the daemon's root URL, as given to crshard -endpoints.
func ScrapeMetrics(ctx context.Context, client *http.Client, baseURL string) ([]MetricSnapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimRight(baseURL, "/") + "/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("obs: scrape %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("obs: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s: unexpected status %s", url, resp.Status)
	}
	snaps, err := ParseMetricsNDJSON(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("obs: scrape %s: %w", url, err)
	}
	return snaps, nil
}
