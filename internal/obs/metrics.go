package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic count. The zero value is
// ready to use; counters handed out by a Registry are process-lifetime
// cumulative (callers wanting per-run numbers difference two snapshots).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n ≥ 0; negative deltas are a programming error but are not
// checked on the hot path).
func (c *Counter) Add(n int64) {
	if recordingDisabled.Load() {
		return
	}
	c.v.Add(n)
}

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// A Gauge is a last-writer-wins atomic level (e.g. the effective worker
// parallelism of the most recent run, or a high-water mark via SetMax).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if recordingDisabled.Load() {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value — a
// concurrency-safe high-water mark.
func (g *Gauge) SetMax(v int64) {
	if recordingDisabled.Load() {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// A Histogram is a fixed-bucket distribution with O(1), allocation-free
// record. Buckets double geometrically from a base: bucket 0 counts
// observations below base, bucket i (1 ≤ i ≤ doublings−1) counts
// base·2^(i−1) ≤ v < base·2^i, and the final bucket counts everything at or
// above base·2^(doublings−1). The bucket index is computed with math.Frexp
// (one exponent extraction), not a search, so Observe is constant-time
// regardless of bucket count.
type Histogram struct {
	base      float64
	doublings int
	counts    []atomic.Int64 // doublings+1 buckets
	count     atomic.Int64
	sumBits   atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// newHistogram builds the bucket layout. base must be positive and finite
// and doublings ≥ 1; the Registry validates before construction.
func newHistogram(base float64, doublings int) *Histogram {
	return &Histogram{
		base:      base,
		doublings: doublings,
		counts:    make([]atomic.Int64, doublings+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if recordingDisabled.Load() {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// bucketIndex maps a value to its bucket in O(1): the exponent of v/base.
func (h *Histogram) bucketIndex(v float64) int {
	if !(v >= h.base) { // also catches NaN
		return 0
	}
	_, exp := math.Frexp(v / h.base) // v/base ∈ [2^(exp−1), 2^exp)
	if exp > h.doublings || exp == 0 /* Frexp(+Inf) = 0 */ {
		return h.doublings
	}
	return exp
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket is one histogram bucket in a snapshot. Lt is the bucket's
// exclusive upper bound rendered as a string ("+Inf" for the overflow
// bucket) so snapshots serialize to valid JSON, where infinities have no
// literal.
type Bucket struct {
	Lt    string `json:"lt"`
	Count int64  `json:"count"`
}

// MetricSnapshot is one metric's point-in-time value. Kind selects which
// fields are meaningful: Value for counters and gauges; Count, Sum, Buckets,
// and the P* quantile estimates for histograms. Quantiles are deterministic
// interpolations within the power-of-two buckets (see bucketQuantile), so
// they are estimates bounded by bucket resolution, not exact order
// statistics.
type MetricSnapshot struct {
	Name    string
	Kind    string // "counter" | "gauge" | "histogram"
	Value   int64
	Count   int64
	Sum     float64
	P50     float64
	P95     float64
	P99     float64
	Buckets []Bucket
}

// A Registry is a named collection of metrics. The zero value is not usable;
// use NewRegistry (or the package-level Default). Lookups get-or-create, so
// instrumented packages declare their metrics as package variables without
// coordinating registration order.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	names   []string // registration order; sorted at snapshot time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]any{}}
}

// Default is the process-wide registry every instrumented subsystem records
// into and the CLI -metrics flag exports.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different metric kind panics: metric
// names are a process-wide contract.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.lookup(name, func() any { return &Counter{} }).(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.lookup(name, func() any { return &Gauge{} }).(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use with geometric buckets doubling from base (see Histogram). The
// layout is fixed by the first registration.
func (r *Registry) Histogram(name string, base float64, doublings int) *Histogram {
	if !(base > 0) || math.IsInf(base, 1) || doublings < 1 {
		panic(fmt.Sprintf("obs: histogram %q needs a positive finite base and ≥ 1 doublings (got base=%v, doublings=%d)", name, base, doublings))
	}
	h, ok := r.lookup(name, func() any { return newHistogram(base, doublings) }).(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return h
}

func (r *Registry) lookup(name string, create func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := create()
	r.metrics[name] = m
	r.names = append(r.names, name)
	return m
}

// Snapshot returns every registered metric's current value in ascending
// name order — the deterministic export order the NDJSON report and its
// tests rely on. Values are read atomically per metric; a snapshot taken
// concurrently with recording is internally consistent per metric, not
// across metrics.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	metrics := make([]any, len(names))
	sort.Strings(names)
	for i, name := range names {
		metrics[i] = r.metrics[name]
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(names))
	for i, name := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: m.Load()})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: m.Load()})
		case *Histogram:
			buckets := make([]Bucket, len(m.counts))
			bound := m.base
			for b := range m.counts {
				lt := "+Inf"
				if b < len(m.counts)-1 {
					lt = formatBound(bound)
					bound *= 2
				}
				buckets[b] = Bucket{Lt: lt, Count: m.counts[b].Load()}
			}
			snap := MetricSnapshot{
				Name: name, Kind: "histogram",
				Count: m.Count(), Sum: m.Sum(), Buckets: buckets,
			}
			fillQuantiles(&snap)
			out = append(out, snap)
		}
	}
	return out
}

// formatBound renders a bucket bound compactly and losslessly.
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}
