package obs

import (
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
)

// TestSnapshotUnderConcurrentWriters hammers a registry from writer
// goroutines while snapshots are taken, pinning (under -race, which CI runs
// for this package) that Snapshot is safe against concurrent recording and
// that its iteration order stays sorted and stable throughout.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	// Interleave registration with recording: half the metrics exist up
	// front, the rest are created get-or-create style mid-flight.
	names := []string{"w.aa", "w.bb", "w.cc", "w.dd", "w.ee", "w.ff"}
	for _, n := range names[:3] {
		r.Counter(n)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("w.hist", 1, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(names[i%len(names)]).Inc()
				r.Gauge("w.level").Set(int64(i))
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if !sort.SliceIsSorted(snap, func(a, b int) bool { return snap[a].Name < snap[b].Name }) {
			t.Fatalf("snapshot %d not sorted: %v", i, snapNames(snap))
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: every snapshot is now identical, including order.
	first := snapNames(r.Snapshot())
	for i := 0; i < 5; i++ {
		if got := snapNames(r.Snapshot()); !equalStrings(got, first) {
			t.Fatalf("stable snapshot order diverged: %v vs %v", got, first)
		}
	}
}

// TestHandlerUnderConcurrentWriters serves /metrics while writers are live:
// every response must be complete NDJSON in sorted name order, and once
// writers stop, responses must be byte-identical.
func TestHandlerUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("h.count")
			hist := r.Histogram("h.seconds", 0.001, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				hist.Observe(float64(i) * 0.0001)
			}
		}()
	}
	for i := 0; i < 25; i++ {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		snaps, err := ParseMetricsNDJSON(rec.Result().Body)
		if err != nil {
			t.Fatalf("response %d unparseable: %v", i, err)
		}
		if !sort.SliceIsSorted(snaps, func(a, b int) bool { return snaps[a].Name < snaps[b].Name }) {
			t.Fatalf("response %d not sorted: %v", i, snapNames(snaps))
		}
	}
	close(stop)
	wg.Wait()

	rec1 := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec1, httptest.NewRequest("GET", "/metrics", nil))
	rec2 := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/metrics", nil))
	if rec1.Body.String() != rec2.Body.String() {
		t.Error("quiesced /metrics responses differ")
	}
}

func snapNames(snaps []MetricSnapshot) []string {
	out := make([]string, len(snaps))
	for i, m := range snaps {
		out[i] = m.Name
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
