package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a pprof CPU profile to path and returns
// the function that stops profiling and closes the file. Only one CPU
// profile can be active per process (a runtime/pprof restriction).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live memory,
// mirroring `go test -memprofile`) and writes a pprof heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
