package obs

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestAddFlagsRegistersAll(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := AddFlags(fs)
	err := fs.Parse([]string{"-metrics", "m.ndjson", "-cpuprofile", "cpu.out", "-memprofile", "mem.out"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics != "m.ndjson" || f.CPUProfile != "cpu.out" || f.MemProfile != "mem.out" {
		t.Errorf("parsed flags = %+v", *f)
	}
}

func TestStartFinishWritesEverything(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		Metrics:    filepath.Join(dir, "metrics.ndjson"),
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	Default.Counter("obs_test.flag_runs").Inc()
	finish, err := f.Start("obstest")
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{f.Metrics, f.CPUProfile, f.MemProfile} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	data, err := os.ReadFile(f.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	lines := parseLines(t, string(data))
	if lines[0]["event"] != "run" || lines[0]["cmd"] != "obstest" {
		t.Errorf("header line = %v", lines[0])
	}
	found := false
	for _, l := range lines[1:] {
		if l["name"] == "obs_test.flag_runs" {
			found = true
		}
	}
	if !found {
		t.Error("report missing the registered counter")
	}
}

func TestStartFinishNoFlagsIsNoop(t *testing.T) {
	f := &Flags{}
	finish, err := f.Start("none")
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadCPUProfilePathFails(t *testing.T) {
	f := &Flags{CPUProfile: filepath.Join(t.TempDir(), "missing", "cpu.pprof")}
	if _, err := f.Start("bad"); err == nil {
		t.Error("unwritable cpu profile path accepted")
	}
}

func TestFinishBadMetricsPathFails(t *testing.T) {
	f := &Flags{Metrics: filepath.Join(t.TempDir(), "missing", "m.ndjson")}
	finish, err := f.Start("bad")
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(); err == nil {
		t.Error("unwritable metrics path accepted")
	}
}
