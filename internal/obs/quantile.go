package obs

import (
	"math"
	"strconv"
)

// bucketBounds parses the rendered bucket bounds of a histogram snapshot
// back into numbers: bound[i] is bucket i's exclusive upper bound, +Inf for
// the overflow bucket. It is the inverse of formatBound, shared by quantile
// estimation and the fleet merge.
func bucketBounds(buckets []Bucket) ([]float64, bool) {
	bounds := make([]float64, len(buckets))
	for i, b := range buckets {
		if b.Lt == "+Inf" {
			bounds[i] = math.Inf(1)
			continue
		}
		v, err := strconv.ParseFloat(b.Lt, 64)
		if err != nil {
			return nil, false
		}
		bounds[i] = v
	}
	return bounds, true
}

// bucketQuantile estimates the q-quantile (0 < q ≤ 1) of a bucketed
// distribution by linear interpolation within the bucket holding rank
// q·count — the same estimator Prometheus' histogram_quantile uses, chosen
// because it is a pure deterministic function of the bucket counts:
//
//   - an empty histogram estimates 0;
//   - the first bucket interpolates over [0, bound₀);
//   - interior buckets interpolate over [boundᵢ₋₁, boundᵢ);
//   - the overflow bucket has no upper bound, so the estimate clamps to its
//     lower bound (the largest finite boundary).
//
// Estimates are bounded by bucket resolution (power-of-two buckets ⇒ at most
// 2× off), which is the trade the O(1) allocation-free Observe buys.
func bucketQuantile(buckets []Bucket, bounds []float64, count int64, q float64) float64 {
	if count <= 0 || len(buckets) == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := 0.0
	for i, b := range buckets {
		c := float64(b.Count)
		if cum+c < rank || c == 0 {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if math.IsInf(hi, 1) {
			return lo
		}
		return lo + (hi-lo)*(rank-cum)/c
	}
	// rank exceeded every cumulative count (q == 1 with float round-off):
	// clamp to the last occupied bucket's upper finite bound.
	for i := len(buckets) - 1; i >= 0; i-- {
		if buckets[i].Count > 0 {
			if math.IsInf(bounds[i], 1) {
				if i > 0 {
					return bounds[i-1]
				}
				return 0
			}
			return bounds[i]
		}
	}
	return 0
}

// fillQuantiles computes the exported p50/p95/p99 estimates of a histogram
// snapshot in place.
func fillQuantiles(m *MetricSnapshot) {
	bounds, ok := bucketBounds(m.Buckets)
	if !ok {
		return
	}
	m.P50 = bucketQuantile(m.Buckets, bounds, m.Count, 0.50)
	m.P95 = bucketQuantile(m.Buckets, bounds, m.Count, 0.95)
	m.P99 = bucketQuantile(m.Buckets, bounds, m.Count, 0.99)
}
