package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantiles pins the deterministic quantile estimator against
// hand-computed interpolations on known bucket layouts.
func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name          string
		base          float64
		doublings     int
		observe       []float64
		p50, p95, p99 float64
	}{
		{
			// One observation in [1,2): rank q·1 interpolates inside it.
			name: "single", base: 1, doublings: 3,
			observe: []float64{1.5},
			p50:     1.5, p95: 1.95, p99: 1.99,
		},
		{
			// One observation per bucket of lt [1,2,4,+Inf): the overflow
			// bucket clamps to its lower bound.
			name: "spread", base: 1, doublings: 3,
			observe: []float64{0.5, 1.5, 3, 8},
			p50:     2, p95: 4, p99: 4,
		},
		{
			// All mass below base interpolates over [0, base).
			name: "underflow", base: 8, doublings: 2,
			observe: []float64{2, 4},
			p50:     4, p95: 7.6, p99: 7.92,
		},
		{
			name: "empty", base: 1, doublings: 3,
			observe: nil,
			p50:     0, p95: 0, p99: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("q.hist", tc.base, tc.doublings)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			snap := r.Snapshot()[0]
			for _, q := range []struct {
				name      string
				got, want float64
			}{{"p50", snap.P50, tc.p50}, {"p95", snap.P95, tc.p95}, {"p99", snap.P99, tc.p99}} {
				if math.Abs(q.got-q.want) > 1e-9 {
					t.Errorf("%s = %v, want %v", q.name, q.got, q.want)
				}
			}
		})
	}
}

// TestBucketQuantileFullRank pins the q=1 clamp: the estimate lands on the
// highest occupied bucket's finite bound rather than walking off the slice.
func TestBucketQuantileFullRank(t *testing.T) {
	buckets := []Bucket{{Lt: "1", Count: 2}, {Lt: "2", Count: 3}, {Lt: "+Inf", Count: 0}}
	bounds, ok := bucketBounds(buckets)
	if !ok {
		t.Fatal("bucketBounds failed on a valid layout")
	}
	if got := bucketQuantile(buckets, bounds, 5, 1.0); got != 2 {
		t.Errorf("q=1.0 = %v, want 2", got)
	}
	// Overflow-only mass at q=1 clamps to the largest finite bound.
	over := []Bucket{{Lt: "1", Count: 0}, {Lt: "+Inf", Count: 4}}
	obounds, _ := bucketBounds(over)
	if got := bucketQuantile(over, obounds, 4, 1.0); got != 1 {
		t.Errorf("overflow q=1.0 = %v, want 1", got)
	}
}
