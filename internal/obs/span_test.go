package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestSpanLogShapes(t *testing.T) {
	var b strings.Builder
	l := NewSpanLog(&b)
	run := l.Begin("run", F("shards", 3))
	d := run.Child("dispatch", F("shard", 0), F("executor", "local-0"))
	d.Event("retry", F("attempt", 2))
	d.End(F("outcome", "ok"))
	run.End()
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}

	lines := parseLines(t, b.String())
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), b.String())
	}
	if lines[0]["event"] != "spans" || lines[0]["schema"] != float64(SpanSchemaVersion) || lines[0]["clock"] != "us" {
		t.Errorf("header = %v", lines[0])
	}
	if lines[1]["phase"] != "begin" || lines[1]["name"] != "run" || lines[1]["shards"] != float64(3) {
		t.Errorf("run begin = %v", lines[1])
	}
	if _, hasParent := lines[1]["parent"]; hasParent {
		t.Errorf("root span carries a parent: %v", lines[1])
	}
	if lines[2]["phase"] != "begin" || lines[2]["name"] != "dispatch" || lines[2]["parent"] != lines[1]["id"] {
		t.Errorf("dispatch begin = %v (want parent %v)", lines[2], lines[1]["id"])
	}
	if lines[3]["phase"] != "event" || lines[3]["name"] != "retry" || lines[3]["span"] != lines[2]["id"] || lines[3]["attempt"] != float64(2) {
		t.Errorf("retry event = %v", lines[3])
	}
	if lines[4]["phase"] != "end" || lines[4]["name"] != "dispatch" || lines[4]["id"] != lines[2]["id"] || lines[4]["outcome"] != "ok" {
		t.Errorf("dispatch end = %v", lines[4])
	}
	if dur, ok := lines[4]["dur_us"].(float64); !ok || dur < 0 {
		t.Errorf("dispatch dur_us = %v, want ≥ 0", lines[4]["dur_us"])
	}
	if lines[5]["phase"] != "end" || lines[5]["name"] != "run" {
		t.Errorf("run end = %v", lines[5])
	}
}

// TestSpanLogNilIsNoop pins the disabled path: a nil log and its nil spans
// accept the full API without panicking or allocating output.
func TestSpanLogNilIsNoop(t *testing.T) {
	var l *SpanLog
	if err := l.Err(); err != nil {
		t.Errorf("nil log Err = %v", err)
	}
	s := l.Begin("run")
	if s != nil {
		t.Fatalf("nil log Begin returned %v, want nil", s)
	}
	c := s.Child("dispatch")
	c.Event("retry")
	c.End()
	s.End()
}

// TestSpanLogConcurrentEmitsStayLineAtomic exercises the mutex-guarded
// LineEncoder from many goroutines (the coordinator runs one goroutine per
// executor): every line must parse, i.e. no interleaved writes.
func TestSpanLogConcurrentEmitsStayLineAtomic(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	l := NewSpanLog(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	root := l.Begin("run")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sp := root.Child("dispatch", F("worker", w), F("i", i))
				sp.Event("tick")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	lines := parseLines(t, b.String())
	// header + run begin/end + 8*25*(begin+event+end).
	if want := 3 + 8*25*3; len(lines) != want {
		t.Errorf("got %d lines, want %d", len(lines), want)
	}
	ids := map[float64]bool{}
	for _, ln := range lines {
		if ln["phase"] == "begin" {
			id := ln["id"].(float64)
			if ids[id] {
				t.Fatalf("span id %v allocated twice", id)
			}
			ids[id] = true
		}
	}
}

func TestLoggerShapes(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, "shard")
	l.Log("gave up", F("shard", 3), F("executor", "local-0"))
	want := `{"event":"shard","msg":"gave up","shard":3,"executor":"local-0"}` + "\n"
	if b.String() != want {
		t.Errorf("Log wrote %q, want %q", b.String(), want)
	}
	var nilLogger *Logger
	nilLogger.Log("ignored") // must not panic
}
