package obs

import "net/http"

// Handler returns an http.Handler exposing the registry's snapshot as
// NDJSON: one event line per registered metric in ascending name order,
// exactly the report shape the -metrics flag writes (see Registry.EmitTo).
// Field order within each line is fixed, so two snapshots of identical
// metric values render byte-identically — the same determinism contract as
// every other export in this package.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		// A mid-stream write error means the client went away; there is
		// nothing useful to do about it here.
		_ = r.EmitTo(NewSink(w))
	})
}
