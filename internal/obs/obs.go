// Package obs is the repository's dependency-free observability layer: a
// process-wide metrics registry (atomic counters, gauges, and fixed-bucket
// histograms with O(1) record), an NDJSON event sink for structured per-run
// records, and pprof profiling hooks. The hot subsystems — the Monte Carlo
// engine (internal/runner), the SINR delivery engine (internal/sinr), and
// the round simulator (internal/sim) — record into the Default registry,
// and the CLIs export it through the shared -metrics/-cpuprofile/-memprofile
// flags (see Flags).
//
// Observability never changes results. Nothing in this package touches the
// simulated-randomness path: metrics are write-only from the simulation's
// point of view, recording is plain atomic arithmetic off the seed-derivation
// contract, and instrumentation inside //crlint:hotpath functions is
// allocation-free, so experiment outputs are byte-identical whether metrics
// are enabled, disabled, or exported (TestMetricsInvariance is the
// regression). SetEnabled(false) turns every recording operation into a
// no-op for overhead measurements; BENCH_obs.json records the on/off delta
// on the delivery hot path.
package obs

import "sync/atomic"

// recordingDisabled flips every Counter/Gauge/Histogram recording operation
// to a no-op. The zero value means enabled: observability is on by default
// and costs one atomic load plus one atomic add per operation.
var recordingDisabled atomic.Bool

// SetEnabled turns metric recording on (the default) or off process-wide.
// Disabling is for overhead measurement and A/B invariance tests; exported
// snapshots of a disabled registry simply stop moving.
func SetEnabled(on bool) { recordingDisabled.Store(!on) }

// Enabled reports whether metric recording is on. Instrumentation sites
// whose bookkeeping has a cost besides the metric write itself (e.g. the
// runner's per-trial clock reads) consult it to skip that work too.
func Enabled() bool { return !recordingDisabled.Load() }
