package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// A Field is one key/value pair of an NDJSON event. Fields are emitted in
// the order given, so event lines are deterministic — no map iteration is
// involved anywhere in the encoder.
type Field struct {
	Key   string
	Value any
}

// F constructs a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// A Sink writes newline-delimited JSON events: one JSON object per line,
// with an "event" discriminator field first. It is safe for concurrent use;
// each Emit writes exactly one line.
type Sink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSink wraps a writer. The caller retains ownership of the writer
// (closing files, flushing buffers).
func NewSink(w io.Writer) *Sink { return &Sink{w: w} }

// Emit writes one event line: {"event":"<event>","k1":v1,...}. Values are
// encoded with encoding/json; an unencodable value fails the whole line so
// malformed records never reach the file.
func (s *Sink) Emit(event string, fields ...Field) error {
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"event":`...)
	buf = strconv.AppendQuote(buf, event)
	for _, f := range fields {
		val, err := json.Marshal(f.Value)
		if err != nil {
			return fmt.Errorf("obs: field %q of event %q: %w", f.Key, event, err)
		}
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, f.Key)
		buf = append(buf, ':')
		buf = append(buf, val...)
	}
	buf = append(buf, '}', '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.w.Write(buf)
	return err
}

// EmitTo writes the registry's snapshot to the sink as one event per metric
// in ascending name order: counters and gauges as
// {"event":"counter","name":...,"value":N}, histograms as
// {"event":"histogram","name":...,"count":N,"sum":S,"p50":...,"p95":...,
// "p99":...,"buckets":[{"lt":...,"count":...},...]} with the deterministic
// quantile estimates of MetricSnapshot.
func (r *Registry) EmitTo(s *Sink) error {
	return EmitSnapshots(s, r.Snapshot())
}

// EmitSnapshots writes already-taken metric snapshots in the exact line
// shape EmitTo produces — the shared serializer behind the -metrics report,
// the /metrics handler, and the fleet-merged export.
func EmitSnapshots(s *Sink, snaps []MetricSnapshot) error {
	for _, m := range snaps {
		var err error
		switch m.Kind {
		case "histogram":
			err = s.Emit(m.Kind, F("name", m.Name), F("count", m.Count), F("sum", m.Sum),
				F("p50", m.P50), F("p95", m.P95), F("p99", m.P99), F("buckets", m.Buckets))
		default:
			err = s.Emit(m.Kind, F("name", m.Name), F("value", m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
