package obs

import (
	"io"
	"math"
	"strconv"
)

// LineEncoder streams NDJSON event lines through one reused buffer. It
// emits the same line shape as Sink.Emit — one JSON object per line with
// the "event" discriminator field first and every field in call order — but
// trades Sink's concurrency and reflection (json.Marshal per field) for an
// append-only fast path, so bulk writers (the structured trace serializer
// emits one line per recorded event) produce no per-line garbage beyond the
// occasional buffer growth.
//
// A LineEncoder is single-goroutine: unlike Sink it takes no lock. Usage:
//
//	e := obs.NewLineEncoder(w)
//	e.Begin("round")
//	e.Int("round", 7)
//	e.Int("tx", 3)
//	if err := e.End(); err != nil { ... }
//
// Arrays nest with Arr/ArrEnd and the Elem* element appenders:
//
//	e.Arr("sizes"); e.ElemInt(5); e.ElemInt(3); e.ArrEnd()
type LineEncoder struct {
	w     io.Writer
	buf   []byte
	comma bool
	err   error
}

// NewLineEncoder wraps a writer. The caller retains ownership of the writer
// (closing files, flushing any outer bufio layer).
func NewLineEncoder(w io.Writer) *LineEncoder { return &LineEncoder{w: w} }

// Begin starts a new line: {"event":"<event>". Any previously begun line
// must have been finished with End.
func (e *LineEncoder) Begin(event string) {
	e.buf = append(e.buf[:0], `{"event":`...)
	e.buf = strconv.AppendQuote(e.buf, event)
	e.comma = true
}

// key appends the separator and a quoted key.
func (e *LineEncoder) key(k string) {
	if e.comma {
		e.buf = append(e.buf, ',')
	}
	e.buf = strconv.AppendQuote(e.buf, k)
	e.buf = append(e.buf, ':')
	e.comma = true
}

// elem appends the separator of a bare array element.
func (e *LineEncoder) elem() {
	if e.comma {
		e.buf = append(e.buf, ',')
	}
	e.comma = true
}

// Int appends "key":v.
func (e *LineEncoder) Int(key string, v int64) {
	e.key(key)
	e.buf = strconv.AppendInt(e.buf, v, 10)
}

// Uint appends "key":v.
func (e *LineEncoder) Uint(key string, v uint64) {
	e.key(key)
	e.buf = strconv.AppendUint(e.buf, v, 10)
}

// Float appends "key":v in shortest round-trip form; non-finite values,
// which JSON cannot represent, encode as null.
func (e *LineEncoder) Float(key string, v float64) {
	e.key(key)
	e.appendFloat(v)
}

// Bool appends "key":true|false.
func (e *LineEncoder) Bool(key string, v bool) {
	e.key(key)
	e.buf = strconv.AppendBool(e.buf, v)
}

// Str appends "key":"v" with JSON string quoting.
func (e *LineEncoder) Str(key string, v string) {
	e.key(key)
	e.buf = strconv.AppendQuote(e.buf, v)
}

// Arr opens an array-valued field: "key":[.
func (e *LineEncoder) Arr(key string) {
	e.key(key)
	e.buf = append(e.buf, '[')
	e.comma = false
}

// ElemArr opens a nested array element: [.
func (e *LineEncoder) ElemArr() {
	e.elem()
	e.buf = append(e.buf, '[')
	e.comma = false
}

// ElemInt appends a bare integer array element.
func (e *LineEncoder) ElemInt(v int64) {
	e.elem()
	e.buf = strconv.AppendInt(e.buf, v, 10)
}

// ElemFloat appends a bare float array element (null when non-finite).
func (e *LineEncoder) ElemFloat(v float64) {
	e.elem()
	e.appendFloat(v)
}

// Raw appends "key":v where v is pre-encoded JSON, copied verbatim. The
// caller guarantees v is one complete, valid JSON value (the
// json.RawMessage contract); the encoder does not re-validate it.
func (e *LineEncoder) Raw(key string, v []byte) {
	e.key(key)
	e.buf = append(e.buf, v...)
}

// ElemRaw appends a pre-encoded JSON value as a bare array element, under
// the same contract as Raw.
func (e *LineEncoder) ElemRaw(v []byte) {
	e.elem()
	e.buf = append(e.buf, v...)
}

// ArrEnd closes the innermost open array.
func (e *LineEncoder) ArrEnd() {
	e.buf = append(e.buf, ']')
	e.comma = true
}

func (e *LineEncoder) appendFloat(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		e.buf = append(e.buf, "null"...)
		return
	}
	e.buf = strconv.AppendFloat(e.buf, v, 'g', -1, 64)
}

// End closes the line with }\n and writes it. The first write error sticks:
// subsequent End calls return it without writing, so a serialization loop
// can defer error handling to its final End.
func (e *LineEncoder) End() error {
	if e.err != nil {
		return e.err
	}
	e.buf = append(e.buf, '}', '\n')
	if _, err := e.w.Write(e.buf); err != nil {
		e.err = err
	}
	return e.err
}

// Err returns the sticky write error, if any.
func (e *LineEncoder) Err() error { return e.err }
