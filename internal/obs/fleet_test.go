package obs

import (
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestParseMetricsNDJSONRoundTrips pins that the /metrics export parses back
// into the exact snapshot it was taken from — the contract fleet scraping
// depends on.
func TestParseMetricsNDJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs.done").Add(12)
	r.Gauge("queue.depth").Set(4)
	h := r.Histogram("job.seconds", 0.5, 4)
	h.Observe(0.2)
	h.Observe(1.7)
	h.Observe(9)

	var b strings.Builder
	if err := r.EmitTo(NewSink(&b)); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetricsNDJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseMetricsNDJSONSkipsHeaders pins tolerance for the "run" report
// header and the "fleet" header while rejecting malformed lines.
func TestParseMetricsNDJSONSkipsHeaders(t *testing.T) {
	in := `{"event":"run","cmd":"crsim"}
{"event":"fleet","schema":1,"sources":2}
{"event":"counter","name":"a","value":3}
`
	got, err := ParseMetricsNDJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "a" || got[0].Value != 3 {
		t.Errorf("got %+v", got)
	}
	if _, err := ParseMetricsNDJSON(strings.NewReader("{truncated")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := []MetricSnapshot{
		{Name: "shared.count", Kind: "counter", Value: 3},
		{Name: "only.a", Kind: "counter", Value: 1},
		{Name: "level", Kind: "gauge", Value: 10},
		{Name: "lat", Kind: "histogram", Count: 2, Sum: 2.5,
			Buckets: []Bucket{{Lt: "1", Count: 1}, {Lt: "2", Count: 1}, {Lt: "+Inf", Count: 0}}},
	}
	b := []MetricSnapshot{
		{Name: "shared.count", Kind: "counter", Value: 4},
		{Name: "zz.b", Kind: "gauge", Value: 2},
		{Name: "level", Kind: "gauge", Value: 20},
		{Name: "lat", Kind: "histogram", Count: 2, Sum: 5,
			Buckets: []Bucket{{Lt: "1", Count: 0}, {Lt: "2", Count: 1}, {Lt: "+Inf", Count: 1}}},
	}
	got, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(got))
	for i, m := range got {
		names[i] = m.Name
	}
	if want := []string{"lat", "level", "only.a", "shared.count", "zz.b"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("merged name order = %v, want %v", names, want)
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range got {
		byName[m.Name] = m
	}
	if byName["shared.count"].Value != 7 {
		t.Errorf("counter sum = %d, want 7", byName["shared.count"].Value)
	}
	if byName["level"].Value != 20 {
		t.Errorf("gauge last = %d, want 20 (source order wins)", byName["level"].Value)
	}
	lat := byName["lat"]
	if lat.Count != 4 || lat.Sum != 7.5 {
		t.Errorf("histogram count/sum = %d/%v, want 4/7.5", lat.Count, lat.Sum)
	}
	wantBuckets := []Bucket{{Lt: "1", Count: 1}, {Lt: "2", Count: 2}, {Lt: "+Inf", Count: 1}}
	if !reflect.DeepEqual(lat.Buckets, wantBuckets) {
		t.Errorf("merged buckets = %v, want %v", lat.Buckets, wantBuckets)
	}
	// Quantiles recomputed from merged buckets: counts [1,2,1], count 4.
	// p50: rank 2 → bucket [1,2) fraction (2-1)/2 → 1.5.
	if math.Abs(lat.P50-1.5) > 1e-9 {
		t.Errorf("merged p50 = %v, want 1.5", lat.P50)
	}

	// Merging a's sources in the other order flips gauge precedence only.
	rev, err := MergeSnapshots(b, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rev {
		if m.Name == "level" && m.Value != 10 {
			t.Errorf("reversed gauge last = %d, want 10", m.Value)
		}
	}
}

func TestMergeSnapshotsRejectsConflicts(t *testing.T) {
	if _, err := MergeSnapshots(
		[]MetricSnapshot{{Name: "x", Kind: "counter", Value: 1}},
		[]MetricSnapshot{{Name: "x", Kind: "gauge", Value: 1}},
	); err == nil {
		t.Error("kind conflict accepted")
	}
	if _, err := MergeSnapshots(
		[]MetricSnapshot{{Name: "h", Kind: "histogram", Buckets: []Bucket{{Lt: "1"}, {Lt: "+Inf"}}}},
		[]MetricSnapshot{{Name: "h", Kind: "histogram", Buckets: []Bucket{{Lt: "2"}, {Lt: "+Inf"}}}},
	); err == nil {
		t.Error("bucket bound mismatch accepted")
	}
	if _, err := MergeSnapshots(
		[]MetricSnapshot{{Name: "h", Kind: "histogram", Buckets: []Bucket{{Lt: "1"}, {Lt: "+Inf"}}}},
		[]MetricSnapshot{{Name: "h", Kind: "histogram", Buckets: []Bucket{{Lt: "+Inf"}}}},
	); err == nil {
		t.Error("bucket layout length mismatch accepted")
	}
}

// TestScrapeMetrics drives the scraper against a live /metrics handler.
func TestScrapeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("scraped.count").Add(9)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	got, err := ScrapeMetrics(t.Context(), nil, ts.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "scraped.count" || got[0].Value != 9 {
		t.Errorf("scraped %+v", got)
	}
	if _, err := ScrapeMetrics(t.Context(), nil, "http://127.0.0.1:1/"); err == nil {
		t.Error("unreachable endpoint scraped without error")
	}
}
