package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanSchemaVersion identifies the span-log NDJSON layout. Bump only on an
// incompatible change; crtrace refuses span logs from a different schema.
const SpanSchemaVersion = 1

// A SpanLog records a tree of timed spans as NDJSON — the coordinator-side
// counterpart of the per-trial traces in internal/trace. The log is
// observational only: it rides on the process' monotonic clock (timestamps
// are microseconds since the log was opened, so two runs of the same spec
// produce structurally identical logs with differing times) and nothing on
// a result path ever reads it back.
//
// The stream starts with a header line
//
//	{"event":"spans","schema":1,"clock":"us"}
//
// followed by one line per span edge or annotation:
//
//	{"event":"span","phase":"begin","id":1,"name":"run","t_us":...}
//	{"event":"span","phase":"event","span":2,"name":"retry","t_us":...}
//	{"event":"span","phase":"end","id":2,"name":"dispatch","t_us":...,"dur_us":...}
//
// "begin" lines carry "parent" when the span has one; extra fields passed by
// the instrumentation site follow in call order, so lines are deterministic
// up to span ids and timestamps. Lines go through one obs.LineEncoder under
// a mutex — spans from concurrent executor goroutines interleave but never
// tear. A nil *SpanLog (and the nil *Span its methods return) is a valid
// no-op, so callers instrument unconditionally and pay a pointer test when
// tracing is off.
type SpanLog struct {
	mu     sync.Mutex
	enc    *LineEncoder
	base   time.Time
	nextID uint64
}

// NewSpanLog opens a span log on w and writes the schema header. The caller
// retains ownership of the writer.
func NewSpanLog(w io.Writer) *SpanLog {
	l := &SpanLog{
		enc:  NewLineEncoder(w),
		base: time.Now(), //crlint:allow nowallclock span timestamps are reporting-only and never feed a result
	}
	l.enc.Begin("spans")
	l.enc.Int("schema", SpanSchemaVersion)
	l.enc.Str("clock", "us")
	_ = l.enc.End()
	return l
}

// Err returns the first write error the log hit, if any. Span emission never
// fails the instrumented operation; callers check once at the end.
func (l *SpanLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Err()
}

// now returns microseconds since the log was opened, read off the monotonic
// clock so durations are immune to wall-clock steps.
func (l *SpanLog) now() int64 {
	return time.Since(l.base).Microseconds() //crlint:allow nowallclock span timestamps are reporting-only
}

// A Span is one open interval in the log. Every method on a nil Span is a
// no-op returning nil children, mirroring the nil *SpanLog contract.
type Span struct {
	log    *SpanLog
	id     uint64
	parent uint64
	name   string
	start  int64 // t_us at begin
}

// Begin opens a root span.
func (l *SpanLog) Begin(name string, fields ...Field) *Span {
	if l == nil {
		return nil
	}
	return l.begin(0, name, fields)
}

func (l *SpanLog) begin(parent uint64, name string, fields []Field) *Span {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	s := &Span{log: l, id: l.nextID, parent: parent, name: name, start: t}
	l.enc.Begin("span")
	l.enc.Str("phase", "begin")
	l.enc.Uint("id", s.id)
	if parent != 0 {
		l.enc.Uint("parent", parent)
	}
	l.enc.Str("name", name)
	l.enc.Int("t_us", t)
	encodeFields(l.enc, fields)
	_ = l.enc.End()
	return s
}

// Child opens a sub-span.
func (s *Span) Child(name string, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.log.begin(s.id, name, fields)
}

// Event records an instantaneous annotation attributed to this span.
func (s *Span) Event(name string, fields ...Field) {
	if s == nil {
		return
	}
	l := s.log
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Begin("span")
	l.enc.Str("phase", "event")
	l.enc.Uint("span", s.id)
	l.enc.Str("name", name)
	l.enc.Int("t_us", t)
	encodeFields(l.enc, fields)
	_ = l.enc.End()
}

// End closes the span, recording its monotonic duration.
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	l := s.log
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Begin("span")
	l.enc.Str("phase", "end")
	l.enc.Uint("id", s.id)
	l.enc.Str("name", s.name)
	l.enc.Int("t_us", t)
	l.enc.Int("dur_us", t-s.start)
	encodeFields(l.enc, fields)
	_ = l.enc.End()
}

// encodeFields appends caller fields to an open line. Common scalar kinds
// take the allocation-free appenders; anything else goes through
// encoding/json so arbitrary Field values keep working (an unencodable value
// renders as null rather than corrupting the line).
func encodeFields(e *LineEncoder, fields []Field) {
	for _, f := range fields {
		switch v := f.Value.(type) {
		case int:
			e.Int(f.Key, int64(v))
		case int64:
			e.Int(f.Key, v)
		case uint64:
			e.Uint(f.Key, v)
		case float64:
			e.Float(f.Key, v)
		case bool:
			e.Bool(f.Key, v)
		case string:
			e.Str(f.Key, v)
		default:
			raw, err := json.Marshal(f.Value)
			if err != nil {
				raw = []byte("null")
			}
			e.Raw(f.Key, raw)
		}
	}
}
