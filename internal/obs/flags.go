package obs

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// Flags are the shared observability flags of the command-line tools:
//
//	-metrics FILE     write an NDJSON metrics report after the run
//	-cpuprofile FILE  write a pprof CPU profile of the run
//	-memprofile FILE  write a pprof heap profile at the end of the run
//
// Usage: f := obs.AddFlags(fs); after fs.Parse, finish, err := f.Start(cmd);
// run the command body; call finish() and propagate its error. None of the
// flags affect results — the report and profiles observe the run, they never
// feed back into it.
type Flags struct {
	// Metrics is the NDJSON report path ("" disables). The report holds one
	// "run" header event followed by one event per registered metric in
	// ascending name order (see Registry.EmitTo for the schema).
	Metrics string
	// CPUProfile is the pprof CPU profile path ("" disables).
	CPUProfile string
	// MemProfile is the pprof heap profile path ("" disables).
	MemProfile string
}

// AddFlags registers the observability flags on the flag set and returns
// the struct their values land in.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write an NDJSON metrics report to `FILE` after the run")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `FILE`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to `FILE`")
	return f
}

// Start begins CPU profiling when requested and returns the finish function
// that stops the profile, writes the heap profile, and exports the metrics
// report. finish is safe to call when every flag is empty (it does nothing)
// and reports the first error of each step without skipping the others.
func (f *Flags) Start(cmd string) (finish func() error, err error) {
	var stopCPU func() error
	if f.CPUProfile != "" {
		stopCPU, err = StartCPUProfile(f.CPUProfile)
		if err != nil {
			return nil, err
		}
	}
	return func() error {
		var errs []error
		if stopCPU != nil {
			errs = append(errs, stopCPU())
		}
		if f.MemProfile != "" {
			errs = append(errs, WriteHeapProfile(f.MemProfile))
		}
		if f.Metrics != "" {
			errs = append(errs, writeReport(f.Metrics, cmd))
		}
		return errors.Join(errs...)
	}, nil
}

// writeReport exports the Default registry as an NDJSON file: a "run"
// header identifying the command, then one event per metric.
func writeReport(path, cmd string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics report: %w", err)
	}
	sink := NewSink(f)
	err = sink.Emit("run", F("cmd", cmd), F("metrics_enabled", Enabled()))
	if err == nil {
		err = Default.EmitTo(sink)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: metrics report: %w", err)
	}
	return nil
}
