package core

import (
	"math"
	"strings"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// sinrChannel builds a single-hop SINR channel over the deployment with the
// repository's default physical constants.
func sinrChannel(t *testing.T, d *geom.Deployment) *sinr.Channel {
	t.Helper()
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
	ch, err := sinr.New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestFixedProbabilityName(t *testing.T) {
	if got := (FixedProbability{}).Name(); !strings.Contains(got, "0.2") {
		t.Errorf("Name = %q, want default p mentioned", got)
	}
	if got := (FixedProbability{P: 0.5}).Name(); !strings.Contains(got, "0.5") {
		t.Errorf("Name = %q, want p=0.5 mentioned", got)
	}
}

func TestFixedProbabilityBuildPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v: no panic", p)
				}
			}()
			FixedProbability{P: p}.Build(3, 1)
		}()
	}
}

func TestFixedProbabilityNodeKnockout(t *testing.T) {
	nodes := FixedProbability{P: 0.5}.Build(1, 7)
	u := nodes[0].(*fpNode)
	if !u.Active() {
		t.Fatal("node starts inactive")
	}
	u.Hear(1, -1, sim.Unknown)
	if !u.Active() {
		t.Error("hearing nothing deactivated the node")
	}
	u.Hear(2, 3, sim.Unknown)
	if u.Active() {
		t.Error("receiving a message did not deactivate the node")
	}
	// An inactive node never transmits again.
	for r := 3; r < 200; r++ {
		if u.Act(r) != sim.Listen {
			t.Fatal("inactive node transmitted")
		}
	}
}

func TestFixedProbabilityTransmitRate(t *testing.T) {
	nodes := FixedProbability{P: 0.25}.Build(1, 3)
	u := nodes[0]
	hits := 0
	const rounds = 20000
	for r := 1; r <= rounds; r++ {
		if u.Act(r) == sim.Transmit {
			hits++
		}
	}
	rate := float64(hits) / rounds
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("empirical transmit rate %v far from 0.25", rate)
	}
}

func TestFixedProbabilitySolvesOnSINR(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 256} {
		d, err := geom.UniformDisk(uint64(n), n)
		if err != nil {
			t.Fatal(err)
		}
		ch := sinrChannel(t, d)
		res, err := sim.Run(ch, FixedProbability{}, 99, sim.Config{MaxRounds: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Errorf("n=%d: unsolved after %d rounds", n, res.Rounds)
			continue
		}
		if res.Winner < 0 || res.Winner >= n {
			t.Errorf("n=%d: winner %d out of range", n, res.Winner)
		}
	}
}

func TestFixedProbabilitySolvesOnChain(t *testing.T) {
	d, err := geom.ExponentialChain(3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := sinrChannel(t, d)
	res, err := sim.Run(ch, FixedProbability{}, 5, sim.Config{MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Errorf("chain deployment unsolved after %d rounds", res.Rounds)
	}
}

func TestFixedProbabilityDeterministic(t *testing.T) {
	d, err := geom.UniformDisk(11, 50)
	if err != nil {
		t.Fatal(err)
	}
	run := func() sim.Result {
		res, err := sim.Run(sinrChannel(t, d), FixedProbability{}, 1234, sim.Config{MaxRounds: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	c, err := sim.Run(sinrChannel(t, d), FixedProbability{}, 1235, sim.Config{MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Log("different seeds produced identical results (possible but unlikely)")
	}
}

func TestFixedProbabilityNodesIndependent(t *testing.T) {
	// Two nodes built from one seed must not mirror each other's coin flips.
	nodes := FixedProbability{P: 0.5}.Build(2, 42)
	same := 0
	const rounds = 200
	for r := 1; r <= rounds; r++ {
		if nodes[0].Act(r) == nodes[1].Act(r) {
			same++
		}
	}
	if same > rounds*3/4 || same < rounds/4 {
		t.Errorf("nodes agreed on %d/%d rounds; streams look correlated", same, rounds)
	}
}

func TestFixedProbabilityScalingShape(t *testing.T) {
	// Theorem 1 sanity: median rounds for n=256 should be well below the
	// classical log²n budget and grow slowly: compare n=16 vs n=256 — the
	// ratio of medians should be far below the ratio 256/16 = 16 (it should
	// be ~log(256)/log(16) = 2).
	if testing.Short() {
		t.Skip("scaling shape test is slow")
	}
	median := func(n int) float64 {
		var rounds []int
		for trial := 0; trial < 21; trial++ {
			d, err := geom.UniformDisk(uint64(100+trial), n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sinrChannel(t, d), FixedProbability{}, uint64(trial), sim.Config{MaxRounds: 10000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("n=%d trial %d unsolved", n, trial)
			}
			rounds = append(rounds, res.Rounds)
		}
		// insertion sort; tiny slice
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		return float64(rounds[len(rounds)/2])
	}
	m16, m256 := median(16), median(256)
	if ratio := m256 / m16; ratio > 8 {
		t.Errorf("median rounds n=256/n=16 = %v/%v (ratio %v); growth looks super-logarithmic", m256, m16, ratio)
	}
	if m256 > 40*math.Log2(256) {
		t.Errorf("median rounds at n=256 is %v, far above C·log n", m256)
	}
}
