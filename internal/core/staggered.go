package core

import (
	"fmt"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// StaggeredStart is a robustness wrapper beyond the paper's synchronous-start
// model: each node wakes at an independent uniformly random round in
// [1, 1+MaxDelay] and runs the inner protocol from its own round 1 from
// there. Before waking, a node neither transmits nor processes receptions —
// the radio is off. The wrapper probes whether the knock-out cascade
// tolerates the "nodes activated at different times" regime common in real
// wake-up scenarios; contention resolution's solve condition (first solo
// broadcast among the participants) is unchanged.
type StaggeredStart struct {
	// Inner is the wrapped protocol; must be non-nil.
	Inner sim.Builder
	// MaxDelay ≥ 0 is the largest wake-up offset in rounds.
	MaxDelay int
}

var _ sim.Builder = StaggeredStart{}

// Name implements sim.Builder.
func (s StaggeredStart) Name() string {
	return fmt.Sprintf("staggered(%s, ≤%d)", s.Inner.Name(), s.MaxDelay)
}

// Build implements sim.Builder. It panics on a nil inner builder or negative
// delay (static misconfigurations).
func (s StaggeredStart) Build(n int, seed uint64) []sim.Node {
	if s.Inner == nil {
		panic("core: StaggeredStart requires an inner builder")
	}
	if s.MaxDelay < 0 {
		panic(fmt.Sprintf("core: StaggeredStart.MaxDelay %d must be ≥ 0", s.MaxDelay))
	}
	inner := s.Inner.Build(n, xrand.Split(seed, 0))
	if len(inner) != n {
		panic(fmt.Sprintf("core: inner builder returned %d nodes for n=%d", len(inner), n))
	}
	rng := xrand.New(xrand.Split(seed, 1))
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &staggeredNode{inner: inner[i], wake: 1 + rng.IntN(s.MaxDelay+1)}
	}
	return nodes
}

// staggeredNode delays its inner node by wake−1 rounds.
type staggeredNode struct {
	inner sim.Node
	wake  int
}

func (u *staggeredNode) Act(round int) sim.Action {
	if round < u.wake {
		return sim.Listen
	}
	return u.inner.Act(round - u.wake + 1)
}

func (u *staggeredNode) Hear(round int, from int, detect sim.Feedback) {
	if round < u.wake {
		return // radio off: pre-wake receptions are not observed
	}
	u.inner.Hear(round-u.wake+1, from, detect)
}

// Active reports the inner node's activity; a sleeping node counts as active
// (it will contend once awake).
func (u *staggeredNode) Active() bool {
	if a, ok := u.inner.(Activeness); ok {
		return a.Active()
	}
	return true
}
