package core

import (
	"fmt"

	"fadingcr/internal/sim"
)

// WithKnockout grafts the paper's knock-out rule onto any protocol: a node
// runs the inner protocol until it receives a message, then goes permanently
// silent. The paper's algorithm is exactly WithKnockout applied to
// "broadcast with constant probability p forever"; wrapping the *classical*
// strategies isolates which ingredient buys the speed-up on a fading channel
// — the answer (experiment E17) is the knock-out rule: even the Θ(log² n)
// sweep collapses to near-Θ(log n) once knocked-out nodes leave the channel,
// because spatial reuse lets captures deactivate nodes continuously.
type WithKnockout struct {
	// Inner is the wrapped protocol; must be non-nil.
	Inner sim.Builder
}

var _ sim.Builder = WithKnockout{}

// Name implements sim.Builder.
func (w WithKnockout) Name() string {
	return fmt.Sprintf("knockout(%s)", w.Inner.Name())
}

// Build implements sim.Builder. It panics on a nil inner builder.
func (w WithKnockout) Build(n int, seed uint64) []sim.Node {
	if w.Inner == nil {
		panic("core: WithKnockout requires an inner builder")
	}
	inner := w.Inner.Build(n, seed)
	if len(inner) != n {
		panic(fmt.Sprintf("core: inner builder returned %d nodes for n=%d", len(inner), n))
	}
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &knockoutNode{inner: inner[i], active: true}
	}
	return nodes
}

type knockoutNode struct {
	inner  sim.Node
	active bool
}

func (u *knockoutNode) Act(round int) sim.Action {
	if !u.active {
		return sim.Listen
	}
	return u.inner.Act(round)
}

func (u *knockoutNode) Hear(round int, from int, detect sim.Feedback) {
	if from >= 0 {
		u.active = false
	}
	u.inner.Hear(round, from, detect)
}

// Active implements Activeness.
func (u *knockoutNode) Active() bool { return u.active }
