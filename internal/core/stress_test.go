package core

import (
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// Stress and failure-injection tests: the algorithm must keep solving under
// every deliberately hostile configuration of DESIGN.md §9 — adversarial
// placements, physical constants at the edge of the model, and degenerate
// channel regimes.

func stressChannel(t *testing.T, d *geom.Deployment, params sinr.Params, margin float64) *sinr.Channel {
	t.Helper()
	if params.Power == 0 {
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, margin)
	}
	ch, err := sinr.New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func mustSolve(t *testing.T, ch sim.Channel, seed uint64, budget int, label string) sim.Result {
	t.Helper()
	res, err := sim.Run(ch, FixedProbability{}, seed, sim.Config{MaxRounds: budget})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !res.Solved {
		t.Fatalf("%s: unsolved after %d rounds", label, res.Rounds)
	}
	return res
}

func TestStressAlphaBarelyAboveTwo(t *testing.T) {
	// ε = α/2 − 1 = 0.025: the analysis's slack nearly vanishes. The
	// algorithm slows but must still finish.
	d, err := geom.UniformDisk(2, 128)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 2.05, Beta: 1.5, Noise: 1}
	ch := stressChannel(t, d, params, sinr.DefaultSingleHopMargin)
	mustSolve(t, ch, 5, 20000, "alpha=2.05")
}

func TestStressBetaBelowOne(t *testing.T) {
	// β < 1 allows several transmitters to clear the threshold at one
	// listener (the channel delivers the strongest). The knock-out cascade
	// only accelerates.
	d, err := geom.UniformDisk(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 0.5, Noise: 1}
	ch := stressChannel(t, d, params, sinr.DefaultSingleHopMargin)
	mustSolve(t, ch, 7, 4000, "beta=0.5")
}

func TestStressZeroNoise(t *testing.T) {
	// N = 0: reception is limited purely by interference; any solo
	// transmission reaches everyone at any power.
	d, err := geom.UniformDisk(4, 128)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 0, Power: 1}
	ch := stressChannel(t, d, params, sinr.DefaultSingleHopMargin)
	mustSolve(t, ch, 9, 4000, "noise=0")
}

func TestStressPowerMarginNearThreshold(t *testing.T) {
	// The model demands margin c ≥ 4; probe c = 1.5, where solo broadcasts
	// still clear β but barely. Knock-outs get rarer, the run longer.
	d, err := geom.UniformDisk(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	ch := stressChannel(t, d, params, 1.5)
	mustSolve(t, ch, 11, 20000, "margin=1.5")
}

func TestStressCoLocatedPairs(t *testing.T) {
	// Every node in link class d_0: maximum same-class contention.
	d, err := geom.CoLocatedPairs(200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ch := stressChannel(t, d, sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}, sinr.DefaultSingleHopMargin)
	mustSolve(t, ch, 13, 4000, "co-located pairs")
}

func TestStressMaxRChain(t *testing.T) {
	// 24 link classes: R ≈ 2^28 — the budget must absorb the log R term.
	d, err := geom.ExponentialChain(6, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := stressChannel(t, d, sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}, sinr.DefaultSingleHopMargin)
	mustSolve(t, ch, 15, 8000, "24-class chain")
}

func TestStressPerturbedGridAndClusters(t *testing.T) {
	grid, err := geom.PerturbedGrid(7, 225, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mustSolve(t, stressChannel(t, grid, sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}, 4), 17, 4000, "grid")

	clusters, err := geom.Clusters(8, 150, 10, 1.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	mustSolve(t, stressChannel(t, clusters, sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}, 4), 19, 4000, "clusters")
}

func TestStressHighAlphaExtreme(t *testing.T) {
	// α = 8: signals die almost immediately with distance; spatial reuse is
	// maximal, and the power needed for single-hop is astronomically large —
	// the arithmetic must stay finite.
	d, err := geom.UniformDisk(9, 64)
	if err != nil {
		t.Fatal(err)
	}
	ch := stressChannel(t, d, sinr.Params{Alpha: 8, Beta: 1.5, Noise: 1}, 4)
	mustSolve(t, ch, 21, 4000, "alpha=8")
}

func TestStressManyNodesSingleRoundBehaviour(t *testing.T) {
	// n = 2000 on one channel: a single round must knock out a large
	// fraction (the cascade's first step at scale).
	d, err := geom.UniformDisk(10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ch := stressChannel(t, d, sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}, 4)
	an := &Analyzer{Points: d.Points, Alpha: 3, R: d.R}
	res, err := sim.Run(ch, FixedProbability{}, 23, sim.Config{MaxRounds: 2, Tracer: an})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	first := an.Snapshots[0]
	if first.Knockouts < 200 {
		t.Errorf("first round knocked out only %d of 2000 nodes", first.Knockouts)
	}
}
