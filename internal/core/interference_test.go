package core

import (
	"math"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sinr"
	"fadingcr/internal/xrand"
)

func TestEpsilon(t *testing.T) {
	if got := Epsilon(3); got != 0.5 {
		t.Errorf("Epsilon(3) = %v, want 0.5", got)
	}
	if got := Epsilon(2); got != 0 {
		t.Errorf("Epsilon(2) = %v, want 0", got)
	}
	if got := Epsilon(4); got != 1 {
		t.Errorf("Epsilon(4) = %v, want 1", got)
	}
}

func TestCMax(t *testing.T) {
	// α = 4: ε = 1, c_max = 96/(1 − 1/2) = 192.
	if got := CMax(4); math.Abs(got-192) > 1e-9 {
		t.Errorf("CMax(4) = %v, want 192", got)
	}
	// c_max grows as α → 2 (the gap ε closes).
	if CMax(2.2) <= CMax(3) {
		t.Error("CMax should grow as alpha approaches 2")
	}
}

func TestSeparationConstantInvertsLemma4(t *testing.T) {
	// The closed form satisfies 96·(1/s^ε)/(1−2^{−ε}) = c by construction.
	for _, alpha := range []float64{2.5, 3, 4} {
		for _, c := range []float64{0.5, 1, 4} {
			s := SeparationConstant(alpha, c)
			eps := Epsilon(alpha)
			got := 96 * math.Pow(s, -eps) / (1 - math.Pow(2, -eps))
			if math.Abs(got-c) > 1e-9*c {
				t.Errorf("alpha=%v c=%v: closed form gives %v", alpha, c, got)
			}
			if s <= 0 {
				t.Errorf("alpha=%v c=%v: s = %v", alpha, c, s)
			}
		}
	}
}

// activeAll returns an all-true mask.
func activeAll(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

// TestClaim1GoodNodeInterferenceBound validates Claim 1 numerically: at a
// good node u of class d_i, the total interference when every other active
// node transmits at once is at most (c_max + 1)·P/2^{iα} (the +1 absorbs the
// partner, which may sit exactly on the 2^i boundary outside all annuli).
func TestClaim1GoodNodeInterferenceBound(t *testing.T) {
	const alpha, power = 3.0, 1.0
	for seed := uint64(1); seed <= 5; seed++ {
		d, err := geom.UniformDisk(seed, 300)
		if err != nil {
			t.Fatal(err)
		}
		active := activeAll(d.N())
		lc := geom.ComputeLinkClasses(d.Points, active)
		bound := CMax(alpha) + 1
		for u := range d.Points {
			i := lc.Class[u]
			if i < 0 {
				continue
			}
			if !geom.IsGood(d.Points, active, u, i, alpha, geom.MaxAnnulusIndex(d.R, i)) {
				continue
			}
			total := 0.0
			for w := range d.Points {
				if w == u {
					continue
				}
				total += power * math.Pow(d.Points[u].Dist2(d.Points[w]), -alpha/2)
			}
			limit := bound * power * math.Pow(2, -float64(i)*alpha)
			if total > limit {
				t.Errorf("seed %d node %d (class %d): interference %v > Claim 1 bound %v",
					seed, u, i, total, limit)
			}
		}
	}
}

// TestLemma4SeparatedSubsetInterference validates Lemma 4: with separation
// constant s chosen for target c, the interference at u ∈ S_i from
// S_i ∪ T_i \ {partner} — even if all of them transmit — is ≤ c·P/2^{iα}.
func TestLemma4SeparatedSubsetInterference(t *testing.T) {
	const alpha, power, c = 3.0, 1.0, 1.0
	s := SeparationConstant(alpha, c)
	for seed := uint64(1); seed <= 5; seed++ {
		d, err := geom.UniformDisk(seed, 300)
		if err != nil {
			t.Fatal(err)
		}
		active := activeAll(d.N())
		lc := geom.ComputeLinkClasses(d.Points, active)
		for i := 0; i <= lc.MaxClass(); i++ {
			si := SeparatedGoodSubset(d.Points, active, lc, i, alpha, d.R, s)
			if len(si) == 0 {
				continue
			}
			ti := Partners(lc, si)
			mask := MembershipMask(d.N(), si, ti)
			for j, u := range si {
				// Interference from S_i ∪ T_i \ {u, partner} only.
				inside := 0.0
				for w := range d.Points {
					if w == u || w == ti[j] || !mask[w] {
						continue
					}
					inside += power * math.Pow(d.Points[u].Dist2(d.Points[w]), -alpha/2)
				}
				limit := c * power * math.Pow(2, -float64(i)*alpha)
				// The lemma's constant is loose only in our favour; allow a
				// tiny float epsilon.
				if inside > limit*(1+1e-9) {
					t.Errorf("seed %d class %d node %d: inside interference %v > %v",
						seed, i, u, inside, limit)
				}
			}
		}
	}
}

func TestSeparatedGoodSubsetIsSeparatedAndGood(t *testing.T) {
	d, err := geom.UniformDisk(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	active := activeAll(d.N())
	lc := geom.ComputeLinkClasses(d.Points, active)
	const alpha, s = 3.0, 4.0
	for i := 0; i <= lc.MaxClass(); i++ {
		si := SeparatedGoodSubset(d.Points, active, lc, i, alpha, d.R, s)
		minSep := (s + 1) * math.Pow(2, float64(i))
		if !geom.PairwiseSeparated(d.Points, si, minSep) {
			t.Errorf("class %d: S_i not (s+1)2^i-separated", i)
		}
		for _, u := range si {
			if lc.Class[u] != i {
				t.Errorf("class %d: S_i contains node of class %d", i, lc.Class[u])
			}
			if !geom.IsGood(d.Points, active, u, i, alpha, geom.MaxAnnulusIndex(d.R, i)) {
				t.Errorf("class %d: S_i contains non-good node %d", i, u)
			}
		}
	}
}

func TestPartnersAreNearestActive(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 0}, {X: 12, Y: 0}}
	active := activeAll(4)
	lc := geom.ComputeLinkClasses(pts, active)
	ti := Partners(lc, []int{0, 2})
	if ti[0] != 1 || ti[1] != 3 {
		t.Errorf("Partners = %v, want [1 3]", ti)
	}
}

func TestBreakdownAtCategories(t *testing.T) {
	// u at origin; partner at distance 1; one inside node at 2; one outside
	// node at 4. α = 2, P = 16 for easy numbers.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}
	active := activeAll(4)
	inSiTi := []bool{true, true, true, false}
	b := BreakdownAt(pts, active, 0, 1, inSiTi, 16, 2)
	if b.Partner != 16 {
		t.Errorf("Partner = %v, want 16", b.Partner)
	}
	if b.Inside != 4 {
		t.Errorf("Inside = %v, want 4", b.Inside)
	}
	if b.Outside != 1 {
		t.Errorf("Outside = %v, want 1", b.Outside)
	}
	if b.Total() != 5 {
		t.Errorf("Total = %v, want 5", b.Total())
	}
	// Inactive nodes contribute nothing.
	active[2] = false
	b = BreakdownAt(pts, active, 0, 1, inSiTi, 16, 2)
	if b.Inside != 0 {
		t.Errorf("Inside with inactive = %v, want 0", b.Inside)
	}
}

// TestCorollary7KnockoutFraction validates the knock-out machinery
// empirically: on the adversarial all-one-class deployment, a single round
// of p-broadcast knocks out a constant fraction of the nodes on average.
func TestCorollary7KnockoutFraction(t *testing.T) {
	d, err := geom.CoLocatedPairs(100, 500)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
	ch, err := sinr.New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 60
	totalFraction := 0.0
	rng := xrand.New(99)
	tx := make([]bool, d.N())
	recv := make([]int, d.N())
	for trial := 0; trial < trials; trial++ {
		for i := range tx {
			tx[i] = rng.Float64() < DefaultP
		}
		ch.Deliver(tx, recv)
		knocked := 0
		for v := range recv {
			if recv[v] >= 0 {
				knocked++
			}
		}
		totalFraction += float64(knocked) / float64(d.N())
	}
	mean := totalFraction / trials
	if mean < 0.05 {
		t.Errorf("mean knock-out fraction %v below a constant; Corollary 7 shape violated", mean)
	}
}
