package core

import (
	"strings"
	"testing"

	"fadingcr/internal/baselines"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
)

func TestWithKnockoutName(t *testing.T) {
	w := WithKnockout{Inner: baselines.ProbabilitySweep{}}
	if got := w.Name(); !strings.Contains(got, "knockout(") || !strings.Contains(got, "sweep") {
		t.Errorf("Name = %q", got)
	}
}

func TestWithKnockoutBuildPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil inner accepted")
		}
	}()
	WithKnockout{}.Build(2, 1)
}

func TestWithKnockoutSilencesAfterReception(t *testing.T) {
	nodes := WithKnockout{Inner: alwaysTx{}}.Build(1, 1)
	u := nodes[0].(*knockoutNode)
	if u.Act(1) != sim.Transmit {
		t.Fatal("fresh node did not run the inner protocol")
	}
	u.Hear(1, -1, sim.Unknown)
	if u.Act(2) != sim.Transmit || !u.Active() {
		t.Fatal("empty reception silenced the node")
	}
	u.Hear(2, 5, sim.Unknown)
	if u.Active() {
		t.Fatal("reception did not deactivate the node")
	}
	for r := 3; r < 50; r++ {
		if u.Act(r) != sim.Listen {
			t.Fatal("knocked-out node transmitted")
		}
	}
}

func TestWithKnockoutEquivalentToFixedProbability(t *testing.T) {
	// knockout(constant-p forever) is definitionally the paper's algorithm;
	// both must solve comparably on the same deployment.
	d, err := geom.UniformDisk(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sinrChannel(t, d), WithKnockout{Inner: constantP{}}, 3, sim.Config{MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("knockout(constant-p) unsolved: %+v", res)
	}
}

// constantP broadcasts with DefaultP forever (no knock-out of its own).
type constantP struct{}

func (constantP) Name() string { return "constant-p" }
func (constantP) Build(n int, seed uint64) []sim.Node {
	inner := FixedProbability{}.Build(n, seed)
	// Strip the built-in knock-out by resurrecting nodes each round: wrap
	// with a shim that ignores Hear.
	out := make([]sim.Node, n)
	for i := range out {
		out[i] = deafShim{inner[i]}
	}
	return out
}

// deafShim forwards actions but drops receptions, turning the paper's
// algorithm back into memoryless constant-p broadcasting.
type deafShim struct{ inner sim.Node }

func (s deafShim) Act(round int) sim.Action    { return s.inner.Act(round) }
func (s deafShim) Hear(int, int, sim.Feedback) {}

func TestWithKnockoutAcceleratesSweepOnSINR(t *testing.T) {
	// The headline of E17 in miniature: on the fading channel, the sweep
	// with knock-out beats the plain sweep at n = 256.
	if testing.Short() {
		t.Skip("slow")
	}
	median := func(b sim.Builder) float64 {
		var rounds []int
		for trial := 0; trial < 11; trial++ {
			d, err := geom.UniformDisk(uint64(300+trial), 256)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sinrChannel(t, d), b, uint64(trial), sim.Config{MaxRounds: 100000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("%s unsolved", b.Name())
			}
			rounds = append(rounds, res.Rounds)
		}
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		return float64(rounds[len(rounds)/2])
	}
	plain := median(baselines.ProbabilitySweep{})
	knocked := median(WithKnockout{Inner: baselines.ProbabilitySweep{}})
	if knocked >= plain {
		t.Errorf("knockout(sweep) median %v not below plain sweep %v", knocked, plain)
	}
}
