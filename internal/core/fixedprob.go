// Package core implements the paper's primary contribution: the
// fixed-probability contention resolution algorithm of Section 1, together
// with the analysis instrumentation of Sections 3.1–3.3 (link classes, good
// nodes, well-separated subsets, and class-bound vectors) used to validate
// the proof structure empirically.
//
// The algorithm could hardly be simpler — quoting the paper:
//
//	Each participating node starts in an active state; at the beginning of
//	each round, each node that is still active broadcasts with a constant
//	probability p; if an active node receives a message, it becomes
//	inactive.
//
// On a fading (SINR) channel this resolves contention in O(log n + log R)
// rounds with high probability (Theorem 1), beating the Ω(log² n) bound of
// the classical radio network model.
package core

import (
	"fmt"
	"math/rand/v2"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// DefaultP is the broadcast probability used when a FixedProbability builder
// does not specify one. The analysis only requires *some* constant
// probability (fixed in Lemma 3 as c/(4·c_max)); 0.2 sits in the empirically
// flat region of experiment E9.
const DefaultP = 0.2

// FixedProbability builds the paper's algorithm. The zero value is valid and
// uses DefaultP.
type FixedProbability struct {
	// P is the per-round broadcast probability of an active node; must be
	// in (0, 1). Zero selects DefaultP.
	P float64
}

var _ sim.Builder = FixedProbability{}

// Name implements sim.Builder.
func (f FixedProbability) Name() string {
	return fmt.Sprintf("fixed-probability(p=%.3g)", f.p())
}

func (f FixedProbability) p() float64 {
	if f.P == 0 {
		return DefaultP
	}
	return f.P
}

// Build implements sim.Builder. It panics if P is outside (0, 1); builders
// are constructed by experiment code with compile-time constants, so this is
// a programming error rather than a runtime condition.
func (f FixedProbability) Build(n int, seed uint64) []sim.Node {
	p := f.p()
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("core: broadcast probability %v outside (0, 1)", p))
	}
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &fpNode{
			rng:    xrand.New(xrand.Split(seed, uint64(i))),
			p:      p,
			active: true,
		}
	}
	return nodes
}

// fpNode is the per-node state machine: a single "active" bit plus a private
// random stream.
type fpNode struct {
	rng    *rand.Rand
	p      float64
	active bool
}

// Act implements sim.Node: an active node transmits with probability p.
func (u *fpNode) Act(round int) sim.Action {
	if u.active && xrand.Bernoulli(u.rng, u.p) {
		return sim.Transmit
	}
	return sim.Listen
}

// Hear implements sim.Node: receiving any message knocks the node out.
func (u *fpNode) Hear(round int, from int, detect sim.Feedback) {
	if from >= 0 {
		u.active = false
	}
}

// Active reports whether the node is still contending. It implements the
// Activeness interface used by tracers.
func (u *fpNode) Active() bool { return u.active }

// Activeness is implemented by nodes that expose whether they are still
// contending; the analysis tracer uses it to reconstruct the active set.
type Activeness interface {
	Active() bool
}
