package core

import (
	"fmt"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// Interleaved runs two protocols in alternation: protocol A owns the odd
// rounds, protocol B the even rounds, each seeing its own contiguous round
// numbering. This realises the paper's remark in Section 3.1: when R is
// unknown (so the O(log n + log R) bound of the fixed-probability algorithm
// cannot be compared against O(log² n) strategies a priori), "our algorithm
// can be interleaved with an existing algorithm" — the combination solves
// contention resolution in O(min(T_A, T_B)) · 2 rounds, inheriting the
// better bound of the two up to a factor 2.
//
// Note the alternation is sound for contention resolution because a solo
// broadcast in *any* round solves the problem, regardless of which
// sub-protocol produced it, and each sub-protocol's view (its own rounds
// only) remains a faithful execution of that protocol.
type Interleaved struct {
	// A runs in rounds 1, 3, 5, …; B in rounds 2, 4, 6, ….
	A, B sim.Builder
}

var _ sim.Builder = Interleaved{}

// Name implements sim.Builder.
func (il Interleaved) Name() string {
	return fmt.Sprintf("interleaved(%s ⊕ %s)", il.A.Name(), il.B.Name())
}

// Build implements sim.Builder. It panics if either sub-builder is nil or
// returns a wrong node count (static misconfigurations).
func (il Interleaved) Build(n int, seed uint64) []sim.Node {
	if il.A == nil || il.B == nil {
		panic("core: Interleaved requires both sub-builders")
	}
	aNodes := il.A.Build(n, xrand.Split(seed, 0))
	bNodes := il.B.Build(n, xrand.Split(seed, 1))
	if len(aNodes) != n || len(bNodes) != n {
		panic(fmt.Sprintf("core: Interleaved sub-builders returned %d/%d nodes for n=%d",
			len(aNodes), len(bNodes), n))
	}
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &interleavedNode{a: aNodes[i], b: bNodes[i]}
	}
	return nodes
}

// interleavedNode multiplexes one node of each sub-protocol. Odd engine
// rounds r map to A's round (r+1)/2; even rounds to B's round r/2.
type interleavedNode struct {
	a, b sim.Node
}

func (u *interleavedNode) Act(round int) sim.Action {
	if round%2 == 1 {
		return u.a.Act((round + 1) / 2)
	}
	return u.b.Act(round / 2)
}

func (u *interleavedNode) Hear(round int, from int, detect sim.Feedback) {
	if round%2 == 1 {
		u.a.Hear((round+1)/2, from, detect)
		return
	}
	u.b.Hear(round/2, from, detect)
}

// Active reports whether either sub-node is still contending, when both
// expose activity; a node with no exposed activity counts as active (its
// protocol never stops contending).
func (u *interleavedNode) Active() bool {
	return subActive(u.a) || subActive(u.b)
}

func subActive(n sim.Node) bool {
	if a, ok := n.(Activeness); ok {
		return a.Active()
	}
	return true
}
