package core

import (
	"strings"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
)

func TestCrashFaultsName(t *testing.T) {
	c := CrashFaults{Inner: FixedProbability{}, Rate: 0.01}
	if got := c.Name(); !strings.Contains(got, "crash(") || !strings.Contains(got, "0.01") {
		t.Errorf("Name = %q", got)
	}
}

func TestCrashFaultsBuildPanics(t *testing.T) {
	for _, c := range []CrashFaults{
		{Inner: nil, Rate: 0.1},
		{Inner: FixedProbability{}, Rate: -0.1},
		{Inner: FixedProbability{}, Rate: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%+v did not panic", c)
				}
			}()
			c.Build(2, 1)
		}()
	}
}

func TestCrashFaultsZeroRateTransparent(t *testing.T) {
	// Rate 0: behaviour equals the inner protocol; the run must solve.
	d, err := geom.UniformDisk(3, 48)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sinrChannel(t, d), CrashFaults{Inner: FixedProbability{}, Rate: 0}, 5,
		sim.Config{MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("rate-0 crash wrapper unsolved: %+v", res)
	}
}

func TestCrashFaultsNodeStopsForever(t *testing.T) {
	nodes := CrashFaults{Inner: alwaysTx{}, Rate: 0.5}.Build(1, 9)
	u := nodes[0].(*crashNode)
	sawCrash := false
	for r := 1; r <= 200; r++ {
		a := u.Act(r)
		if u.Crashed() {
			sawCrash = true
			if a != sim.Listen {
				t.Fatal("crashed node transmitted")
			}
		}
		u.Hear(r, 0, sim.Unknown)
	}
	if !sawCrash {
		t.Fatal("node never crashed at rate 0.5 over 200 rounds")
	}
	if u.Active() {
		t.Error("crashed node reports active")
	}
	// Once crashed, forever silent.
	for r := 201; r <= 260; r++ {
		if u.Act(r) != sim.Listen {
			t.Fatal("crashed node transmitted after the fact")
		}
	}
}

func TestCrashFaultsAlgorithmSurvivesErosion(t *testing.T) {
	// 1% per-round crash rate at n=128: the algorithm must still solve in
	// the great majority of trials (the field erodes, contention drops, a
	// survivor transmits alone).
	solved := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		d, err := geom.UniformDisk(uint64(40+trial), 128)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sinrChannel(t, d),
			CrashFaults{Inner: FixedProbability{}, Rate: 0.01}, uint64(trial),
			sim.Config{MaxRounds: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Solved {
			solved++
		}
	}
	if solved < trials*3/4 {
		t.Errorf("solved only %d/%d trials under 1%% crash faults", solved, trials)
	}
}

func TestCrashFaultsIndependentAcrossNodes(t *testing.T) {
	// With 200 nodes at rate 0.3, after one round roughly 30% crash — not
	// all, not none (the per-node streams are independent).
	nodes := CrashFaults{Inner: FixedProbability{}, Rate: 0.3}.Build(200, 4)
	crashed := 0
	for _, n := range nodes {
		n.Act(1)
		if n.(*crashNode).Crashed() {
			crashed++
		}
	}
	if crashed < 30 || crashed > 90 {
		t.Errorf("%d/200 crashed in round 1 at rate 0.3", crashed)
	}
}
