package core

import (
	"fmt"
	"math"
)

// ClassBounds realises the class-bound vectors q_0, q_1, … of Section 3.3:
// the "fitting strategy" that describes how link class sizes would decay in
// an ideal execution. Position i of vector q_t is
//
//	q_t(i) = n                      for t ≤ s_i,
//	q_t(i) = q_{t−1}(i)·γ_slow      for t > s_i,
//
// with start step s_i = i·l and l = ⌈log_{γ_slow}(ρ)⌉, so that class d_i
// begins its geometric decay l steps after class d_{i−1} and consecutive
// classes stay separated by (roughly) the ratio ρ.
type ClassBounds struct {
	// GammaSlow is the per-step survival fraction γ_slow ∈ (0, 1); the
	// paper sets γ_slow = γ + ρ/(1−ρ) for the knock-out fraction γ of
	// Corollary 7.
	GammaSlow float64
	// Rho is the target ratio ρ ∈ (0, 1) between consecutive class bounds.
	Rho float64
}

// DefaultClassBounds returns the parameterisation used by experiment E4.
// The constants in the paper's analysis are extremely conservative (they are
// chosen for proof convenience, e.g. the 96 in the good-node definition);
// for an *envelope* that real executions should respect we use a mild decay.
func DefaultClassBounds() ClassBounds {
	return ClassBounds{GammaSlow: 0.8, Rho: 0.5}
}

// Validate reports whether the parameters define a proper decay.
func (cb ClassBounds) Validate() error {
	if !(cb.GammaSlow > 0 && cb.GammaSlow < 1) {
		return fmt.Errorf("core: GammaSlow %v outside (0, 1)", cb.GammaSlow)
	}
	if !(cb.Rho > 0 && cb.Rho < 1) {
		return fmt.Errorf("core: Rho %v outside (0, 1)", cb.Rho)
	}
	return nil
}

// L returns the lag l = ⌈log_{γ_slow}(ρ)⌉ between the start steps of
// consecutive classes. Since γ_slow < 1 and ρ < 1 the logarithm is positive.
func (cb ClassBounds) L() int {
	return int(math.Ceil(math.Log(cb.Rho) / math.Log(cb.GammaSlow)))
}

// StartStep returns s_i = i·l, the step at which class d_i begins to decay.
func (cb ClassBounds) StartStep(i int) int { return i * cb.L() }

// Vector returns q_t for a system of n nodes and m link classes: a length-m
// slice with q_t(i) as defined above. Values below 1 are reported as 0 — a
// bound below one node means the class must be empty.
func (cb ClassBounds) Vector(n, m, t int) []float64 {
	q := make([]float64, m)
	l := cb.L()
	for i := range q {
		steps := t - i*l
		if steps <= 0 {
			q[i] = float64(n)
			continue
		}
		v := float64(n) * math.Pow(cb.GammaSlow, float64(steps))
		if v < 1 {
			v = 0
		}
		q[i] = v
	}
	return q
}

// StepsToZero returns the smallest step T with q_T ≡ 0, which Claim 8 shows
// is Θ(log n + log R) (here m−1 ≈ log R classes).
func (cb ClassBounds) StepsToZero(n, m int) int {
	if n <= 0 || m <= 0 {
		return 0
	}
	// Class m−1 starts at (m−1)·l and needs log_{1/γ_slow}(n) decay steps
	// to fall below 1.
	decay := int(math.Ceil(math.Log(float64(n))/math.Log(1/cb.GammaSlow))) + 1
	return (m-1)*cb.L() + decay
}

// Auxiliary returns the paper's auxiliary bound q*_{t+1}(i) =
// q_t(i)·γ_slow − q_t(i)·ρ/(1−ρ): the more aggressive threshold whose
// crossing implies the class stays below q_{t+1}(i) permanently even under
// migrations from smaller classes (Section 3.3). Negative values clamp to 0.
func (cb ClassBounds) Auxiliary(qt float64) float64 {
	v := qt*cb.GammaSlow - qt*cb.Rho/(1-cb.Rho)
	if v < 0 {
		return 0
	}
	return v
}
