package core

import (
	"math"

	"fadingcr/internal/geom"
)

// This file makes the interference analysis of Section 3.2 executable: the
// constants of Claims 1–2 and Lemma 4, the well-separated good subset S_i
// with its partner set T_i, and direct interference accounting at the nodes
// of S_i. The package tests validate the paper's bounds numerically on
// concrete deployments.

// Epsilon returns ε = α/2 − 1, the paper's slack between the quadratic
// growth of interferer counts and the super-quadratic decay of signals
// (positive exactly when α > 2).
func Epsilon(alpha float64) float64 { return alpha/2 - 1 }

// CMax returns the constant c_max of Claim 1: the proof bounds the
// interference at a good node of class d_i, when every active node
// transmits, by c_max·P/2^{iα} with c_max = 96/(1 − 2^{−ε}).
func CMax(alpha float64) float64 {
	eps := Epsilon(alpha)
	return 96 / (1 - math.Pow(2, -eps))
}

// SeparationConstant returns the s of Lemma 4 for a target interference
// constant c > 0: with pairwise separation (s+1)·2^i inside S_i, the
// interference at a node of S_i from S_i ∪ T_i \ {partner} is at most
// c·P/2^{iα} when s = (96/(c·(1−2^{−ε})))^{1/ε} (the lemma's closed form).
func SeparationConstant(alpha, c float64) float64 {
	eps := Epsilon(alpha)
	return math.Pow(96/(c*(1-math.Pow(2, -eps))), 1/eps)
}

// SeparatedGoodSubset computes S_i for link class i: the greedy maximal
// subset of the *good* active nodes of class i with pairwise distance
// greater than (s+1)·2^i. By Lemma 2 it contains a constant fraction of the
// good nodes.
func SeparatedGoodSubset(pts []geom.Point, active []bool, lc *geom.LinkClasses, i int, alpha, r, s float64) []int {
	var good []int
	for u := range pts {
		if lc.Class[u] != i {
			continue
		}
		if geom.IsGood(pts, active, u, i, alpha, geom.MaxAnnulusIndex(r, i)) {
			good = append(good, u)
		}
	}
	minSep := (s + 1) * math.Pow(2, float64(i))
	return geom.GreedySeparatedSubset(pts, good, minSep)
}

// Partners returns T_i: for each node of S_i, its partner — the closest
// active node (already computed by the link class pass).
func Partners(lc *geom.LinkClasses, si []int) []int {
	out := make([]int, len(si))
	for j, u := range si {
		out[j] = lc.Nearest[u]
	}
	return out
}

// InterferenceBreakdown reports the interference arriving at node u if every
// node of the given transmitter set broadcast simultaneously at power p over
// the deployment, split into the Section 3.2 categories.
type InterferenceBreakdown struct {
	// Outside is the interference from transmitters not in S_i ∪ T_i.
	Outside float64
	// Inside is the interference from S_i ∪ T_i excluding u and its partner.
	Inside float64
	// Partner is the signal strength from u's partner.
	Partner float64
}

// Total returns the interference u faces when decoding its partner: outside
// plus inside (the partner's own signal is the payload, not interference).
func (b InterferenceBreakdown) Total() float64 { return b.Outside + b.Inside }

// BreakdownAt computes the interference categories at node u ∈ S_i assuming
// every active node except u transmits at power p with path-loss alpha.
// partner is u's partner (may be −1 for none); inSiTi reports membership in
// S_i ∪ T_i.
func BreakdownAt(pts []geom.Point, active []bool, u, partner int, inSiTi []bool, power, alpha float64) InterferenceBreakdown {
	var b InterferenceBreakdown
	for w := range pts {
		if w == u || !active[w] {
			continue
		}
		signal := power * math.Pow(pts[u].Dist2(pts[w]), -alpha/2)
		switch {
		case w == partner:
			b.Partner = signal
		case inSiTi[w]:
			b.Inside += signal
		default:
			b.Outside += signal
		}
	}
	return b
}

// MembershipMask returns a boolean mask over nodes marking S_i ∪ T_i.
func MembershipMask(n int, si, ti []int) []bool {
	mask := make([]bool, n)
	for _, u := range si {
		mask[u] = true
	}
	for _, v := range ti {
		if v >= 0 {
			mask[v] = true
		}
	}
	return mask
}
