package core

import (
	"strings"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/radio"
	"fadingcr/internal/sim"
)

// stubBuilder builds nodes following a fixed per-round action script and
// recording what they hear (for round-mapping assertions).
type stubBuilder struct {
	name  string
	nodes []*stubNode
}

type stubNode struct {
	txRounds map[int]bool
	heard    []int // sub-protocol round numbers passed to Hear
}

func (s *stubNode) Act(round int) sim.Action {
	if s.txRounds[round] {
		return sim.Transmit
	}
	return sim.Listen
}

func (s *stubNode) Hear(round int, from int, detect sim.Feedback) {
	s.heard = append(s.heard, round)
}

func (b *stubBuilder) Name() string { return b.name }

func (b *stubBuilder) Build(n int, seed uint64) []sim.Node {
	b.nodes = make([]*stubNode, n)
	out := make([]sim.Node, n)
	for i := range out {
		b.nodes[i] = &stubNode{txRounds: map[int]bool{}}
		out[i] = b.nodes[i]
	}
	return out
}

func TestInterleavedName(t *testing.T) {
	il := Interleaved{A: FixedProbability{}, B: FixedProbability{P: 0.5}}
	if got := il.Name(); !strings.Contains(got, "⊕") {
		t.Errorf("Name = %q", got)
	}
}

func TestInterleavedRoundMapping(t *testing.T) {
	a := &stubBuilder{name: "a"}
	b := &stubBuilder{name: "b"}
	il := Interleaved{A: a, B: b}
	nodes := il.Build(1, 7)
	// A transmits in its rounds 1 and 3 (engine rounds 1 and 5); B in its
	// round 2 (engine round 4).
	a.nodes[0].txRounds[1] = true
	a.nodes[0].txRounds[3] = true
	b.nodes[0].txRounds[2] = true
	wantTx := map[int]bool{1: true, 4: true, 5: true}
	for round := 1; round <= 6; round++ {
		got := nodes[0].Act(round) == sim.Transmit
		if got != wantTx[round] {
			t.Errorf("round %d: transmit = %v, want %v", round, got, wantTx[round])
		}
		nodes[0].Hear(round, -1, sim.Unknown)
	}
	// Hear must have been forwarded with sub-protocol numbering 1..3 each.
	want := []int{1, 2, 3}
	for i, w := range want {
		if a.nodes[0].heard[i] != w {
			t.Errorf("A heard %v, want %v", a.nodes[0].heard, want)
			break
		}
		if b.nodes[0].heard[i] != w {
			t.Errorf("B heard %v, want %v", b.nodes[0].heard, want)
			break
		}
	}
}

func TestInterleavedBuildPanics(t *testing.T) {
	for _, il := range []Interleaved{
		{A: nil, B: FixedProbability{}},
		{A: FixedProbability{}, B: nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%+v did not panic", il)
				}
			}()
			il.Build(2, 1)
		}()
	}
}

func TestInterleavedSolvesOnSINR(t *testing.T) {
	// Fixed-probability interleaved with itself at another p: still solves,
	// at most ~2× the rounds.
	d, err := geom.UniformDisk(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	il := Interleaved{A: FixedProbability{}, B: FixedProbability{P: 0.1}}
	res, err := sim.Run(sinrChannel(t, d), il, 9, sim.Config{MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("interleaved unsolved: %+v", res)
	}
}

func TestInterleavedInheritsBetterBound(t *testing.T) {
	// A stalls forever (always transmits); B is the working algorithm. The
	// interleaving must still solve, within ~2× B's budget.
	ch, err := radio.New(2, false)
	if err != nil {
		t.Fatal(err)
	}
	il := Interleaved{A: alwaysTx{}, B: FixedProbability{P: 0.5}}
	res, err := sim.Run(ch, il, 3, sim.Config{MaxRounds: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("interleaved with a stalling partner unsolved: %+v", res)
	}
	// The winning round must be even: only B (even rounds) can produce a
	// solo broadcast when A always transmits both nodes.
	if res.Rounds%2 != 0 {
		t.Errorf("solved in odd round %d, but A transmits both nodes every odd round", res.Rounds)
	}
}

type alwaysTx struct{}

func (alwaysTx) Name() string { return "always-tx" }
func (alwaysTx) Build(n int, seed uint64) []sim.Node {
	out := make([]sim.Node, n)
	for i := range out {
		out[i] = txAlwaysNode{}
	}
	return out
}

type txAlwaysNode struct{}

func (txAlwaysNode) Act(int) sim.Action          { return sim.Transmit }
func (txAlwaysNode) Hear(int, int, sim.Feedback) {}

func TestInterleavedActive(t *testing.T) {
	il := Interleaved{A: FixedProbability{}, B: alwaysTx{}}
	nodes := il.Build(1, 1)
	u := nodes[0].(*interleavedNode)
	if !u.Active() {
		t.Error("fresh interleaved node inactive")
	}
	// Knock out the fixed-probability half; the alwaysTx half has no
	// Activeness and counts as active.
	u.a.Hear(1, 0, sim.Unknown)
	if !u.Active() {
		t.Error("node with a non-Activeness sub-protocol should stay active")
	}
	il2 := Interleaved{A: FixedProbability{}, B: FixedProbability{}}
	u2 := il2.Build(1, 1)[0].(*interleavedNode)
	u2.a.Hear(1, 0, sim.Unknown)
	u2.b.Hear(1, 0, sim.Unknown)
	if u2.Active() {
		t.Error("node with both halves knocked out should be inactive")
	}
}
