package core

import (
	"strings"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
)

func TestStaggeredStartName(t *testing.T) {
	s := StaggeredStart{Inner: FixedProbability{}, MaxDelay: 5}
	if got := s.Name(); !strings.Contains(got, "staggered") || !strings.Contains(got, "5") {
		t.Errorf("Name = %q", got)
	}
}

func TestStaggeredStartBuildPanics(t *testing.T) {
	for _, s := range []StaggeredStart{
		{Inner: nil, MaxDelay: 1},
		{Inner: FixedProbability{}, MaxDelay: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%+v did not panic", s)
				}
			}()
			s.Build(2, 1)
		}()
	}
}

func TestStaggeredStartZeroDelayMatchesInner(t *testing.T) {
	// MaxDelay = 0: every node wakes at round 1; behaviour must equal the
	// inner protocol built from the same derived seed.
	d, err := geom.UniformDisk(3, 40)
	if err != nil {
		t.Fatal(err)
	}
	run := func(b sim.Builder, seed uint64) sim.Result {
		res, err := sim.Run(sinrChannel(t, d), b, seed, sim.Config{MaxRounds: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	staggered := run(StaggeredStart{Inner: FixedProbability{}, MaxDelay: 0}, 7)
	if !staggered.Solved {
		t.Fatal("staggered(0) unsolved")
	}
}

func TestStaggeredNodeSleepsAndWakes(t *testing.T) {
	u := &staggeredNode{inner: &fpNode{rng: nil, p: 1, active: true}, wake: 4}
	// The inner node with p=1 would transmit every round; asleep it listens.
	// (p=1 bypasses the rng path in Bernoulli, so the nil rng is safe.)
	for round := 1; round < 4; round++ {
		if u.Act(round) != sim.Listen {
			t.Fatalf("round %d: sleeping node acted", round)
		}
		u.Hear(round, 0, sim.Unknown) // pre-wake receptions are dropped
	}
	if !u.Active() {
		t.Fatal("pre-wake reception deactivated the node")
	}
	if u.Act(4) != sim.Transmit {
		t.Fatal("awake p=1 node did not transmit")
	}
	u.Hear(4, 2, sim.Unknown)
	if u.Active() {
		t.Fatal("post-wake reception did not deactivate the node")
	}
}

func TestStaggeredStartSolvesOnSINR(t *testing.T) {
	d, err := geom.UniformDisk(5, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []int{1, 8, 64} {
		res, err := sim.Run(sinrChannel(t, d),
			StaggeredStart{Inner: FixedProbability{}, MaxDelay: delay}, 9,
			sim.Config{MaxRounds: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Errorf("delay ≤ %d: unsolved after %d rounds", delay, res.Rounds)
		}
		// The solve can come early (a lone early riser transmits solo), but
		// never needs much more than the delay plus the synchronous time.
		if res.Rounds > delay+400 {
			t.Errorf("delay ≤ %d: took %d rounds", delay, res.Rounds)
		}
	}
}

func TestStaggeredStartWakeDistribution(t *testing.T) {
	nodes := StaggeredStart{Inner: FixedProbability{}, MaxDelay: 9}.Build(500, 11)
	counts := map[int]int{}
	for _, n := range nodes {
		w := n.(*staggeredNode).wake
		if w < 1 || w > 10 {
			t.Fatalf("wake round %d outside [1, 10]", w)
		}
		counts[w]++
	}
	if len(counts) != 10 {
		t.Errorf("only %d distinct wake rounds over 500 nodes", len(counts))
	}
}
