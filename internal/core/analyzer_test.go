package core

import (
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
)

func TestAnalyzerRecordsExecution(t *testing.T) {
	d, err := geom.UniformDisk(21, 40)
	if err != nil {
		t.Fatal(err)
	}
	an := &Analyzer{Points: d.Points, Alpha: 3, R: d.R}
	ch := sinrChannel(t, d)
	res, err := sim.Run(ch, FixedProbability{}, 77, sim.Config{MaxRounds: 4000, Tracer: an})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("run unsolved")
	}
	if len(an.Snapshots) != res.Rounds {
		t.Fatalf("snapshots = %d, want %d", len(an.Snapshots), res.Rounds)
	}
	first := an.Snapshots[0]
	if first.Active != 40 {
		t.Errorf("round 1 active = %d, want 40", first.Active)
	}
	total := 0
	for _, s := range first.ClassSizes {
		total += s
	}
	if total != 40 {
		t.Errorf("round 1 class sizes sum to %d, want 40", total)
	}
	// Active counts never increase, and the drop from round r to r+1 is
	// exactly the knock-outs of round r.
	for r := 1; r < len(an.Snapshots); r++ {
		prev, cur := an.Snapshots[r-1], an.Snapshots[r]
		if cur.Active > prev.Active {
			t.Fatalf("active grew: round %d %d → %d", r, prev.Active, cur.Active)
		}
		if got := prev.Active - cur.Active; got != prev.Knockouts {
			t.Errorf("round %d: active dropped by %d but knockouts = %d", r, got, prev.Knockouts)
		}
	}
	// The solving round has exactly one transmitter.
	last := an.Snapshots[len(an.Snapshots)-1]
	if last.Transmitters != 1 {
		t.Errorf("solving round transmitters = %d, want 1", last.Transmitters)
	}
}

func TestAnalyzerGoodness(t *testing.T) {
	d, err := geom.UniformDisk(5, 30)
	if err != nil {
		t.Fatal(err)
	}
	an := &Analyzer{Points: d.Points, Alpha: 3, R: d.R, Goodness: true}
	ch := sinrChannel(t, d)
	if _, err := sim.Run(ch, FixedProbability{}, 3, sim.Config{MaxRounds: 2000, Tracer: an}); err != nil {
		t.Fatal(err)
	}
	for r, s := range an.Snapshots {
		if s.GoodPerClass == nil {
			t.Fatalf("round %d: goodness census missing", r+1)
		}
		if len(s.GoodPerClass) != len(s.ClassSizes) {
			t.Fatalf("round %d: %d good entries for %d classes", r+1, len(s.GoodPerClass), len(s.ClassSizes))
		}
		for i := range s.GoodPerClass {
			if s.GoodPerClass[i] > s.ClassSizes[i] {
				t.Errorf("round %d class %d: %d good of %d nodes", r+1, i, s.GoodPerClass[i], s.ClassSizes[i])
			}
		}
	}
	// On a sparse uniform deployment the overwhelming majority of nodes
	// should be good in round 1 (annulus capacities are generous: 96·2^{tα/2}).
	s := an.Snapshots[0]
	good, all := 0, 0
	for i := range s.ClassSizes {
		good += s.GoodPerClass[i]
		all += s.ClassSizes[i]
	}
	if good*2 < all {
		t.Errorf("only %d/%d nodes good in round 1 of a uniform deployment", good, all)
	}
}

func TestAnalyzerWithoutActivenessNodes(t *testing.T) {
	// Nodes that do not implement Activeness are treated as inactive; the
	// analyzer must not panic and must record zero actives.
	an := &Analyzer{Points: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, Alpha: 3, R: 1}
	nodes := []sim.Node{plainNode{}, plainNode{}}
	an.OnRound(1, nodes, []bool{false, false}, []int{-1, -1})
	if an.Snapshots[0].Active != 0 {
		t.Errorf("active = %d, want 0", an.Snapshots[0].Active)
	}
}

type plainNode struct{}

func (plainNode) Act(int) sim.Action          { return sim.Listen }
func (plainNode) Hear(int, int, sim.Feedback) {}

func TestMaxClassSizesSuffixMaxima(t *testing.T) {
	an := &Analyzer{}
	an.Snapshots = []Snapshot{
		{Round: 1, ClassSizes: []int{4, 2}},
		{Round: 2, ClassSizes: []int{1, 3, 1}},
		{Round: 3, ClassSizes: []int{0, 1}},
	}
	got := an.MaxClassSizes()
	want := [][]int{
		{4, 3, 1},
		{1, 3, 1},
		{0, 1, 0},
	}
	for r := range want {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("MaxClassSizes = %v, want %v", got, want)
			}
		}
	}
	if (&Analyzer{}).MaxClassSizes() != nil {
		t.Error("empty analyzer should return nil")
	}
}
