package core

import (
	"fmt"
	"math/rand/v2"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// CrashFaults is a failure-injection wrapper: each node independently
// crash-stops with probability Rate at the start of every round, after which
// it neither transmits nor observes anything. Crash-stop faults are the
// standard benign fault model; they can only *reduce* contention, so
// contention resolution remains solvable as long as at least one node
// survives to transmit — the wrapper probes that the algorithms hold up
// when the participant set erodes mid-execution.
type CrashFaults struct {
	// Inner is the wrapped protocol; must be non-nil.
	Inner sim.Builder
	// Rate is the per-node per-round crash probability in [0, 1).
	Rate float64
}

var _ sim.Builder = CrashFaults{}

// Name implements sim.Builder.
func (c CrashFaults) Name() string {
	return fmt.Sprintf("crash(%s, rate=%.3g)", c.Inner.Name(), c.Rate)
}

// Build implements sim.Builder. It panics on a nil inner builder or a rate
// outside [0, 1) — static misconfigurations.
func (c CrashFaults) Build(n int, seed uint64) []sim.Node {
	if c.Inner == nil {
		panic("core: CrashFaults requires an inner builder")
	}
	if c.Rate < 0 || c.Rate >= 1 {
		panic(fmt.Sprintf("core: crash rate %v outside [0, 1)", c.Rate))
	}
	inner := c.Inner.Build(n, xrand.Split(seed, 0))
	if len(inner) != n {
		panic(fmt.Sprintf("core: inner builder returned %d nodes for n=%d", len(inner), n))
	}
	rng := xrand.New(xrand.Split(seed, 1))
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &crashNode{
			inner: inner[i],
			rate:  c.Rate,
			rng:   xrand.New(rng.Uint64()),
		}
	}
	return nodes
}

type crashNode struct {
	inner   sim.Node
	rate    float64
	rng     *rand.Rand
	crashed bool
}

func (u *crashNode) Act(round int) sim.Action {
	if !u.crashed && xrand.Bernoulli(u.rng, u.rate) {
		u.crashed = true
	}
	if u.crashed {
		return sim.Listen
	}
	return u.inner.Act(round)
}

func (u *crashNode) Hear(round int, from int, detect sim.Feedback) {
	if u.crashed {
		return
	}
	u.inner.Hear(round, from, detect)
}

// Active reports whether the node still contends: crashed nodes are out, and
// the inner node's own activity (if exposed) is respected.
func (u *crashNode) Active() bool {
	if u.crashed {
		return false
	}
	if a, ok := u.inner.(Activeness); ok {
		return a.Active()
	}
	return true
}

// Crashed reports whether the node has crash-stopped.
func (u *crashNode) Crashed() bool { return u.crashed }
