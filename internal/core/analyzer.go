package core

import (
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
)

// Snapshot records the analysis-relevant state of one executed round. The
// active set is captured *before* the round's knock-outs take effect (the
// engine invokes tracers between delivery and the nodes' Hear calls).
type Snapshot struct {
	// Round is the 1-based round index.
	Round int
	// Active is the number of active nodes entering the round.
	Active int
	// Transmitters is the number of nodes that transmitted.
	Transmitters int
	// Knockouts is the number of active listeners that received a message
	// this round (and therefore deactivate).
	Knockouts int
	// ClassSizes[i] is n_i, the size of link class d_i entering the round.
	ClassSizes []int
	// GoodPerClass[i] counts the good nodes (Definition 1) in class d_i;
	// nil unless the Analyzer has Goodness enabled.
	GoodPerClass []int
}

// Analyzer is a sim.Tracer that reconstructs the paper's analysis quantities
// round by round: link class sizes, knock-outs, and optionally good-node
// counts. It requires the protocol's nodes to implement Activeness (as the
// core algorithm's do).
type Analyzer struct {
	// Points are the node positions of the deployment under execution.
	Points []geom.Point
	// Alpha is the path-loss exponent used by the goodness test.
	Alpha float64
	// R is the deployment's link-length ratio, bounding annulus indices.
	R float64
	// Goodness enables the (quadratic-cost) good-node census per round.
	Goodness bool

	// Snapshots accumulates one entry per executed round.
	Snapshots []Snapshot
}

var _ sim.Tracer = (*Analyzer)(nil)

// OnRound implements sim.Tracer.
func (a *Analyzer) OnRound(round int, nodes []sim.Node, tx []bool, recv []int) {
	n := len(nodes)
	active := make([]bool, n)
	activeCount := 0
	for i, node := range nodes {
		if act, ok := node.(Activeness); ok && act.Active() {
			active[i] = true
			activeCount++
		}
	}
	snap := Snapshot{Round: round, Active: activeCount}
	for i := range tx {
		if tx[i] {
			snap.Transmitters++
		}
		if recv[i] >= 0 && active[i] {
			snap.Knockouts++
		}
	}
	lc := geom.ComputeLinkClasses(a.Points, active)
	snap.ClassSizes = append([]int(nil), lc.Sizes...)
	if a.Goodness {
		snap.GoodPerClass = make([]int, len(lc.Sizes))
		for u := range nodes {
			c := lc.Class[u]
			if c < 0 {
				continue
			}
			maxT := geom.MaxAnnulusIndex(a.R, c)
			if geom.IsGood(a.Points, active, u, c, a.Alpha, maxT) {
				snap.GoodPerClass[c]++
			}
		}
	}
	a.Snapshots = append(a.Snapshots, snap)
}

// MaxClassSizes returns, for each round r (0-based into Snapshots), the
// maximum observed size of class i at or after r — the "permanent bound"
// view of Section 3.3: class sizes may fluctuate upward through migrations,
// so the meaningful comparison against q_t is suprema over suffixes.
func (a *Analyzer) MaxClassSizes() [][]int {
	if len(a.Snapshots) == 0 {
		return nil
	}
	m := 0
	for _, s := range a.Snapshots {
		if len(s.ClassSizes) > m {
			m = len(s.ClassSizes)
		}
	}
	out := make([][]int, len(a.Snapshots))
	suffix := make([]int, m)
	for r := len(a.Snapshots) - 1; r >= 0; r-- {
		for i := 0; i < m; i++ {
			v := 0
			if i < len(a.Snapshots[r].ClassSizes) {
				v = a.Snapshots[r].ClassSizes[i]
			}
			if v > suffix[i] {
				suffix[i] = v
			}
		}
		out[r] = append([]int(nil), suffix...)
	}
	return out
}
