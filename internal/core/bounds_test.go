package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassBoundsValidate(t *testing.T) {
	if err := DefaultClassBounds().Validate(); err != nil {
		t.Errorf("default bounds invalid: %v", err)
	}
	bad := []ClassBounds{
		{GammaSlow: 0, Rho: 0.5},
		{GammaSlow: 1, Rho: 0.5},
		{GammaSlow: 0.5, Rho: 0},
		{GammaSlow: 0.5, Rho: 1},
		{GammaSlow: -1, Rho: 0.5},
	}
	for _, cb := range bad {
		if err := cb.Validate(); err == nil {
			t.Errorf("%+v accepted", cb)
		}
	}
}

func TestClassBoundsL(t *testing.T) {
	// γ_slow = 0.5, ρ = 0.25: l = log_0.5(0.25) = 2.
	cb := ClassBounds{GammaSlow: 0.5, Rho: 0.25}
	if got := cb.L(); got != 2 {
		t.Errorf("L = %d, want 2", got)
	}
	if got := cb.StartStep(3); got != 6 {
		t.Errorf("StartStep(3) = %d, want 6", got)
	}
}

func TestClassBoundsVectorKnownValues(t *testing.T) {
	cb := ClassBounds{GammaSlow: 0.5, Rho: 0.25} // l = 2
	const n, m = 64, 3
	// t = 0: all classes still at n.
	q0 := cb.Vector(n, m, 0)
	for i, v := range q0 {
		if v != 64 {
			t.Errorf("q_0(%d) = %v, want 64", i, v)
		}
	}
	// t = 1: class 0 has decayed once; classes 1, 2 have not started
	// (s_1 = 2, s_2 = 4).
	q1 := cb.Vector(n, m, 1)
	if q1[0] != 32 || q1[1] != 64 || q1[2] != 64 {
		t.Errorf("q_1 = %v, want [32 64 64]", q1)
	}
	// t = 3: class 0 decayed 3×, class 1 decayed once, class 2 not yet.
	q3 := cb.Vector(n, m, 3)
	if q3[0] != 8 || q3[1] != 32 || q3[2] != 64 {
		t.Errorf("q_3 = %v, want [8 32 64]", q3)
	}
	// Deep t: everything flushes to 0 (values below one node).
	q99 := cb.Vector(n, m, 99)
	for i, v := range q99 {
		if v != 0 {
			t.Errorf("q_99(%d) = %v, want 0", i, v)
		}
	}
}

// TestClassBoundsVectorMonotoneProperty: q_t(i) is non-increasing in t and
// non-decreasing in i (smaller classes decay first).
func TestClassBoundsVectorMonotoneProperty(t *testing.T) {
	cb := DefaultClassBounds()
	f := func(nRaw, mRaw, tRaw uint8) bool {
		n := 1 + int(nRaw)
		m := 1 + int(mRaw%12)
		step := int(tRaw % 100)
		qt := cb.Vector(n, m, step)
		qt1 := cb.Vector(n, m, step+1)
		for i := 0; i < m; i++ {
			if qt1[i] > qt[i] {
				return false
			}
			if i > 0 && qt[i] < qt[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepsToZero(t *testing.T) {
	cb := ClassBounds{GammaSlow: 0.5, Rho: 0.25}
	for _, c := range []struct{ n, m int }{{2, 1}, {64, 1}, {64, 5}, {1024, 12}} {
		steps := cb.StepsToZero(c.n, c.m)
		q := cb.Vector(c.n, c.m, steps)
		for i, v := range q {
			if v != 0 {
				t.Errorf("n=%d m=%d: q_%d(%d) = %v, want 0", c.n, c.m, steps, i, v)
			}
		}
		// The bound is tight to within one lag: one step earlier the last
		// class must still be positive (for n large enough to need decay).
		if c.n > 2 {
			prev := cb.Vector(c.n, c.m, steps-2)
			positive := false
			for _, v := range prev {
				if v > 0 {
					positive = true
				}
			}
			if !positive {
				t.Errorf("n=%d m=%d: StepsToZero %d not tight", c.n, c.m, steps)
			}
		}
	}
	if got := cb.StepsToZero(0, 5); got != 0 {
		t.Errorf("StepsToZero(0, 5) = %d, want 0", got)
	}
	if got := cb.StepsToZero(5, 0); got != 0 {
		t.Errorf("StepsToZero(5, 0) = %d, want 0", got)
	}
}

// TestStepsToZeroShape: T grows like Θ(log n + m) — linear in m at fixed n
// and logarithmic in n at fixed m (Claim 8 with m ≈ log R).
func TestStepsToZeroShape(t *testing.T) {
	cb := DefaultClassBounds()
	// Linear in m.
	t8 := cb.StepsToZero(256, 8)
	t16 := cb.StepsToZero(256, 16)
	t32 := cb.StepsToZero(256, 32)
	if d1, d2 := t16-t8, t32-t16; d2 != 2*d1 {
		t.Errorf("m-growth not linear: Δ(8→16)=%d, Δ(16→32)=%d", d1, d2)
	}
	// Logarithmic in n: doubling n adds a constant.
	a := cb.StepsToZero(1024, 4) - cb.StepsToZero(512, 4)
	b := cb.StepsToZero(1<<20, 4) - cb.StepsToZero(1<<19, 4)
	if int(math.Abs(float64(a-b))) > 1 {
		t.Errorf("n-growth not logarithmic: doubling increments %d vs %d", a, b)
	}
}

func TestAuxiliary(t *testing.T) {
	cb := ClassBounds{GammaSlow: 0.5, Rho: 0.25}
	// q* = q(γ_slow − ρ/(1−ρ)) = q(0.5 − 1/3) = q/6.
	if got, want := cb.Auxiliary(60), 10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Auxiliary(60) = %v, want %v", got, want)
	}
	// When ρ/(1−ρ) ≥ γ_slow the auxiliary bound clamps at 0.
	cb = ClassBounds{GammaSlow: 0.3, Rho: 0.5}
	if got := cb.Auxiliary(10); got != 0 {
		t.Errorf("clamped Auxiliary = %v, want 0", got)
	}
}

// TestAuxiliaryImpliesPermanence reproduces the Section 3.3 argument in
// miniature: if n_j ≤ q_t(j) for all j < i and n_i ≤ q*_{t+1}(i), then even
// if every smaller-class node migrated into d_i the class stays ≤ q_{t+1}(i).
// Numerically: q_t(<i) ≤ q_t(i)·ρ/(1−ρ) (Lemma 9), so
// q*_{t+1}(i) + q_t(<i) ≤ q_t(i)·γ_slow = q_{t+1}(i).
func TestAuxiliaryImpliesPermanence(t *testing.T) {
	cb := DefaultClassBounds()
	const n, m = 4096, 6
	l := cb.L()
	for step := 0; step < cb.StepsToZero(n, m); step++ {
		q := cb.Vector(n, m, step)
		qNext := cb.Vector(n, m, step+1)
		for i := 1; i < m; i++ {
			if qNext[i] >= float64(n) { // class not yet decaying; nothing to check
				continue
			}
			smaller := 0.0
			for j := 0; j < i; j++ {
				smaller += q[j]
			}
			// Lemma 9 requires classes below i to have started decaying
			// enough; that is guaranteed once step > s_i (= i·l).
			if step <= i*l {
				continue
			}
			if cb.Auxiliary(q[i])+smaller > qNext[i]+1e-9 {
				t.Errorf("step %d class %d: aux %v + smaller %v > q_{t+1} %v",
					step, i, cb.Auxiliary(q[i]), smaller, qNext[i])
			}
		}
	}
}
