package catalog

import (
	"testing"

	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

func TestEveryListedDeploymentBuilds(t *testing.T) {
	for _, kind := range Deployments() {
		d, err := Deployment(kind, 7, 32)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if d.N() < 32 && kind != "chain" {
			t.Errorf("%s: only %d nodes for n=32", kind, d.N())
		}
	}
	if _, err := Deployment("nope", 7, 32); err == nil {
		t.Error("unknown deployment accepted")
	}
}

func TestDeploymentIsSeedDeterministic(t *testing.T) {
	a, err := Deployment("disk", 42, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deployment("disk", 42, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across same-seed builds: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestEveryListedAlgorithmBuilds(t *testing.T) {
	for _, algo := range Algorithms() {
		b, err := Builder(algo, 0, 32)
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if b.Name() == "" {
			t.Errorf("%s: empty builder name", algo)
		}
	}
	if _, err := Builder("nope", 0, 32); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestEveryListedChannelBuildsAndRuns(t *testing.T) {
	d, err := Deployment("disk", 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.DefaultParams()
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
	for _, kind := range Channels() {
		bc, err := Channel(kind, params, d, 99)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if got := bc.CollisionDetection; got != (kind == "radio-cd") {
			t.Errorf("%s: CollisionDetection = %v", kind, got)
		}
		wantNoCache := kind == "radio" || kind == "radio-cd"
		if (bc.GainCacheBytes == -1) != wantNoCache {
			t.Errorf("%s: GainCacheBytes = %d", kind, bc.GainCacheBytes)
		}
		algo := "fixed"
		if kind == "radio-cd" {
			algo = "cdhalving"
		}
		builder, err := Builder(algo, 0, d.N())
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{MaxRounds: DefaultMaxRounds(d.N()), CollisionDetection: bc.CollisionDetection}
		if _, err := sim.Run(bc.Channel, builder, 5, cfg); err != nil {
			t.Errorf("%s: run: %v", kind, err)
		}
	}
	if _, err := Channel("nope", params, d, 99); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestDefaultMaxRoundsGrowsWithN(t *testing.T) {
	if a, b := DefaultMaxRounds(16), DefaultMaxRounds(1<<16); a >= b {
		t.Errorf("budget not growing: n=16 → %d, n=65536 → %d", a, b)
	}
	if DefaultMaxRounds(1) < 2000 {
		t.Errorf("budget below floor: %d", DefaultMaxRounds(1))
	}
}
