// Package catalog is the shared registry of named deployments, algorithms,
// and channels that user-facing front ends resolve textual specs against.
// cmd/crsim's flags and internal/serve's JSON job specs both go through
// this one construction path, so the two can never drift: a name either
// builds the same object everywhere or is rejected everywhere.
//
// Everything here is seed-deterministic: construction consumes no
// randomness beyond the explicit seeds, so a (name, seed, n) triple names
// one reproducible object.
package catalog

import (
	"fmt"
	"math"
	"sort"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/radio"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// Deployments returns the deployment names Deployment accepts, sorted.
func Deployments() []string {
	return sortedNames("chain", "clusters", "disk", "grid", "pairs", "square")
}

// Algorithms returns the algorithm names Builder accepts, sorted.
func Algorithms() []string {
	return sortedNames("backoff", "cdhalving", "decay", "dampened", "estimate",
		"fixed", "interleaved", "knockout-sweep", "staggered", "sweep")
}

// Channels returns the channel names Channel accepts, sorted.
func Channels() []string {
	return sortedNames("radio", "radio-cd", "rayleigh", "sinr")
}

func sortedNames(names ...string) []string {
	sort.Strings(names)
	return names
}

// Deployment builds the named node deployment with n nodes from seed.
// Shapes with structural constraints round n up as needed (pairs needs an
// even count), exactly as crsim always has.
func Deployment(kind string, seed uint64, n int) (*geom.Deployment, error) {
	switch kind {
	case "disk":
		return geom.UniformDisk(seed, n)
	case "square":
		return geom.UniformSquare(seed, n)
	case "grid":
		return geom.PerturbedGrid(seed, n, 0.25)
	case "clusters":
		k := int(math.Max(1, math.Sqrt(float64(n))/2))
		return geom.Clusters(seed, n, k, 2, 20*math.Sqrt(float64(n)))
	case "chain":
		classes := int(math.Max(1, math.Round(math.Log2(float64(n)))))
		pairs := n / (2 * classes)
		if pairs < 1 {
			pairs = 1
		}
		return geom.ExponentialChain(seed, classes, pairs)
	case "pairs":
		if n%2 != 0 {
			n++
		}
		return geom.CoLocatedPairs(n, 100)
	default:
		return nil, fmt.Errorf("unknown deployment %q (have %v)", kind, Deployments())
	}
}

// Builder builds the named algorithm. p is the broadcast probability of the
// fixed-probability algorithms (core.DefaultP when 0); n sizes the
// population-aware baselines.
func Builder(algo string, p float64, n int) (sim.Builder, error) {
	if p == 0 {
		p = core.DefaultP
	}
	switch algo {
	case "fixed":
		return core.FixedProbability{P: p}, nil
	case "sweep":
		return baselines.ProbabilitySweep{}, nil
	case "decay":
		return baselines.Decay{N: n}, nil
	case "backoff":
		return baselines.BinaryExponentialBackoff{}, nil
	case "dampened":
		if n < 4 {
			n = 4
		}
		return baselines.DampenedSweep{N: n}, nil
	case "cdhalving":
		return baselines.CollisionDetectHalving{}, nil
	case "estimate":
		return baselines.CDBinaryEstimate{}, nil
	case "interleaved":
		return core.Interleaved{A: core.FixedProbability{}, B: baselines.ProbabilitySweep{}}, nil
	case "knockout-sweep":
		return core.WithKnockout{Inner: baselines.ProbabilitySweep{}}, nil
	case "staggered":
		return core.StaggeredStart{Inner: core.FixedProbability{P: p}, MaxDelay: 32}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (have %v)", algo, Algorithms())
	}
}

// BuiltChannel is a constructed channel plus the execution settings its
// kind implies.
type BuiltChannel struct {
	// Channel is the constructed channel.
	Channel sim.Channel
	// CollisionDetection reports whether sim.Config.CollisionDetection
	// must be enabled (the radio-cd channel).
	CollisionDetection bool
	// GainCacheBytes is the size of the channel's gain cache: 0 when the
	// cache is off or fell back, −1 when the channel kind has no gain
	// cache at all (the radio channels).
	GainCacheBytes int64
}

// Channel builds the named channel over the deployment. fadeSeed seeds the
// Rayleigh fade stream and is ignored by the other kinds; opts configure
// the SINR gain cache and are ignored by the radio kinds.
func Channel(kind string, params sinr.Params, d *geom.Deployment, fadeSeed uint64, opts ...sinr.Option) (BuiltChannel, error) {
	switch kind {
	case "sinr":
		sc, err := sinr.New(params, d.Points, opts...)
		if err != nil {
			return BuiltChannel{}, err
		}
		return BuiltChannel{Channel: sc, GainCacheBytes: sc.GainCacheBytes()}, nil
	case "rayleigh":
		rc, err := sinr.NewRayleigh(params, d.Points, fadeSeed, opts...)
		if err != nil {
			return BuiltChannel{}, err
		}
		return BuiltChannel{Channel: rc, GainCacheBytes: rc.GainCacheBytes()}, nil
	case "radio":
		ch, err := radio.New(d.N(), false)
		if err != nil {
			return BuiltChannel{}, err
		}
		return BuiltChannel{Channel: ch, GainCacheBytes: -1}, nil
	case "radio-cd":
		ch, err := radio.New(d.N(), true)
		if err != nil {
			return BuiltChannel{}, err
		}
		return BuiltChannel{Channel: ch, CollisionDetection: true, GainCacheBytes: -1}, nil
	default:
		return BuiltChannel{}, fmt.Errorf("unknown channel %q (have %v)", kind, Channels())
	}
}

// DefaultMaxRounds is the shared auto round budget for a single run over n
// nodes: generous enough for every registered algorithm at the scales the
// CLIs and the service accept.
func DefaultMaxRounds(n int) int {
	return 2000 + 200*int(math.Ceil(math.Log2(float64(n)+1)))
}
