// Package sinr implements the paper's fading channel: reception is governed
// by the signal-to-interference-and-noise-ratio equation (Equation 1 of
// Section 2). A listening node v receives a message from transmitter u, in a
// round where the nodes of I also transmit, iff
//
//	SINR(u, v, I) = (P/d(u,v)^α) / (N + Σ_{w∈I} P/d(w,v)^α) ≥ β,
//
// where P is the fixed transmission power, α > 2 the path-loss exponent,
// N ≥ 0 the ambient noise, and β the decoding threshold.
//
// The package provides the deterministic geometric-fading channel of the
// paper plus an optional Rayleigh-faded extension (per-round exponential
// signal scaling) used by robustness experiments.
package sinr

import (
	"errors"
	"fmt"
	"math"

	"fadingcr/internal/geom"
)

// DefaultSingleHopMargin is the paper's constant c in the single-hop
// condition P > c·β·N·d(u,v)^α; Section 2 notes c ≥ 4 suffices.
const DefaultSingleHopMargin = 4

// Params collects the physical-layer constants of the SINR equation.
type Params struct {
	// Alpha is the path-loss exponent. The paper's analysis requires
	// Alpha > 2; the simulator accepts any Alpha > 0 so experiments can
	// probe the α → 2 degradation.
	Alpha float64
	// Beta is the SINR decoding threshold β > 0. With Beta ≥ 1 at most one
	// transmitter can be decoded by any listener in a round.
	Beta float64
	// Noise is the ambient noise N ≥ 0.
	Noise float64
	// Power is the fixed transmission power P > 0 shared by all nodes.
	Power float64
}

// Validate reports whether the parameters are usable by the channel.
func (p Params) Validate() error {
	switch {
	case !(p.Alpha > 0) || math.IsInf(p.Alpha, 1):
		return fmt.Errorf("sinr: alpha %v must be positive and finite", p.Alpha)
	case !(p.Beta > 0) || math.IsInf(p.Beta, 1):
		return fmt.Errorf("sinr: beta %v must be positive and finite", p.Beta)
	case p.Noise < 0 || math.IsNaN(p.Noise) || math.IsInf(p.Noise, 1):
		return fmt.Errorf("sinr: noise %v must be in [0, ∞)", p.Noise)
	case !(p.Power > 0) || math.IsInf(p.Power, 1):
		return fmt.Errorf("sinr: power %v must be positive and finite", p.Power)
	}
	return nil
}

// Signal returns the received signal strength P/d^α of a transmission over
// distance d > 0.
func (p Params) Signal(d float64) float64 {
	return p.Power * math.Pow(d, -p.Alpha)
}

// signalFromDist2 is Signal computed from a squared distance, saving a sqrt.
func (p Params) signalFromDist2(d2 float64) float64 {
	return p.Power * attenuation(d2, p.Alpha)
}

// attenuation returns d2^{-α/2} = d^{-α} with fast paths for the common
// path-loss exponents (α ∈ {2, 3, 4, 6}); the SINR delivery loop spends
// essentially all its time here, and the fast paths are ~5× cheaper than
// math.Pow.
//
//crlint:hotpath
func attenuation(d2, alpha float64) float64 {
	switch alpha {
	case 2:
		return 1 / d2
	case 3:
		return 1 / (d2 * math.Sqrt(d2))
	case 4:
		return 1 / (d2 * d2)
	case 6:
		return 1 / (d2 * d2 * d2)
	default:
		return math.Pow(d2, -alpha/2)
	}
}

// SINR returns the ratio signal/(Noise + interference).
func (p Params) SINR(signal, interference float64) float64 {
	return signal / (p.Noise + interference)
}

// powerCondition is the right-hand side margin·β·N·maxDist^α of the paper's
// single-hop condition, shared by MinSingleHopPower and SingleHopFeasible so
// the formula cannot drift between the derivation and the check.
func powerCondition(alpha, beta, noise, maxDist, margin float64) float64 {
	return margin * beta * noise * math.Pow(maxDist, alpha)
}

// MinSingleHopPower returns the smallest power satisfying the paper's
// single-hop condition P > margin·β·N·maxDist^α with a small head-room
// factor, so that every node pair can communicate in the absence of
// interference with a constant-factor SINR margin. For N = 0 the condition
// is vacuous and the function returns 1.
func MinSingleHopPower(alpha, beta, noise, maxDist, margin float64) float64 {
	if noise == 0 {
		return 1
	}
	return powerCondition(alpha, beta, noise, maxDist, margin) * 1.01
}

// SingleHopFeasible reports whether the parameters satisfy the single-hop
// condition P > margin·β·N·maxDist^α for the given maximum link length.
func (p Params) SingleHopFeasible(maxDist, margin float64) bool {
	return p.Power > powerCondition(p.Alpha, p.Beta, p.Noise, maxDist, margin)
}

// A ReceptionObserver sees every decoded reception at the moment the
// delivery engine commits it: listener v decodes the message of transmitter
// u with the achieved ratio sinr ≥ β and margin = sinr − β. Within a round,
// observers are invoked in ascending listener order by every engine (the
// cached, on-the-fly, and Rayleigh delivery loops all finalise listeners in
// index order), so the call sequence is deterministic and engine-independent.
//
// The hook exists for tracing and never feeds back into delivery: observers
// must not call back into the channel, and a nil observer (the default)
// costs one pointer test per decode — the hot paths stay allocation-free.
type ReceptionObserver interface {
	OnReception(listener, from int, sinr, margin float64)
}

// Channel is the deterministic SINR channel over a fixed deployment. It is
// not safe for concurrent use (it owns reusable delivery scratch buffers);
// create one channel per goroutine.
type Channel struct {
	params   Params
	pts      []geom.Point
	gains    *gainCache // nil: compute attenuations on the fly
	ff       *farField  // nil: exact delivery (the default)
	par      int        // ≥ 2: intra-round parallel workers
	scratch  deliverScratch
	observer ReceptionObserver
}

// New builds a channel for the given parameters and node positions. It
// returns an error if the parameters are invalid or fewer than one node is
// given. By default the channel precomputes the pairwise gain matrix (see
// the gain-cache notes in this package) up to DefaultGainCacheCap; options
// adjust that policy without ever changing delivery results. The
// WithFarFieldEps option selects the approximate ε far-field engine (see
// farfield.go), the only option that can change receptions — within its
// documented error bound.
func New(params Params, pts []geom.Point, opts ...Option) (*Channel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("sinr: channel needs at least one node")
	}
	ec, err := resolveEngine(opts)
	if err != nil {
		return nil, err
	}
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	c := &Channel{
		params:  params,
		pts:     cp,
		gains:   newGainCache(cp, params.Alpha, ec),
		par:     ec.workers(),
		scratch: newDeliverScratch(len(cp)),
	}
	if ec.farFieldEps > 0 {
		c.ff, err = newFarField(cp, params.Alpha, params.Noise, params.Power, params.Power, ec.farFieldEps, c.par)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// N returns the number of nodes on the channel.
func (c *Channel) N() int { return len(c.pts) }

// Params returns the channel's physical-layer parameters.
func (c *Channel) Params() Params { return c.params }

// GainCacheBytes returns the footprint of the channel's precomputed gain
// matrix, or 0 when the channel computes attenuations on the fly.
func (c *Channel) GainCacheBytes() int64 {
	if c.gains == nil {
		return 0
	}
	return c.gains.bytes()
}

// SetObserver installs (or, with nil, removes) the reception observer.
// Observation never changes delivery results — the engine computes the
// identical float sequence with or without an observer.
func (c *Channel) SetObserver(o ReceptionObserver) { c.observer = o }

// signal returns the received signal strength of transmitter u at listener
// v, from the cached gain row when available. Both branches evaluate the
// identical expression Power·d(u,v)^{-α}, so results are bit-equal.
//
//crlint:hotpath
func (c *Channel) signal(u, v int) float64 {
	if c.gains != nil {
		return c.params.Power * c.gains.at(u, v)
	}
	return c.params.signalFromDist2(c.pts[u].Dist2(c.pts[v]))
}

// Deliver computes one round of reception. tx[u] reports whether node u
// transmits this round; recv must have length N and is filled so that
// recv[v] is the index of the transmitter whose message v received, or −1 if
// v received nothing (transmitters always have recv[v] = −1: a node cannot
// listen while transmitting). When Beta < 1 several transmitters may clear
// the SINR threshold at one listener; the channel then delivers the
// strongest.
//
//crlint:hotpath
func (c *Channel) Deliver(tx []bool, recv []int) {
	if len(tx) != len(c.pts) || len(recv) != len(c.pts) {
		panic(fmt.Sprintf("sinr: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), len(c.pts)))
	}
	mDeliveries.Inc()
	switch {
	case c.ff != nil:
		mDeliveriesFarField.Inc()
	case c.gains != nil:
		mDeliveriesCached.Inc()
	default:
		mDeliveriesFallback.Inc()
	}
	txList := c.scratch.indices(tx)
	if len(txList) == 0 {
		for v := range recv {
			recv[v] = -1
		}
		return
	}
	if c.ff != nil {
		c.ff.prepareRound(txList)
	}
	n := len(c.pts)
	if c.par > 1 {
		//crlint:allow hotalloc deliverParallel's worker closures are the documented O(workers) per-round cost of the opt-in parallel engine
		c.deliverParallel(txList, tx)
	} else {
		switch {
		case c.ff != nil:
			for lo := 0; lo < n; lo += deliverTile {
				c.accumulateFarTile(0, lo, min(lo+deliverTile, n), tx, txList)
			}
		case c.gains != nil:
			for lo := 0; lo < n; lo += deliverTile {
				c.accumulateCachedTile(lo, min(lo+deliverTile, n), txList)
			}
		default:
			for lo := 0; lo < n; lo += deliverTile {
				c.accumulateFlyTile(lo, min(lo+deliverTile, n), txList, tx)
			}
		}
	}
	finalizeReceptions(c.params, &c.scratch, c.observer, tx, recv)
}

// deliverParallel fans pass one out over runTiles. It is deliberately not
// hotpath-annotated: the kernel closures and goroutines allocate O(workers)
// per round, the documented cost of the parallel option.
func (c *Channel) deliverParallel(txList []int, tx []bool) {
	mDeliveriesParallel.Inc()
	n := len(c.pts)
	switch {
	case c.ff != nil:
		runTiles(n, c.par, func(w, lo, hi int) { c.accumulateFarTile(w, lo, hi, tx, txList) })
	case c.gains != nil:
		runTiles(n, c.par, func(_, lo, hi int) { c.accumulateCachedTile(lo, hi, txList) })
	default:
		runTiles(n, c.par, func(_, lo, hi int) { c.accumulateFlyTile(lo, hi, txList, tx) })
	}
}

// accumulateCachedTile is pass one of the transmitter-major cached engine
// over listeners [lo, hi): it streams each transmitter's cached gain-row
// tile through the per-listener accumulators (running interference total,
// strongest signal and its sender). Each listener sees its signals in
// ascending transmitter order with the first strict maximum winning — the
// exact per-listener float operations of the on-the-fly loop — so both
// engines produce bit-identical receptions; the tile width only reorders
// work *across* listeners, never within one. Diagonal gains are +Inf but
// only reach accumulators of transmitting listeners, which the finalize
// pass masks to −1.
//
//crlint:hotpath
func (c *Channel) accumulateCachedTile(lo, hi int, txList []int) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
	}
	power := c.params.Power
	for _, u := range txList {
		row := c.gains.row(u)
		for v := lo; v < hi; v++ {
			s := power * row[v]
			totals[v] += s
			if s > best[v] {
				best[v], bestU[v] = s, u
			}
		}
	}
}

// accumulateFlyTile is pass one of the on-the-fly engine over listeners
// [lo, hi): the classic listener-major scalar loop, restricted to one tile
// and parked in the shared accumulator arrays for the sequential finalize
// pass. The per-listener float sequence is exactly the pre-tiling code's.
//
//crlint:hotpath
func (c *Channel) accumulateFlyTile(lo, hi int, txList []int, tx []bool) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
		if tx[v] {
			continue
		}
		b, bu, t := -1.0, -1, 0.0
		for _, u := range txList {
			s := c.params.signalFromDist2(c.pts[u].Dist2(c.pts[v]))
			t += s
			if s > b {
				b, bu = s, u
			}
		}
		totals[v], best[v], bestU[v] = t, b, bu
	}
}

// accumulateFarTile is pass one of the ε far-field engine over listeners
// [lo, hi): per listener, collect the near transmitter set from the spatial
// index (exact below farFieldSmallTx transmitters), then sum it exactly in
// ascending transmitter index. The worker index selects the near-set
// scratch buffer, so concurrent tiles never share one.
//
//crlint:hotpath
func (c *Channel) accumulateFarTile(worker, lo, hi int, tx []bool, txList []int) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	pruned := int64(0)
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
		if tx[v] {
			continue
		}
		near := c.ff.nearSet(worker, v, tx, txList)
		pruned += int64(len(txList) - len(near))
		b, bu, t := -1.0, -1, 0.0
		for _, u := range near {
			s := c.signal(u, v)
			t += s
			if s > b {
				b, bu = s, u
			}
		}
		totals[v], best[v], bestU[v] = t, b, bu
	}
	mFarFieldPrunedTx.Add(pruned)
}

// finalizeReceptions is pass two of every engine: apply the SINR threshold
// per listener in ascending index order, writing receptions and invoking the
// observer. It is always sequential — the observer-ordering contract and
// byte-identical parallel delivery both depend on that.
//
//crlint:hotpath
func finalizeReceptions(params Params, s *deliverScratch, obs ReceptionObserver, tx []bool, recv []int) {
	totals, best, bestU := s.totals, s.best, s.bestU
	for v := range recv {
		recv[v] = -1
		if tx[v] || bestU[v] < 0 {
			continue
		}
		// Interference for the strongest candidate excludes its own signal.
		if ratio := params.SINR(best[v], totals[v]-best[v]); ratio >= params.Beta {
			recv[v] = bestU[v]
			if obs != nil {
				obs.OnReception(v, bestU[v], ratio, ratio-params.Beta)
			}
		}
	}
}

// Receivable returns every transmitter whose SINR at listener v clears the
// threshold (useful with Beta < 1, where more than one can). It returns nil
// when v itself transmits.
func (c *Channel) Receivable(tx []bool, v int) []int {
	if tx[v] {
		return nil
	}
	txList := c.scratch.indices(tx)
	signals := c.scratch.signals[:0]
	total := 0.0
	for _, u := range txList {
		s := c.signal(u, v)
		signals = append(signals, s)
		total += s
	}
	c.scratch.signals = signals
	var out []int
	for i, u := range txList {
		if c.params.SINR(signals[i], total-signals[i]) >= c.params.Beta {
			out = append(out, u)
		}
	}
	return out
}

// InterferenceAt returns Σ_{u ∈ tx} P/d(u,v)^α, the total signal energy
// arriving at node v from the given transmitter set (including v's own
// signal if v transmits).
func (c *Channel) InterferenceAt(tx []bool, v int) float64 {
	total := 0.0
	for u := range c.pts {
		if !tx[u] || u == v {
			continue
		}
		total += c.signal(u, v)
	}
	return total
}
