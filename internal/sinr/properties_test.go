package sinr

import (
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/geom"
	"fadingcr/internal/xrand"
)

// TestScaleInvarianceProperty: the SINR equation is scale-free — scaling all
// distances by s and the power by s^α leaves every reception decision
// unchanged. This is the physical identity that lets the paper normalise the
// shortest link to 1 without loss of generality.
func TestScaleInvarianceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, sRaw uint8, txSeed uint64) bool {
		n := 2 + int(nRaw%20)
		s := 1.5 + float64(sRaw%10)
		d, err := geom.UniformDisk(seed, n)
		if err != nil {
			return false
		}
		scaled := make([]geom.Point, n)
		for i, p := range d.Points {
			scaled[i] = p.Scale(s)
		}
		const alpha = 3.0
		base := Params{Alpha: alpha, Beta: 1.5, Noise: 0.25, Power: 1000}
		big := base
		big.Power = base.Power * math.Pow(s, alpha)

		chA, err := New(base, d.Points)
		if err != nil {
			return false
		}
		chB, err := New(big, scaled)
		if err != nil {
			return false
		}
		rng := xrand.New(txSeed)
		tx := make([]bool, n)
		for i := range tx {
			tx[i] = rng.Float64() < 0.3
		}
		ra := make([]int, n)
		rb := make([]int, n)
		chA.Deliver(tx, ra)
		chB.Deliver(tx, rb)
		for v := range ra {
			if ra[v] != rb[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBetaMonotonicityProperty: raising the decoding threshold β never adds
// a receivable transmitter at any listener.
func TestBetaMonotonicityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, txSeed uint64, bumpRaw uint8) bool {
		n := 2 + int(nRaw%20)
		d, err := geom.UniformDisk(seed, n)
		if err != nil {
			return false
		}
		lo := Params{Alpha: 3, Beta: 0.4, Noise: 0.1, Power: 100}
		hi := lo
		hi.Beta = lo.Beta + 0.1 + float64(bumpRaw)/64
		chLo, err := New(lo, d.Points)
		if err != nil {
			return false
		}
		chHi, err := New(hi, d.Points)
		if err != nil {
			return false
		}
		rng := xrand.New(txSeed)
		tx := make([]bool, n)
		for i := range tx {
			tx[i] = rng.Float64() < 0.4
		}
		for v := range tx {
			if tx[v] {
				continue
			}
			loSet := map[int]bool{}
			for _, u := range chLo.Receivable(tx, v) {
				loSet[u] = true
			}
			for _, u := range chHi.Receivable(tx, v) {
				if !loSet[u] {
					return false // decodable at high β but not at low β
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPowerMonotonicityForSoloTransmitter: with a single transmitter and no
// interference, raising the power never loses a reception.
func TestPowerMonotonicityForSoloTransmitter(t *testing.T) {
	f := func(seed uint64, nRaw uint8, factorRaw uint8) bool {
		n := 2 + int(nRaw%15)
		d, err := geom.UniformDisk(seed, n)
		if err != nil {
			return false
		}
		lo := Params{Alpha: 3, Beta: 2, Noise: 1, Power: 50}
		hi := lo
		hi.Power = lo.Power * (1 + float64(factorRaw%16))
		chLo, _ := New(lo, d.Points)
		chHi, _ := New(hi, d.Points)
		tx := make([]bool, n)
		tx[0] = true
		ra := make([]int, n)
		rb := make([]int, n)
		chLo.Deliver(tx, ra)
		chHi.Deliver(tx, rb)
		for v := range ra {
			if ra[v] == 0 && rb[v] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSingleHopPowerGuaranteesIsolatedDelivery: with the derived single-hop
// power, every solo transmission is decoded by every listener — the defining
// property of a single-hop network.
func TestSingleHopPowerGuaranteesIsolatedDelivery(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		d, err := geom.UniformDisk(seed, 40)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Alpha: 3, Beta: 1.5, Noise: 1}
		p.Power = MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, DefaultSingleHopMargin)
		ch, err := New(p, d.Points)
		if err != nil {
			t.Fatal(err)
		}
		tx := make([]bool, 40)
		recv := make([]int, 40)
		for u := 0; u < 40; u += 7 {
			for i := range tx {
				tx[i] = i == u
			}
			ch.Deliver(tx, recv)
			for v := range recv {
				if v == u {
					continue
				}
				if recv[v] != u {
					t.Fatalf("seed %d: listener %d missed solo transmitter %d", seed, v, u)
				}
			}
		}
	}
}
