package sinr

import (
	"math"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/xrand"
)

// recordedReception is one observer callback.
type recordedReception struct {
	listener, from int
	sinr, margin   float64
}

// recordingObserver captures callbacks into a preallocated buffer so that
// observing adds no allocations of its own.
type recordingObserver struct {
	got []recordedReception
}

func (o *recordingObserver) OnReception(listener, from int, sinr, margin float64) {
	o.got = append(o.got, recordedReception{listener, from, sinr, margin})
}

// observable is the SetObserver surface shared by both SINR channels.
type observable interface {
	N() int
	Deliver(tx []bool, recv []int)
	SetObserver(ReceptionObserver)
}

func observerChannels(t *testing.T) map[string]observable {
	t.Helper()
	d, err := geom.UniformDisk(11, 48)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Alpha: 3, Beta: 1.5, Noise: 1}
	p.Power = MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, DefaultSingleHopMargin)
	out := map[string]observable{}
	for name, opts := range map[string][]Option{"cached": nil, "uncached": {WithGainCache(false)}} {
		c, err := New(p, d.Points, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = c
		r, err := NewRayleigh(p, d.Points, 5, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out["rayleigh/"+name] = r
	}
	return out
}

// TestObserverMatchesDeliveries: for every engine, the observer sees exactly
// the receptions committed to recv, in ascending listener order, with
// sinr ≥ β and margin = sinr − β; and observing never changes recv.
func TestObserverMatchesDeliveries(t *testing.T) {
	for name, ch := range observerChannels(t) {
		n := ch.N()
		rng := xrand.New(99)
		tx := make([]bool, n)
		recv := make([]int, n)
		beta := 1.5
		for round := 0; round < 30; round++ {
			for i := range tx {
				tx[i] = rng.Float64() < 0.2
			}
			obs := &recordingObserver{got: make([]recordedReception, 0, n)}
			ch.SetObserver(obs)
			ch.Deliver(tx, recv)
			ch.SetObserver(nil)

			want := 0
			prev := -1
			for v, from := range recv {
				if from < 0 {
					continue
				}
				if want >= len(obs.got) {
					t.Fatalf("%s round %d: %d receptions, observer saw %d", name, round, want+1, len(obs.got))
				}
				g := obs.got[want]
				if g.listener != v || g.from != from {
					t.Fatalf("%s round %d: observer[%d] = (%d,%d), recv has (%d,%d)", name, round, want, g.listener, g.from, v, from)
				}
				if g.listener <= prev {
					t.Fatalf("%s round %d: listeners out of order: %d after %d", name, round, g.listener, prev)
				}
				prev = g.listener
				if g.sinr < beta {
					t.Errorf("%s round %d: observed sinr %v < β", name, round, g.sinr)
				}
				if g.margin != g.sinr-beta {
					t.Errorf("%s round %d: margin %v != sinr−β %v", name, round, g.margin, g.sinr-beta)
				}
				want++
			}
			if want != len(obs.got) {
				t.Fatalf("%s round %d: observer saw %d receptions, recv has %d", name, round, len(obs.got), want)
			}
		}
	}
}

// TestObserverDoesNotChangeDeliveries: the same deterministic channel
// configuration delivers bit-identically with and without an observer (the
// Rayleigh engines are excluded here: their per-round fade streams advance
// with every Deliver, so two sequential runs on one channel differ by
// design — determinism across observer states for Rayleigh is covered by
// rebuilding channels with equal seeds).
func TestObserverDoesNotChangeDeliveries(t *testing.T) {
	d, err := geom.UniformDisk(17, 40)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Alpha: 3, Beta: 1.5, Noise: 1}
	p.Power = MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, DefaultSingleHopMargin)

	build := func(seed uint64, attach bool) [][]int {
		c, err := NewRayleigh(p, d.Points, seed)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			c.SetObserver(&recordingObserver{})
		}
		rng := xrand.New(3)
		tx := make([]bool, d.N())
		var rounds [][]int
		for round := 0; round < 20; round++ {
			for i := range tx {
				tx[i] = rng.Float64() < 0.25
			}
			recv := make([]int, d.N())
			c.Deliver(tx, recv)
			rounds = append(rounds, recv)
		}
		return rounds
	}
	plain, observed := build(5, false), build(5, true)
	for r := range plain {
		for v := range plain[r] {
			if plain[r][v] != observed[r][v] {
				t.Fatalf("round %d listener %d: %d (plain) != %d (observed)", r, v, plain[r][v], observed[r][v])
			}
		}
	}

	c, err := New(p, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]bool, d.N())
	for i := range tx {
		tx[i] = i%4 == 0
	}
	a, b := make([]int, d.N()), make([]int, d.N())
	c.Deliver(tx, a)
	c.SetObserver(&recordingObserver{})
	c.Deliver(tx, b)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("deterministic channel: listener %d delivers %d plain, %d observed", v, a[v], b[v])
		}
	}
}

// TestObserverZeroAllocDeliver: with an observer installed whose buffer is
// preallocated, steady-state Deliver still performs zero allocations — the
// hook is one pointer test plus an interface call.
func TestObserverZeroAllocDeliver(t *testing.T) {
	for name, ch := range observerChannels(t) {
		n := ch.N()
		tx := make([]bool, n)
		recv := make([]int, n)
		for i := range tx {
			tx[i] = i%5 == 0
		}
		obs := &recordingObserver{got: make([]recordedReception, 0, n)}
		ch.SetObserver(obs)
		ch.Deliver(tx, recv) // warm scratch
		if allocs := testing.AllocsPerRun(50, func() {
			obs.got = obs.got[:0]
			ch.Deliver(tx, recv)
		}); allocs != 0 {
			t.Errorf("%s: observed Deliver allocates %.1f times per call, want 0", name, allocs)
		}
		ch.SetObserver(nil)
	}
}

// TestObserverSINRValueIsConsistent: the observed SINR of an isolated solo
// transmission equals the closed-form signal/noise ratio.
func TestObserverSINRValueIsConsistent(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}}
	p := Params{Alpha: 3, Beta: 1, Noise: 1, Power: 1000}
	c, err := New(p, pts)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	c.SetObserver(obs)
	recv := make([]int, 2)
	c.Deliver([]bool{true, false}, recv)
	if recv[1] != 0 || len(obs.got) != 1 {
		t.Fatalf("recv = %v, observations = %v", recv, obs.got)
	}
	want := p.Signal(3) / p.Noise
	if math.Abs(obs.got[0].sinr-want)/want > 1e-12 {
		t.Errorf("observed sinr %v, want %v", obs.got[0].sinr, want)
	}
}
