package sinr

import (
	"errors"
	"fmt"
	"math"

	"fadingcr/internal/geom"
)

// PowerChannel is an SINR channel in which each node transmits at its own
// fixed power. The paper's results are for the uniform-power model ("we
// study randomized algorithms using a fixed transmission power"); this
// channel exists so the repository can also exercise the power-control
// regime the related work ([11]) discusses, and so tests can probe how
// sensitive the algorithm is to power heterogeneity (e.g. hardware spread).
// It is not safe for concurrent use (it owns reusable delivery scratch
// buffers); create one channel per goroutine.
type PowerChannel struct {
	params  Params // Power field unused per-node; kept for α, β, N
	powers  []float64
	pts     []geom.Point
	gains   *gainCache // nil: compute attenuations on the fly
	ff      *farField  // nil: exact delivery (the default)
	par     int        // ≥ 2: intra-round parallel workers
	scratch deliverScratch
}

// NewWithPowers builds a per-node-power channel. powers[u] is node u's
// transmission power; all must be positive and finite. The Power field of
// params is ignored. Options configure the gain-cache delivery engine as in
// New.
func NewWithPowers(params Params, pts []geom.Point, powers []float64, opts ...Option) (*PowerChannel, error) {
	probe := params
	probe.Power = 1 // validate the shared constants independently of Power
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("sinr: channel needs at least one node")
	}
	if len(powers) != len(pts) {
		return nil, fmt.Errorf("sinr: %d powers for %d nodes", len(powers), len(pts))
	}
	for u, p := range powers {
		if !(p > 0) || math.IsInf(p, 1) {
			return nil, fmt.Errorf("sinr: node %d power %v must be positive and finite", u, p)
		}
	}
	ec, err := resolveEngine(opts)
	if err != nil {
		return nil, err
	}
	cpPts := make([]geom.Point, len(pts))
	copy(cpPts, pts)
	cpPow := make([]float64, len(powers))
	copy(cpPow, powers)
	c := &PowerChannel{
		params:  params,
		powers:  cpPow,
		pts:     cpPts,
		gains:   newGainCache(cpPts, params.Alpha, ec),
		par:     ec.workers(),
		scratch: newDeliverScratch(len(cpPts)),
	}
	if ec.farFieldEps > 0 {
		minP, maxP := cpPow[0], cpPow[0]
		for _, p := range cpPow[1:] {
			minP = math.Min(minP, p)
			maxP = math.Max(maxP, p)
		}
		c.ff, err = newFarField(cpPts, params.Alpha, params.Noise, minP, maxP, ec.farFieldEps, c.par)
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// N returns the number of nodes on the channel.
func (c *PowerChannel) N() int { return len(c.pts) }

// GainCacheBytes returns the footprint of the channel's precomputed gain
// matrix, or 0 when the channel computes attenuations on the fly.
func (c *PowerChannel) GainCacheBytes() int64 {
	if c.gains == nil {
		return 0
	}
	return c.gains.bytes()
}

// Powers returns a copy of the per-node power assignment.
func (c *PowerChannel) Powers() []float64 {
	return append([]float64(nil), c.powers...)
}

// signal returns the received signal strength of transmitter u at listener
// v under u's own power, from the cached gain row when available. Both
// branches evaluate the identical expression powers[u]·d(u,v)^{-α}, so
// results are bit-equal.
//
//crlint:hotpath
func (c *PowerChannel) signal(u, v int) float64 {
	if c.gains != nil {
		return c.powers[u] * c.gains.at(u, v)
	}
	return c.powers[u] * attenuation(c.pts[u].Dist2(c.pts[v]), c.params.Alpha)
}

// Deliver computes one round of reception; the contract matches
// Channel.Deliver.
//
//crlint:hotpath
func (c *PowerChannel) Deliver(tx []bool, recv []int) {
	if len(tx) != len(c.pts) || len(recv) != len(c.pts) {
		panic(fmt.Sprintf("sinr: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), len(c.pts)))
	}
	mDeliveries.Inc()
	switch {
	case c.ff != nil:
		mDeliveriesFarField.Inc()
	case c.gains != nil:
		mDeliveriesCached.Inc()
	default:
		mDeliveriesFallback.Inc()
	}
	txList := c.scratch.indices(tx)
	if len(txList) == 0 {
		for v := range recv {
			recv[v] = -1
		}
		return
	}
	if c.ff != nil {
		c.ff.prepareRound(txList)
	}
	n := len(c.pts)
	if c.par > 1 {
		//crlint:allow hotalloc deliverParallel's worker closures are the documented O(workers) per-round cost of the opt-in parallel engine
		c.deliverParallel(txList, tx)
	} else {
		switch {
		case c.ff != nil:
			for lo := 0; lo < n; lo += deliverTile {
				c.accumulateFarTile(0, lo, min(lo+deliverTile, n), tx, txList)
			}
		case c.gains != nil:
			for lo := 0; lo < n; lo += deliverTile {
				c.accumulateCachedTile(lo, min(lo+deliverTile, n), txList)
			}
		default:
			for lo := 0; lo < n; lo += deliverTile {
				c.accumulateFlyTile(lo, min(lo+deliverTile, n), txList, tx)
			}
		}
	}
	finalizeReceptions(c.params, &c.scratch, nil, tx, recv)
}

// deliverParallel fans pass one out over runTiles; see Channel.deliverParallel.
func (c *PowerChannel) deliverParallel(txList []int, tx []bool) {
	mDeliveriesParallel.Inc()
	n := len(c.pts)
	switch {
	case c.ff != nil:
		runTiles(n, c.par, func(w, lo, hi int) { c.accumulateFarTile(w, lo, hi, tx, txList) })
	case c.gains != nil:
		runTiles(n, c.par, func(_, lo, hi int) { c.accumulateCachedTile(lo, hi, txList) })
	default:
		runTiles(n, c.par, func(_, lo, hi int) { c.accumulateFlyTile(lo, hi, txList, tx) })
	}
}

// accumulateCachedTile is Channel.accumulateCachedTile with the
// per-transmitter power in place of the shared constant; the
// bit-identical-order argument carries over unchanged.
//
//crlint:hotpath
func (c *PowerChannel) accumulateCachedTile(lo, hi int, txList []int) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
	}
	for _, u := range txList {
		row := c.gains.row(u)
		power := c.powers[u]
		for v := lo; v < hi; v++ {
			s := power * row[v]
			totals[v] += s
			if s > best[v] {
				best[v], bestU[v] = s, u
			}
		}
	}
}

// accumulateFlyTile is the on-the-fly pass one over one listener tile; see
// Channel.accumulateFlyTile.
//
//crlint:hotpath
func (c *PowerChannel) accumulateFlyTile(lo, hi int, txList []int, tx []bool) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
		if tx[v] {
			continue
		}
		b, bu, t := -1.0, -1, 0.0
		for _, u := range txList {
			s := c.powers[u] * attenuation(c.pts[u].Dist2(c.pts[v]), c.params.Alpha)
			t += s
			if s > b {
				b, bu = s, u
			}
		}
		totals[v], best[v], bestU[v] = t, b, bu
	}
}

// accumulateFarTile is the ε far-field pass one over one listener tile; see
// Channel.accumulateFarTile. The pruning bounds were built with the
// channel's min/max node power, so the guarantee covers heterogeneous
// powers.
//
//crlint:hotpath
func (c *PowerChannel) accumulateFarTile(worker, lo, hi int, tx []bool, txList []int) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	pruned := int64(0)
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
		if tx[v] {
			continue
		}
		near := c.ff.nearSet(worker, v, tx, txList)
		pruned += int64(len(txList) - len(near))
		b, bu, t := -1.0, -1, 0.0
		for _, u := range near {
			s := c.signal(u, v)
			t += s
			if s > b {
				b, bu = s, u
			}
		}
		totals[v], best[v], bestU[v] = t, b, bu
	}
	mFarFieldPrunedTx.Add(pruned)
}

// UniformPowers returns a power vector assigning the same power to all n
// nodes — NewWithPowers(params, pts, UniformPowers(n, P)) behaves exactly
// like New(params with Power P, pts).
func UniformPowers(n int, power float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = power
	}
	return out
}
