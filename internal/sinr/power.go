package sinr

import (
	"errors"
	"fmt"
	"math"

	"fadingcr/internal/geom"
)

// PowerChannel is an SINR channel in which each node transmits at its own
// fixed power. The paper's results are for the uniform-power model ("we
// study randomized algorithms using a fixed transmission power"); this
// channel exists so the repository can also exercise the power-control
// regime the related work ([11]) discusses, and so tests can probe how
// sensitive the algorithm is to power heterogeneity (e.g. hardware spread).
// It is not safe for concurrent use (it owns reusable delivery scratch
// buffers); create one channel per goroutine.
type PowerChannel struct {
	params  Params // Power field unused per-node; kept for α, β, N
	powers  []float64
	pts     []geom.Point
	gains   *gainCache // nil: compute attenuations on the fly
	scratch deliverScratch
}

// NewWithPowers builds a per-node-power channel. powers[u] is node u's
// transmission power; all must be positive and finite. The Power field of
// params is ignored. Options configure the gain-cache delivery engine as in
// New.
func NewWithPowers(params Params, pts []geom.Point, powers []float64, opts ...Option) (*PowerChannel, error) {
	probe := params
	probe.Power = 1 // validate the shared constants independently of Power
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("sinr: channel needs at least one node")
	}
	if len(powers) != len(pts) {
		return nil, fmt.Errorf("sinr: %d powers for %d nodes", len(powers), len(pts))
	}
	for u, p := range powers {
		if !(p > 0) || math.IsInf(p, 1) {
			return nil, fmt.Errorf("sinr: node %d power %v must be positive and finite", u, p)
		}
	}
	cpPts := make([]geom.Point, len(pts))
	copy(cpPts, pts)
	cpPow := make([]float64, len(powers))
	copy(cpPow, powers)
	gains := newGainCache(cpPts, params.Alpha, resolveEngine(opts))
	return &PowerChannel{
		params:  params,
		powers:  cpPow,
		pts:     cpPts,
		gains:   gains,
		scratch: newDeliverScratch(len(cpPts), gains != nil),
	}, nil
}

// N returns the number of nodes on the channel.
func (c *PowerChannel) N() int { return len(c.pts) }

// GainCacheBytes returns the footprint of the channel's precomputed gain
// matrix, or 0 when the channel computes attenuations on the fly.
func (c *PowerChannel) GainCacheBytes() int64 {
	if c.gains == nil {
		return 0
	}
	return c.gains.bytes()
}

// Powers returns a copy of the per-node power assignment.
func (c *PowerChannel) Powers() []float64 {
	return append([]float64(nil), c.powers...)
}

// Deliver computes one round of reception; the contract matches
// Channel.Deliver.
func (c *PowerChannel) Deliver(tx []bool, recv []int) {
	if len(tx) != len(c.pts) || len(recv) != len(c.pts) {
		panic(fmt.Sprintf("sinr: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), len(c.pts)))
	}
	mDeliveries.Inc()
	txList := c.scratch.indices(tx)
	if c.gains != nil {
		mDeliveriesCached.Inc()
		c.deliverCached(txList, tx, recv)
		return
	}
	mDeliveriesFallback.Inc()
	for v := range c.pts {
		recv[v] = -1
		if tx[v] || len(txList) == 0 {
			continue
		}
		best, bestU, total := -1.0, -1, 0.0
		for _, u := range txList {
			s := c.powers[u] * attenuation(c.pts[u].Dist2(c.pts[v]), c.params.Alpha)
			total += s
			if s > best {
				best, bestU = s, u
			}
		}
		if c.params.SINR(best, total-best) >= c.params.Beta {
			recv[v] = bestU
		}
	}
}

// deliverCached is Channel.deliverCached with the per-transmitter power in
// place of the shared constant; the bit-identical-order argument carries
// over unchanged.
func (c *PowerChannel) deliverCached(txList []int, tx []bool, recv []int) {
	if len(txList) == 0 {
		for v := range recv {
			recv[v] = -1
		}
		return
	}
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	for v := range totals {
		totals[v], best[v], bestU[v] = 0, -1, -1
	}
	for _, u := range txList {
		row := c.gains.row(u)
		power := c.powers[u]
		for v, g := range row {
			s := power * g
			totals[v] += s
			if s > best[v] {
				best[v], bestU[v] = s, u
			}
		}
	}
	for v := range recv {
		recv[v] = -1
		if tx[v] {
			continue
		}
		if c.params.SINR(best[v], totals[v]-best[v]) >= c.params.Beta {
			recv[v] = bestU[v]
		}
	}
}

// UniformPowers returns a power vector assigning the same power to all n
// nodes — NewWithPowers(params, pts, UniformPowers(n, P)) behaves exactly
// like New(params with Power P, pts).
func UniformPowers(n int, power float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = power
	}
	return out
}
