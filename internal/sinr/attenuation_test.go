package sinr

import (
	"math"
	"testing"
	"testing/quick"
)

// TestAttenuationMatchesPow: every fast path agrees with math.Pow to within
// a few ulps across the distance range the simulator uses.
func TestAttenuationMatchesPow(t *testing.T) {
	f := func(dRaw uint32, pick uint8) bool {
		d2 := 1e-6 + float64(dRaw)/1e3 // (0, ~4.3e6]
		alphas := []float64{2, 3, 4, 6, 2.5, 3.7}
		alpha := alphas[int(pick)%len(alphas)]
		got := attenuation(d2, alpha)
		want := math.Pow(d2, -alpha/2)
		return math.Abs(got-want) <= 1e-12*math.Max(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAttenuationKnownValues(t *testing.T) {
	cases := []struct {
		d2, alpha, want float64
	}{
		{4, 2, 0.25},     // d=2, α=2 → 1/4
		{4, 3, 0.125},    // d=2, α=3 → 1/8
		{4, 4, 1.0 / 16}, // d=2, α=4 → 1/16
		{4, 6, 1.0 / 64}, // d=2, α=6 → 1/64
		{1, 3, 1},        // unit distance
		{0.25, 2, 4},     // d=0.5, α=2 → 4
	}
	for _, c := range cases {
		if got := attenuation(c.d2, c.alpha); math.Abs(got-c.want) > 1e-12*c.want {
			t.Errorf("attenuation(%v, %v) = %v, want %v", c.d2, c.alpha, got, c.want)
		}
	}
}

// BenchmarkAttenuation quantifies the fast-path win.
func BenchmarkAttenuation(b *testing.B) {
	b.Run("fast-alpha3", func(b *testing.B) {
		sum := 0.0
		for i := 0; i < b.N; i++ {
			sum += attenuation(float64(i%1000)+1, 3)
		}
		_ = sum
	})
	b.Run("pow-alpha3.1", func(b *testing.B) {
		sum := 0.0
		for i := 0; i < b.N; i++ {
			sum += attenuation(float64(i%1000)+1, 3.1)
		}
		_ = sum
	})
}
