package sinr

import "fadingcr/internal/obs"

// Delivery-engine metrics, exported through the CLI -metrics flag. They are
// plain atomic increments — no allocation, no branching on values — so the
// //crlint:hotpath contract of the Deliver implementations is preserved, and
// they never touch the simulated-randomness path (DESIGN.md §8).
// ReadGainCacheStats is a façade over the gaincache_* metrics below, kept so
// the CLI summary lines and existing callers are unaffected.
var (
	mDeliveries         = obs.Default.Counter("sinr.deliveries")
	mDeliveriesCached   = obs.Default.Counter("sinr.deliveries_cached")
	mDeliveriesFallback = obs.Default.Counter("sinr.deliveries_fallback")
	mDeliveriesFarField = obs.Default.Counter("sinr.deliveries_farfield")
	mDeliveriesParallel = obs.Default.Counter("sinr.deliveries_parallel")
	mFarFieldPrunedTx   = obs.Default.Counter("sinr.farfield_pruned_tx")
	mGainCacheBuilt     = obs.Default.Counter("sinr.gaincache_built")
	mGainCacheFallback  = obs.Default.Counter("sinr.gaincache_fallback")
	mGainCacheMaxBytes  = obs.Default.Gauge("sinr.gaincache_max_bytes")
)
