package sinr

import "sync"

// Intra-round parallel delivery.
//
// Pass one of every engine accumulates per-listener state over fixed
// deliverTile-wide listener tiles; tiles touch disjoint slices of the
// scratch arrays, so they can run concurrently with no synchronisation
// beyond the final join. The partition shape is fixed by deliverTile alone —
// tile t always covers listeners [t·deliverTile, min((t+1)·deliverTile, n))
// and is processed by worker t mod workers — so the float operations
// performed for any given listener are identical at every worker count, and
// receptions are byte-identical from workers=1 to MaxDeliverParallelism.
// Pass two (threshold + observer) always runs sequentially in ascending
// listener order, preserving the ReceptionObserver ordering contract.
//
// Parallel rounds allocate (worker closures and goroutine stacks, O(workers)
// per Deliver); the zero-allocation hot-path guarantee covers the sequential
// default, which never reaches this file.

// runTiles partitions [0, n) into deliverTile-wide tiles and invokes kernel
// for each, distributing tile t to worker t mod workers. The worker index is
// passed through so kernels can address per-worker scratch.
func runTiles(n, workers int, kernel func(worker, lo, hi int)) {
	tiles := (n + deliverTile - 1) / deliverTile
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 {
		for t := 0; t < tiles; t++ {
			lo := t * deliverTile
			kernel(0, lo, min(lo+deliverTile, n))
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for t := w; t < tiles; t += workers {
				lo := t * deliverTile
				kernel(w, lo, min(lo+deliverTile, n))
			}
		}(w)
	}
	wg.Wait()
}
