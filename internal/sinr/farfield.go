package sinr

import (
	"fmt"

	"fadingcr/internal/geom"
)

// The ε far-field pruning engine.
//
// Exact delivery is Θ(|tx|·n) per round — every transmitter contributes to
// every listener — which is the real wall at n = 100,000, not the gain
// matrix. But path loss d^{-α} with α > 2 makes distant transmitters
// collectively negligible: the interference arriving at a listener from
// outside radius r decays like r^{2-α}. The far-field engine exploits this
// with the uniform-grid spatial index from internal/geom. Once per round it
// buckets the transmitter list by grid cell (a counting sort into CSR form,
// shared read-only by every worker); per listener it then expands square
// rings of cells outward, collecting the bucketed transmitters exactly
// (summed in ascending transmitter index, the binding summation-order
// contract), and stops as soon as a conservative bound proves the remaining
// transmitters contribute at most eps·(Noise + near interference).
//
// The guarantee (DESIGN.md §8): the pruned mass F_v at listener v satisfies
// F_v ≤ eps·(Noise + LB_v) where LB_v is a provable lower bound on the near
// signal already collected, so the ε-mode SINR only ever *overestimates* the
// exact one, by a denominator deficit of at most F_v. Disagreements with the
// exact engine are one-sided (ε-mode may deliver where exact just misses β,
// never the reverse) and confined to receptions whose exact SINR lies within
// β·F_v/denominator of the threshold; a far transmitter itself can never be
// decoded by either engine when eps/(1−eps) < β, which the eps < 0.5 cap
// guarantees for every β ≥ 1. The pruning decision accumulates LB_v from the
// collected transmitters' exact distances (times the static minimum power) in
// the fixed ring-visit order, so it is bit-deterministic — the same IEEE
// operations in the same order on every run — and identical in cached and
// on-the-fly modes, which share one attenuation function. Exact distances
// matter: a per-cell farthest-corner bound undercounts the nearest
// transmitters by ~cell^α and inflates the stop radius past usefulness.
const (
	// farFieldSmallTx: with at most this many transmitters the engine uses
	// the transmitter list directly — exact, zero pruning. Ring-scanning a
	// grid to find two transmitters would invert the asymptotics (sparse
	// transmitter sets are precisely the regime contention resolution
	// converges to).
	farFieldSmallTx = 64
	// farFieldCellSize is the initial grid cell size; deployments are
	// normalised to shortest link 1, so 2.0 keeps buckets small on
	// constant-density deployments.
	farFieldCellSize = 2.0
	// farFieldMinCells floors the grid-size cap so small deployments keep
	// fine cells even when n/farFieldPointsPerCell is tiny.
	farFieldMinCells = 1024
	// farFieldPointsPerCell is the coarsening target: the ring scan pays a
	// fixed overhead per visited cell, so on large deployments cells are
	// doubled until they hold several points each, amortising that overhead
	// against the per-transmitter work. The resulting cell count — and with
	// it every near/far partition — is a pure function of n.
	farFieldPointsPerCell = 8
)

// farField is the per-channel pruning state: the spatial index over the
// deployment, the per-round transmitter buckets, and per-worker scratch. It
// is immutable during a round's tile pass except for the per-worker buffers,
// which are indexed by worker so concurrent tiles never share one.
type farField struct {
	eps         float64
	alpha       float64
	noise       float64
	minPower    float64 // per-tx lower bound used for the near-signal bound
	maxPower    float64 // per-tx upper bound used for the far-mass bound
	pts         []geom.Point
	ix          *geom.Index
	cols, rows  int
	cell        float64
	radixPasses int // bytes needed to radix-sort indices < n

	// cellOf maps every node to its cell id (row·cols + col): fixed
	// geometry, computed once.
	cellOf []int32

	// Per-round transmitter buckets in CSR form, rebuilt by prepareRound:
	// cellTxIdx[cellTxStart[c]:cellTxStart[c+1]] holds the round's
	// transmitters in cell c, in ascending index. Read-only during tiles.
	cellTxStart []int32
	cellTxIdx   []int32

	near [][]int  // per-worker near-set buffers, each cap n
	aux  [][]int  // per-worker radix scratch, each len n
	mark [][]bool // per-worker membership masks, each len n
}

// newFarField builds the pruning state. minPower/maxPower bound the per-node
// transmission power (equal for the uniform-power channels). The grid is
// capped at max(farFieldMinCells, n/farFieldPointsPerCell) cells, which
// both coarsens cells to several points each on large deployments and keeps
// huge-spread deployments (exponential chains) from exhausting memory; the
// cap is a pure function of n, keeping the near/far partition — and thus
// every reception — reproducible.
func newFarField(pts []geom.Point, alpha, noise, minPower, maxPower, eps float64, workers int) (*farField, error) {
	maxCells := len(pts) / farFieldPointsPerCell
	if maxCells < farFieldMinCells {
		maxCells = farFieldMinCells
	}
	ix, err := geom.NewIndexCapped(pts, farFieldCellSize, maxCells)
	if err != nil {
		return nil, fmt.Errorf("sinr: far-field index: %w", err)
	}
	cols, rows, cell := ix.Grid()
	ff := &farField{
		eps:         eps,
		alpha:       alpha,
		noise:       noise,
		minPower:    minPower,
		maxPower:    maxPower,
		pts:         pts,
		ix:          ix,
		cols:        cols,
		rows:        rows,
		cell:        cell,
		radixPasses: 1,
		cellOf:      make([]int32, len(pts)),
		cellTxStart: make([]int32, cols*rows+1),
		cellTxIdx:   make([]int32, len(pts)),
		near:        make([][]int, workers),
		aux:         make([][]int, workers),
		mark:        make([][]bool, workers),
	}
	for limit := 256; limit < len(pts); limit <<= 8 {
		ff.radixPasses++
	}
	for i, p := range pts {
		col, row := ix.CellAt(p)
		ff.cellOf[i] = int32(row*cols + col)
	}
	for w := range ff.near {
		ff.near[w] = make([]int, 0, len(pts))
		ff.aux[w] = make([]int, len(pts))
		ff.mark[w] = make([]bool, len(pts))
	}
	return ff, nil
}

// prepareRound buckets the round's transmitters by grid cell — a counting
// sort into the CSR arrays — once per Deliver, before the tile pass. The
// buckets inherit txList's ascending order within each cell. With at most
// farFieldSmallTx transmitters nearSet never consults the buckets, so the
// pass is skipped.
//
//crlint:hotpath
func (ff *farField) prepareRound(txList []int) {
	if len(txList) <= farFieldSmallTx {
		return
	}
	start := ff.cellTxStart
	for i := range start {
		start[i] = 0
	}
	for _, u := range txList {
		start[ff.cellOf[u]+1]++
	}
	for i := 1; i < len(start); i++ {
		start[i] += start[i-1]
	}
	idx := ff.cellTxIdx
	for _, u := range txList {
		c := ff.cellOf[u]
		idx[start[c]] = int32(u)
		start[c]++
	}
	// The fill advanced start[c] to cell c's end; shift back to starts.
	for i := len(start) - 1; i > 0; i-- {
		start[i] = start[i-1]
	}
	start[0] = 0
}

// nearSet returns the transmitters listener v must sum exactly, in ascending
// transmitter index. With at most farFieldSmallTx transmitters it returns
// txList itself (exact mode, no pruning). Otherwise it walks grid-cell rings
// outward from v's cell — perimeter cells only, O(ring) per ring — draining
// the round's per-cell transmitter buckets while accumulating a lower bound
// on their total signal (minPower · exact attenuation per transmitter), and
// stops before ring r once every unseen transmitter — necessarily at
// distance ≥ (r−1)·cell — can contribute at most eps·(Noise + bound) in
// aggregate. The returned slice aliases the worker's scratch buffers and is
// valid until the next call on that worker.
//
//crlint:hotpath
func (ff *farField) nearSet(worker, v int, tx []bool, txList []int) []int {
	if len(txList) <= farFieldSmallTx {
		return txList
	}
	near := ff.near[worker][:0]
	p := ff.pts[v]
	col, row := ff.ix.CellAt(p)
	start, idx := ff.cellTxStart, ff.cellTxIdx
	txTotal := len(txList)
	txSeen := 0
	lowBound := 0.0 // provable lower bound on the collected near signal
	maxRing := ff.cols
	if ff.rows > maxRing {
		maxRing = ff.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		if txSeen == txTotal {
			break
		}
		if ring >= 2 && txSeen > 0 {
			// Every transmitter not yet seen sits in ring ≥ `ring`, hence at
			// distance ≥ (ring−1)·cell from p (same floor as Index.Nearest).
			d := float64(ring-1) * ff.cell
			farCap := float64(txTotal-txSeen) * ff.maxPower * attenuation(d*d, ff.alpha)
			if farCap <= ff.eps*(ff.noise+lowBound) {
				break
			}
		}
		for dr := -ring; dr <= ring; dr++ {
			r := row + dr
			if r < 0 || r >= ff.rows {
				continue
			}
			// Top and bottom ring rows in full; middle rows contribute only
			// their two perimeter cells (the step jumps the interior), so a
			// ring costs O(ring) cells, not O(ring²).
			step := 1
			if dr > -ring && dr < ring {
				step = 2 * ring
			}
			for dc := -ring; dc <= ring; dc += step {
				c := col + dc
				if c < 0 || c >= ff.cols {
					continue
				}
				cellID := r*ff.cols + c
				lo, hi := start[cellID], start[cellID+1]
				if lo == hi {
					continue
				}
				for _, w := range idx[lo:hi] {
					u := int(w)
					near = append(near, u)
					lowBound += ff.minPower * attenuation(p.Dist2(ff.pts[u]), ff.alpha)
				}
				txSeen += int(hi - lo)
			}
		}
	}
	if txSeen == txTotal {
		// Nothing was pruned: the near set is the (already ascending)
		// transmitter list itself.
		return txList
	}
	return ff.sortAscending(worker, near, txList)
}

// sortAscending rebuilds the ring-ordered near buffer in ascending
// transmitter index — the binding summation-order contract — without a
// comparison sort, whose per-listener O(k log k) dominated whole rounds.
// Dense near sets filter the (already ascending) txList through a
// membership mask in O(|near| + |tx|); sparse ones LSD-radix-sort the
// buffer with byte digits in O(passes·|near|). Both produce the identical
// sorted slice, so the size heuristic never affects results.
//
//crlint:hotpath
func (ff *farField) sortAscending(worker int, near, txList []int) []int {
	if len(near)*4 >= len(txList) {
		mark := ff.mark[worker]
		for _, u := range near {
			mark[u] = true
		}
		// Rewriting near[:0] in place is safe: the output is a permutation
		// of near's elements and the scan never revisits an overwritten
		// slot; unmarking walks the output, which has the same members.
		out := near[:0]
		for _, u := range txList {
			if mark[u] {
				out = append(out, u)
			}
		}
		for _, u := range out {
			mark[u] = false
		}
		return out
	}
	src := near
	dst := ff.aux[worker][:len(near)]
	var counts [256]int
	for pass := 0; pass < ff.radixPasses; pass++ {
		shift := pass * 8
		for i := range counts {
			counts[i] = 0
		}
		for _, u := range src {
			counts[(u>>shift)&0xff]++
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, u := range src {
			d := (u >> shift) & 0xff
			dst[counts[d]] = u
			counts[d]++
		}
		src, dst = dst, src
	}
	return src
}
