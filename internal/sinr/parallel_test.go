package sinr

import (
	"fmt"
	"testing"

	"fadingcr/internal/xrand"
)

// deliverer is the common Deliver surface of the three engines.
type deliverer interface {
	Deliver(tx []bool, recv []int)
}

// TestParallelDeliverByteIdentical: for every engine and every mode, the
// parallel option must produce receptions byte-identical at workers 1, 3,
// and 8 — and, for the unfaded channels, identical to the sequential
// default with no parallel option at all. n exceeds deliverTile so the
// partition genuinely has multiple tiles to distribute.
func TestParallelDeliverByteIdentical(t *testing.T) {
	const side = 50 // n = 2500 > deliverTile
	n := side * side
	pts := gridPoints(side)
	p := gridParams(4, 1.5, 1, side)
	powers := make([]float64, n)
	prng := xrand.New(3)
	for i := range powers {
		powers[i] = p.Power * (0.5 + prng.Float64())
	}
	workerCounts := []int{1, 3, 8}

	// Each case builds one channel per worker count plus (optionally) a
	// baseline channel with no parallel option; all must agree bytewise.
	cases := []struct {
		name     string
		baseline func() (deliverer, error) // nil: no sequential baseline (Rayleigh default stream differs by design)
		build    func(workers int) (deliverer, error)
	}{
		{
			name:     "plain-cached",
			baseline: func() (deliverer, error) { return New(p, pts, WithGainCacheCap(0)) },
			build: func(w int) (deliverer, error) {
				return New(p, pts, WithGainCacheCap(0), WithDeliverParallelism(w))
			},
		},
		{
			name:     "plain-fly",
			baseline: func() (deliverer, error) { return New(p, pts, WithGainCache(false)) },
			build: func(w int) (deliverer, error) {
				return New(p, pts, WithGainCache(false), WithDeliverParallelism(w))
			},
		},
		{
			name:     "plain-farfield",
			baseline: func() (deliverer, error) { return New(p, pts, WithFarFieldEps(0.01)) },
			build: func(w int) (deliverer, error) {
				return New(p, pts, WithFarFieldEps(0.01), WithDeliverParallelism(w))
			},
		},
		{
			name:     "power",
			baseline: func() (deliverer, error) { return NewWithPowers(p, pts, powers) },
			build: func(w int) (deliverer, error) {
				return NewWithPowers(p, pts, powers, WithDeliverParallelism(w))
			},
		},
		{
			// The substream fade engine is selected by the parallel option
			// itself (workers=1 included), so all worker counts share one
			// stream; the optionless default engine is a different stream
			// by documented design and is not compared here.
			name:     "rayleigh-substream",
			baseline: nil,
			build: func(w int) (deliverer, error) {
				return NewRayleigh(p, pts, 42, WithDeliverParallelism(w))
			},
		},
		{
			name:     "rayleigh-farfield",
			baseline: func() (deliverer, error) { return NewRayleigh(p, pts, 42, WithFarFieldEps(0.01)) },
			build: func(w int) (deliverer, error) {
				return NewRayleigh(p, pts, 42, WithFarFieldEps(0.01), WithDeliverParallelism(w))
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chans := make([]deliverer, 0, len(workerCounts)+1)
			labels := make([]string, 0, len(workerCounts)+1)
			if tc.baseline != nil {
				c, err := tc.baseline()
				if err != nil {
					t.Fatal(err)
				}
				chans = append(chans, c)
				labels = append(labels, "sequential")
			}
			for _, w := range workerCounts {
				c, err := tc.build(w)
				if err != nil {
					t.Fatal(err)
				}
				chans = append(chans, c)
				labels = append(labels, fmt.Sprintf("workers=%d", w))
			}
			rng := xrand.New(17)
			recvs := make([][]int, len(chans))
			for i := range recvs {
				recvs[i] = make([]int, n)
			}
			for round := 0; round < 3; round++ {
				tx := randomTx(rng, n, 0.2)
				for i, c := range chans {
					c.Deliver(tx, recvs[i])
				}
				for i := 1; i < len(recvs); i++ {
					for v := range recvs[0] {
						if recvs[0][v] != recvs[i][v] {
							t.Fatalf("round %d listener %d: %s recv %d, %s recv %d",
								round, v, labels[0], recvs[0][v], labels[i], recvs[i][v])
						}
					}
				}
			}
		})
	}
}

// TestRunTilesPartition: the tile partition is fixed-shape — every listener
// is covered exactly once at any worker count, including worker counts
// above the tile count (clamped) and n not divisible by deliverTile.
func TestRunTilesPartition(t *testing.T) {
	for _, n := range []int{1, deliverTile - 1, deliverTile, deliverTile + 1, 3*deliverTile + 17} {
		for _, workers := range []int{1, 2, 7, MaxDeliverParallelism} {
			seen := make([]int, n)
			runTiles(n, workers, func(_, lo, hi int) {
				for v := lo; v < hi; v++ {
					seen[v]++
				}
			})
			for v, cnt := range seen {
				if cnt != 1 {
					t.Fatalf("n=%d workers=%d: listener %d covered %d times, want exactly once", n, workers, v, cnt)
				}
			}
		}
	}
}

// TestParallelObserverOrdering: the finalize pass is sequential, so the
// observer sees receptions in ascending listener order even with 8 workers.
func TestParallelObserverOrdering(t *testing.T) {
	const side = 50
	n := side * side
	pts := gridPoints(side)
	p := gridParams(4, 1.5, 1, side)
	c, err := New(p, pts, WithDeliverParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	c.SetObserver(observerFunc(func(listener, from int, sinr, margin float64) {
		order = append(order, listener)
	}))
	rng := xrand.New(29)
	recv := make([]int, n)
	c.Deliver(randomTx(rng, n, 0.05), recv)
	if len(order) == 0 {
		t.Fatal("no receptions observed; pick a sparser transmit density")
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("observer saw listener %d after %d — finalize pass not in ascending order", order[i], order[i-1])
		}
	}
}

// observerFunc adapts a function to the ReceptionObserver interface.
type observerFunc func(listener, from int, sinr, margin float64)

func (f observerFunc) OnReception(listener, from int, sinr, margin float64) {
	f(listener, from, sinr, margin)
}
