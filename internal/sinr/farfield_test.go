package sinr

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/xrand"
)

// gridPoints builds a side×side unit grid — a constant-density deployment
// with shortest link 1, constructed directly so large-n tests skip the
// O(n²) deployment normalisation.
func gridPoints(side int) []geom.Point {
	pts := make([]geom.Point, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	return pts
}

// gridParams derives single-hop-feasible parameters for a side×side grid.
func gridParams(alpha, beta, noise float64, side int) Params {
	maxDist := float64(side-1) * math.Sqrt2
	return Params{
		Alpha: alpha,
		Beta:  beta,
		Noise: noise,
		Power: MinSingleHopPower(alpha, beta, noise, maxDist, DefaultSingleHopMargin),
	}
}

func randomTx(rng *rand.Rand, n int, density float64) []bool {
	tx := make([]bool, n)
	for i := range tx {
		tx[i] = rng.Float64() < density
	}
	return tx
}

// TestFarFieldCrossCheck is the exact-vs-ε cross-check: over randomized
// dense transmit sets, every ε-mode reception disagreement with the exact
// engine must be (a) one-sided — ε-mode delivers where exact just misses the
// threshold, never the reverse — and (b) within the documented margin
// window: the exact SINR of the disputed reception is at least
// β/(1 + β·eps·(Noise+T)/s), where T is the exact total signal at the
// listener and s the disputed transmitter's signal. The observed
// disagreement rate is logged as the quantification the bound promises.
func TestFarFieldCrossCheck(t *testing.T) {
	const side = 40
	n := side * side
	pts := gridPoints(side)
	for _, alpha := range []float64{3, 4} {
		for _, eps := range []float64{1e-3, 0.05} {
			p := gridParams(alpha, 1.5, 1, side)
			exact, err := New(p, pts)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := New(p, pts, WithFarFieldEps(eps))
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(uint64(1000*alpha) + uint64(eps*1e6))
			re, ra := make([]int, n), make([]int, n)
			listeners, disagreements := 0, 0
			for round := 0; round < 6; round++ {
				tx := randomTx(rng, n, 0.2)
				exact.Deliver(tx, re)
				approx.Deliver(tx, ra)
				for v := 0; v < n; v++ {
					if tx[v] {
						continue
					}
					listeners++
					if re[v] == ra[v] {
						continue
					}
					disagreements++
					// One-sided: ε-mode may deliver where exact does not;
					// an exact reception can never be lost or redirected.
					if re[v] != -1 {
						t.Fatalf("α=%v eps=%v listener %d: exact delivered %d but ε-mode %d — disagreement is not one-sided",
							alpha, eps, v, re[v], ra[v])
					}
					// The disputed reception must sit inside the ε margin
					// window just below the threshold.
					u := ra[v]
					s, total := 0.0, 0.0
					for w := range tx {
						if !tx[w] || w == v {
							continue
						}
						sw := p.Power * attenuation(pts[w].Dist2(pts[v]), p.Alpha)
						total += sw
						if w == u {
							s = sw
						}
					}
					exactRatio := p.SINR(s, total-s)
					if exactRatio >= p.Beta {
						t.Fatalf("α=%v eps=%v listener %d: exact SINR %v ≥ β=%v yet exact engine delivered nothing",
							alpha, eps, v, exactRatio, p.Beta)
					}
					floor := p.Beta / (1 + p.Beta*eps*(p.Noise+total)/s)
					if exactRatio < floor*(1-1e-9) {
						t.Fatalf("α=%v eps=%v listener %d: exact SINR %v below ε margin floor %v — pruning dropped more than eps allows",
							alpha, eps, v, exactRatio, floor)
					}
				}
			}
			rate := float64(disagreements) / float64(listeners)
			t.Logf("α=%v eps=%v: %d/%d listener-rounds disagree (rate %.2e)", alpha, eps, disagreements, listeners, rate)
		}
	}
}

// TestFarFieldPrunes: the ε engine must actually skip far transmitters on a
// large dense deployment (otherwise it is just a slower exact engine), and
// the skipped work must be visible in the sinr.farfield_pruned_tx metric.
func TestFarFieldPrunes(t *testing.T) {
	const side = 40
	n := side * side
	pts := gridPoints(side)
	p := gridParams(4, 1.5, 1, side)
	c, err := New(p, pts, WithFarFieldEps(0.05))
	if err != nil {
		t.Fatal(err)
	}
	before := mFarFieldPrunedTx.Load()
	rng := xrand.New(7)
	recv := make([]int, n)
	c.Deliver(randomTx(rng, n, 0.2), recv)
	if pruned := mFarFieldPrunedTx.Load() - before; pruned <= 0 {
		t.Fatalf("eps=0.05 on a %d-node dense grid pruned %d transmitter evaluations, want > 0", n, pruned)
	}
}

// TestFarFieldCachedMatchesUncached: the pruning decision is pure cell
// geometry, and near-set signals are bit-equal cached and uncached — so the
// ε engine must produce bit-identical receptions in both gain-cache modes.
func TestFarFieldCachedMatchesUncached(t *testing.T) {
	const side = 24
	n := side * side
	pts := gridPoints(side)
	p := gridParams(3, 1.5, 1, side)
	cached, err := New(p, pts, WithFarFieldEps(0.02), WithGainCacheCap(0))
	if err != nil {
		t.Fatal(err)
	}
	if cached.GainCacheBytes() == 0 {
		t.Fatal("cache expected but absent")
	}
	direct, err := New(p, pts, WithFarFieldEps(0.02), WithGainCache(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	ra, rb := make([]int, n), make([]int, n)
	for round := 0; round < 5; round++ {
		tx := randomTx(rng, n, 0.3)
		cached.Deliver(tx, ra)
		direct.Deliver(tx, rb)
		for v := range ra {
			if ra[v] != rb[v] {
				t.Fatalf("round %d listener %d: cached ε recv %d, uncached ε recv %d", round, v, ra[v], rb[v])
			}
		}
	}
}

// TestFarFieldSmallTxIsExact: with at most farFieldSmallTx transmitters the
// ε engine uses the transmitter list directly, so receptions are
// bit-identical to the exact engine — the sparse regime contention
// resolution converges to never pays an approximation.
func TestFarFieldSmallTxIsExact(t *testing.T) {
	const side = 30
	n := side * side
	pts := gridPoints(side)
	p := gridParams(3, 1.5, 1, side)
	exact, err := New(p, pts)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := New(p, pts, WithFarFieldEps(0.4))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(23)
	re, ra := make([]int, n), make([]int, n)
	for _, k := range []int{1, 2, farFieldSmallTx} {
		tx := make([]bool, n)
		for picked := 0; picked < k; {
			u := int(rng.Uint64() % uint64(n))
			if !tx[u] {
				tx[u] = true
				picked++
			}
		}
		exact.Deliver(tx, re)
		approx.Deliver(tx, ra)
		for v := range re {
			if re[v] != ra[v] {
				t.Fatalf("|tx|=%d listener %d: exact recv %d, ε recv %d — small-tx path must be exact", k, v, re[v], ra[v])
			}
		}
	}
}

// TestFarFieldZeroAllocSteadyState: the sequential ε engine shares the
// zero-allocation hot-path guarantee — near-set buffers are preallocated
// per worker and slices.Sort is in-place.
func TestFarFieldZeroAllocSteadyState(t *testing.T) {
	const side = 32
	n := side * side
	pts := gridPoints(side)
	p := gridParams(4, 1.5, 1, side)
	c, err := New(p, pts, WithFarFieldEps(0.01))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	tx := randomTx(rng, n, 0.2)
	recv := make([]int, n)
	c.Deliver(tx, recv) // warm-up
	if allocs := testing.AllocsPerRun(10, func() { c.Deliver(tx, recv) }); allocs != 0 {
		t.Errorf("sequential ε Deliver allocates %v times per round, want 0", allocs)
	}
}

// TestFarFieldRayleighDeterministic: the faded ε engine draws per-listener
// fade substreams, so equal seeds give equal receptions — across separate
// channels and across gain-cache modes.
func TestFarFieldRayleighDeterministic(t *testing.T) {
	const side = 24
	n := side * side
	pts := gridPoints(side)
	p := gridParams(3, 1.5, 1, side)
	a, err := NewRayleigh(p, pts, 42, WithFarFieldEps(0.02))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRayleigh(p, pts, 42, WithFarFieldEps(0.02), WithGainCache(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	ra, rb := make([]int, n), make([]int, n)
	for round := 0; round < 4; round++ {
		tx := randomTx(rng, n, 0.3)
		a.Deliver(tx, ra)
		b.Deliver(tx, rb)
		for v := range ra {
			if ra[v] != rb[v] {
				t.Fatalf("round %d listener %d: recv %d vs %d across gain-cache modes", round, v, ra[v], rb[v])
			}
		}
	}
}

// TestFarFieldPowerChannelBounds: the heterogeneous-power ε engine must
// stay within the same one-sided disagreement discipline (its pruning bound
// uses the per-channel min/max powers).
func TestFarFieldPowerChannelBounds(t *testing.T) {
	const side = 24
	n := side * side
	pts := gridPoints(side)
	p := gridParams(4, 1.5, 1, side)
	powers := make([]float64, n)
	prng := xrand.New(99)
	for i := range powers {
		powers[i] = p.Power * (0.5 + prng.Float64()) // heterogeneous ×[0.5, 1.5)
	}
	exact, err := NewWithPowers(p, pts, powers)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := NewWithPowers(p, pts, powers, WithFarFieldEps(0.05))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	re, ra := make([]int, n), make([]int, n)
	for round := 0; round < 5; round++ {
		tx := randomTx(rng, n, 0.25)
		exact.Deliver(tx, re)
		approx.Deliver(tx, ra)
		for v := range re {
			if re[v] != ra[v] && re[v] != -1 {
				t.Fatalf("round %d listener %d: exact delivered %d, ε %d — power-channel disagreement not one-sided",
					round, v, re[v], ra[v])
			}
		}
	}
}

func TestFarFieldOptionValidation(t *testing.T) {
	pts := gridPoints(4)
	p := gridParams(3, 1.5, 1, 4)
	for _, eps := range []float64{-0.1, 0.5, 0.9, math.Inf(1), math.NaN()} {
		if _, err := New(p, pts, WithFarFieldEps(eps)); err == nil {
			t.Errorf("eps=%v accepted, want error", eps)
		}
	}
	for _, workers := range []int{-1, MaxDeliverParallelism + 1} {
		if _, err := New(p, pts, WithDeliverParallelism(workers)); err == nil {
			t.Errorf("workers=%d accepted, want error", workers)
		}
	}
	if _, err := EngineOptions("bogus", 0, 0); err == nil {
		t.Error("bogus gain-cache mode accepted")
	}
	if _, err := EngineOptions("auto", 0.7, 0); err == nil {
		t.Error("eps=0.7 accepted by EngineOptions")
	}
	if _, err := EngineOptions("auto", 0, -3); err == nil {
		t.Error("workers=-3 accepted by EngineOptions")
	}
	opts, err := EngineOptions("on", 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 4 { // gaincache on = 2 options, plus eps, plus parallel
		t.Errorf("EngineOptions(on, 0.1, 8) = %d options, want 4", len(opts))
	}
	if _, err := New(p, pts, opts...); err != nil {
		t.Errorf("valid EngineOptions rejected by New: %v", err)
	}
}

// TestGainCacheOverCapWarnsOnce: the first over-cap fallback prints one
// actionable stderr line naming the cap and far-field knobs; later
// fallbacks and explicitly disabled caches stay silent.
func TestGainCacheOverCapWarnsOnce(t *testing.T) {
	var buf bytes.Buffer
	oldTo := gainCacheWarnTo
	oldWarned := gainCacheWarned.Load()
	gainCacheWarnTo = &buf
	gainCacheWarned.Store(false)
	defer func() {
		gainCacheWarnTo = oldTo
		gainCacheWarned.Store(oldWarned)
	}()

	pts := gridPoints(8)
	p := gridParams(3, 1.5, 1, 8)
	if _, err := New(p, pts, WithGainCacheCap(100)); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	for _, want := range []string{"WithGainCacheCap", "-gaincache", "-farfield-eps", "n=64"} {
		if !strings.Contains(first, want) {
			t.Errorf("over-cap warning %q does not mention %q", first, want)
		}
	}
	if _, err := New(p, pts, WithGainCacheCap(100)); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Errorf("second over-cap fallback warned again:\n%s", buf.String())
	}

	gainCacheWarned.Store(false)
	buf.Reset()
	if _, err := New(p, pts, WithGainCache(false)); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "" {
		t.Errorf("explicitly disabled cache warned: %q", buf.String())
	}
}
