package sinr

import (
	"math"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

func TestNewWithPowersValidation(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	params := Params{Alpha: 3, Beta: 1.5, Noise: 1}
	if _, err := NewWithPowers(params, pts, []float64{1, 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := NewWithPowers(Params{Alpha: 0, Beta: 1}, pts, []float64{1, 1}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewWithPowers(params, nil, nil); err == nil {
		t.Error("empty deployment accepted")
	}
	if _, err := NewWithPowers(params, pts, []float64{1}); err == nil {
		t.Error("mismatched powers accepted")
	}
	for _, bad := range []float64{0, -1, math.Inf(1)} {
		if _, err := NewWithPowers(params, pts, []float64{1, bad}); err == nil {
			t.Errorf("power %v accepted", bad)
		}
	}
}

// TestUniformPowersMatchesUniformChannel: the per-node-power channel with
// uniform powers reproduces the uniform channel's decisions exactly.
func TestUniformPowersMatchesUniformChannel(t *testing.T) {
	d, err := geom.UniformDisk(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Alpha: 3, Beta: 1.5, Noise: 1}
	params.Power = MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, DefaultSingleHopMargin)
	uni, err := New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	per, err := NewWithPowers(params, d.Points, UniformPowers(30, params.Power))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	tx := make([]bool, 30)
	ra := make([]int, 30)
	rb := make([]int, 30)
	for round := 0; round < 30; round++ {
		for i := range tx {
			tx[i] = rng.Float64() < 0.25
		}
		uni.Deliver(tx, ra)
		per.Deliver(tx, rb)
		for v := range ra {
			if ra[v] != rb[v] {
				t.Fatalf("round %d listener %d: uniform %d vs per-node %d", round, v, ra[v], rb[v])
			}
		}
	}
}

func TestPowerChannelCaptureByStrongerTransmitter(t *testing.T) {
	// Two transmitters equidistant from a listener: the 10×-stronger one is
	// decoded (β modest), where equal powers would collide.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 0}}
	params := Params{Alpha: 3, Beta: 2, Noise: 0}
	equal, err := NewWithPowers(params, pts, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := NewWithPowers(params, pts, []float64{10, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := []bool{true, true, false}
	recv := make([]int, 3)
	equal.Deliver(tx, recv)
	if recv[2] != -1 {
		t.Errorf("equal powers decoded %d, want collision", recv[2])
	}
	skewed.Deliver(tx, recv)
	if recv[2] != 0 {
		t.Errorf("skewed powers decoded %d, want 0", recv[2])
	}
}

func TestPowerChannelPowersCopied(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	powers := []float64{5, 5}
	c, err := NewWithPowers(Params{Alpha: 3, Beta: 1, Noise: 0}, pts, powers)
	if err != nil {
		t.Fatal(err)
	}
	powers[0] = 1e-9
	got := c.Powers()
	if got[0] != 5 {
		t.Error("channel aliased the caller's power slice")
	}
	got[1] = 42
	if c.Powers()[1] != 5 {
		t.Error("Powers() exposed internal state")
	}
}

func TestPowerChannelImplementsSimChannel(t *testing.T) {
	var _ sim.Channel = (*PowerChannel)(nil)
}

// TestFixedProbabilitySurvivesPowerHeterogeneity: the algorithm still solves
// when node powers are spread over a 4× hardware range (all still
// single-hop feasible).
func TestFixedProbabilitySurvivesPowerHeterogeneity(t *testing.T) {
	d, err := geom.UniformDisk(11, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Alpha: 3, Beta: 1.5, Noise: 1}
	base := MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, DefaultSingleHopMargin)
	rng := xrand.New(13)
	powers := make([]float64, 64)
	for i := range powers {
		powers[i] = base * (1 + 3*rng.Float64()) // [P, 4P]
	}
	ch, err := NewWithPowers(params, d.Points, powers)
	if err != nil {
		t.Fatal(err)
	}
	// Use the core algorithm through the sim engine without importing core
	// (cycle-free): a minimal local clone of the fixed-probability node.
	res, err := sim.Run(ch, fixedPBuilder{}, 21, sim.Config{MaxRounds: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Errorf("unsolved under power heterogeneity: %+v", res)
	}
}

// fixedPBuilder is a tiny local stand-in for core.FixedProbability (the core
// package imports sinr in its tests; importing core here would be fine for
// Go but keeps the dependency arrow one-way as a matter of layering).
type fixedPBuilder struct{}

func (fixedPBuilder) Name() string { return "fixed-p-test" }
func (fixedPBuilder) Build(n int, seed uint64) []sim.Node {
	out := make([]sim.Node, n)
	for i := range out {
		out[i] = &fixedPNode{seed: xrand.Split(seed, uint64(i))}
	}
	return out
}

type fixedPNode struct {
	seed   uint64
	round  uint64
	downed bool
}

func (u *fixedPNode) Act(round int) sim.Action {
	u.round++
	if u.downed {
		return sim.Listen
	}
	if xrand.New(xrand.Split(u.seed, u.round)).Float64() < 0.2 {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *fixedPNode) Hear(round int, from int, detect sim.Feedback) {
	if from >= 0 {
		u.downed = true
	}
}
