package sinr

import (
	"math"
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/obs"
	"fadingcr/internal/xrand"
)

// equivalenceParams sweeps the physical constants the cross-implementation
// tests run under, deliberately including path-loss exponents off the
// attenuation fast paths (α ∉ {2, 3, 4, 6}).
var equivalenceParams = []Params{
	{Alpha: 3, Beta: 1.5, Noise: 1, Power: 0}, // Power derived per deployment
	{Alpha: 2, Beta: 1, Noise: 0.25, Power: 0},
	{Alpha: 2.7, Beta: 1.5, Noise: 1, Power: 0},
	{Alpha: 4, Beta: 0.5, Noise: 0.1, Power: 0},
	{Alpha: 5.3, Beta: 0.8, Noise: 0, Power: 0},
	{Alpha: 6, Beta: 2, Noise: 2, Power: 0},
}

// equivGeometry returns a randomized deployment plus a transmit vector with
// roughly the given density.
func equivGeometry(t *testing.T, seed uint64, n int, density float64) (*geom.Deployment, []bool) {
	t.Helper()
	d, err := geom.UniformDisk(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed + 1)
	tx := make([]bool, n)
	for i := range tx {
		tx[i] = rng.Float64() < density
	}
	return d, tx
}

func fillPower(p Params, d *geom.Deployment) Params {
	if p.Power == 0 {
		p.Power = MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, DefaultSingleHopMargin)
	}
	return p
}

// TestCachedMatchesUncachedChannel: the gain-cached engine and the
// on-the-fly engine produce bit-identical Deliver, Receivable, and
// InterferenceAt results over randomized geometries, transmit densities,
// and parameter sets.
func TestCachedMatchesUncachedChannel(t *testing.T) {
	for pi, base := range equivalenceParams {
		for _, n := range []int{2, 7, 33, 128} {
			for _, density := range []float64{0, 0.1, 0.5, 1} {
				seed := uint64(pi*1000 + n)
				d, tx := equivGeometry(t, seed, n, density)
				p := fillPower(base, d)
				cached, err := New(p, d.Points, WithGainCacheCap(0))
				if err != nil {
					t.Fatal(err)
				}
				if cached.GainCacheBytes() == 0 {
					t.Fatalf("α=%v n=%d: cache expected but absent", p.Alpha, n)
				}
				direct, err := New(p, d.Points, WithGainCache(false))
				if err != nil {
					t.Fatal(err)
				}
				if direct.GainCacheBytes() != 0 {
					t.Fatalf("α=%v n=%d: WithGainCache(false) still cached", p.Alpha, n)
				}

				ra, rb := make([]int, n), make([]int, n)
				cached.Deliver(tx, ra)
				direct.Deliver(tx, rb)
				for v := range ra {
					if ra[v] != rb[v] {
						t.Fatalf("α=%v n=%d density=%v listener %d: cached recv %d, uncached %d",
							p.Alpha, n, density, v, ra[v], rb[v])
					}
				}

				for v := 0; v < n; v++ {
					sa, sb := cached.Receivable(tx, v), direct.Receivable(tx, v)
					if len(sa) != len(sb) {
						t.Fatalf("α=%v n=%d listener %d: Receivable %v vs %v", p.Alpha, n, v, sa, sb)
					}
					for i := range sa {
						if sa[i] != sb[i] {
							t.Fatalf("α=%v n=%d listener %d: Receivable %v vs %v", p.Alpha, n, v, sa, sb)
						}
					}
					ia, ib := cached.InterferenceAt(tx, v), direct.InterferenceAt(tx, v)
					if math.Float64bits(ia) != math.Float64bits(ib) {
						t.Fatalf("α=%v n=%d listener %d: InterferenceAt %v vs %v (not bit-identical)",
							p.Alpha, n, v, ia, ib)
					}
				}
			}
		}
	}
}

// TestCachedMatchesUncachedPowerChannel: same equivalence for the
// per-node-power channel, with heterogeneous powers.
func TestCachedMatchesUncachedPowerChannel(t *testing.T) {
	for pi, base := range equivalenceParams {
		for _, n := range []int{3, 24, 90} {
			seed := uint64(pi*500 + n)
			d, tx := equivGeometry(t, seed, n, 0.4)
			p := fillPower(base, d)
			rng := xrand.New(seed + 2)
			powers := make([]float64, n)
			for i := range powers {
				powers[i] = p.Power * (0.5 + rng.Float64())
			}
			cached, err := NewWithPowers(p, d.Points, powers, WithGainCacheCap(0))
			if err != nil {
				t.Fatal(err)
			}
			direct, err := NewWithPowers(p, d.Points, powers, WithGainCache(false))
			if err != nil {
				t.Fatal(err)
			}
			ra, rb := make([]int, n), make([]int, n)
			cached.Deliver(tx, ra)
			direct.Deliver(tx, rb)
			for v := range ra {
				if ra[v] != rb[v] {
					t.Fatalf("α=%v n=%d listener %d: cached recv %d, uncached %d", p.Alpha, n, v, ra[v], rb[v])
				}
			}
		}
	}
}

// TestCachedMatchesUncachedRayleigh: with equal seeds the Rayleigh channel
// draws identical fades in both modes, so receptions must stay
// bit-identical across rounds too.
func TestCachedMatchesUncachedRayleigh(t *testing.T) {
	for pi, base := range equivalenceParams {
		n := 40
		d, tx := equivGeometry(t, uint64(pi*77+5), n, 0.3)
		p := fillPower(base, d)
		cached, err := NewRayleigh(p, d.Points, 99, WithGainCacheCap(0))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewRayleigh(p, d.Points, 99, WithGainCache(false))
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := make([]int, n), make([]int, n)
		for round := 0; round < 10; round++ {
			cached.Deliver(tx, ra)
			direct.Deliver(tx, rb)
			for v := range ra {
				if ra[v] != rb[v] {
					t.Fatalf("α=%v round %d listener %d: cached recv %d, uncached %d",
						p.Alpha, round, v, ra[v], rb[v])
				}
			}
		}
	}
}

// TestGainCacheCapFallback: a channel whose matrix exceeds the cap falls
// back transparently — no cache, identical results.
func TestGainCacheCapFallback(t *testing.T) {
	d, tx := equivGeometry(t, 11, 64, 0.3)
	p := fillPower(Params{Alpha: 3, Beta: 1.5, Noise: 1}, d)
	// 64 nodes need 64²·8 = 32768 bytes; cap one byte below that.
	over, err := New(p, d.Points, WithGainCacheCap(32767))
	if err != nil {
		t.Fatal(err)
	}
	if got := over.GainCacheBytes(); got != 0 {
		t.Fatalf("cache built over the cap: %d bytes", got)
	}
	at, err := New(p, d.Points, WithGainCacheCap(32768))
	if err != nil {
		t.Fatal(err)
	}
	if got := at.GainCacheBytes(); got != 32768 {
		t.Fatalf("cache at the cap: got %d bytes, want 32768", got)
	}
	ra, rb := make([]int, 64), make([]int, 64)
	over.Deliver(tx, ra)
	at.Deliver(tx, rb)
	for v := range ra {
		if ra[v] != rb[v] {
			t.Fatalf("listener %d: fallback recv %d, cached %d", v, ra[v], rb[v])
		}
	}
}

// TestGainCacheOptionsModes exercises the CLI mode parser.
func TestGainCacheOptionsModes(t *testing.T) {
	for _, mode := range []string{"", "auto", "on", "off"} {
		if _, err := GainCacheOptions(mode); err != nil {
			t.Errorf("mode %q rejected: %v", mode, err)
		}
	}
	if _, err := GainCacheOptions("sometimes"); err == nil {
		t.Error("unknown mode accepted")
	}
	d, _ := equivGeometry(t, 3, 16, 0)
	p := fillPower(Params{Alpha: 3, Beta: 1.5, Noise: 1}, d)
	offOpts, _ := GainCacheOptions("off")
	ch, err := New(p, d.Points, offOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if ch.GainCacheBytes() != 0 {
		t.Error(`mode "off" still built a cache`)
	}
	onOpts, _ := GainCacheOptions("on")
	ch, err = New(p, d.Points, onOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if ch.GainCacheBytes() != 16*16*8 {
		t.Errorf(`mode "on" cache = %d bytes, want %d`, ch.GainCacheBytes(), 16*16*8)
	}
}

// TestDeliverZeroAllocsSteadyState: after the first call, Deliver allocates
// nothing in either engine, for all three channel types.
func TestDeliverZeroAllocsSteadyState(t *testing.T) {
	// Recording is on by default; assert it so the zero-alloc bound below
	// covers the metric increments on the hot path, not just the engine.
	if !obs.Enabled() {
		t.Fatal("metrics recording unexpectedly disabled; this test must measure the instrumented path")
	}
	const n = 96
	d, tx := equivGeometry(t, 21, n, 0.25)
	p := fillPower(Params{Alpha: 3, Beta: 1.5, Noise: 1}, d)
	recv := make([]int, n)
	powers := UniformPowers(n, p.Power)

	channels := []struct {
		name string
		ch   interface{ Deliver(tx []bool, recv []int) }
	}{}
	addChannel := func(name string, ch interface{ Deliver(tx []bool, recv []int) }, err error) {
		if err != nil {
			t.Fatal(err)
		}
		channels = append(channels, struct {
			name string
			ch   interface{ Deliver(tx []bool, recv []int) }
		}{name, ch})
	}
	c1, err := New(p, d.Points)
	addChannel("sinr/cached", c1, err)
	c2, err := New(p, d.Points, WithGainCache(false))
	addChannel("sinr/uncached", c2, err)
	c3, err := NewWithPowers(p, d.Points, powers)
	addChannel("power/cached", c3, err)
	c4, err := NewWithPowers(p, d.Points, powers, WithGainCache(false))
	addChannel("power/uncached", c4, err)
	c5, err := NewRayleigh(p, d.Points, 7)
	addChannel("rayleigh/cached", c5, err)
	c6, err := NewRayleigh(p, d.Points, 7, WithGainCache(false))
	addChannel("rayleigh/uncached", c6, err)

	for _, tc := range channels {
		tc.ch.Deliver(tx, recv) // warm the scratch buffers
		if allocs := testing.AllocsPerRun(50, func() { tc.ch.Deliver(tx, recv) }); allocs != 0 {
			t.Errorf("%s: steady-state Deliver allocates %.1f times per call, want 0", tc.name, allocs)
		}
	}
}

// TestGainCacheStatsCounters: building channels moves the process-wide
// counters the CLI summary lines report.
func TestGainCacheStatsCounters(t *testing.T) {
	before := ReadGainCacheStats()
	d, _ := equivGeometry(t, 31, 32, 0)
	p := fillPower(Params{Alpha: 3, Beta: 1.5, Noise: 1}, d)
	if _, err := New(p, d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, d.Points, WithGainCache(false)); err != nil {
		t.Fatal(err)
	}
	after := ReadGainCacheStats()
	if after.Cached != before.Cached+1 {
		t.Errorf("Cached %d → %d, want +1", before.Cached, after.Cached)
	}
	if after.Fallback != before.Fallback+1 {
		t.Errorf("Fallback %d → %d, want +1", before.Fallback, after.Fallback)
	}
	if after.MaxBytes < 32*32*8 {
		t.Errorf("MaxBytes %d < %d", after.MaxBytes, 32*32*8)
	}
	if s := after.String(); s == "" {
		t.Error("empty stats string")
	}
}

// TestDeliveryCounters: every Deliver moves the sinr.deliveries metrics and
// attributes the call to the engine that served it.
func TestDeliveryCounters(t *testing.T) {
	d, tx := equivGeometry(t, 41, 24, 0.3)
	p := fillPower(Params{Alpha: 3, Beta: 1.5, Noise: 1}, d)
	recv := make([]int, 24)
	cached, err := New(p, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(p, d.Points, WithGainCache(false))
	if err != nil {
		t.Fatal(err)
	}
	total0 := mDeliveries.Load()
	hit0 := mDeliveriesCached.Load()
	miss0 := mDeliveriesFallback.Load()
	cached.Deliver(tx, recv)
	cached.Deliver(tx, recv)
	uncached.Deliver(tx, recv)
	if got := mDeliveries.Load() - total0; got != 3 {
		t.Errorf("sinr.deliveries delta = %d, want 3", got)
	}
	if got := mDeliveriesCached.Load() - hit0; got != 2 {
		t.Errorf("sinr.deliveries_cached delta = %d, want 2", got)
	}
	if got := mDeliveriesFallback.Load() - miss0; got != 1 {
		t.Errorf("sinr.deliveries_fallback delta = %d, want 1", got)
	}
}
