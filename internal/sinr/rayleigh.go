package sinr

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"fadingcr/internal/geom"
	"fadingcr/internal/xrand"
)

// RayleighChannel extends the deterministic SINR channel with Rayleigh
// fading: in every round, each transmitter→listener signal is scaled by an
// independent exponential random variable with mean 1 (the power fade of a
// Rayleigh-distributed amplitude). This is a robustness extension beyond the
// paper's model — the paper's "fading" refers to the geometric path-loss of
// the SINR equation — used by experiments probing whether the algorithm's
// behaviour survives stochastic channels.
//
// The channel is deterministic given its seed and call sequence: round r of
// two channels with equal seeds, deployments, and transmit histories fades
// identically.
type RayleighChannel struct {
	params   Params
	pts      []geom.Point
	seed     uint64
	round    uint64
	gains    *gainCache // nil: compute attenuations on the fly
	scratch  deliverScratch
	rng      *xrand.Reseedable // reseeded per round; avoids per-Deliver allocations
	observer ReceptionObserver
}

// NewRayleigh builds a Rayleigh-faded channel over the deployment. Options
// configure the gain-cache delivery engine as in New; the per-round fades
// are drawn identically in every mode, so results never depend on it.
func NewRayleigh(params Params, pts []geom.Point, seed uint64, opts ...Option) (*RayleighChannel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("sinr: channel needs at least one node")
	}
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	return &RayleighChannel{
		params:  params,
		pts:     cp,
		seed:    seed,
		gains:   newGainCache(cp, params.Alpha, resolveEngine(opts)),
		scratch: newDeliverScratch(len(cp), false),
		rng:     xrand.NewReseedable(0),
	}, nil
}

// N returns the number of nodes on the channel.
func (c *RayleighChannel) N() int { return len(c.pts) }

// Params returns the channel's physical-layer parameters.
func (c *RayleighChannel) Params() Params { return c.params }

// GainCacheBytes returns the footprint of the channel's precomputed gain
// matrix, or 0 when the channel computes attenuations on the fly.
func (c *RayleighChannel) GainCacheBytes() int64 {
	if c.gains == nil {
		return 0
	}
	return c.gains.bytes()
}

// SetObserver installs (or, with nil, removes) the reception observer; see
// Channel.SetObserver. Observed SINR values include the round's fades.
func (c *RayleighChannel) SetObserver(o ReceptionObserver) { c.observer = o }

// signal returns the unfaded signal strength of transmitter u at listener v,
// from the cached gain row when available; both branches compute bit-equal
// values (see Channel.signal).
//
//crlint:hotpath
func (c *RayleighChannel) signal(u, v int) float64 {
	if c.gains != nil {
		return c.params.Power * c.gains.at(u, v)
	}
	return c.params.signalFromDist2(c.pts[u].Dist2(c.pts[v]))
}

// Deliver computes one round of reception under fresh per-pair fades. The
// contract matches Channel.Deliver.
//
//crlint:hotpath
func (c *RayleighChannel) Deliver(tx []bool, recv []int) {
	if len(tx) != len(c.pts) || len(recv) != len(c.pts) {
		panic(fmt.Sprintf("sinr: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), len(c.pts)))
	}
	mDeliveries.Inc()
	if c.gains != nil {
		mDeliveriesCached.Inc()
	} else {
		mDeliveriesFallback.Inc()
	}
	// Fades are consumed in listener-major order (the loop below), so the
	// engine keeps that structure — only the attenuation lookup is cached.
	// Restructuring transmitter-major would reorder the rng draws and change
	// results; see the determinism contract in the type comment.
	c.rng.Reseed(xrand.Split(c.seed, c.round))
	rng := c.rng.Rand
	c.round++
	txList := c.scratch.indices(tx)
	for v := range c.pts {
		recv[v] = -1
		if tx[v] || len(txList) == 0 {
			continue
		}
		best, bestU, total := -1.0, -1, 0.0
		for _, u := range txList {
			s := c.signal(u, v) * expFade(rng)
			total += s
			if s > best {
				best, bestU = s, u
			}
		}
		if ratio := c.params.SINR(best, total-best); ratio >= c.params.Beta {
			recv[v] = bestU
			if c.observer != nil {
				c.observer.OnReception(v, bestU, ratio, ratio-c.params.Beta)
			}
		}
	}
}

// expFade draws a unit-mean exponential fade.
//
//crlint:hotpath
func expFade(rng *rand.Rand) float64 {
	// Inverse-CDF sampling; 1−U avoids log(0).
	return -math.Log(1 - rng.Float64())
}
