package sinr

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"fadingcr/internal/geom"
	"fadingcr/internal/xrand"
)

// RayleighChannel extends the deterministic SINR channel with Rayleigh
// fading: in every round, each transmitter→listener signal is scaled by an
// independent exponential random variable with mean 1 (the power fade of a
// Rayleigh-distributed amplitude). This is a robustness extension beyond the
// paper's model — the paper's "fading" refers to the geometric path-loss of
// the SINR equation — used by experiments probing whether the algorithm's
// behaviour survives stochastic channels.
//
// The channel is deterministic given its seed and call sequence: round r of
// two channels with equal seeds, deployments, and transmit histories fades
// identically.
type RayleighChannel struct {
	params Params
	pts    []geom.Point
	seed   uint64
	round  uint64
}

// NewRayleigh builds a Rayleigh-faded channel over the deployment.
func NewRayleigh(params Params, pts []geom.Point, seed uint64) (*RayleighChannel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("sinr: channel needs at least one node")
	}
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	return &RayleighChannel{params: params, pts: cp, seed: seed}, nil
}

// N returns the number of nodes on the channel.
func (c *RayleighChannel) N() int { return len(c.pts) }

// Params returns the channel's physical-layer parameters.
func (c *RayleighChannel) Params() Params { return c.params }

// Deliver computes one round of reception under fresh per-pair fades. The
// contract matches Channel.Deliver.
func (c *RayleighChannel) Deliver(tx []bool, recv []int) {
	if len(tx) != len(c.pts) || len(recv) != len(c.pts) {
		panic(fmt.Sprintf("sinr: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), len(c.pts)))
	}
	rng := xrand.New(xrand.Split(c.seed, c.round))
	c.round++
	txList := txIndices(tx)
	for v := range c.pts {
		recv[v] = -1
		if tx[v] || len(txList) == 0 {
			continue
		}
		best, bestU, total := -1.0, -1, 0.0
		for _, u := range txList {
			s := c.params.signalFromDist2(c.pts[u].Dist2(c.pts[v])) * expFade(rng)
			total += s
			if s > best {
				best, bestU = s, u
			}
		}
		if c.params.SINR(best, total-best) >= c.params.Beta {
			recv[v] = bestU
		}
	}
}

// expFade draws a unit-mean exponential fade.
func expFade(rng *rand.Rand) float64 {
	// Inverse-CDF sampling; 1−U avoids log(0).
	return -math.Log(1 - rng.Float64())
}
