package sinr

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"fadingcr/internal/geom"
	"fadingcr/internal/xrand"
)

// RayleighChannel extends the deterministic SINR channel with Rayleigh
// fading: in every round, each transmitter→listener signal is scaled by an
// independent exponential random variable with mean 1 (the power fade of a
// Rayleigh-distributed amplitude). This is a robustness extension beyond the
// paper's model — the paper's "fading" refers to the geometric path-loss of
// the SINR equation — used by experiments probing whether the algorithm's
// behaviour survives stochastic channels.
//
// The channel is deterministic given its seed and call sequence: round r of
// two channels with equal seeds, deployments, and transmit histories fades
// identically.
type RayleighChannel struct {
	params   Params
	pts      []geom.Point
	seed     uint64
	round    uint64
	gains    *gainCache // nil: compute attenuations on the fly
	ff       *farField  // nil: exact delivery (the default)
	par      int        // ≥ 2: intra-round parallel workers
	sub      bool       // use the per-listener fade-substream engine
	scratch  deliverScratch
	rng      *xrand.Reseedable   // reseeded per round; avoids per-Deliver allocations
	rngs     []*xrand.Reseedable // per-worker rngs for the substream engine
	observer ReceptionObserver
}

// NewRayleigh builds a Rayleigh-faded channel over the deployment. Options
// configure the gain-cache delivery engine as in New; gain-cache modes draw
// the per-round fades identically, so results never depend on them. The ε
// far-field and parallel options switch to the per-listener fade-substream
// engine (see Deliver), whose draws are deterministic but deliberately a
// different stream from the default's.
func NewRayleigh(params Params, pts []geom.Point, seed uint64, opts ...Option) (*RayleighChannel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("sinr: channel needs at least one node")
	}
	ec, err := resolveEngine(opts)
	if err != nil {
		return nil, err
	}
	cp := make([]geom.Point, len(pts))
	copy(cp, pts)
	c := &RayleighChannel{
		params:  params,
		pts:     cp,
		seed:    seed,
		gains:   newGainCache(cp, params.Alpha, ec),
		par:     ec.workers(),
		scratch: newDeliverScratch(len(cp)),
		rng:     xrand.NewReseedable(0),
	}
	if ec.farFieldEps > 0 {
		c.ff, err = newFarField(cp, params.Alpha, params.Noise, params.Power, params.Power, ec.farFieldEps, c.par)
		if err != nil {
			return nil, err
		}
	}
	// The substream engine is selected by ε pruning or by the parallel
	// option — including an explicit workers=1, so the fade stream is a
	// function of the option set alone and never of the worker count.
	c.sub = c.ff != nil || ec.parallel >= 1
	if c.sub {
		c.rngs = make([]*xrand.Reseedable, c.par)
		for w := range c.rngs {
			// Reseeded to the listener's substream before every use; the
			// construction seed is never consumed.
			c.rngs[w] = xrand.NewReseedable(xrand.Split(seed, uint64(w)))
		}
	}
	return c, nil
}

// N returns the number of nodes on the channel.
func (c *RayleighChannel) N() int { return len(c.pts) }

// Params returns the channel's physical-layer parameters.
func (c *RayleighChannel) Params() Params { return c.params }

// GainCacheBytes returns the footprint of the channel's precomputed gain
// matrix, or 0 when the channel computes attenuations on the fly.
func (c *RayleighChannel) GainCacheBytes() int64 {
	if c.gains == nil {
		return 0
	}
	return c.gains.bytes()
}

// SetObserver installs (or, with nil, removes) the reception observer; see
// Channel.SetObserver. Observed SINR values include the round's fades.
func (c *RayleighChannel) SetObserver(o ReceptionObserver) { c.observer = o }

// signal returns the unfaded signal strength of transmitter u at listener v,
// from the cached gain row when available; both branches compute bit-equal
// values (see Channel.signal).
//
//crlint:hotpath
func (c *RayleighChannel) signal(u, v int) float64 {
	if c.gains != nil {
		return c.params.Power * c.gains.at(u, v)
	}
	return c.params.signalFromDist2(c.pts[u].Dist2(c.pts[v]))
}

// Deliver computes one round of reception under fresh per-pair fades. The
// contract matches Channel.Deliver.
//
//crlint:hotpath
func (c *RayleighChannel) Deliver(tx []bool, recv []int) {
	if len(tx) != len(c.pts) || len(recv) != len(c.pts) {
		panic(fmt.Sprintf("sinr: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), len(c.pts)))
	}
	mDeliveries.Inc()
	switch {
	case c.ff != nil:
		mDeliveriesFarField.Inc()
	case c.gains != nil:
		mDeliveriesCached.Inc()
	default:
		mDeliveriesFallback.Inc()
	}
	roundSeed := xrand.Split(c.seed, c.round)
	c.round++
	txList := c.scratch.indices(tx)
	if c.sub {
		//crlint:allow hotalloc deliverSubstream's worker closures are the documented O(workers) per-round cost of the opt-in parallel engine
		c.deliverSubstream(roundSeed, txList, tx, recv)
		return
	}
	// Default engine, unchanged stream: fades are consumed listener-major
	// from one per-round rng (the loop below), so the engine keeps that
	// structure — only the attenuation lookup is cached. Restructuring
	// transmitter-major would reorder the rng draws and change results; see
	// the determinism contract in the type comment.
	c.rng.Reseed(roundSeed)
	rng := c.rng.Rand
	for v := range c.pts {
		recv[v] = -1
		if tx[v] || len(txList) == 0 {
			continue
		}
		best, bestU, total := -1.0, -1, 0.0
		for _, u := range txList {
			s := c.signal(u, v) * expFade(rng)
			total += s
			if s > best {
				best, bestU = s, u
			}
		}
		if ratio := c.params.SINR(best, total-best); ratio >= c.params.Beta {
			recv[v] = bestU
			if c.observer != nil {
				c.observer.OnReception(v, bestU, ratio, ratio-c.params.Beta)
			}
		}
	}
}

// deliverSubstream is the ε/parallel engine for the faded channel. The
// default engine draws every fade from one per-round stream in
// listener-major order — an order the pruning and tiling modes cannot
// reproduce (each listener consumes a data-dependent number of draws). This
// engine instead derives one fade substream per listener,
// Split(Split(seed, round), listener), and draws along it in ascending
// near-transmitter order. Results are deterministic in (seed, round,
// deployment, tx) and independent of worker count and gain-cache mode, but
// they are a *different* (equally distributed) stream from the default
// engine's — documented in DESIGN.md §8.
func (c *RayleighChannel) deliverSubstream(roundSeed uint64, txList []int, tx []bool, recv []int) {
	if len(txList) == 0 {
		for v := range recv {
			recv[v] = -1
		}
		return
	}
	if c.ff != nil {
		c.ff.prepareRound(txList)
	}
	if c.par > 1 {
		mDeliveriesParallel.Inc()
		runTiles(len(c.pts), c.par, func(w, lo, hi int) {
			c.accumulateSubstreamTile(w, lo, hi, roundSeed, tx, txList)
		})
	} else {
		n := len(c.pts)
		for lo := 0; lo < n; lo += deliverTile {
			c.accumulateSubstreamTile(0, lo, min(lo+deliverTile, n), roundSeed, tx, txList)
		}
	}
	finalizeReceptions(c.params, &c.scratch, c.observer, tx, recv)
}

// accumulateSubstreamTile is pass one of the substream engine over listeners
// [lo, hi): reseed the worker's rng to the listener's substream, collect the
// near set (the full transmitter list when pruning is off), and accumulate
// faded signals in ascending transmitter order.
//
//crlint:hotpath
func (c *RayleighChannel) accumulateSubstreamTile(worker, lo, hi int, roundSeed uint64, tx []bool, txList []int) {
	totals, best, bestU := c.scratch.totals, c.scratch.best, c.scratch.bestU
	pruned := int64(0)
	for v := lo; v < hi; v++ {
		totals[v], best[v], bestU[v] = 0, -1, -1
		if tx[v] {
			continue
		}
		near := txList
		if c.ff != nil {
			near = c.ff.nearSet(worker, v, tx, txList)
			pruned += int64(len(txList) - len(near))
		}
		c.rngs[worker].Reseed(xrand.Split(roundSeed, uint64(v)))
		rng := c.rngs[worker].Rand
		b, bu, t := -1.0, -1, 0.0
		for _, u := range near {
			s := c.signal(u, v) * expFade(rng)
			t += s
			if s > b {
				b, bu = s, u
			}
		}
		totals[v], best[v], bestU[v] = t, b, bu
	}
	if pruned > 0 {
		mFarFieldPrunedTx.Add(pruned)
	}
}

// expFade draws a unit-mean exponential fade.
//
//crlint:hotpath
func expFade(rng *rand.Rand) float64 {
	// Inverse-CDF sampling; 1−U avoids log(0).
	return -math.Log(1 - rng.Float64())
}
