package sinr

import (
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/geom"
)

func validParams() Params {
	return Params{Alpha: 3, Beta: 2, Noise: 1, Power: 1e6}
}

func TestParamsValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Alpha: 0, Beta: 1, Noise: 0, Power: 1},
		{Alpha: -1, Beta: 1, Noise: 0, Power: 1},
		{Alpha: math.Inf(1), Beta: 1, Noise: 0, Power: 1},
		{Alpha: 3, Beta: 0, Noise: 0, Power: 1},
		{Alpha: 3, Beta: -2, Noise: 0, Power: 1},
		{Alpha: 3, Beta: 1, Noise: -1, Power: 1},
		{Alpha: 3, Beta: 1, Noise: math.NaN(), Power: 1},
		{Alpha: 3, Beta: 1, Noise: 0, Power: 0},
		{Alpha: 3, Beta: 1, Noise: 0, Power: math.Inf(1)},
		{Alpha: math.NaN(), Beta: 1, Noise: 0, Power: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d (%+v) accepted", i, p)
		}
	}
}

func TestSignalKnownValues(t *testing.T) {
	p := Params{Alpha: 2, Beta: 1, Noise: 0, Power: 100}
	if got := p.Signal(1); got != 100 {
		t.Errorf("Signal(1) = %v, want 100", got)
	}
	if got := p.Signal(10); math.Abs(got-1) > 1e-12 {
		t.Errorf("Signal(10) = %v, want 1", got)
	}
	p.Alpha = 3
	if got := p.Signal(2); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("alpha=3 Signal(2) = %v, want 12.5", got)
	}
}

func TestSignalMonotoneInDistanceProperty(t *testing.T) {
	p := validParams()
	f := func(aRaw, bRaw uint16) bool {
		a := 1 + float64(aRaw)/100
		b := a + 0.01 + float64(bRaw)/100
		return p.Signal(a) > p.Signal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSINR(t *testing.T) {
	p := Params{Alpha: 3, Beta: 1, Noise: 2, Power: 1}
	if got := p.SINR(10, 3); got != 2 {
		t.Errorf("SINR(10, 3) = %v, want 2", got)
	}
	if got := p.SINR(10, 0); got != 5 {
		t.Errorf("SINR(10, 0) = %v, want 5", got)
	}
}

func TestMinSingleHopPower(t *testing.T) {
	p := MinSingleHopPower(3, 2, 1, 10, 4)
	if p <= 4*2*1*1000 {
		t.Errorf("power %v does not exceed 4βN·R^α = 8000", p)
	}
	params := Params{Alpha: 3, Beta: 2, Noise: 1, Power: p}
	if !params.SingleHopFeasible(10, 4) {
		t.Error("MinSingleHopPower output fails SingleHopFeasible")
	}
	if params.SingleHopFeasible(11, 4) {
		t.Error("SingleHopFeasible true beyond the design distance")
	}
	if got := MinSingleHopPower(3, 2, 0, 10, 4); got != 1 {
		t.Errorf("zero-noise power = %v, want 1", got)
	}
}

func TestNewValidation(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	if _, err := New(Params{}, pts); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := New(validParams(), nil); err == nil {
		t.Error("empty deployment accepted")
	}
	c, err := New(validParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Errorf("N = %d, want 2", c.N())
	}
	if c.Params() != validParams() {
		t.Errorf("Params = %+v", c.Params())
	}
}

func TestNewCopiesPoints(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	c, err := New(validParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[1] = geom.Point{X: 500, Y: 500}
	recv := make([]int, 2)
	c.Deliver([]bool{true, false}, recv)
	if recv[1] != 0 {
		t.Error("mutating the caller's slice changed the channel: points not copied")
	}
}

func TestDeliverSoloTransmitterHeard(t *testing.T) {
	// Two nodes at distance 1 with ample power: a solo transmission is
	// received by the listener.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	c, err := New(validParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	recv := make([]int, 2)
	c.Deliver([]bool{true, false}, recv)
	if recv[0] != -1 {
		t.Errorf("transmitter recv = %d, want -1", recv[0])
	}
	if recv[1] != 0 {
		t.Errorf("listener recv = %d, want 0", recv[1])
	}
}

func TestDeliverNobodyTransmits(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	c, _ := New(validParams(), pts)
	recv := make([]int, 2)
	c.Deliver([]bool{false, false}, recv)
	if recv[0] != -1 || recv[1] != -1 {
		t.Errorf("recv = %v, want all -1", recv)
	}
}

func TestDeliverSymmetricCollision(t *testing.T) {
	// Two co-located-ish transmitters and a listener midway: with β ≥ 1 the
	// two equal signals destroy each other.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 0}}
	c, _ := New(Params{Alpha: 3, Beta: 1.5, Noise: 0, Power: 1}, pts)
	recv := make([]int, 3)
	c.Deliver([]bool{true, true, false}, recv)
	if recv[2] != -1 {
		t.Errorf("midpoint listener decoded %d under a symmetric collision", recv[2])
	}
}

func TestDeliverCaptureEffect(t *testing.T) {
	// A listener near one of two transmitters decodes the near one: spatial
	// reuse in action.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 1, Y: 0}, {X: 99, Y: 0}}
	c, _ := New(Params{Alpha: 3, Beta: 2, Noise: 0, Power: 1}, pts)
	recv := make([]int, 4)
	c.Deliver([]bool{true, true, false, false}, recv)
	if recv[2] != 0 {
		t.Errorf("listener 2 decoded %d, want 0", recv[2])
	}
	if recv[3] != 1 {
		t.Errorf("listener 3 decoded %d, want 1", recv[3])
	}
}

func TestDeliverNoisePreventsWeakSignal(t *testing.T) {
	// Signal P/d^α = 1/8; SINR = (1/8)/noise. With noise 1 and β 2: no.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}}
	c, _ := New(Params{Alpha: 3, Beta: 2, Noise: 1, Power: 1}, pts)
	recv := make([]int, 2)
	c.Deliver([]bool{true, false}, recv)
	if recv[1] != -1 {
		t.Errorf("noise-drowned signal decoded: recv = %d", recv[1])
	}
}

func TestDeliverPanicsOnBadLengths(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	c, _ := New(validParams(), pts)
	defer func() {
		if recover() == nil {
			t.Error("Deliver with wrong slice lengths did not panic")
		}
	}()
	c.Deliver([]bool{true}, make([]int, 2))
}

// TestDeliverMoreInterferenceNeverHelps: adding a transmitter never lets a
// listener decode a message it could not decode before from the same sender
// (monotonicity of the SINR equation).
func TestDeliverMoreInterferenceNeverHelps(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := 3 + int(nRaw%20)
		d, err := geom.UniformDisk(seed, n)
		if err != nil {
			return false
		}
		params := Params{Alpha: 3, Beta: 1.5, Noise: 0.1,
			Power: MinSingleHopPower(3, 1.5, 0.1, d.R, DefaultSingleHopMargin)}
		c, err := New(params, d.Points)
		if err != nil {
			return false
		}
		tx := make([]bool, n)
		tx[0] = true
		recv := make([]int, n)
		c.Deliver(tx, recv)
		base := append([]int(nil), recv...)

		// Add one more transmitter (not node 0).
		extra := 1 + int(extraRaw)%(n-1)
		tx[extra] = true
		c.Deliver(tx, recv)
		for v := range recv {
			if v == extra {
				continue // became a transmitter; allowed to change
			}
			// If v previously decoded node 0 it may now fail, but it must
			// not decode a *different* message from nowhere stronger; and if
			// v previously decoded nothing it can now decode only the new
			// transmitter.
			if base[v] == -1 && recv[v] != -1 && recv[v] != extra {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeliverAtMostOneDecodedHighBeta: with β ≥ 1, Receivable never returns
// more than one transmitter for any listener.
func TestDeliverAtMostOneDecodedHighBeta(t *testing.T) {
	f := func(seed uint64, nRaw uint8, txSeed uint64) bool {
		n := 2 + int(nRaw%20)
		d, err := geom.UniformDisk(seed, n)
		if err != nil {
			return false
		}
		params := Params{Alpha: 3, Beta: 1, Noise: 0,
			Power: 1}
		c, err := New(params, d.Points)
		if err != nil {
			return false
		}
		tx := make([]bool, n)
		s := txSeed
		for i := range tx {
			s = s*6364136223846793005 + 1442695040888963407
			tx[i] = s>>63 == 1
		}
		for v := range tx {
			if tx[v] {
				continue
			}
			if got := c.Receivable(tx, v); len(got) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeliverConsistentWithReceivable: whenever Deliver reports a reception,
// that transmitter is in the Receivable set; whenever Receivable is empty,
// Deliver reports -1.
func TestDeliverConsistentWithReceivable(t *testing.T) {
	d, err := geom.UniformDisk(17, 15)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Alpha: 2.5, Beta: 0.5, Noise: 0.01, Power: 10}
	c, err := New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]bool, 15)
	for _, u := range []int{0, 3, 7, 11} {
		tx[u] = true
	}
	recv := make([]int, 15)
	c.Deliver(tx, recv)
	for v := range recv {
		set := c.Receivable(tx, v)
		if recv[v] == -1 {
			if tx[v] {
				continue
			}
			if len(set) != 0 {
				t.Errorf("listener %d: Deliver=-1 but Receivable=%v", v, set)
			}
			continue
		}
		found := false
		for _, u := range set {
			if u == recv[v] {
				found = true
			}
		}
		if !found {
			t.Errorf("listener %d decoded %d not in Receivable %v", v, recv[v], set)
		}
	}
}

func TestReceivableTransmitterGetsNil(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	c, _ := New(validParams(), pts)
	if got := c.Receivable([]bool{true, false}, 0); got != nil {
		t.Errorf("transmitting node has Receivable = %v, want nil", got)
	}
}

func TestInterferenceAt(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	p := Params{Alpha: 2, Beta: 1, Noise: 0, Power: 4}
	c, _ := New(p, pts)
	tx := []bool{true, false, true}
	// At node 1: 4/1² from node 0 + 4/1² from node 2 = 8.
	if got := c.InterferenceAt(tx, 1); math.Abs(got-8) > 1e-12 {
		t.Errorf("InterferenceAt(1) = %v, want 8", got)
	}
	// A transmitter's own signal is excluded: at node 0 only node 2
	// contributes 4/4 = 1.
	if got := c.InterferenceAt(tx, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("InterferenceAt(0) = %v, want 1", got)
	}
}

func TestRayleighDeterministicPerSeed(t *testing.T) {
	d, err := geom.UniformDisk(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Alpha: 3, Beta: 1, Noise: 0.1,
		Power: MinSingleHopPower(3, 1, 0.1, d.R, DefaultSingleHopMargin)}
	mk := func(seed uint64) [][]int {
		c, err := NewRayleigh(params, d.Points, seed)
		if err != nil {
			t.Fatal(err)
		}
		var rounds [][]int
		tx := make([]bool, 12)
		tx[0], tx[5] = true, true
		for r := 0; r < 5; r++ {
			recv := make([]int, 12)
			c.Deliver(tx, recv)
			rounds = append(rounds, recv)
		}
		return rounds
	}
	a, b := mk(9), mk(9)
	for r := range a {
		for v := range a[r] {
			if a[r][v] != b[r][v] {
				t.Fatalf("round %d listener %d: %d vs %d with equal seeds", r, v, a[r][v], b[r][v])
			}
		}
	}
}

func TestRayleighFadesVaryAcrossRounds(t *testing.T) {
	// With two symmetric transmitters and a midpoint listener, the
	// deterministic channel never decodes; Rayleigh fading should sometimes
	// tip the balance across many rounds (capture through fade diversity).
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 0}}
	params := Params{Alpha: 3, Beta: 1.1, Noise: 0, Power: 1}
	c, err := NewRayleigh(params, pts, 31)
	if err != nil {
		t.Fatal(err)
	}
	tx := []bool{true, true, false}
	recv := make([]int, 3)
	decoded := 0
	for r := 0; r < 500; r++ {
		c.Deliver(tx, recv)
		if recv[2] != -1 {
			decoded++
		}
	}
	if decoded == 0 {
		t.Error("Rayleigh fading never broke the symmetric tie in 500 rounds")
	}
	if decoded == 500 {
		t.Error("Rayleigh fading decoded every round; fades look degenerate")
	}
}

func TestRayleighValidation(t *testing.T) {
	if _, err := NewRayleigh(Params{}, []geom.Point{{X: 0, Y: 0}}, 1); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewRayleigh(validParams(), nil, 1); err == nil {
		t.Error("empty deployment accepted")
	}
}
