package sinr

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"fadingcr/internal/geom"
)

// The gain-cache delivery engine.
//
// A channel's node positions are immutable for its lifetime, so the geometric
// part of every SINR term — the attenuation d(u,v)^{-α} — is a constant of
// the deployment. New precomputes the full pairwise attenuation matrix as a
// flat row-major []float64 (row u holds the gains from transmitter u to every
// listener), and Deliver then runs a transmitter-major two-pass accumulation
// over the cached rows instead of recomputing a math.Pow/sqrt per
// (transmitter, listener) pair per round. The matrix costs 8·n² bytes; above
// the configured cap the channel transparently falls back to the on-the-fly
// engine. Both engines perform the per-listener floating-point operations in
// the same order (signals summed in ascending transmitter index, first
// strict maximum wins), so every reception decision — and every experiment
// table derived from one — is bit-identical in every mode.

// DefaultGainCacheCap is the default memory cap for one channel's gain
// matrix: 64 MiB, enough to cache deployments up to n = 2896. Larger
// channels fall back to on-the-fly computation unless the cap is raised
// with WithGainCacheCap.
const DefaultGainCacheCap = 64 << 20

// deliverTile is the fixed listener-tile width of every accumulation engine.
// Pass one of Deliver processes listeners in [t·deliverTile, (t+1)·deliverTile)
// blocks: the cached engine streams each gain row one tile at a time so the
// per-listener accumulators stay cache-resident at any n, and the parallel
// option assigns tile t to worker t mod workers. The value is part of the
// determinism contract (DESIGN.md §8): the tile partition fixes the parallel
// work shape, and because every per-listener float sequence is confined to
// one tile, receptions are byte-identical at any worker count — but the
// constant itself must never silently change between releases that promise
// reproducibility.
const deliverTile = 2048

// MaxDeliverParallelism bounds WithDeliverParallelism; it exists to catch
// nonsense worker counts at option-validation time, not to size anything.
const MaxDeliverParallelism = 256

// engineConfig is the resolved delivery-engine configuration of a channel.
type engineConfig struct {
	cache       bool    // precompute the gain matrix at New time
	cap         int64   // largest matrix to cache, in bytes
	farFieldEps float64 // > 0: ε far-field pruning mode
	parallel    int     // ≥ 2: intra-round parallel Deliver workers
}

// validate rejects resolved configurations outside the supported envelope.
func (ec engineConfig) validate() error {
	if ec.farFieldEps != 0 && (!(ec.farFieldEps > 0) || ec.farFieldEps >= 0.5) {
		return fmt.Errorf("sinr: far-field epsilon %v must be in (0, 0.5)", ec.farFieldEps)
	}
	if ec.parallel < 0 || ec.parallel > MaxDeliverParallelism {
		return fmt.Errorf("sinr: deliver parallelism %d must be in [0, %d]", ec.parallel, MaxDeliverParallelism)
	}
	return nil
}

// workers returns the effective worker count (0 and 1 both mean sequential).
func (ec engineConfig) workers() int {
	if ec.parallel < 1 {
		return 1
	}
	return ec.parallel
}

// Option configures a channel's delivery engine. Options never change
// delivery results, only how (and how fast) they are computed.
type Option func(*engineConfig)

// WithGainCache enables (the default) or disables the precomputed pairwise
// gain matrix. Disabled channels compute every attenuation on the fly.
func WithGainCache(enabled bool) Option {
	return func(ec *engineConfig) { ec.cache = enabled }
}

// WithGainCacheCap sets the largest gain matrix (in bytes, 8·n² for n nodes)
// a channel may cache; larger deployments fall back to on-the-fly
// computation. A non-positive cap removes the limit.
func WithGainCacheCap(bytes int64) Option {
	return func(ec *engineConfig) {
		if bytes <= 0 {
			ec.cap = math.MaxInt64
			return
		}
		ec.cap = bytes
	}
}

// WithFarFieldEps enables the ε far-field pruning engine: per listener, only
// transmitters in nearby spatial-index cells are summed exactly (in ascending
// transmitter index, like every other engine), and the remaining far
// transmitters are dropped once a conservative upper bound proves their
// aggregate contribution is at most eps·(Noise + near interference). The
// pruning decision uses distance bounds only — never accumulated floats — so
// it is deterministic and identical in cached and on-the-fly modes. eps must
// be in (0, 0.5); 0 restores the exact engine. See DESIGN.md §8 for the
// precise error bound.
func WithFarFieldEps(eps float64) Option {
	return func(ec *engineConfig) { ec.farFieldEps = eps }
}

// WithDeliverParallelism sets the intra-round worker count of Deliver.
// Workers process disjoint fixed-shape listener tiles (tile t → worker
// t mod workers) and the threshold/observer pass stays sequential in
// ascending listener order, so receptions are byte-identical at any worker
// count. 0 and 1 both select the sequential engine; parallel delivery
// allocates O(workers) per round, so the zero-allocation hot-path guarantee
// applies to the sequential default only.
func WithDeliverParallelism(workers int) Option {
	return func(ec *engineConfig) { ec.parallel = workers }
}

// GainCacheOptions translates a CLI-style mode string into engine options:
// "auto" (or "") caches up to DefaultGainCacheCap, "on" caches regardless of
// size, "off" forces on-the-fly computation.
func GainCacheOptions(mode string) ([]Option, error) {
	switch mode {
	case "", "auto":
		return nil, nil
	case "on":
		return []Option{WithGainCache(true), WithGainCacheCap(0)}, nil
	case "off":
		return []Option{WithGainCache(false)}, nil
	default:
		return nil, fmt.Errorf("sinr: unknown gain-cache mode %q (want auto|on|off)", mode)
	}
}

// EngineOptions translates the full CLI-style engine configuration — the
// gain-cache mode plus the -farfield-eps and -sinr-parallel knobs — into
// channel options, validating ranges up front so flag errors surface before
// a channel is half-built. farfieldEps 0 and parallel 0 leave the defaults.
func EngineOptions(gainCacheMode string, farfieldEps float64, parallel int) ([]Option, error) {
	opts, err := GainCacheOptions(gainCacheMode)
	if err != nil {
		return nil, err
	}
	if farfieldEps != 0 {
		if !(farfieldEps > 0) || farfieldEps >= 0.5 {
			return nil, fmt.Errorf("sinr: far-field epsilon %v must be in (0, 0.5)", farfieldEps)
		}
		opts = append(opts, WithFarFieldEps(farfieldEps))
	}
	if parallel != 0 {
		if parallel < 0 || parallel > MaxDeliverParallelism {
			return nil, fmt.Errorf("sinr: deliver parallelism %d must be in [0, %d]", parallel, MaxDeliverParallelism)
		}
		opts = append(opts, WithDeliverParallelism(parallel))
	}
	return opts, nil
}

// resolveEngine applies options over the defaults and validates the result.
func resolveEngine(opts []Option) (engineConfig, error) {
	ec := engineConfig{cache: true, cap: DefaultGainCacheCap}
	for _, o := range opts {
		o(&ec)
	}
	if err := ec.validate(); err != nil {
		return engineConfig{}, err
	}
	return ec, nil
}

// gainCache is the precomputed attenuation matrix of a deployment:
// g[u*n+v] = d(u,v)^{-α}. The diagonal is +Inf (zero distance); it is only
// ever read for transmitting listeners, whose receptions are masked.
type gainCache struct {
	n int
	g []float64
}

// row returns the gains from transmitter u to every listener.
func (gc *gainCache) row(u int) []float64 {
	return gc.g[u*gc.n : (u+1)*gc.n]
}

// at returns the gain from transmitter u to listener v.
func (gc *gainCache) at(u, v int) float64 { return gc.g[u*gc.n+v] }

// bytes returns the matrix footprint.
func (gc *gainCache) bytes() int64 { return int64(gc.n) * int64(gc.n) * 8 }

// gainCacheWarned makes the over-cap fallback warning fire at most once per
// process: n=100k runs would otherwise print one line per trial channel.
// Tests reset it (and redirect gainCacheWarnTo) to capture the message.
var (
	gainCacheWarned atomic.Bool
	gainCacheWarnTo io.Writer = os.Stderr
	gainCacheWarnMu sync.Mutex
)

// warnGainCacheOverCap emits the one-time over-cap diagnostic. Silent
// fallback was a footgun at large n: the run quietly switches to the O(n²)
// on-the-fly engine and only the sinr.gaincache_fallback metric records why.
func warnGainCacheOverCap(n int, need, cap int64) {
	if !gainCacheWarned.CompareAndSwap(false, true) {
		return
	}
	gainCacheWarnMu.Lock()
	defer gainCacheWarnMu.Unlock()
	fmt.Fprintf(gainCacheWarnTo,
		"sinr: gain cache disabled for n=%d (matrix %s exceeds cap %s); delivery falls back to the slower on-the-fly engine. Raise the cap (WithGainCacheCap / -gaincache on) or enable far-field pruning (-farfield-eps) for large deployments. [warned once]\n",
		n, FormatBytes(need), FormatBytes(cap))
}

// newGainCache precomputes the matrix, or returns nil when the engine
// configuration disables caching or the matrix would exceed the cap. The
// matrix is symmetric, so only the upper triangle is computed and mirrored
// (Dist2 and attenuation are bitwise symmetric in their arguments).
func newGainCache(pts []geom.Point, alpha float64, ec engineConfig) *gainCache {
	n := len(pts)
	if !ec.cache {
		mGainCacheFallback.Inc()
		return nil
	}
	if need := int64(n) * int64(n) * 8; need > ec.cap {
		mGainCacheFallback.Inc()
		warnGainCacheOverCap(n, need, ec.cap)
		return nil
	}
	g := make([]float64, n*n)
	for u := 0; u < n; u++ {
		row := g[u*n : (u+1)*n]
		row[u] = attenuation(0, alpha) // +Inf; masked for transmitters
		for v := u + 1; v < n; v++ {
			a := attenuation(pts[u].Dist2(pts[v]), alpha)
			row[v] = a
			g[v*n+u] = a
		}
	}
	gc := &gainCache{n: n, g: g}
	mGainCacheBuilt.Inc()
	mGainCacheMaxBytes.SetMax(gc.bytes())
	return gc
}

// deliverScratch holds the channel-owned buffers a steady-state Deliver
// reuses so it performs zero allocations: the transmitter index list, the
// per-listener running interference totals, and the per-listener strongest
// signal and its sender. Sharing the scratch is why channels are not safe
// for concurrent use.
type deliverScratch struct {
	txList  []int
	totals  []float64
	best    []float64
	bestU   []int
	signals []float64
}

// newDeliverScratch preallocates every buffer at channel-construction time.
// All engines now share the tiled accumulator arrays (pass one fills
// totals/best/bestU per listener tile, pass two thresholds sequentially), so
// every buffer is always allocated: 40 bytes per node.
func newDeliverScratch(n int) deliverScratch {
	return deliverScratch{
		txList:  make([]int, 0, n),
		signals: make([]float64, 0, n),
		totals:  make([]float64, n),
		best:    make([]float64, n),
		bestU:   make([]int, n),
	}
}

// indices collects the transmitting node indices into the reusable list.
//
//crlint:hotpath
func (s *deliverScratch) indices(tx []bool) []int {
	out := s.txList[:0]
	for u, t := range tx {
		if t {
			out = append(out, u)
		}
	}
	s.txList = out
	return out
}

// GainCacheStats is a snapshot of the process-wide gain-cache counters.
type GainCacheStats struct {
	// Cached counts channels built with a precomputed gain matrix.
	Cached int64
	// Fallback counts channels that computed attenuations on the fly
	// (cache disabled or matrix over the memory cap).
	Fallback int64
	// MaxBytes is the largest single matrix built.
	MaxBytes int64
}

// ReadGainCacheStats snapshots the counters. They are cumulative for the
// process; callers wanting per-run numbers should difference two snapshots.
// The counters are the sinr.gaincache_* metrics of internal/obs (this
// function predates the metrics registry and is kept as its façade), so
// they stop advancing while obs.SetEnabled(false) is in effect.
func ReadGainCacheStats() GainCacheStats {
	return GainCacheStats{
		Cached:   mGainCacheBuilt.Load(),
		Fallback: mGainCacheFallback.Load(),
		MaxBytes: mGainCacheMaxBytes.Load(),
	}
}

// String renders the snapshot for a summary line, e.g.
// "142 cached / 0 fallback, max 8.0 MiB".
func (s GainCacheStats) String() string {
	return fmt.Sprintf("%d cached / %d fallback, max %s", s.Cached, s.Fallback, FormatBytes(s.MaxBytes))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
