package sinr

import (
	"fmt"
	"math"

	"fadingcr/internal/geom"
)

// The gain-cache delivery engine.
//
// A channel's node positions are immutable for its lifetime, so the geometric
// part of every SINR term — the attenuation d(u,v)^{-α} — is a constant of
// the deployment. New precomputes the full pairwise attenuation matrix as a
// flat row-major []float64 (row u holds the gains from transmitter u to every
// listener), and Deliver then runs a transmitter-major two-pass accumulation
// over the cached rows instead of recomputing a math.Pow/sqrt per
// (transmitter, listener) pair per round. The matrix costs 8·n² bytes; above
// the configured cap the channel transparently falls back to the on-the-fly
// engine. Both engines perform the per-listener floating-point operations in
// the same order (signals summed in ascending transmitter index, first
// strict maximum wins), so every reception decision — and every experiment
// table derived from one — is bit-identical in every mode.

// DefaultGainCacheCap is the default memory cap for one channel's gain
// matrix: 64 MiB, enough to cache deployments up to n = 2896. Larger
// channels fall back to on-the-fly computation unless the cap is raised
// with WithGainCacheCap.
const DefaultGainCacheCap = 64 << 20

// engineConfig is the resolved delivery-engine configuration of a channel.
type engineConfig struct {
	cache bool  // precompute the gain matrix at New time
	cap   int64 // largest matrix to cache, in bytes
}

// Option configures a channel's delivery engine. Options never change
// delivery results, only how (and how fast) they are computed.
type Option func(*engineConfig)

// WithGainCache enables (the default) or disables the precomputed pairwise
// gain matrix. Disabled channels compute every attenuation on the fly.
func WithGainCache(enabled bool) Option {
	return func(ec *engineConfig) { ec.cache = enabled }
}

// WithGainCacheCap sets the largest gain matrix (in bytes, 8·n² for n nodes)
// a channel may cache; larger deployments fall back to on-the-fly
// computation. A non-positive cap removes the limit.
func WithGainCacheCap(bytes int64) Option {
	return func(ec *engineConfig) {
		if bytes <= 0 {
			ec.cap = math.MaxInt64
			return
		}
		ec.cap = bytes
	}
}

// GainCacheOptions translates a CLI-style mode string into engine options:
// "auto" (or "") caches up to DefaultGainCacheCap, "on" caches regardless of
// size, "off" forces on-the-fly computation.
func GainCacheOptions(mode string) ([]Option, error) {
	switch mode {
	case "", "auto":
		return nil, nil
	case "on":
		return []Option{WithGainCache(true), WithGainCacheCap(0)}, nil
	case "off":
		return []Option{WithGainCache(false)}, nil
	default:
		return nil, fmt.Errorf("sinr: unknown gain-cache mode %q (want auto|on|off)", mode)
	}
}

// resolveEngine applies options over the defaults.
func resolveEngine(opts []Option) engineConfig {
	ec := engineConfig{cache: true, cap: DefaultGainCacheCap}
	for _, o := range opts {
		o(&ec)
	}
	return ec
}

// gainCache is the precomputed attenuation matrix of a deployment:
// g[u*n+v] = d(u,v)^{-α}. The diagonal is +Inf (zero distance); it is only
// ever read for transmitting listeners, whose receptions are masked.
type gainCache struct {
	n int
	g []float64
}

// row returns the gains from transmitter u to every listener.
func (gc *gainCache) row(u int) []float64 {
	return gc.g[u*gc.n : (u+1)*gc.n]
}

// at returns the gain from transmitter u to listener v.
func (gc *gainCache) at(u, v int) float64 { return gc.g[u*gc.n+v] }

// bytes returns the matrix footprint.
func (gc *gainCache) bytes() int64 { return int64(gc.n) * int64(gc.n) * 8 }

// newGainCache precomputes the matrix, or returns nil when the engine
// configuration disables caching or the matrix would exceed the cap. The
// matrix is symmetric, so only the upper triangle is computed and mirrored
// (Dist2 and attenuation are bitwise symmetric in their arguments).
func newGainCache(pts []geom.Point, alpha float64, ec engineConfig) *gainCache {
	n := len(pts)
	if !ec.cache || int64(n)*int64(n)*8 > ec.cap {
		mGainCacheFallback.Inc()
		return nil
	}
	g := make([]float64, n*n)
	for u := 0; u < n; u++ {
		row := g[u*n : (u+1)*n]
		row[u] = attenuation(0, alpha) // +Inf; masked for transmitters
		for v := u + 1; v < n; v++ {
			a := attenuation(pts[u].Dist2(pts[v]), alpha)
			row[v] = a
			g[v*n+u] = a
		}
	}
	gc := &gainCache{n: n, g: g}
	mGainCacheBuilt.Inc()
	mGainCacheMaxBytes.SetMax(gc.bytes())
	return gc
}

// deliverScratch holds the channel-owned buffers a steady-state Deliver
// reuses so it performs zero allocations: the transmitter index list, the
// per-listener running interference totals, and the per-listener strongest
// signal and its sender. Sharing the scratch is why channels are not safe
// for concurrent use.
type deliverScratch struct {
	txList  []int
	totals  []float64
	best    []float64
	bestU   []int
	signals []float64
}

// newDeliverScratch preallocates every buffer at channel-construction time.
// cached selects whether the transmitter-major accumulator arrays are
// needed; the on-the-fly engine only uses the index list and signal buffer.
func newDeliverScratch(n int, cached bool) deliverScratch {
	s := deliverScratch{
		txList:  make([]int, 0, n),
		signals: make([]float64, 0, n),
	}
	if cached {
		s.totals = make([]float64, n)
		s.best = make([]float64, n)
		s.bestU = make([]int, n)
	}
	return s
}

// indices collects the transmitting node indices into the reusable list.
//
//crlint:hotpath
func (s *deliverScratch) indices(tx []bool) []int {
	out := s.txList[:0]
	for u, t := range tx {
		if t {
			out = append(out, u)
		}
	}
	s.txList = out
	return out
}

// GainCacheStats is a snapshot of the process-wide gain-cache counters.
type GainCacheStats struct {
	// Cached counts channels built with a precomputed gain matrix.
	Cached int64
	// Fallback counts channels that computed attenuations on the fly
	// (cache disabled or matrix over the memory cap).
	Fallback int64
	// MaxBytes is the largest single matrix built.
	MaxBytes int64
}

// ReadGainCacheStats snapshots the counters. They are cumulative for the
// process; callers wanting per-run numbers should difference two snapshots.
// The counters are the sinr.gaincache_* metrics of internal/obs (this
// function predates the metrics registry and is kept as its façade), so
// they stop advancing while obs.SetEnabled(false) is in effect.
func ReadGainCacheStats() GainCacheStats {
	return GainCacheStats{
		Cached:   mGainCacheBuilt.Load(),
		Fallback: mGainCacheFallback.Load(),
		MaxBytes: mGainCacheMaxBytes.Load(),
	}
}

// String renders the snapshot for a summary line, e.g.
// "142 cached / 0 fallback, max 8.0 MiB".
func (s GainCacheStats) String() string {
	return fmt.Sprintf("%d cached / %d fallback, max %s", s.Cached, s.Fallback, FormatBytes(s.MaxBytes))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
