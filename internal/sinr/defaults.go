package sinr

import "fadingcr/internal/geom"

// DefaultParams returns the repository-standard physical-layer constants:
// α = 3 (super-quadratic fading per the model's α > 2), β = 1.5, N = 1,
// with Power unset so it can be derived per deployment (see ChannelFor).
// Every harness entry point (the facade's Solve, the experiment suite, the
// verification CLI) shares this one definition so the constants cannot
// drift between them.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 1.5, Noise: 1}
}

// ChannelFor builds a single-hop SINR channel over the deployment with the
// given parameters, deriving the minimum feasible single-hop power
// (MinSingleHopPower at DefaultSingleHopMargin) when p.Power is 0. Options
// configure the gain-cache delivery engine as in New.
func ChannelFor(p Params, d *geom.Deployment, opts ...Option) (*Channel, error) {
	if p.Power == 0 {
		p.Power = MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, DefaultSingleHopMargin)
	}
	return New(p, d.Points, opts...)
}
