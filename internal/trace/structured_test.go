package trace

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/runner"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// runStructured executes one fully traced run: per-node records, link-class
// censuses, and SINR annotations via the channel observer hook.
func runStructured(t *testing.T, deploySeed, protoSeed uint64, n int) (*Recorder, sim.Result) {
	t.Helper()
	d, err := geom.UniformDisk(deploySeed, n)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
	ch, err := sinr.New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{PerNode: true, Classes: true}
	rec.Header = Header{
		Schema:     SchemaVersion,
		Cmd:        "test",
		N:          n,
		Seed:       protoSeed,
		DeploySeed: deploySeed,
		Algo:       "fixedprob",
		Channel:    "sinr",
		MaxRounds:  2000,
		Points:     d.Points,
	}
	Attach(rec, ch)
	defer Detach(ch)
	res, err := sim.Run(ch, core.FixedProbability{}, protoSeed, sim.Config{MaxRounds: 2000, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestStructuredRecordsAreConsistent(t *testing.T) {
	rec, res := runStructured(t, 3, 7, 12)
	if !res.Solved {
		t.Fatal("unsolved")
	}
	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("no structured records")
	}
	if recs[0].Kind != KindRound {
		t.Fatalf("first record kind = %s, want round", recs[0].Kind)
	}
	last := recs[len(recs)-1]
	if last.Kind != KindResult {
		t.Fatalf("last record kind = %s, want result", last.Kind)
	}
	if !last.Solved || int(last.Round) != res.Rounds || last.Transmissions != res.Transmissions {
		t.Errorf("result record %+v does not match result %+v", last, res)
	}

	// Per-round bookkeeping: tx/recv record counts match the round
	// aggregates, receptions carry exact SINR annotations, and every round
	// has one class census.
	var round Record
	txSeen, recvSeen, classSeen := 0, 0, 0
	check := func() {
		if round.Kind == 0 {
			return
		}
		if txSeen != int(round.Tx) {
			t.Errorf("round %d: %d tx records, aggregate says %d", round.Round, txSeen, round.Tx)
		}
		if recvSeen != int(round.Recv) {
			t.Errorf("round %d: %d recv records, aggregate says %d", round.Round, recvSeen, round.Recv)
		}
		if classSeen != 1 {
			t.Errorf("round %d: %d class censuses, want 1", round.Round, classSeen)
		}
	}
	for _, r := range recs {
		switch r.Kind {
		case KindRound:
			check()
			round, txSeen, recvSeen, classSeen = r, 0, 0, 0
			if r.Active < 0 {
				t.Errorf("round %d: active = %d, want ≥ 0 for core nodes", r.Round, r.Active)
			}
		case KindTransmit:
			txSeen++
		case KindReception:
			recvSeen++
			if math.IsNaN(r.SINR) {
				t.Errorf("round %d node %d: reception without SINR annotation", r.Round, r.Node)
			} else {
				if r.SINR < 1.5 {
					t.Errorf("round %d node %d: sinr %g below β", r.Round, r.Node, r.SINR)
				}
				if r.Margin != r.SINR-1.5 {
					t.Errorf("round %d node %d: margin %g, want %g", r.Round, r.Node, r.Margin, r.SINR-1.5)
				}
			}
		case KindClasses:
			classSeen++
			sizes := rec.ClassSizes(r)
			total := int32(0)
			for _, s := range sizes {
				total += s
			}
			if round.Kind == KindRound && total != round.Active {
				t.Errorf("round %d: class census sums to %d, active = %d", round.Round, total, round.Active)
			}
		}
	}
	check()
}

// roundTrip serialises the recorder and reads it back.
func roundTrip(t *testing.T, rec *Recorder, f Format) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Write(rec, &buf); err != nil {
		t.Fatalf("write %s: %v", f, err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatalf("read %s: %v", f, err)
	}
	return tr
}

func TestFormatsRoundTripEquivalently(t *testing.T) {
	rec, _ := runStructured(t, 5, 11, 10)
	nd := roundTrip(t, rec, FormatNDJSON)
	bin := roundTrip(t, rec, FormatBinary)
	if d := Diff(nd, bin); d != nil {
		t.Fatalf("ndjson and binary round-trips diverge: %+v", d)
	}
	if len(nd.Records) != len(rec.Records()) {
		t.Fatalf("round-trip kept %d records, recorder has %d", len(nd.Records), len(rec.Records()))
	}
	if nd.Header.Seed != rec.Header.Seed || nd.Header.Algo != rec.Header.Algo ||
		len(nd.Header.Points) != len(rec.Header.Points) {
		t.Errorf("header mangled: %+v", nd.Header)
	}
	// Annotations survive bit-exactly in both formats.
	for i, r := range rec.Records() {
		if r.Kind != KindReception {
			continue
		}
		for _, tr := range []*Trace{nd, bin} {
			got := tr.Records[i]
			if math.Float64bits(got.SINR) != math.Float64bits(r.SINR) ||
				math.Float64bits(got.Margin) != math.Float64bits(r.Margin) {
				t.Fatalf("record %d: sinr/margin not bit-preserved: %+v vs %+v", i, got, r)
			}
		}
	}
}

func TestNDJSONShape(t *testing.T) {
	rec, _ := runStructured(t, 2, 9, 8)
	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], `{"event":"header","schema":1,`) {
		t.Errorf("header line = %q", lines[0])
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, `{"event":"`) {
			t.Fatalf("line %d does not lead with the event discriminator: %q", i+1, line)
		}
	}
}

func TestReceptionWithoutObserverOmitsSINR(t *testing.T) {
	rec := &Recorder{PerNode: true}
	rec.Header = Header{Schema: SchemaVersion, Cmd: "test"}
	rec.OnRound(1, []sim.Node{opaque{}, opaque{}}, []bool{true, false}, []int{-1, 0})
	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "sinr") {
		t.Errorf("unannotated reception leaked a sinr field:\n%s", buf.String())
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var recv *Record
	for i := range tr.Records {
		if tr.Records[i].Kind == KindReception {
			recv = &tr.Records[i]
		}
	}
	if recv == nil {
		t.Fatal("no reception record")
	}
	if !math.IsNaN(recv.SINR) || !math.IsNaN(recv.Margin) {
		t.Errorf("absent annotation read back as %g/%g, want NaN", recv.SINR, recv.Margin)
	}
}

func TestDiff(t *testing.T) {
	recA, _ := runStructured(t, 4, 13, 9)
	recB, _ := runStructured(t, 4, 13, 9)
	a := roundTrip(t, recA, FormatNDJSON)
	b := roundTrip(t, recB, FormatBinary)
	if d := Diff(a, b); d != nil {
		t.Fatalf("same-seed traces diverge: %+v", d)
	}

	b.Header.Seed++
	if d := Diff(a, b); d == nil || d.Field != "seed" || d.Index != -1 {
		t.Errorf("header divergence = %+v, want seed at index -1", d)
	}
	b.Header.Seed--

	for i := range b.Records {
		if b.Records[i].Kind == KindReception {
			b.Records[i].SINR += 1e-12
			if d := Diff(a, b); d == nil || d.Field != "sinr" || d.Index != i {
				t.Errorf("sinr divergence = %+v, want sinr at index %d", d, i)
			}
			b.Records[i].SINR = a.Records[i].SINR
			break
		}
	}

	b.Records = b.Records[:len(b.Records)-1]
	if d := Diff(a, b); d == nil || d.Field != "length" {
		t.Errorf("truncation divergence = %+v, want length", d)
	}
}

// activeNode exposes activity so OnRound's per-node path runs in the alloc
// benchmark below.
type activeNode struct{ active bool }

func (activeNode) Act(int) sim.Action          { return sim.Listen }
func (activeNode) Hear(int, int, sim.Feedback) {}
func (n activeNode) Active() bool              { return n.active }

func TestRecorderResetReusesBuffers(t *testing.T) {
	rec := &Recorder{PerNode: true}
	nodes := []sim.Node{activeNode{true}, activeNode{true}, activeNode{false}, activeNode{true}}
	tx := []bool{true, false, true, false}
	recv := []int{-1, 0, -1, 2}

	// One warm-up pass sizes every buffer.
	for round := 1; round <= 50; round++ {
		rec.OnReception(1, 0, 2.5, 1.0)
		rec.OnReception(3, 2, 3.5, 2.0)
		rec.OnRound(round, nodes, tx, recv)
	}
	rec.OnResult(sim.Result{Solved: true, Rounds: 50, Winner: 0, Transmissions: 100})

	allocs := testing.AllocsPerRun(20, func() {
		rec.Reset()
		for round := 1; round <= 50; round++ {
			rec.OnReception(1, 0, 2.5, 1.0)
			rec.OnReception(3, 2, 3.5, 2.0)
			rec.OnRound(round, nodes, tx, recv)
		}
		rec.OnResult(sim.Result{Solved: true, Rounds: 50, Winner: 0, Transmissions: 100})
	})
	if allocs != 0 {
		t.Errorf("recycled per-trial capture allocates %.1f times per trial, want 0", allocs)
	}
	if len(rec.Records()) == 0 || len(rec.Events) != 50 {
		t.Fatalf("reset run lost records: %d events", len(rec.Events))
	}
}

func TestCaptureSamplingAndFilenames(t *testing.T) {
	dir := t.TempDir()
	cap1, err := NewCapture("test", Policy{Dir: dir, EveryK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 7; trial++ {
		rec := cap1.Recorder(trial)
		if (trial%3 == 0) != (rec != nil) {
			t.Fatalf("trial %d: sampled = %v, want every 3rd", trial, rec != nil)
		}
		if rec == nil {
			continue
		}
		if !rec.PerNode || rec.Header.Trial != trial || rec.Header.Cmd != "test" {
			t.Fatalf("trial %d recorder misconfigured: %+v", trial, rec.Header)
		}
		rec.Header.Seed = 0xabc0 + uint64(trial)
		rec.OnRound(1, []sim.Node{activeNode{true}}, []bool{true}, []int{-1})
		rec.OnResult(sim.Result{Solved: false, Rounds: 1, Winner: -1, Transmissions: 1})
		if err := cap1.Commit(trial, rec, false); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{
		"trial-000000-seed-000000000000abc0.ndjson",
		"trial-000003-seed-000000000000abc3.ndjson",
		"trial-000006-seed-000000000000abc6.ndjson",
	}
	got := cap1.Written()
	if len(got) != len(want) {
		t.Fatalf("written = %v", got)
	}
	for i, p := range got {
		if filepath.Base(p) != want[i] {
			t.Errorf("file %d = %s, want %s", i, filepath.Base(p), want[i])
		}
		tr, err := readFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if tr.Header.Trial != i*3 {
			t.Errorf("%s: trial = %d", p, tr.Header.Trial)
		}
	}
}

func readFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func TestCaptureFailuresOnly(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapture("test", Policy{Dir: dir, FailuresOnly: true, Format: FormatBinary})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		rec := c.Recorder(trial)
		rec.Header.Seed = uint64(trial)
		rec.OnRound(1, []sim.Node{activeNode{true}}, []bool{false}, []int{-1})
		solved := trial%2 == 0
		rec.OnResult(sim.Result{Solved: solved, Rounds: 1, Winner: -1})
		if err := c.Commit(trial, rec, solved); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Written(); len(got) != 2 {
		t.Fatalf("written = %v, want the two failed trials", got)
	}
	if c.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", c.Dropped())
	}
	for _, p := range c.Written() {
		tr, err := readFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		last := tr.Records[len(tr.Records)-1]
		if last.Kind != KindResult || last.Solved {
			t.Errorf("%s retained a solved trial: %+v", p, last)
		}
	}
}

// TestCaptureParallelismInvariance runs the same Monte Carlo capture at
// parallelism 1 and 8 and asserts the trace files are byte-identical — the
// capture layer preserves the runner's determinism contract.
func TestCaptureParallelismInvariance(t *testing.T) {
	const master, trials, n = 0xfade, 6, 8
	run := func(parallelism int) (string, *Capture) {
		dir := t.TempDir()
		c, err := NewCapture("test", Policy{Dir: dir, EveryK: 2, Classes: true})
		if err != nil {
			t.Fatal(err)
		}
		_, err = runner.Run(context.Background(), trials, func(_ context.Context, trial int) (bool, error) {
			deploySeed, protoSeed := runner.TrialSeeds(master, trial)
			d, err := geom.UniformDisk(deploySeed, n)
			if err != nil {
				return false, err
			}
			params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
			params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
			ch, err := sinr.New(params, d.Points)
			if err != nil {
				return false, err
			}
			rec := c.Recorder(trial)
			cfg := sim.Config{MaxRounds: 2000}
			if rec != nil {
				rec.Header.N = n
				rec.Header.Seed = protoSeed
				rec.Header.DeploySeed = deploySeed
				rec.Header.Algo = "fixedprob"
				rec.Header.Channel = "sinr"
				rec.Header.MaxRounds = cfg.MaxRounds
				rec.Header.Points = append(rec.Header.Points[:0], d.Points...)
				cfg.Tracer = rec
				Attach(rec, ch)
			}
			res, err := sim.Run(ch, core.FixedProbability{}, protoSeed, cfg)
			if err != nil {
				return false, err
			}
			if rec != nil {
				if err := c.Commit(trial, rec, res.Solved); err != nil {
					return false, err
				}
			}
			return res.Solved, nil
		}, runner.Options[bool]{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return dir, c
	}

	dirA, capA := run(1)
	dirB, capB := run(8)
	filesA, filesB := capA.Written(), capB.Written()
	if len(filesA) != 3 || len(filesB) != 3 {
		t.Fatalf("written %d and %d files, want 3 each", len(filesA), len(filesB))
	}
	for i := range filesA {
		ra, rb := filepath.Base(filesA[i]), filepath.Base(filesB[i])
		if ra != rb {
			t.Fatalf("file %d named %s vs %s", i, ra, rb)
		}
		ba, err := os.ReadFile(filepath.Join(dirA, ra))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(dirB, rb))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			ta, _ := readFile(filesA[i])
			tb, _ := readFile(filesB[i])
			t.Fatalf("%s differs across parallelism: %+v", ra, Diff(ta, tb))
		}
	}
}

func TestWriteCSVEmptyActiveField(t *testing.T) {
	rec := &Recorder{Events: []Event{
		{Round: 1, Transmitters: 2, Receptions: 1, Active: -1},
		{Round: 2, Transmitters: 1, Receptions: 1, Active: 5},
	}}
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[1] != "1,2,1," {
		t.Errorf("sentinel row = %q, want empty active field", lines[1])
	}
	if lines[2] != "2,1,1,5" {
		t.Errorf("active row = %q", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	var traces []*Trace
	for _, seed := range []uint64{7, 8, 9} {
		rec, _ := runStructured(t, 6, seed, 9)
		traces = append(traces, roundTrip(t, rec, FormatNDJSON))
	}
	s := Summarize(traces)
	if s.Traces != 3 || s.Solved+s.Unsolved != 3 {
		t.Fatalf("summary outcome mix %+v", s)
	}
	if len(s.Rounds) != 3 || len(s.Transmissions) != 3 {
		t.Fatalf("per-trace vectors sized %d/%d", len(s.Rounds), len(s.Transmissions))
	}
	maxRounds := 0
	for i, r := range s.Rounds {
		if r <= 0 {
			t.Errorf("trace %d rounds = %d", i, r)
		}
		if r > maxRounds {
			maxRounds = r
		}
		if s.Transmissions[i] <= 0 {
			t.Errorf("trace %d transmissions = %d", i, s.Transmissions[i])
		}
	}
	if len(s.MeanTx) != maxRounds || len(s.Running) != maxRounds {
		t.Fatalf("contention curve spans %d rounds, want %d", len(s.MeanTx), maxRounds)
	}
	if s.Running[0] != 3 {
		t.Errorf("round 1 running = %d, want 3", s.Running[0])
	}
	var nodeTotal int64
	for _, c := range s.NodeTx {
		nodeTotal += c
	}
	var resTotal int64
	for _, tr := range s.Transmissions {
		resTotal += tr
	}
	if nodeTotal != resTotal {
		t.Errorf("per-node tx counts sum to %d, results say %d", nodeTotal, resTotal)
	}
}
