package trace

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fadingcr/internal/sim"
)

func sampleBundle() *Bundle {
	return &Bundle{
		Policy: Policy{Format: FormatNDJSON, EveryK: 2, FailuresOnly: false, Classes: true},
		Files: []BundleFile{
			{Loop: 0, Trial: 0, Name: "trial-000000-seed-0000000000000001.ndjson", Data: []byte("{\"a\":1}\n")},
			{Loop: 0, Trial: 2, Name: "trial-000002-seed-0000000000000003.ndjson", Data: []byte("{\"b\":2}\n")},
			{Loop: 1, Trial: 0, Name: "trial-000000-seed-0000000000000001.ndjson", Data: []byte{0x00, 0x01, 0xff}},
		},
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := sampleBundle()
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsBundlePrefix(buf.Bytes()) {
		t.Errorf("encoded bundle does not start with the magic prefix: %q", buf.Bytes()[:40])
	}
	got, err := ReadBundle(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, b)
	}

	// Byte-determinism: re-encoding yields identical bytes.
	var buf2 bytes.Buffer
	if err := b.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := got.Encode(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("decode→encode is not byte-identical")
	}
}

func TestBundleEmptyRoundTrip(t *testing.T) {
	b := &Bundle{Policy: Policy{Format: FormatBinary, EveryK: 100}}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != 0 || got.Policy != b.Policy {
		t.Errorf("got %+v", got)
	}
}

// TestBundleRejectsCorruption walks every tampering mode the wire must
// catch: truncation before and inside a payload, a flipped payload byte, a
// bad count, unsorted entries, and path-escaping names.
func TestBundleRejectsCorruption(t *testing.T) {
	encode := func(b *Bundle) []byte {
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	wire := encode(sampleBundle())

	t.Run("truncated manifest", func(t *testing.T) {
		cut := bytes.Index(wire, []byte("trace-end"))
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(wire[:cut-10]))); err == nil {
			t.Error("stream cut before the end line decoded")
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		cut := bytes.Index(wire, []byte("{\"a\":1}"))
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(wire[:cut+3]))); err == nil {
			t.Error("stream cut inside a payload decoded")
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[bytes.Index(bad, []byte("{\"b\":2}"))+2] ^= 0x20
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(bad))); err == nil || !strings.Contains(err.Error(), "hash") {
			t.Errorf("tampered payload decoded: %v", err)
		}
	})
	t.Run("wrong file count", func(t *testing.T) {
		bad := bytes.Replace(wire, []byte(`"files":3`), []byte(`"files":2`), 1)
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Error("miscounted end line decoded")
		}
	})
	t.Run("unsorted entries", func(t *testing.T) {
		b := sampleBundle()
		b.Files[0], b.Files[1] = b.Files[1], b.Files[0]
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(encode(b)))); err == nil {
			t.Error("out-of-order manifest decoded")
		}
	})
	t.Run("path-escaping name", func(t *testing.T) {
		b := sampleBundle()
		b.Files[0].Name = "../evil.ndjson"
		var buf bytes.Buffer
		if err := b.Encode(&buf); err == nil {
			t.Error("encoder accepted a path-escaping name")
		}
		// Hand-craft the same attack on the wire.
		bad := bytes.Replace(wire, []byte("trial-000002-seed-0000000000000003.ndjson"), []byte("../../../../../tmp/evil.x.ndjson.pad.ndj"), 1)
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Error("decoder accepted a path-escaping name")
		}
	})
	t.Run("oversized declaration", func(t *testing.T) {
		bad := bytes.Replace(wire, []byte(`"size":8`), []byte(`"size":999999999999`), 1)
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Error("absurd size declaration decoded")
		}
	})
	t.Run("wrong schema", func(t *testing.T) {
		bad := bytes.Replace(wire, []byte(`"schema":1`), []byte(`"schema":9`), 1)
		if _, err := ReadBundle(bufio.NewReader(bytes.NewReader(bad))); err == nil {
			t.Error("future schema decoded")
		}
	})
}

// TestCaptureBundleKeepsLastLoopWrite drives a real capture through two
// loops that reuse trial indices — the on-disk file ends up holding the
// second loop's bytes, and the bundle must agree.
func TestCaptureBundleKeepsLastLoopWrite(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapture("test", Policy{Dir: dir, EveryK: 1})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(trial, rounds int) {
		t.Helper()
		rec := c.Recorder(trial)
		rec.Header.Seed = 0x10 + uint64(trial)
		for r := 1; r <= rounds; r++ {
			rec.OnRound(r, []sim.Node{activeNode{true}}, []bool{true}, []int{-1})
		}
		rec.OnResult(sim.Result{Solved: false, Rounds: rounds, Winner: -1, Transmissions: int64(rounds)})
		if err := c.Commit(trial, rec, false); err != nil {
			t.Fatal(err)
		}
	}
	c.SetLoop(0)
	commit(0, 1)
	commit(1, 2)
	c.SetLoop(1)
	commit(0, 3) // overwrites loop 0's trial-0 file

	b, err := c.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	if b.Policy.Dir != "" {
		t.Errorf("bundle leaks the capture directory %q", b.Policy.Dir)
	}
	if len(b.Files) != 2 {
		t.Fatalf("bundle has %d files, want 2 (per-name latest loop): %+v", len(b.Files), b.Files)
	}
	// Sorted by (loop, name): trial 1 from loop 0, then trial 0 from loop 1.
	if b.Files[0].Loop != 0 || b.Files[0].Trial != 1 || b.Files[1].Loop != 1 || b.Files[1].Trial != 0 {
		t.Fatalf("bundle order/provenance wrong: %+v", b.Files)
	}
	for _, f := range b.Files {
		disk, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, disk) {
			t.Errorf("bundle bytes for %s differ from the on-disk file", f.Name)
		}
	}

	// WriteFiles reproduces the capture directory exactly.
	out := t.TempDir()
	n, err := WriteFiles(out, b.Files)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("WriteFiles wrote %d names, want 2", n)
	}
	for _, f := range b.Files {
		disk, err := os.ReadFile(filepath.Join(out, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, disk) {
			t.Errorf("replayed bytes for %s differ", f.Name)
		}
	}
}
