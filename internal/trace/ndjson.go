package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"fadingcr/internal/geom"
	"fadingcr/internal/obs"
)

// NDJSON trace layout: one JSON object per line in internal/obs sink
// convention — the "event" discriminator first, every other field in a
// fixed order, no map iteration anywhere — so equal captures serialise to
// byte-identical files. The first line is the header event; each record
// follows as its Kind's event name. Optional annotations (a reception's
// sinr/margin when the channel exposed no observer, a round's active count
// when nodes expose no activity) are omitted rather than written as
// sentinels.

// WriteNDJSON serialises the recorder's header and structured records as
// NDJSON.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	e := obs.NewLineEncoder(bw)
	writeHeader(e, &r.Header)
	for _, rec := range r.recs {
		writeRecord(e, rec, r.classSizes)
	}
	if err := e.Err(); err != nil {
		return fmt.Errorf("trace: write ndjson: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write ndjson: %w", err)
	}
	return nil
}

func writeHeader(e *obs.LineEncoder, h *Header) {
	e.Begin("header")
	e.Int("schema", int64(h.Schema))
	e.Str("cmd", h.Cmd)
	e.Int("n", int64(h.N))
	e.Uint("seed", h.Seed)
	e.Uint("deploy_seed", h.DeploySeed)
	e.Int("trial", int64(h.Trial))
	e.Str("algo", h.Algo)
	e.Str("channel", h.Channel)
	e.Int("max_rounds", int64(h.MaxRounds))
	if len(h.Points) > 0 {
		e.Arr("points")
		for _, p := range h.Points {
			e.ElemArr()
			e.ElemFloat(p.X)
			e.ElemFloat(p.Y)
			e.ArrEnd()
		}
		e.ArrEnd()
	}
	_ = e.End()
}

func writeRecord(e *obs.LineEncoder, rec Record, classSizes []int32) {
	e.Begin(rec.Kind.String())
	switch rec.Kind {
	case KindRound:
		e.Int("round", int64(rec.Round))
		if rec.Active >= 0 {
			e.Int("active", int64(rec.Active))
		}
		e.Int("tx", int64(rec.Tx))
		e.Int("recv", int64(rec.Recv))
	case KindTransmit, KindKnockout:
		e.Int("round", int64(rec.Round))
		e.Int("node", int64(rec.Node))
	case KindReception:
		e.Int("round", int64(rec.Round))
		e.Int("node", int64(rec.Node))
		e.Int("from", int64(rec.From))
		if !math.IsNaN(rec.SINR) {
			e.Float("sinr", rec.SINR)
			e.Float("margin", rec.Margin)
		}
	case KindClasses:
		e.Int("round", int64(rec.Round))
		e.Arr("sizes")
		for _, s := range classSizes[rec.Off : rec.Off+rec.Len] {
			e.ElemInt(int64(s))
		}
		e.ArrEnd()
	case KindResult:
		e.Bool("solved", rec.Solved)
		e.Int("rounds", int64(rec.Round))
		e.Int("winner", int64(rec.Node))
		e.Int("transmissions", rec.Transmissions)
	}
	_ = e.End()
}

// jsonLine is the union of every NDJSON trace line's fields; pointers
// distinguish absent optional annotations from zero values.
type jsonLine struct {
	Event string `json:"event"`

	// header
	Schema     int         `json:"schema"`
	Cmd        string      `json:"cmd"`
	N          int         `json:"n"`
	Seed       uint64      `json:"seed"`
	DeploySeed uint64      `json:"deploy_seed"`
	Trial      int         `json:"trial"`
	Algo       string      `json:"algo"`
	Channel    string      `json:"channel"`
	MaxRounds  int         `json:"max_rounds"`
	Points     [][]float64 `json:"points"`

	// records
	Round  int32    `json:"round"`
	Node   int32    `json:"node"`
	From   int32    `json:"from"`
	Active *int32   `json:"active"`
	Tx     int32    `json:"tx"`
	Recv   int32    `json:"recv"`
	SINR   *float64 `json:"sinr"`
	Margin *float64 `json:"margin"`
	Sizes  []int32  `json:"sizes"`

	// result
	Solved        bool  `json:"solved"`
	Rounds        int32 `json:"rounds"`
	Winner        int32 `json:"winner"`
	Transmissions int64 `json:"transmissions"`
}

// headerFromLine converts a decoded header line.
func headerFromLine(l *jsonLine) (Header, error) {
	if l.Schema != SchemaVersion {
		return Header{}, fmt.Errorf("trace: unsupported schema version %d (reader supports %d)", l.Schema, SchemaVersion)
	}
	h := Header{
		Schema:     l.Schema,
		Cmd:        l.Cmd,
		N:          l.N,
		Seed:       l.Seed,
		DeploySeed: l.DeploySeed,
		Trial:      l.Trial,
		Algo:       l.Algo,
		Channel:    l.Channel,
		MaxRounds:  l.MaxRounds,
	}
	for _, p := range l.Points {
		if len(p) != 2 {
			return Header{}, fmt.Errorf("trace: header point %v is not an [x,y] pair", p)
		}
		h.Points = append(h.Points, geom.Point{X: p[0], Y: p[1]})
	}
	return h, nil
}

// readNDJSON parses an NDJSON trace stream.
func readNDJSON(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l jsonLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if lineNo == 1 {
			if l.Event != "header" {
				return nil, fmt.Errorf("trace: line 1: first event is %q, want header", l.Event)
			}
			h, err := headerFromLine(&l)
			if err != nil {
				return nil, err
			}
			t.Header = h
			continue
		}
		rec, err := recordFromLine(t, &l)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read ndjson: %w", err)
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("trace: empty trace stream")
	}
	return t, nil
}

func recordFromLine(t *Trace, l *jsonLine) (Record, error) {
	switch l.Event {
	case "round":
		active := int32(-1)
		if l.Active != nil {
			active = *l.Active
		}
		return Record{Kind: KindRound, Round: l.Round, Active: active, Tx: l.Tx, Recv: l.Recv}, nil
	case "tx":
		return Record{Kind: KindTransmit, Round: l.Round, Node: l.Node}, nil
	case "recv":
		rec := Record{Kind: KindReception, Round: l.Round, Node: l.Node, From: l.From, SINR: math.NaN(), Margin: math.NaN()}
		if l.SINR != nil {
			rec.SINR = *l.SINR
		}
		if l.Margin != nil {
			rec.Margin = *l.Margin
		}
		return rec, nil
	case "knockout":
		return Record{Kind: KindKnockout, Round: l.Round, Node: l.Node}, nil
	case "classes":
		off := int32(len(t.classSizes))
		t.classSizes = append(t.classSizes, l.Sizes...)
		return Record{Kind: KindClasses, Round: l.Round, Off: off, Len: int32(len(l.Sizes))}, nil
	case "result":
		return Record{Kind: KindResult, Round: l.Rounds, Node: l.Winner, Solved: l.Solved, Transmissions: l.Transmissions}, nil
	case "header":
		return Record{}, fmt.Errorf("duplicate header event")
	default:
		return Record{}, fmt.Errorf("unknown event %q", l.Event)
	}
}
