package trace

import (
	"errors"
	"strings"
	"testing"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

func runTraced(t *testing.T) (*Recorder, sim.Result) {
	t.Helper()
	d, err := geom.UniformDisk(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
	ch, err := sinr.New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	res, err := sim.Run(ch, core.FixedProbability{}, 7, sim.Config{MaxRounds: 2000, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderCapturesRounds(t *testing.T) {
	rec, res := runTraced(t)
	if !res.Solved {
		t.Fatal("unsolved")
	}
	if len(rec.Events) != res.Rounds {
		t.Fatalf("events = %d, want %d", len(rec.Events), res.Rounds)
	}
	var totalTx int64
	for i, e := range rec.Events {
		if e.Round != i+1 {
			t.Errorf("event %d has round %d", i, e.Round)
		}
		if e.Active < 0 {
			t.Errorf("round %d: active = %d, want ≥ 0 for core nodes", e.Round, e.Active)
		}
		totalTx += int64(e.Transmitters)
	}
	if totalTx != res.Transmissions {
		t.Errorf("traced transmissions %d != result %d", totalTx, res.Transmissions)
	}
	if last := rec.Events[len(rec.Events)-1]; last.Transmitters != 1 {
		t.Errorf("solving round transmitters = %d, want 1", last.Transmitters)
	}
}

func TestRecorderWithoutActivenessNodes(t *testing.T) {
	rec := &Recorder{}
	rec.OnRound(1, []sim.Node{opaque{}, opaque{}}, []bool{true, false}, []int{-1, 0})
	e := rec.Events[0]
	if e.Active != -1 {
		t.Errorf("Active = %d, want -1 for opaque nodes", e.Active)
	}
	if e.Transmitters != 1 || e.Receptions != 1 {
		t.Errorf("event = %+v", e)
	}
}

type opaque struct{}

func (opaque) Act(int) sim.Action          { return sim.Listen }
func (opaque) Hear(int, int, sim.Feedback) {}

func TestWriteCSV(t *testing.T) {
	rec, _ := runTraced(t)
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "round,transmitters,receptions,active" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != len(rec.Events)+1 {
		t.Errorf("lines = %d, want %d", len(lines), len(rec.Events)+1)
	}
}

func TestWriteSnapshotsCSV(t *testing.T) {
	snaps := []core.Snapshot{
		{Round: 1, Active: 4, Transmitters: 2, Knockouts: 1, ClassSizes: []int{3, 1}, GoodPerClass: []int{3, 0}},
		{Round: 2, Active: 3, Transmitters: 1, Knockouts: 0, ClassSizes: nil},
	}
	var b strings.Builder
	if err := WriteSnapshotsCSV(&b, snaps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header + 2 class rows for round 1 + 1 placeholder row for round 2.
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != "1,4,2,1,0,3,3" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[3] != "2,3,1,0,-1,0," {
		t.Errorf("row 3 = %q", lines[3])
	}
}

// failWriter errors after a fixed number of bytes, exercising the CSV error
// paths.
type failWriter struct{ budget int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errWriteFailed
	}
	n := len(p)
	if n > w.budget {
		n = w.budget
	}
	w.budget -= n
	if n < len(p) {
		return n, errWriteFailed
	}
	return n, nil
}

var errWriteFailed = errors.New("write failed")

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	rec := &Recorder{Events: []Event{{Round: 1, Transmitters: 1, Receptions: 0, Active: 2}}}
	if err := rec.WriteCSV(&failWriter{budget: 0}); err == nil {
		t.Error("header write failure not propagated")
	}
	if err := rec.WriteCSV(&failWriter{budget: 40}); err == nil {
		t.Error("row write failure not propagated")
	}
}

func TestWriteSnapshotsCSVPropagatesWriterErrors(t *testing.T) {
	snaps := []core.Snapshot{
		{Round: 1, Active: 2, ClassSizes: []int{2}},
		{Round: 2, Active: 1, ClassSizes: nil},
	}
	if err := WriteSnapshotsCSV(&failWriter{budget: 0}, snaps); err == nil {
		t.Error("header write failure not propagated")
	}
	if err := WriteSnapshotsCSV(&failWriter{budget: 60}, snaps); err == nil {
		t.Error("row write failure not propagated")
	}
}
