// Package trace records per-round execution events and serialises analysis
// data to CSV for offline inspection.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fadingcr/internal/core"
	"fadingcr/internal/sim"
)

// Event is the per-round record captured by Recorder.
type Event struct {
	// Round is the 1-based round index.
	Round int
	// Transmitters is the number of nodes that transmitted.
	Transmitters int
	// Receptions is the number of listeners that decoded a message.
	Receptions int
	// Active is the number of nodes reporting themselves active (via the
	// core.Activeness interface) entering the round; −1 when the protocol's
	// nodes do not expose activity.
	Active int
}

// Recorder is a lightweight sim.Tracer capturing one Event per round.
type Recorder struct {
	Events []Event
}

var _ sim.Tracer = (*Recorder)(nil)

// OnRound implements sim.Tracer.
func (r *Recorder) OnRound(round int, nodes []sim.Node, tx []bool, recv []int) {
	e := Event{Round: round, Active: -1}
	for _, t := range tx {
		if t {
			e.Transmitters++
		}
	}
	for _, from := range recv {
		if from >= 0 {
			e.Receptions++
		}
	}
	active, any := 0, false
	for _, node := range nodes {
		if a, ok := node.(core.Activeness); ok {
			any = true
			if a.Active() {
				active++
			}
		}
	}
	if any {
		e.Active = active
	}
	r.Events = append(r.Events, e)
}

// WriteCSV writes the recorded events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "transmitters", "receptions", "active"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range r.Events {
		row := []string{
			strconv.Itoa(e.Round),
			strconv.Itoa(e.Transmitters),
			strconv.Itoa(e.Receptions),
			strconv.Itoa(e.Active),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSnapshotsCSV serialises an analyzer's per-round snapshots: one row
// per (round, class) pair plus the per-round aggregates.
func WriteSnapshotsCSV(w io.Writer, snaps []core.Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "active", "transmitters", "knockouts", "class", "size", "good"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, s := range snaps {
		if len(s.ClassSizes) == 0 {
			if err := cw.Write([]string{
				strconv.Itoa(s.Round), strconv.Itoa(s.Active),
				strconv.Itoa(s.Transmitters), strconv.Itoa(s.Knockouts),
				"-1", "0", "",
			}); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
			continue
		}
		for i, size := range s.ClassSizes {
			good := ""
			if s.GoodPerClass != nil {
				good = strconv.Itoa(s.GoodPerClass[i])
			}
			if err := cw.Write([]string{
				strconv.Itoa(s.Round), strconv.Itoa(s.Active),
				strconv.Itoa(s.Transmitters), strconv.Itoa(s.Knockouts),
				strconv.Itoa(i), strconv.Itoa(size), good,
			}); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
