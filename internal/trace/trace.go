// Package trace is the structured run-tracing layer of the repository: it
// captures per-round, per-node execution events — round boundaries,
// transmit decisions, receptions annotated with the winning SINR value and
// margin, knockouts, link-class censuses — into a deterministic,
// schema-versioned event stream, and serialises it as NDJSON (one JSON
// object per line, internal/obs sink conventions) or a compact binary
// format for large runs. cmd/crtrace consumes the files.
//
// Tracing is strictly observational: a traced execution computes the exact
// float and rng sequences of an untraced one, so results are byte-identical
// with tracing on or off (TestTraceInvariance), and two same-seed traced
// runs produce byte-identical trace files (the determinism contract, made
// testable by Diff / `crtrace diff`).
//
// For Monte Carlo runs the Capture type composes with internal/runner:
// bounded retention policies (trace every Kth trial, keep failures only)
// and recorder recycling via Reset make tracing 10⁴ trials safe by
// construction. The package also retains the legacy per-round aggregate
// view (Event, WriteCSV, WriteSnapshotsCSV) used by crsim's -trace/-csv
// flags.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
)

// Event is the per-round aggregate record captured by Recorder (the legacy
// flat view; structured consumers use Records).
type Event struct {
	// Round is the 1-based round index.
	Round int
	// Transmitters is the number of nodes that transmitted.
	Transmitters int
	// Receptions is the number of listeners that decoded a message.
	Receptions int
	// Active is the number of nodes reporting themselves active (via the
	// core.Activeness interface) entering the round; −1 when the protocol's
	// nodes do not expose activity.
	Active int
}

// Recorder is a sim.Tracer capturing one aggregate Event per round and,
// when PerNode or Classes is set, the structured per-node record stream.
// It also implements sinr.ReceptionObserver (attach it to a channel with
// Attach to annotate receptions with their SINR values) and
// sim.ResultTracer (the engine closes the trace with a result record).
//
// A Recorder is single-run, single-goroutine state; Reset recycles it —
// buffers included — for the next trial.
type Recorder struct {
	// Events are the per-round aggregates.
	Events []Event
	// Header is the trace identity written ahead of the records; the caller
	// populates it before serialising.
	Header Header
	// PerNode enables structured capture of per-node transmit, reception,
	// and knockout records (plus round boundaries and the result).
	PerNode bool
	// Classes additionally records the link-class census of every round.
	// It requires Header.Points to cover the deployment (and costs a
	// ComputeLinkClasses pass per round, allocating; leave it off for
	// allocation-sensitive captures).
	Classes bool

	recs       []Record
	classSizes []int32
	active     []bool // per-round activeness scratch
	haveActive bool

	// Pending receptions observed during the round's Deliver, joined with
	// recv in OnRound. Engines invoke observers in ascending listener
	// order, so the join is a single merge pass.
	pendNode   []int32
	pendFrom   []int32
	pendSINR   []float64
	pendMargin []float64
}

var (
	_ sim.Tracer             = (*Recorder)(nil)
	_ sim.ResultTracer       = (*Recorder)(nil)
	_ sinr.ReceptionObserver = (*Recorder)(nil)
)

// observable is the observer surface of the SINR channels.
type observable interface {
	SetObserver(sinr.ReceptionObserver)
}

// Attach installs the recorder as ch's reception observer when the channel
// supports it and per-node capture is on; receptions then carry their SINR
// values and margins. Channels without the hook (the radio channels) are
// left untouched and receptions record NaN.
func Attach(rec *Recorder, ch sim.Channel) {
	if !rec.PerNode {
		return
	}
	if o, ok := ch.(observable); ok {
		o.SetObserver(rec)
	}
}

// Detach removes the recorder (or any observer) from ch.
func Detach(ch sim.Channel) {
	if o, ok := ch.(observable); ok {
		o.SetObserver(nil)
	}
}

// Reset clears the recorder for reuse, retaining every buffer's capacity so
// steady-state per-trial capture performs no per-round allocations (the
// AllocsPerRun regression in trace_test.go). Configuration (Header,
// PerNode, Classes) is left untouched; callers overwrite the header per
// trial.
func (r *Recorder) Reset() {
	r.Events = r.Events[:0]
	r.recs = r.recs[:0]
	r.classSizes = r.classSizes[:0]
	r.active = r.active[:0]
	r.haveActive = false
	r.clearPending()
}

func (r *Recorder) clearPending() {
	r.pendNode = r.pendNode[:0]
	r.pendFrom = r.pendFrom[:0]
	r.pendSINR = r.pendSINR[:0]
	r.pendMargin = r.pendMargin[:0]
}

// Records returns the structured record stream captured so far.
func (r *Recorder) Records() []Record { return r.recs }

// ClassSizes resolves a KindClasses record's census; nil for other kinds.
func (r *Recorder) ClassSizes(rec Record) []int32 {
	if rec.Kind != KindClasses {
		return nil
	}
	return r.classSizes[rec.Off : rec.Off+rec.Len]
}

// OnReception implements sinr.ReceptionObserver: it buffers the reception's
// SINR annotation until OnRound joins it with the round's recv vector.
func (r *Recorder) OnReception(listener, from int, sinrVal, margin float64) {
	r.pendNode = append(r.pendNode, int32(listener))
	r.pendFrom = append(r.pendFrom, int32(from))
	r.pendSINR = append(r.pendSINR, sinrVal)
	r.pendMargin = append(r.pendMargin, margin)
}

// OnRound implements sim.Tracer.
func (r *Recorder) OnRound(round int, nodes []sim.Node, tx []bool, recv []int) {
	e := Event{Round: round, Active: -1}
	for _, t := range tx {
		if t {
			e.Transmitters++
		}
	}
	for _, from := range recv {
		if from >= 0 {
			e.Receptions++
		}
	}
	if cap(r.active) < len(nodes) {
		r.active = make([]bool, len(nodes))
	}
	r.active = r.active[:len(nodes)]
	r.haveActive = false
	activeCount := 0
	for i, node := range nodes {
		r.active[i] = false
		if a, ok := node.(core.Activeness); ok {
			r.haveActive = true
			if a.Active() {
				r.active[i] = true
				activeCount++
			}
		}
	}
	if r.haveActive {
		e.Active = activeCount
	}
	r.Events = append(r.Events, e)

	if r.PerNode || r.Classes {
		r.appendStructured(round, e, tx, recv)
	}
	r.clearPending()
}

// appendStructured emits the round's structured records: the boundary, then
// per-node transmits, receptions (joined with the pending SINR
// annotations), knockouts, and the link-class census — each in ascending
// node order, so the stream is a deterministic function of the execution.
func (r *Recorder) appendStructured(round int, e Event, tx []bool, recv []int) {
	rnd := int32(round)
	r.recs = append(r.recs, Record{
		Kind:   KindRound,
		Round:  rnd,
		Active: int32(e.Active),
		Tx:     int32(e.Transmitters),
		Recv:   int32(e.Receptions),
	})
	if r.PerNode {
		for u, t := range tx {
			if t {
				r.recs = append(r.recs, Record{Kind: KindTransmit, Round: rnd, Node: int32(u)})
			}
		}
		pi := 0
		for v, from := range recv {
			if from < 0 {
				continue
			}
			rec := Record{
				Kind:   KindReception,
				Round:  rnd,
				Node:   int32(v),
				From:   int32(from),
				SINR:   math.NaN(),
				Margin: math.NaN(),
			}
			if pi < len(r.pendNode) && r.pendNode[pi] == int32(v) {
				rec.SINR = r.pendSINR[pi]
				rec.Margin = r.pendMargin[pi]
				pi++
			}
			r.recs = append(r.recs, rec)
		}
		if r.haveActive {
			for v, from := range recv {
				if from >= 0 && r.active[v] {
					r.recs = append(r.recs, Record{Kind: KindKnockout, Round: rnd, Node: int32(v)})
				}
			}
		}
	}
	if r.Classes && len(r.Header.Points) == len(recv) && r.haveActive {
		lc := geom.ComputeLinkClasses(r.Header.Points, r.active)
		off := int32(len(r.classSizes))
		for _, s := range lc.Sizes {
			r.classSizes = append(r.classSizes, int32(s))
		}
		r.recs = append(r.recs, Record{Kind: KindClasses, Round: rnd, Off: off, Len: int32(len(lc.Sizes))})
	}
}

// OnResult implements sim.ResultTracer: it closes the structured stream
// with the execution's outcome.
func (r *Recorder) OnResult(res sim.Result) {
	if !r.PerNode && !r.Classes {
		return
	}
	r.recs = append(r.recs, Record{
		Kind:          KindResult,
		Round:         int32(res.Rounds),
		Node:          int32(res.Winner),
		Solved:        res.Solved,
		Transmissions: res.Transmissions,
	})
}

// WriteCSV writes the recorded aggregate events as CSV with a header row.
// The active column is empty for protocols whose nodes do not expose
// activity (the internal −1 sentinel never reaches the file, matching the
// empty-field convention of WriteSnapshotsCSV's good column).
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "transmitters", "receptions", "active"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range r.Events {
		active := ""
		if e.Active >= 0 {
			active = strconv.Itoa(e.Active)
		}
		row := []string{
			strconv.Itoa(e.Round),
			strconv.Itoa(e.Transmitters),
			strconv.Itoa(e.Receptions),
			active,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSnapshotsCSV serialises an analyzer's per-round snapshots: one row
// per (round, class) pair plus the per-round aggregates.
func WriteSnapshotsCSV(w io.Writer, snaps []core.Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "active", "transmitters", "knockouts", "class", "size", "good"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, s := range snaps {
		if len(s.ClassSizes) == 0 {
			if err := cw.Write([]string{
				strconv.Itoa(s.Round), strconv.Itoa(s.Active),
				strconv.Itoa(s.Transmitters), strconv.Itoa(s.Knockouts),
				"-1", "0", "",
			}); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
			continue
		}
		for i, size := range s.ClassSizes {
			good := ""
			if s.GoodPerClass != nil {
				good = strconv.Itoa(s.GoodPerClass[i])
			}
			if err := cw.Write([]string{
				strconv.Itoa(s.Round), strconv.Itoa(s.Active),
				strconv.Itoa(s.Transmitters), strconv.Itoa(s.Knockouts),
				strconv.Itoa(i), strconv.Itoa(size), good,
			}); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
