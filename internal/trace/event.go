package trace

import (
	"fmt"

	"fadingcr/internal/geom"
)

// SchemaVersion is the structured trace schema this package writes and
// reads. Versioning rule (DESIGN.md §8): adding a new event kind or a new
// optional field is backwards-compatible and keeps the version; changing
// the meaning, type, or ordering contract of an existing field bumps the
// version, and readers reject versions they do not know.
const SchemaVersion = 1

// Kind discriminates structured trace records.
type Kind uint8

const (
	// KindRound is a round boundary carrying the round's aggregates. It is
	// the first record of every executed round.
	KindRound Kind = iota + 1
	// KindTransmit is one node's decision to transmit this round.
	KindTransmit
	// KindReception is one listener decoding a message, annotated with the
	// winning SINR value and its margin over β when the channel exposes the
	// reception observer hook (the SINR channels do; the radio channels
	// record NaN).
	KindReception
	// KindKnockout is an active node receiving a message this round — the
	// knockout event of the paper's core algorithm (the node deactivates).
	KindKnockout
	// KindClasses is a link-class census: the sizes n_i of the non-empty
	// link classes d_i entering the round.
	KindClasses
	// KindResult closes a trace with the execution's outcome.
	KindResult
)

// String returns the NDJSON event name of the kind.
func (k Kind) String() string {
	switch k {
	case KindRound:
		return "round"
	case KindTransmit:
		return "tx"
	case KindReception:
		return "recv"
	case KindKnockout:
		return "knockout"
	case KindClasses:
		return "classes"
	case KindResult:
		return "result"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one structured trace event. It is a flat union — Kind selects
// the meaningful fields — so a trace is a single []Record with no per-event
// allocations:
//
//	KindRound:     Round, Active (−1 when nodes expose no activity),
//	               Tx, Recv
//	KindTransmit:  Round, Node (the transmitter)
//	KindReception: Round, Node (the listener), From (the sender), SINR,
//	               Margin (NaN when the channel has no observer hook)
//	KindKnockout:  Round, Node (the deactivating listener)
//	KindClasses:   Round, Off/Len (window into the trace's class-size
//	               backing array; use Trace.ClassSizes or
//	               Recorder.ClassSizes to resolve)
//	KindResult:    Solved, Round (solving round or budget), Node (winner,
//	               −1 unsolved), Transmissions
type Record struct {
	Kind   Kind
	Round  int32
	Node   int32
	From   int32
	Active int32
	Tx     int32
	Recv   int32
	Off    int32
	Len    int32
	Solved bool
	SINR   float64
	Margin float64
	// Transmissions is the run's total transmission count (KindResult).
	Transmissions int64
}

// Header identifies a trace: what ran, over which deployment, under which
// seeds. Points is optional (it enables crtrace render's deployment view
// and the per-round link-class census); everything else is metadata that
// Diff treats as part of the trace identity.
type Header struct {
	// Schema is the trace schema version (SchemaVersion at write time).
	Schema int
	// Cmd names the producing command ("crsim", "crbench", ...).
	Cmd string
	// N is the number of nodes on the channel.
	N int
	// Seed is the protocol seed that drove the execution.
	Seed uint64
	// DeploySeed is the deployment seed (0 when the deployment was not
	// seed-derived, e.g. loaded from a file).
	DeploySeed uint64
	// Trial is the trial index within a Monte Carlo capture; 0 for single
	// runs.
	Trial int
	// Algo is the protocol builder's name.
	Algo string
	// Channel names the channel kind ("sinr", "rayleigh", "radio", ...).
	Channel string
	// MaxRounds is the execution's round budget.
	MaxRounds int
	// Points are the node positions, when the producer chose to embed them.
	Points []geom.Point
}

// Trace is a structured trace read back from a file or stream.
type Trace struct {
	// Header is the trace's identity record.
	Header Header
	// Records are the trace's events in recording order.
	Records []Record
	// classSizes backs the KindClasses records' Off/Len windows.
	classSizes []int32
}

// ClassSizes resolves a KindClasses record's census against the trace's
// backing array; it returns nil for other kinds.
func (t *Trace) ClassSizes(r Record) []int32 {
	if r.Kind != KindClasses {
		return nil
	}
	return t.classSizes[r.Off : r.Off+r.Len]
}
