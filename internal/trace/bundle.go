// Trace federation: a Bundle is how a shard worker ships its per-trial
// trace files back to the coordinator. The wire form rides after the shard
// result stream — an NDJSON manifest whose file lines are each followed by
// the file's raw payload bytes, so NDJSON traces stay greppable on the wire
// and binary traces ship without any base64 inflation:
//
//	{"event":"trace-bundle","schema":1,"format":"ndjson","every":K,"failures":false,"classes":false}
//	{"event":"trace-file","loop":0,"trial":42,"name":"trial-000042-seed-….ndjson","size":S,"sha256":"…"}
//	<S raw payload bytes>
//	…
//	{"event":"trace-end","files":N,"bytes":TOTAL}
//
// Like the shard wire, truncation is detectable by construction: every
// payload is length-prefixed by its manifest line, each payload is bound to
// a SHA-256, and the end line counts files and payload bytes. The header
// echoes the capture policy so a coordinator can reject a result (or a
// stale checkpoint) whose traces were captured under a different policy
// than the one requested.
package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fadingcr/internal/obs"
)

// BundleSchemaVersion identifies the trace-bundle wire layout; bump on
// incompatible change.
const BundleSchemaVersion = 1

// bundleMagic is the wire prefix a bundle stream starts with — callers that
// multiplex a bundle after another NDJSON stream peek for it.
const bundleMagic = `{"event":"trace-bundle"`

// IsBundlePrefix reports whether b starts a trace-bundle stream.
func IsBundlePrefix(b []byte) bool {
	return bytes.HasPrefix(b, []byte(bundleMagic))
}

// BundleMagicLen is the number of bytes IsBundlePrefix needs to decide.
const BundleMagicLen = len(bundleMagic)

// BundleFile is one captured trace file in a bundle: its loop/trial
// provenance, bare file name, and payload.
type BundleFile struct {
	// Loop is the trial loop that wrote the file (see Capture.SetLoop).
	// Loops reuse trial indices, so Name alone is not unique across a run;
	// (Loop, Name) is.
	Loop int
	// Trial is the global trial index the file traces.
	Trial int
	// Name is the bare file name (Policy.Filename); never a path.
	Name string
	// Data is the file's payload.
	Data []byte
}

// Bundle is a shard worker's complete trace capture, ready for the wire.
type Bundle struct {
	// Policy echoes the capture policy the files were written under. Dir is
	// empty on the wire — bundles carry names, not paths.
	Policy Policy
	// Files holds the entries in canonical (Loop, Name) order.
	Files []BundleFile
}

// Bundle packages the capture's committed files for the wire. Loops reuse
// trial indices and therefore file names; as on disk — where the last loop's
// write is what the directory ends up holding — only each name's
// highest-loop entry is kept. The result is sorted by (Loop, Name) so the
// bytes are a pure function of the captured set.
func (c *Capture) Bundle() (*Bundle, error) {
	c.mu.Lock()
	entries := append([]BundleFile(nil), c.entries...)
	c.mu.Unlock()

	latest := map[string]BundleFile{}
	for _, e := range entries {
		if prev, ok := latest[e.Name]; ok && prev.Loop >= e.Loop {
			continue
		}
		latest[e.Name] = e
	}
	files := make([]BundleFile, 0, len(latest))
	for _, e := range latest {
		files = append(files, e)
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].Loop != files[j].Loop {
			return files[i].Loop < files[j].Loop
		}
		return files[i].Name < files[j].Name
	})
	for i := range files {
		data, err := os.ReadFile(filepath.Join(c.policy.Dir, files[i].Name))
		if err != nil {
			return nil, fmt.Errorf("trace: bundle: %w", err)
		}
		files[i].Data = data
	}
	p := c.policy
	p.Dir = ""
	return &Bundle{Policy: p, Files: files}, nil
}

// Encode writes the canonical wire form. The bytes are a pure function of
// the bundle, so two workers capturing the same shard produce identical
// streams.
func (b *Bundle) Encode(w io.Writer) error {
	enc := obs.NewLineEncoder(w)
	enc.Begin("trace-bundle")
	enc.Int("schema", BundleSchemaVersion)
	enc.Str("format", b.Policy.Format.String())
	enc.Int("every", int64(b.Policy.EveryK))
	enc.Bool("failures", b.Policy.FailuresOnly)
	enc.Bool("classes", b.Policy.Classes)
	if err := enc.End(); err != nil {
		return err
	}
	total := int64(0)
	for _, f := range b.Files {
		if f.Name == "" || f.Name != filepath.Base(f.Name) || strings.HasPrefix(f.Name, ".") {
			return fmt.Errorf("trace: bundle entry name %q is not a bare file name", f.Name)
		}
		sum := sha256.Sum256(f.Data)
		enc.Begin("trace-file")
		enc.Int("loop", int64(f.Loop))
		enc.Int("trial", int64(f.Trial))
		enc.Str("name", f.Name)
		enc.Int("size", int64(len(f.Data)))
		enc.Str("sha256", hex.EncodeToString(sum[:]))
		if err := enc.End(); err != nil {
			return err
		}
		if _, err := w.Write(f.Data); err != nil {
			return err
		}
		total += int64(len(f.Data))
	}
	enc.Begin("trace-end")
	enc.Int("files", int64(len(b.Files)))
	enc.Int("bytes", total)
	return enc.End()
}

// bundleLine is the union of the manifest line shapes; Event discriminates.
type bundleLine struct {
	Event    string `json:"event"`
	Schema   int    `json:"schema"`
	Format   string `json:"format"`
	Every    int    `json:"every"`
	Failures bool   `json:"failures"`
	Classes  bool   `json:"classes"`
	Loop     int    `json:"loop"`
	Trial    int    `json:"trial"`
	Name     string `json:"name"`
	Size     int64  `json:"size"`
	SHA256   string `json:"sha256"`
	Files    int    `json:"files"`
	Bytes    int64  `json:"bytes"`
}

// maxBundleFileSize bounds one payload so a corrupted size field cannot ask
// the decoder to allocate unbounded memory. Per-trial traces are small by
// the capture policy's construction; 256 MiB is far above any real file.
const maxBundleFileSize = 256 << 20

// ReadBundle parses and validates one bundle stream from br, which must be
// positioned at the header line. It consumes through the trace-end line and
// leaves anything after it unread (the shard decoder owns trailing-data
// policy). Size, hash, count, or ordering violations are errors — a
// truncated or tampered stream never decodes.
func ReadBundle(br *bufio.Reader) (*Bundle, error) {
	readLine := func() (*bundleLine, error) {
		raw, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(raw)) == 0 {
			if err == nil {
				err = io.ErrUnexpectedEOF
			} else if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("trace: truncated bundle: %w", err)
		}
		var l bundleLine
		if uerr := json.Unmarshal(bytes.TrimSpace(raw), &l); uerr != nil {
			return nil, fmt.Errorf("trace: parse bundle line: %w", uerr)
		}
		return &l, nil
	}

	head, err := readLine()
	if err != nil {
		return nil, err
	}
	if head.Event != "trace-bundle" {
		return nil, fmt.Errorf("trace: bundle header event %q, want trace-bundle", head.Event)
	}
	if head.Schema != BundleSchemaVersion {
		return nil, fmt.Errorf("trace: bundle schema %d, want %d", head.Schema, BundleSchemaVersion)
	}
	format, err := ParseFormat(head.Format)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Policy: Policy{
		Format: format, EveryK: head.Every,
		FailuresOnly: head.Failures, Classes: head.Classes,
	}}
	total := int64(0)
	for {
		l, err := readLine()
		if err != nil {
			return nil, err
		}
		switch l.Event {
		case "trace-file":
			if l.Size < 0 || l.Size > maxBundleFileSize {
				return nil, fmt.Errorf("trace: bundle file %q declares %d bytes", l.Name, l.Size)
			}
			if l.Name == "" || l.Name != filepath.Base(l.Name) || strings.HasPrefix(l.Name, ".") {
				return nil, fmt.Errorf("trace: bundle entry name %q is not a bare file name", l.Name)
			}
			if n := len(b.Files); n > 0 {
				prev := b.Files[n-1]
				if l.Loop < prev.Loop || (l.Loop == prev.Loop && l.Name <= prev.Name) {
					return nil, fmt.Errorf("trace: bundle entry (%d,%q) out of order after (%d,%q)", l.Loop, l.Name, prev.Loop, prev.Name)
				}
			}
			data := make([]byte, l.Size)
			if _, err := io.ReadFull(br, data); err != nil {
				return nil, fmt.Errorf("trace: truncated bundle payload %q: %w", l.Name, err)
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != l.SHA256 {
				return nil, fmt.Errorf("trace: bundle payload %q hash %s, manifest says %s", l.Name, got, l.SHA256)
			}
			b.Files = append(b.Files, BundleFile{Loop: l.Loop, Trial: l.Trial, Name: l.Name, Data: data})
			total += l.Size
		case "trace-end":
			if l.Files != len(b.Files) {
				return nil, fmt.Errorf("trace: bundle end counts %d files, stream has %d", l.Files, len(b.Files))
			}
			if l.Bytes != total {
				return nil, fmt.Errorf("trace: bundle end counts %d payload bytes, stream has %d", l.Bytes, total)
			}
			return b, nil
		default:
			return nil, fmt.Errorf("trace: unexpected bundle event %q", l.Event)
		}
	}
}

// WriteFiles materializes bundle entries into dir, creating it if needed.
// Entries are written in slice order, so a later entry for the same name
// overwrites an earlier one — exactly the overwrite order an unsharded
// capture's trial loops applied to the directory. It returns the number of
// distinct file names written.
func WriteFiles(dir string, files []BundleFile) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("trace: write bundle: %w", err)
	}
	names := map[string]bool{}
	for _, f := range files {
		if f.Name == "" || f.Name != filepath.Base(f.Name) || strings.HasPrefix(f.Name, ".") {
			return 0, fmt.Errorf("trace: bundle entry name %q is not a bare file name", f.Name)
		}
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
			return 0, fmt.Errorf("trace: write bundle: %w", err)
		}
		names[f.Name] = true
	}
	return len(names), nil
}
