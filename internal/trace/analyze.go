package trace

import (
	"fmt"
	"math"
)

// Summary aggregates one or more traces for reporting: the outcome mix, the
// round-of-success distribution, the contention curve (mean transmitters per
// round across traces still running at that round), and per-node transmit
// counts (the paper's energy metric).
type Summary struct {
	// Traces is the number of traces aggregated.
	Traces int
	// Solved and Unsolved partition the traces by outcome; traces without a
	// result record count as Unsolved.
	Solved, Unsolved int
	// Rounds is the per-trace round-of-success (or round budget when
	// unsolved), in input order.
	Rounds []int
	// Transmissions is the per-trace total transmission count, in input
	// order (−1 when the trace has no result record).
	Transmissions []int64
	// MeanTx[r] is the mean number of transmitters in round r+1, averaged
	// over the traces that executed that round — the contention curve.
	MeanTx []float64
	// Running[r] is the number of traces that executed round r+1.
	Running []int
	// NodeTx[v] is node v's total transmit count summed across traces; nil
	// when no trace carries per-node records.
	NodeTx []int64
}

// Summarize aggregates the traces. Traces may mix formats and deployments;
// per-node aggregation sizes itself to the largest node index seen.
func Summarize(traces []*Trace) Summary {
	var s Summary
	s.Traces = len(traces)
	for _, t := range traces {
		rounds, transmissions := 0, int64(-1)
		solved := false
		for _, rec := range t.Records {
			switch rec.Kind {
			case KindRound:
				r := int(rec.Round)
				if r > rounds {
					rounds = r
				}
				for len(s.MeanTx) < r {
					s.MeanTx = append(s.MeanTx, 0)
					s.Running = append(s.Running, 0)
				}
				s.MeanTx[r-1] += float64(rec.Tx)
				s.Running[r-1]++
			case KindTransmit:
				v := int(rec.Node)
				for len(s.NodeTx) <= v {
					s.NodeTx = append(s.NodeTx, 0)
				}
				s.NodeTx[v]++
			case KindResult:
				solved = rec.Solved
				rounds = int(rec.Round)
				transmissions = rec.Transmissions
			}
		}
		if solved {
			s.Solved++
		} else {
			s.Unsolved++
		}
		s.Rounds = append(s.Rounds, rounds)
		s.Transmissions = append(s.Transmissions, transmissions)
	}
	for i, n := range s.Running {
		if n > 0 {
			s.MeanTx[i] /= float64(n)
		}
	}
	return s
}

// Divergence locates the first difference between two traces: in the header
// (Index −1) or at a record index. Field names the differing field.
type Divergence struct {
	// Index is the position of the first divergent record, −1 for a header
	// divergence, or min(len(a), len(b)) when one trace is a prefix of the
	// other (Field "length").
	Index int
	// Field names what differs ("seed", "kind", "sinr", "length", ...).
	Field string
	// A and B render the differing values.
	A, B string
}

// Diff compares two traces record by record and returns the first
// divergence, or nil when the traces are identical. Floats compare by bit
// pattern, so an absent SINR annotation (NaN) equals itself and a diff of
// two same-seed runs is exact rather than tolerance-based — this is the
// determinism contract made testable.
func Diff(a, b *Trace) *Divergence {
	if d := diffHeader(&a.Header, &b.Header); d != nil {
		return d
	}
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		ra, rb := a.Records[i], b.Records[i]
		if d := diffRecord(a, b, ra, rb); d != nil {
			d.Index = i
			return d
		}
	}
	if len(a.Records) != len(b.Records) {
		return &Divergence{
			Index: n,
			Field: "length",
			A:     fmt.Sprintf("%d records", len(a.Records)),
			B:     fmt.Sprintf("%d records", len(b.Records)),
		}
	}
	return nil
}

func diffHeader(a, b *Header) *Divergence {
	hd := func(field, av, bv string) *Divergence {
		return &Divergence{Index: -1, Field: field, A: av, B: bv}
	}
	switch {
	case a.Schema != b.Schema:
		return hd("schema", fmt.Sprint(a.Schema), fmt.Sprint(b.Schema))
	case a.N != b.N:
		return hd("n", fmt.Sprint(a.N), fmt.Sprint(b.N))
	case a.Seed != b.Seed:
		return hd("seed", fmt.Sprintf("%#x", a.Seed), fmt.Sprintf("%#x", b.Seed))
	case a.DeploySeed != b.DeploySeed:
		return hd("deploy_seed", fmt.Sprintf("%#x", a.DeploySeed), fmt.Sprintf("%#x", b.DeploySeed))
	case a.Algo != b.Algo:
		return hd("algo", a.Algo, b.Algo)
	case a.Channel != b.Channel:
		return hd("channel", a.Channel, b.Channel)
	case a.MaxRounds != b.MaxRounds:
		return hd("max_rounds", fmt.Sprint(a.MaxRounds), fmt.Sprint(b.MaxRounds))
	case len(a.Points) != len(b.Points):
		return hd("points", fmt.Sprintf("%d points", len(a.Points)), fmt.Sprintf("%d points", len(b.Points)))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if math.Float64bits(pa.X) != math.Float64bits(pb.X) || math.Float64bits(pa.Y) != math.Float64bits(pb.Y) {
			return hd(fmt.Sprintf("points[%d]", i),
				fmt.Sprintf("(%g, %g)", pa.X, pa.Y), fmt.Sprintf("(%g, %g)", pb.X, pb.Y))
		}
	}
	return nil
}

func diffRecord(ta, tb *Trace, ra, rb Record) *Divergence {
	d := func(field, av, bv string) *Divergence {
		return &Divergence{Field: field, A: av, B: bv}
	}
	if ra.Kind != rb.Kind {
		return d("kind", ra.Kind.String(), rb.Kind.String())
	}
	if ra.Round != rb.Round {
		return d("round", fmt.Sprint(ra.Round), fmt.Sprint(rb.Round))
	}
	switch ra.Kind {
	case KindRound:
		switch {
		case ra.Active != rb.Active:
			return d("active", fmt.Sprint(ra.Active), fmt.Sprint(rb.Active))
		case ra.Tx != rb.Tx:
			return d("tx", fmt.Sprint(ra.Tx), fmt.Sprint(rb.Tx))
		case ra.Recv != rb.Recv:
			return d("recv", fmt.Sprint(ra.Recv), fmt.Sprint(rb.Recv))
		}
	case KindTransmit, KindKnockout:
		if ra.Node != rb.Node {
			return d("node", fmt.Sprint(ra.Node), fmt.Sprint(rb.Node))
		}
	case KindReception:
		switch {
		case ra.Node != rb.Node:
			return d("node", fmt.Sprint(ra.Node), fmt.Sprint(rb.Node))
		case ra.From != rb.From:
			return d("from", fmt.Sprint(ra.From), fmt.Sprint(rb.From))
		case math.Float64bits(ra.SINR) != math.Float64bits(rb.SINR):
			return d("sinr", fmt.Sprint(ra.SINR), fmt.Sprint(rb.SINR))
		case math.Float64bits(ra.Margin) != math.Float64bits(rb.Margin):
			return d("margin", fmt.Sprint(ra.Margin), fmt.Sprint(rb.Margin))
		}
	case KindClasses:
		sa, sb := ta.ClassSizes(ra), tb.ClassSizes(rb)
		if len(sa) != len(sb) {
			return d("sizes", fmt.Sprintf("%d classes", len(sa)), fmt.Sprintf("%d classes", len(sb)))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return d(fmt.Sprintf("sizes[%d]", i), fmt.Sprint(sa[i]), fmt.Sprint(sb[i]))
			}
		}
	case KindResult:
		switch {
		case ra.Solved != rb.Solved:
			return d("solved", fmt.Sprint(ra.Solved), fmt.Sprint(rb.Solved))
		case ra.Node != rb.Node:
			return d("winner", fmt.Sprint(ra.Node), fmt.Sprint(rb.Node))
		case ra.Transmissions != rb.Transmissions:
			return d("transmissions", fmt.Sprint(ra.Transmissions), fmt.Sprint(rb.Transmissions))
		}
	}
	return nil
}
