package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"fadingcr/internal/obs"
)

// Binary trace layout (little-endian), the compact option for large runs —
// fixed-width records at roughly a third of the NDJSON size and no JSON
// encode/decode on either side:
//
//	magic   "CRTRACE" + schema version byte
//	header  u32 length + the NDJSON header line (header metadata is
//	        one-off and string-bearing; reusing the JSON form keeps the
//	        two formats' headers trivially equivalent)
//	records until EOF, each: kind u8 + kind-specific payload:
//	  round     round i32, active i32, tx i32, recv i32
//	  tx        round i32, node i32
//	  recv      round i32, node i32, from i32, sinr f64, margin f64
//	  knockout  round i32, node i32
//	  classes   round i32, count i32, count × i32
//	  result    solved u8, rounds i32, winner i32, transmissions i64
//
// Absent annotations keep their in-memory encoding (NaN sinr, −1 active):
// the reader and writer round-trip records bit-exactly, so Diff semantics
// are identical across formats.
var binaryMagic = [8]byte{'C', 'R', 'T', 'R', 'A', 'C', 'E', SchemaVersion}

// WriteBinary serialises the recorder's header and structured records in
// the compact binary format.
func (r *Recorder) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	var hbuf bytes.Buffer
	he := obs.NewLineEncoder(&hbuf)
	writeHeader(he, &r.Header)
	var scratch [32]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(hbuf.Len()))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	if _, err := bw.Write(hbuf.Bytes()); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	le := binary.LittleEndian
	for _, rec := range r.recs {
		scratch[0] = byte(rec.Kind)
		n := 1
		putI32 := func(v int32) { le.PutUint32(scratch[n:n+4], uint32(v)); n += 4 }
		switch rec.Kind {
		case KindRound:
			putI32(rec.Round)
			putI32(rec.Active)
			putI32(rec.Tx)
			putI32(rec.Recv)
		case KindTransmit, KindKnockout:
			putI32(rec.Round)
			putI32(rec.Node)
		case KindReception:
			putI32(rec.Round)
			putI32(rec.Node)
			putI32(rec.From)
			le.PutUint64(scratch[n:n+8], math.Float64bits(rec.SINR))
			n += 8
		case KindClasses:
			putI32(rec.Round)
			putI32(rec.Len)
		case KindResult:
			if rec.Solved {
				scratch[1] = 1
			} else {
				scratch[1] = 0
			}
			n = 2
			putI32(rec.Round)
			putI32(rec.Node)
			le.PutUint64(scratch[n:n+8], uint64(rec.Transmissions))
			n += 8
		default:
			return fmt.Errorf("trace: write binary: unknown record kind %d", rec.Kind)
		}
		if _, err := bw.Write(scratch[:n]); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		// Variable-length tails.
		switch rec.Kind {
		case KindReception:
			le.PutUint64(scratch[:8], math.Float64bits(rec.Margin))
			if _, err := bw.Write(scratch[:8]); err != nil {
				return fmt.Errorf("trace: write binary: %w", err)
			}
		case KindClasses:
			for _, s := range r.classSizes[rec.Off : rec.Off+rec.Len] {
				le.PutUint32(scratch[:4], uint32(s))
				if _, err := bw.Write(scratch[:4]); err != nil {
					return fmt.Errorf("trace: write binary: %w", err)
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	return nil
}

// readBinary parses a binary trace stream positioned after format sniffing
// (br still holds the full stream including the magic).
func readBinary(br *bufio.Reader) (*Trace, error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read binary magic: %w", err)
	}
	if !bytes.Equal(magic[:7], binaryMagic[:7]) {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic[:7])
	}
	if magic[7] != SchemaVersion {
		return nil, fmt.Errorf("trace: unsupported schema version %d (reader supports %d)", magic[7], SchemaVersion)
	}
	le := binary.LittleEndian
	var scratch [32]byte
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", err)
	}
	hlen := le.Uint32(scratch[:4])
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", err)
	}
	var l jsonLine
	if err := json.Unmarshal(hdr, &l); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	h, err := headerFromLine(&l)
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: h}
	for {
		kb, err := br.ReadByte()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read binary record: %w", err)
		}
		rec := Record{Kind: Kind(kb)}
		read := func(n int) error {
			_, err := io.ReadFull(br, scratch[:n])
			return err
		}
		getI32 := func(off int) int32 { return int32(le.Uint32(scratch[off : off+4])) }
		switch rec.Kind {
		case KindRound:
			if err := read(16); err != nil {
				return nil, fmt.Errorf("trace: read round record: %w", err)
			}
			rec.Round, rec.Active, rec.Tx, rec.Recv = getI32(0), getI32(4), getI32(8), getI32(12)
		case KindTransmit, KindKnockout:
			if err := read(8); err != nil {
				return nil, fmt.Errorf("trace: read %s record: %w", rec.Kind, err)
			}
			rec.Round, rec.Node = getI32(0), getI32(4)
		case KindReception:
			if err := read(28); err != nil {
				return nil, fmt.Errorf("trace: read recv record: %w", err)
			}
			rec.Round, rec.Node, rec.From = getI32(0), getI32(4), getI32(8)
			rec.SINR = math.Float64frombits(le.Uint64(scratch[12:20]))
			rec.Margin = math.Float64frombits(le.Uint64(scratch[20:28]))
		case KindClasses:
			if err := read(8); err != nil {
				return nil, fmt.Errorf("trace: read classes record: %w", err)
			}
			rec.Round, rec.Len = getI32(0), getI32(4)
			if rec.Len < 0 {
				return nil, fmt.Errorf("trace: classes record with negative count %d", rec.Len)
			}
			rec.Off = int32(len(t.classSizes))
			for i := int32(0); i < rec.Len; i++ {
				if err := read(4); err != nil {
					return nil, fmt.Errorf("trace: read classes record: %w", err)
				}
				t.classSizes = append(t.classSizes, getI32(0))
			}
		case KindResult:
			if err := read(17); err != nil {
				return nil, fmt.Errorf("trace: read result record: %w", err)
			}
			rec.Solved = scratch[0] == 1
			rec.Round, rec.Node = getI32(1), getI32(5)
			rec.Transmissions = int64(le.Uint64(scratch[9:17]))
		default:
			return nil, fmt.Errorf("trace: unknown record kind %d", kb)
		}
		t.Records = append(t.Records, rec)
	}
}

// Read parses a trace stream, sniffing the format: binary streams open with
// the CRTRACE magic, NDJSON streams with '{'.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if first[0] == '{' {
		return readNDJSON(br)
	}
	return readBinary(br)
}
