package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Format selects a trace file encoding.
type Format uint8

const (
	// FormatNDJSON writes newline-delimited JSON (greppable, jq-able).
	FormatNDJSON Format = iota
	// FormatBinary writes the compact binary encoding for large runs.
	FormatBinary
)

// ParseFormat translates the CLI -trace-format value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "ndjson":
		return FormatNDJSON, nil
	case "binary":
		return FormatBinary, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want ndjson|binary)", s)
	}
}

// String returns the CLI name of the format.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "ndjson"
}

// Ext returns the file extension of the format.
func (f Format) Ext() string {
	if f == FormatBinary {
		return "crtrace"
	}
	return "ndjson"
}

// Write serialises the recorder in the format.
func (f Format) Write(r *Recorder, w interface{ Write([]byte) (int, error) }) error {
	if f == FormatBinary {
		return r.WriteBinary(w)
	}
	return r.WriteNDJSON(w)
}

// Policy bounds what a Monte Carlo capture retains, so tracing 10⁴ trials
// is safe by construction: deterministic trial sampling bounds how many
// recorders ever fill, failure-only retention bounds what reaches disk, and
// per-trial files keep any single artifact small.
type Policy struct {
	// Dir is the output directory (created on first use).
	Dir string
	// Format selects the per-trial file encoding.
	Format Format
	// EveryK samples every Kth trial (trial % K == 0) — a deterministic,
	// seed-independent rule, so the sampled set never depends on execution
	// order. Values ≤ 1 sample every trial.
	EveryK int
	// FailuresOnly retains only unsolved trials' traces; solved trials are
	// recorded but dropped at commit (their recorders are recycled).
	FailuresOnly bool
	// Classes additionally records the per-round link-class census (needs
	// the producer to put deployment points into the header).
	Classes bool
}

// Sampled reports whether the policy traces the trial.
func (p Policy) Sampled(trial int) bool {
	if p.EveryK <= 1 {
		return true
	}
	return trial%p.EveryK == 0
}

// Filename is the per-trial trace file name: trial index plus the
// seed that drove the protocol, so a file names its own reproduction
// (trial-000042-seed-1f3ab....ndjson).
func (p Policy) Filename(trial int, seed uint64) string {
	return fmt.Sprintf("trial-%06d-seed-%016x.%s", trial, seed, p.Format.Ext())
}

// Capture manages per-trial recorders for a Monte Carlo run. It composes
// with internal/runner: workers obtain a recorder per sampled trial
// (Recorder), run the traced execution, and commit it (Commit); recorders
// are pooled and Reset between trials, and the retention policy is applied
// at commit time. All methods are safe for concurrent use by runner
// workers; trace files are written outside the lock (each trial owns its
// file).
//
// What lands on disk is independent of parallelism: sampling is a pure
// function of the trial index and each file's bytes are a pure function of
// the trial's execution.
type Capture struct {
	policy Policy
	cmd    string

	pool    sync.Pool
	mu      sync.Mutex
	loop    int
	entries []BundleFile // committed files (Data nil until bundled)
	written []string
	dropped int
	made    bool
}

// NewCapture validates the policy and returns a capture writing into
// p.Dir.
func NewCapture(cmd string, p Policy) (*Capture, error) {
	if p.Dir == "" {
		return nil, fmt.Errorf("trace: capture needs an output directory")
	}
	if p.EveryK < 0 {
		return nil, fmt.Errorf("trace: capture sampling interval %d must be ≥ 0", p.EveryK)
	}
	return &Capture{policy: p, cmd: cmd}, nil
}

// Policy returns the capture's retention policy.
func (c *Capture) Policy() Policy { return c.policy }

// SetLoop tags subsequently committed traces with the experiment's current
// trial-loop index. Experiments run several trial loops through one capture,
// and loops reuse trial indices — so file names collide across loops and the
// file a name holds at the end of the run is the last loop's write. The loop
// tag preserves exactly that ordering information for federation: a shard
// worker's Bundle keeps each name's highest-loop write, and the
// coordinator's reassembly replays bundles in loop order. The caller
// serializes SetLoop against commits (the experiment harness calls it
// between loops, never while the loop's trials are in flight).
func (c *Capture) SetLoop(loop int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loop = loop
}

// Recorder returns a recycled per-node recorder for the trial, or nil when
// the sampling policy skips it. The recorder's header is pre-filled with
// the capture's command, the schema version, and the trial index; the
// caller completes it (seeds, n, algo, channel, points) before Commit.
func (c *Capture) Recorder(trial int) *Recorder {
	if !c.policy.Sampled(trial) {
		return nil
	}
	rec, _ := c.pool.Get().(*Recorder)
	if rec == nil {
		rec = &Recorder{}
	}
	rec.Reset()
	rec.PerNode = true
	rec.Classes = c.policy.Classes
	rec.Header = Header{Schema: SchemaVersion, Cmd: c.cmd, Trial: trial}
	return rec
}

// Commit finishes a sampled trial: it writes the trace file unless
// failure-only retention drops a solved trial, then recycles the recorder.
// The file name derives from the trial index and the recorder's header
// seed.
func (c *Capture) Commit(trial int, rec *Recorder, solved bool) error {
	defer func() {
		rec.Reset()
		c.pool.Put(rec)
	}()
	if c.policy.FailuresOnly && solved {
		c.mu.Lock()
		c.dropped++
		c.mu.Unlock()
		return nil
	}
	if err := c.ensureDir(); err != nil {
		return err
	}
	path := filepath.Join(c.policy.Dir, c.policy.Filename(trial, rec.Header.Seed))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: capture: %w", err)
	}
	err = c.policy.Format.Write(rec, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: capture %s: %w", path, err)
	}
	c.mu.Lock()
	c.written = append(c.written, path)
	c.entries = append(c.entries, BundleFile{Loop: c.loop, Trial: trial, Name: filepath.Base(path)})
	c.mu.Unlock()
	return nil
}

// ensureDir creates the output directory once.
func (c *Capture) ensureDir() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.made {
		return nil
	}
	if err := os.MkdirAll(c.policy.Dir, 0o755); err != nil {
		return fmt.Errorf("trace: capture: %w", err)
	}
	c.made = true
	return nil
}

// Written returns the committed trace file paths in name order (trial
// order, since names embed the trial index).
func (c *Capture) Written() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.written...)
	sort.Strings(out)
	return out
}

// Dropped returns the number of sampled trials whose traces the retention
// policy discarded.
func (c *Capture) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
