package runner

import (
	"encoding/json"
	"math"
	"testing"
)

func TestShardRangePartitions(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 8, 100, 1000} {
		for _, shards := range []int{1, 2, 3, 5, 8, 16} {
			next := 0
			minSize, maxSize := total, 0
			for i := 0; i < shards; i++ {
				lo, hi := ShardRange(total, shards, i)
				if lo != next {
					t.Fatalf("total=%d shards=%d: shard %d starts at %d, want %d (contiguous)", total, shards, i, lo, next)
				}
				if hi < lo {
					t.Fatalf("total=%d shards=%d: shard %d has hi=%d < lo=%d", total, shards, i, hi, lo)
				}
				size := hi - lo
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				next = hi
			}
			if next != total {
				t.Fatalf("total=%d shards=%d: shards cover [0, %d), want [0, %d)", total, shards, next, total)
			}
			if maxSize-minSize > 1 && total >= shards {
				t.Errorf("total=%d shards=%d: shard sizes range [%d, %d], want balanced within 1", total, shards, minSize, maxSize)
			}
		}
	}
}

func TestShardRangeSingleShardIsWholeRange(t *testing.T) {
	lo, hi := ShardRange(42, 1, 0)
	if lo != 0 || hi != 42 {
		t.Errorf("ShardRange(42, 1, 0) = [%d, %d), want [0, 42)", lo, hi)
	}
}

// TestShardTrialSeedsMatchUnsharded is the (master, shard, trial) contract:
// at any shard count, the multiset of seed pairs executed across all shards
// equals the sequence TrialSeeds(master, 0..total) of a single-process run,
// in global trial order.
func TestShardTrialSeedsMatchUnsharded(t *testing.T) {
	const master, total = 7, 23
	type pair struct{ d, p uint64 }
	want := make([]pair, total)
	for trial := range want {
		d, p := TrialSeeds(master, trial)
		want[trial] = pair{d, p}
	}
	for _, shards := range []int{1, 2, 3, 8, 23, 40} {
		var got []pair
		for i := 0; i < shards; i++ {
			lo, hi := ShardRange(total, shards, i)
			for local := 0; local < hi-lo; local++ {
				d, p := ShardTrialSeeds(master, total, shards, i, local)
				got = append(got, pair{d, p})
			}
		}
		if len(got) != total {
			t.Fatalf("shards=%d: %d seed pairs, want %d", shards, len(got), total)
		}
		for trial := range got {
			if got[trial] != want[trial] {
				t.Errorf("shards=%d: trial %d seeds %v, want %v", shards, trial, got[trial], want[trial])
			}
		}
	}
}

func TestAggregatorStateRoundTrip(t *testing.T) {
	a := &Aggregator{}
	for i := 0; i < 17; i++ {
		a.Observe(math.Sqrt(float64(i))*3.7, i%5 != 0)
	}
	raw, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st AggregatorState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	b := AggregatorFromState(st)
	if *a != *b {
		t.Errorf("state round-trip: got %+v, want %+v", *b, *a)
	}
	// The restored aggregator must keep accumulating identically.
	a.Observe(9.25, true)
	b.Observe(9.25, true)
	if *a != *b {
		t.Errorf("post-restore Observe diverges: got %+v, want %+v", *b, *a)
	}
}

// TestAggregatorMergeEmptyShard pins the b.n == 0 case: shard reassembly
// merges aggregates in shard order and must tolerate empty shards (a shard
// count above the trial count produces them) as exact no-ops.
func TestAggregatorMergeEmptyShard(t *testing.T) {
	a := &Aggregator{}
	a.Observe(2, true)
	a.Observe(4, false)
	before := *a
	a.Merge(&Aggregator{})
	if *a != before {
		t.Errorf("merging an empty aggregator changed the state: got %+v, want %+v", *a, before)
	}
	if v := a.Variance(); math.IsNaN(v) {
		t.Error("variance is NaN after empty merge")
	}

	// Both empty: still a no-op, and the zero value stays usable.
	z := &Aggregator{}
	z.Merge(&Aggregator{})
	if z.N() != 0 || z.Mean() != 0 || math.IsNaN(z.Variance()) {
		t.Errorf("empty.Merge(empty) = %+v, want zero", *z)
	}
	z.Observe(1, true)
	if z.N() != 1 || z.Mean() != 1 {
		t.Errorf("zero value unusable after empty merge: %+v", *z)
	}
}

// TestAggregatorMergeSelf pins a.Merge(a): aliasing must behave exactly like
// merging a snapshot copy — the dataset doubles (every observation counted
// twice) with no NaN and no corruption from the aliased reads.
func TestAggregatorMergeSelf(t *testing.T) {
	a := &Aggregator{}
	for i := 0; i < 9; i++ {
		a.Observe(float64(i*i), i%2 == 0)
	}
	snapshot := *a
	want := snapshot
	want.Merge(&snapshot) // merge with a true copy: the reference semantics

	a.Merge(a)
	if *a != want {
		t.Errorf("a.Merge(a) = %+v, want snapshot-merge %+v", *a, want)
	}
	if a.N() != 2*snapshot.N() || a.Unsolved() != 2*snapshot.Unsolved() {
		t.Errorf("self-merge counts: n=%d unsolved=%d, want doubled %d/%d", a.N(), a.Unsolved(), 2*snapshot.N(), 2*snapshot.Unsolved())
	}
	if a.Mean() != snapshot.Mean() {
		t.Errorf("self-merge mean = %v, want unchanged %v", a.Mean(), snapshot.Mean())
	}
	if math.IsNaN(a.Variance()) || math.IsNaN(a.Std()) {
		t.Error("self-merge produced NaN statistics")
	}

	// Self-merge of the zero value: no-op, no NaN.
	z := &Aggregator{}
	z.Merge(z)
	if z.N() != 0 || math.IsNaN(z.Variance()) {
		t.Errorf("zero self-merge = %+v", *z)
	}
}

// TestAggregatorMergeMatchesSequentialAcrossShardCounts ties the merge to
// the sharding use: merging per-shard aggregates in shard order yields the
// same counts/min/max for any shard count, and mean/variance within float
// tolerance of the sequential fold.
func TestAggregatorMergeMatchesSequentialAcrossShardCounts(t *testing.T) {
	const total = 29
	xs := make([]float64, total)
	for i := range xs {
		xs[i] = math.Sin(float64(i)) * 100
	}
	seq := &Aggregator{}
	for i, x := range xs {
		seq.Observe(x, i%7 != 0)
	}
	for _, shards := range []int{1, 3, 8, 40} {
		merged := &Aggregator{}
		for s := 0; s < shards; s++ {
			lo, hi := ShardRange(total, shards, s)
			part := &Aggregator{}
			for i := lo; i < hi; i++ {
				part.Observe(xs[i], i%7 != 0)
			}
			merged.Merge(part)
		}
		if merged.N() != seq.N() || merged.Unsolved() != seq.Unsolved() ||
			merged.Min() != seq.Min() || merged.Max() != seq.Max() {
			t.Errorf("shards=%d: exact fields diverge: %+v vs %+v", shards, merged.State(), seq.State())
		}
		if d := math.Abs(merged.Mean() - seq.Mean()); d > 1e-9 {
			t.Errorf("shards=%d: mean off by %g", shards, d)
		}
		if d := math.Abs(merged.Variance() - seq.Variance()); d > 1e-6 {
			t.Errorf("shards=%d: variance off by %g", shards, d)
		}
	}
}
