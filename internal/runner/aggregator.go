package runner

import "math"

// Aggregator accumulates summary statistics of a stream of observations in
// O(1) memory: count, Welford mean/variance, min/max, and an unsolved
// counter for the harness's "did the protocol finish within budget"
// bookkeeping. The zero value is ready to use.
//
// Aggregator is not safe for concurrent use; observe from a single
// goroutine (the engine's collector, or a post-run loop over
// Result.Values in trial order, which keeps the floating-point fold
// deterministic and independent of parallelism).
type Aggregator struct {
	n        int
	mean     float64
	m2       float64
	min      float64
	max      float64
	unsolved int
}

// Observe adds one observation. solved=false additionally increments the
// unsolved counter.
func (a *Aggregator) Observe(x float64, solved bool) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	// Welford's update: numerically stable single-pass mean/variance.
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	if !solved {
		a.unsolved++
	}
}

// Merge folds another aggregator into this one (Chan et al. parallel
// update), as if every observation of b had been observed by a.
func (a *Aggregator) Merge(b *Aggregator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.mean += delta * float64(b.n) / float64(n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
	a.unsolved += b.unsolved
}

// N returns the number of observations.
func (a *Aggregator) N() int { return a.n }

// Mean returns the sample mean (0 before any observation).
func (a *Aggregator) Mean() float64 { return a.mean }

// Variance returns the sample variance (n−1 denominator; 0 for n < 2).
func (a *Aggregator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Aggregator) Std() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 before any observation).
func (a *Aggregator) Min() float64 { return a.min }

// Max returns the largest observation (0 before any observation).
func (a *Aggregator) Max() float64 { return a.max }

// Unsolved returns the number of observations recorded with solved=false.
func (a *Aggregator) Unsolved() int { return a.unsolved }
