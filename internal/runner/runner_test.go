package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"fadingcr/internal/xrand"
)

// workload is a deterministic per-trial computation: a short PCG stream
// keyed by the trial's seeds, so any scheduling dependence would show up
// as a value change.
func workload(master uint64, trial int) float64 {
	dseed, pseed := TrialSeeds(master, trial)
	rng := xrand.New(dseed ^ pseed)
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += rng.Float64()
	}
	return sum
}

func TestTrialSeedsContract(t *testing.T) {
	// The derivation contract documented in DESIGN.md: deployment stream
	// at index 2·trial, protocol stream at 2·trial+1.
	for _, master := range []uint64{0, 1, 42, 1 << 63} {
		for _, trial := range []int{0, 1, 7, 1000} {
			d, p := TrialSeeds(master, trial)
			if want := xrand.Split(master, uint64(trial)*2); d != want {
				t.Errorf("TrialSeeds(%d, %d) deploy = %d, want Split(seed, 2·trial) = %d", master, trial, d, want)
			}
			if want := xrand.Split(master, uint64(trial)*2+1); p != want {
				t.Errorf("TrialSeeds(%d, %d) proto = %d, want Split(seed, 2·trial+1) = %d", master, trial, p, want)
			}
			if d == p {
				t.Errorf("TrialSeeds(%d, %d): deploy and proto seeds collide", master, trial)
			}
		}
	}
}

func TestRunOrderedResults(t *testing.T) {
	const trials = 64
	res, err := Run(context.Background(), trials, func(_ context.Context, trial int) (int, error) {
		return trial * trial, nil
	}, Options[int]{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != trials || res.Solved != trials {
		t.Fatalf("Done=%d Solved=%d, want %d", res.Done, res.Solved, trials)
	}
	for i, v := range res.Values {
		if v != i*i {
			t.Fatalf("Values[%d] = %d, want %d (results must be in trial order)", i, v, i*i)
		}
	}
	if err := res.FirstErr(); err != nil {
		t.Fatalf("FirstErr = %v, want nil", err)
	}
}

// TestDeterminismAcrossParallelism is the engine-level half of the
// determinism regression: parallelism 1, 4, and 8 must produce
// bit-identical result vectors for the same master seed.
func TestDeterminismAcrossParallelism(t *testing.T) {
	const trials, master = 200, 99
	run := func(par int) []float64 {
		res, err := Run(context.Background(), trials, func(_ context.Context, trial int) (float64, error) {
			return workload(master, trial), nil
		}, Options[float64]{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if res.Parallelism != par {
			t.Fatalf("effective parallelism %d, want %d", res.Parallelism, par)
		}
		return res.Values
	}
	seq := run(1)
	for _, par := range []int{4, 8} {
		if got := run(par); !reflect.DeepEqual(got, seq) {
			t.Errorf("parallelism %d produced different results than sequential", par)
		}
	}
}

func TestTrialErrorsDoNotAbortRun(t *testing.T) {
	sentinel := errors.New("boom")
	res, err := Run(context.Background(), 10, func(_ context.Context, trial int) (int, error) {
		if trial == 3 || trial == 7 {
			return 0, fmt.Errorf("trial %d: %w", trial, sentinel)
		}
		return trial, nil
	}, Options[int]{Parallelism: 4})
	if err != nil {
		t.Fatalf("run-level error %v; trial errors must not abort the run", err)
	}
	if res.Done != 10 || res.Solved != 8 {
		t.Fatalf("Done=%d Solved=%d, want 10/8", res.Done, res.Solved)
	}
	if !errors.Is(res.Errs[3], sentinel) || !errors.Is(res.Errs[7], sentinel) {
		t.Fatalf("Errs = %v, want sentinel at 3 and 7", res.Errs)
	}
	if !errors.Is(res.FirstErr(), sentinel) {
		t.Fatalf("FirstErr = %v, want the trial-3 error", res.FirstErr())
	}
}

func TestPanicRecovery(t *testing.T) {
	res, err := Run(context.Background(), 8, func(_ context.Context, trial int) (int, error) {
		if trial == 5 {
			panic("kaboom")
		}
		return trial, nil
	}, Options[int]{Parallelism: 4})
	if err != nil {
		t.Fatalf("run-level error %v; a trial panic must not kill the run", err)
	}
	var pe *PanicError
	if !errors.As(res.Errs[5], &pe) {
		t.Fatalf("Errs[5] = %v, want *PanicError", res.Errs[5])
	}
	if pe.Trial != 5 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v, want trial 5 / kaboom / non-empty stack", pe)
	}
	for i, e := range res.Errs {
		if i != 5 && e != nil {
			t.Errorf("trial %d unexpectedly failed: %v", i, e)
		}
	}
}

func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	res, err := Run(ctx, 1000, func(ctx context.Context, trial int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return trial, nil
	}, Options[int]{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run must still return partial results")
	}
	if res.Done == 0 || res.Done >= 1000 {
		t.Fatalf("Done = %d, want partial progress (in-flight trials finish, new ones do not start)", res.Done)
	}
}

func TestTimeout(t *testing.T) {
	start := time.Now()
	res, err := Run(context.Background(), 1000, func(ctx context.Context, trial int) (int, error) {
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return trial, nil
	}, Options[int]{Parallelism: 2, Timeout: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.Done >= 1000 {
		t.Fatalf("Done = %d, want a partial run", res.Done)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out run took %v, want prompt return", elapsed)
	}
}

func TestProgressStream(t *testing.T) {
	var snaps []Progress
	const trials = 32
	_, err := Run(context.Background(), trials, func(_ context.Context, trial int) (int, error) {
		if trial%4 == 0 {
			return 0, errors.New("unlucky")
		}
		return trial, nil
	}, Options[int]{
		Parallelism: 4,
		Progress:    func(p Progress) { snaps = append(snaps, p) },
		Solved:      func(v int) bool { return v%2 == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != trials {
		t.Fatalf("got %d progress snapshots, want one per trial (%d)", len(snaps), trials)
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != trials {
			t.Fatalf("snapshot %d = %+v, want Done=%d Total=%d", i, p, i+1, trials)
		}
	}
	final := snaps[len(snaps)-1]
	// 8 error trials (multiples of 4); of the 24 error-free ones the odd
	// values are solved: 16.
	if final.Errors != 8 || final.Solved != 16 {
		t.Fatalf("final snapshot %+v, want Errors=8 Solved=16", final)
	}
}

func TestZeroTrials(t *testing.T) {
	res, err := Run(context.Background(), 0, func(_ context.Context, trial int) (int, error) {
		t.Error("fn called for a zero-trial run")
		return 0, nil
	}, Options[int]{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 0 || len(res.Values) != 0 {
		t.Fatalf("zero-trial result = %+v", res)
	}
}

func TestAggregatorMatchesDirectComputation(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var a Aggregator
	for i, x := range xs {
		a.Observe(x, i%3 != 0)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(a.Mean()-mean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", a.Mean(), mean)
	}
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if wantVar := ss / float64(len(xs)-1); math.Abs(a.Variance()-wantVar) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), wantVar)
	}
	if a.Min() != 1 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 1/9", a.Min(), a.Max())
	}
	if a.Unsolved() != 4 {
		t.Errorf("Unsolved = %d, want 4 (indices 0,3,6,9)", a.Unsolved())
	}
}

func TestAggregatorMerge(t *testing.T) {
	xs := []float64{2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9}
	var whole, left, right Aggregator
	for i, x := range xs {
		whole.Observe(x, true)
		if i < 5 {
			left.Observe(x, true)
		} else {
			right.Observe(x, i%2 == 0)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() || left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatalf("merged N/Min/Max = %d/%v/%v, want %d/%v/%v",
			left.N(), left.Min(), left.Max(), whole.N(), whole.Min(), whole.Max())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged Mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-12 {
		t.Errorf("merged Variance = %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Unsolved() != 4 {
		t.Errorf("merged Unsolved = %d, want 4", left.Unsolved())
	}
	// Merging into an empty aggregator copies.
	var empty Aggregator
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty aggregator must copy")
	}
}

func TestPreCanceledContextRunsNothing(t *testing.T) {
	// Regression: the feeder used to race a dead ctx.Done() against the
	// index send in one select, so an already-canceled context could still
	// dispatch a nondeterministic handful of trials. A pre-canceled run
	// must execute zero trials, every time.
	for attempt := 0; attempt < 50; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int32
		res, err := Run(ctx, 100, func(ctx context.Context, trial int) (int, error) {
			calls.Add(1)
			return trial, nil
		}, Options[int]{Parallelism: 8})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res.Done != 0 {
			t.Fatalf("attempt %d: Done = %d, want 0 (no trial may run under a pre-canceled context)", attempt, res.Done)
		}
		if n := calls.Load(); n != 0 {
			t.Fatalf("attempt %d: fn called %d times under a pre-canceled context", attempt, n)
		}
	}
}

func TestRunRecordsMetrics(t *testing.T) {
	started0 := mTrialsStarted.Load()
	completed0 := mTrialsCompleted.Load()
	errored0 := mTrialsErrored.Load()
	panicked0 := mTrialsPanicked.Load()
	durations0 := mTrialSeconds.Count()
	res, err := Run(context.Background(), 10, func(ctx context.Context, trial int) (int, error) {
		switch trial {
		case 3:
			return 0, errors.New("boom")
		case 7:
			panic("kaboom")
		}
		return trial, nil
	}, Options[int]{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 10 {
		t.Fatalf("Done = %d, want 10", res.Done)
	}
	if got := mTrialsStarted.Load() - started0; got != 10 {
		t.Errorf("trials_started delta = %d, want 10", got)
	}
	if got := mTrialsCompleted.Load() - completed0; got != 10 {
		t.Errorf("trials_completed delta = %d, want 10", got)
	}
	if got := mTrialsErrored.Load() - errored0; got != 2 {
		t.Errorf("trials_errored delta = %d, want 2 (one error, one panic)", got)
	}
	if got := mTrialsPanicked.Load() - panicked0; got != 1 {
		t.Errorf("trials_panicked delta = %d, want 1", got)
	}
	if got := mTrialSeconds.Count() - durations0; got != 10 {
		t.Errorf("trial_seconds observations delta = %d, want 10", got)
	}
	if got := mParallelism.Load(); got != 4 {
		t.Errorf("parallelism gauge = %d, want 4", got)
	}
}
