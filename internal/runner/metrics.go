package runner

import "fadingcr/internal/obs"

// Engine metrics, exported through the CLI -metrics flag. All of them are
// observational: they record what the engine did and never influence trial
// scheduling, seeding, or results (DESIGN.md §8). Counters are cumulative
// over the process; the trial-duration histogram spans 1 µs to ~4.5 min in
// power-of-two buckets.
var (
	mRuns            = obs.Default.Counter("runner.runs")
	mTrialsStarted   = obs.Default.Counter("runner.trials_started")
	mTrialsCompleted = obs.Default.Counter("runner.trials_completed")
	mTrialsErrored   = obs.Default.Counter("runner.trials_errored")
	mTrialsPanicked  = obs.Default.Counter("runner.trials_panicked")
	mTrialSeconds    = obs.Default.Histogram("runner.trial_seconds", 1e-6, 28)
	mParallelism     = obs.Default.Gauge("runner.parallelism")
)
