// Package runner is the parallel Monte Carlo execution engine behind the
// reproduction harness. It executes N independent trials across a pool of
// worker goroutines while guaranteeing that parallelism never changes the
// result: each trial derives its randomness purely from the master seed and
// its own index (see TrialSeeds), and results are reassembled in trial
// order, so a run at parallelism 8 is bit-identical to the sequential loop
// it replaced.
//
// The engine adds the operational features every long Monte Carlo run
// wants and no experiment should hand-roll:
//
//   - context.Context cancellation and an optional per-run wall-clock
//     timeout (a canceled run returns promptly with partial results),
//   - panic recovery that converts a crashing trial into a per-trial
//     *PanicError instead of killing the whole run,
//   - a streaming Progress callback suitable for CLI progress lines,
//   - an online statistics Aggregator (Welford mean/variance, min/max,
//     unsolved count) for callers that only need summaries.
//
// Structured trace capture (internal/trace.Capture) composes with the
// engine without weakening the determinism contract: a worker asks the
// capture for a recorder by trial index (a pure sampling decision), traces
// its own trial's channel, and commits the file before returning — so the
// set of trace files and each file's bytes are identical at any
// parallelism.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"fadingcr/internal/obs"
	"fadingcr/internal/xrand"
)

// TrialSeeds derives the canonical (deployment, protocol) seed pair of a
// trial from the master seed: xrand.Split(master, 2·trial) for the
// deployment stream and xrand.Split(master, 2·trial+1) for the protocol
// stream. This is the repository's seed-derivation contract (DESIGN.md):
// every consumer that uses it reproduces identical executions for a given
// (master seed, trial index) regardless of execution order or parallelism.
func TrialSeeds(master uint64, trial int) (deploySeed, protoSeed uint64) {
	return xrand.Split(master, uint64(trial)*2), xrand.Split(master, uint64(trial)*2+1)
}

// Progress is a point-in-time snapshot of a run, streamed to the Progress
// callback after every completed trial (and therefore at most once per
// trial). Callbacks run on the collector goroutine, never concurrently.
type Progress struct {
	// Done is the number of completed trials (including failed ones).
	Done int
	// Total is the number of trials the run was asked for.
	Total int
	// Solved counts error-free trials the Options.Solved predicate
	// accepted (all error-free trials when no predicate is set).
	Solved int
	// Errors counts trials that returned an error or panicked.
	Errors int
	// Elapsed is the wall-clock time since Run started.
	Elapsed time.Duration
}

// Options configures a Run.
type Options[T any] struct {
	// Parallelism is the number of worker goroutines; values ≤ 0 select
	// runtime.GOMAXPROCS(0). Results are independent of it.
	Parallelism int
	// Timeout, when positive, bounds the run's wall-clock time; an
	// expired run returns partial results and context.DeadlineExceeded.
	Timeout time.Duration
	// Progress, when non-nil, observes the run after every completed
	// trial. It must not block for long: it runs on the collector
	// goroutine that trial completions funnel through.
	Progress func(Progress)
	// Solved, when non-nil, classifies an error-free trial value for the
	// Progress.Solved / Result.Solved counters. Nil counts every
	// error-free trial as solved.
	Solved func(T) bool
}

// Result holds the reassembled outcome of a run. Values and Errs are
// indexed by trial; Values[i] is meaningful only where Errs[i] is nil and
// the trial completed (Done covers all trials unless the run was canceled).
type Result[T any] struct {
	// Values are the per-trial results in trial order.
	Values []T
	// Errs are the per-trial errors (nil entries for successful trials);
	// a recovered panic appears as a *PanicError.
	Errs []error
	// Done is the number of trials that actually executed; it is less
	// than len(Values) only when the run was canceled or timed out.
	Done int
	// Solved counts error-free trials accepted by Options.Solved.
	Solved int
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
	// Parallelism is the effective worker count used.
	Parallelism int
}

// FirstErr returns the error of the lowest-indexed failed trial, or nil.
// It reproduces the error a sequential loop that stops at the first
// failure would have reported.
func (r *Result[T]) FirstErr() error {
	for _, err := range r.Errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PanicError is a trial panic converted into an error by the engine's
// recovery; the run continues and the other trials are unaffected.
type PanicError struct {
	// Trial is the index of the panicking trial.
	Trial int
	// Value is the value the trial panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v", e.Trial, e.Value)
}

// Run executes fn for every trial index in [0, trials) across a worker
// pool and reassembles the results in trial order. fn must derive all its
// randomness from the trial index (e.g. via TrialSeeds), never from shared
// mutable state, so that the output is independent of scheduling.
//
// The returned error is non-nil only for run-level failures — context
// cancellation or timeout before every trial completed. Per-trial errors
// (including recovered panics) are reported in Result.Errs and never abort
// the other trials; use Result.FirstErr to fail like a sequential loop.
// The Result is non-nil even on error and carries the partial results.
func Run[T any](ctx context.Context, trials int, fn func(ctx context.Context, trial int) (T, error), opts Options[T]) (*Result[T], error) {
	start := time.Now() //crlint:allow nowallclock Result.Elapsed reports real wall time, not simulated time
	if ctx == nil {
		ctx = context.Background()
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > trials {
		par = trials
	}
	if par < 1 {
		par = 1
	}
	res := &Result[T]{
		Values:      make([]T, trials),
		Errs:        make([]error, trials),
		Parallelism: par,
	}
	if trials == 0 {
		res.Elapsed = time.Since(start) //crlint:allow nowallclock elapsed-time reporting
		return res, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		// A context canceled before the run starts must execute nothing:
		// without this check the feeder's select below could still hand out
		// indices (select picks randomly among ready cases), making Done
		// nondeterministic for an already-dead context.
		res.Elapsed = time.Since(start) //crlint:allow nowallclock elapsed-time reporting
		return res, err
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout) //crlint:allow nowallclock run timeout bounds wall time only; trial results never observe it
		defer cancel()
	}
	mRuns.Inc()
	mParallelism.Set(int64(par))

	// Workers write disjoint slice elements and announce completions on a
	// buffered channel sized so they can never block; the collector (this
	// goroutine) is then the only reader of completed entries, which keeps
	// progress callbacks serialized and the whole engine race-free.
	indexCh := make(chan int)
	completedCh := make(chan int, trials)
	go func() {
		defer close(indexCh)
		for i := 0; i < trials; i++ {
			// Checked before every send: when the context is already dead
			// and a worker is simultaneously ready to receive, both select
			// cases below are ready and Go picks one at random — without
			// this check a canceled run could keep dispatching trials.
			if ctx.Err() != nil {
				return
			}
			select {
			case indexCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexCh {
				mTrialsStarted.Inc()
				var trialStart time.Time
				if obs.Enabled() {
					trialStart = time.Now() //crlint:allow nowallclock metrics-only trial timing, never feeds the simulation
				}
				res.Values[i], res.Errs[i] = runTrial(ctx, i, fn)
				if obs.Enabled() {
					mTrialSeconds.Observe(time.Since(trialStart).Seconds()) //crlint:allow nowallclock metrics-only trial timing
				}
				completedCh <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completedCh)
	}()

	errCount := 0
	for i := range completedCh {
		res.Done++
		mTrialsCompleted.Inc()
		if res.Errs[i] != nil {
			errCount++
			mTrialsErrored.Inc()
			var pe *PanicError
			if errors.As(res.Errs[i], &pe) {
				mTrialsPanicked.Inc()
			}
		} else if opts.Solved == nil || opts.Solved(res.Values[i]) {
			res.Solved++
		}
		if opts.Progress != nil {
			opts.Progress(Progress{
				Done:    res.Done,
				Total:   trials,
				Solved:  res.Solved,
				Errors:  errCount,
				Elapsed: time.Since(start), //crlint:allow nowallclock progress-callback elapsed time
			})
		}
	}
	res.Elapsed = time.Since(start) //crlint:allow nowallclock elapsed-time reporting
	if res.Done < trials {
		// Only cancellation or timeout can leave trials unexecuted.
		return res, ctx.Err()
	}
	return res, nil
}

// runTrial executes one trial with panic recovery.
func runTrial[T any](ctx context.Context, trial int, fn func(ctx context.Context, trial int) (T, error)) (v T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Trial: trial, Value: rec, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, trial)
}
