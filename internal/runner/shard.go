package runner

// Sharding primitives: the (master, shard, trial) extension of the
// TrialSeeds contract (DESIGN.md §8). A sharded run partitions the global
// trial index space [0, total) into contiguous ranges, one per shard, and
// each shard derives the seeds of its local trial t from the *global*
// index lo+t — so the set of per-trial seed pairs executed across all
// shards is exactly the set a single-process run executes, for any shard
// count. Byte-identical reassembly then only requires concatenating shard
// results in shard order, which ShardRange's monotone ranges make the same
// as global trial order.

// ShardRange returns the contiguous global trial range [lo, hi) owned by
// shard index of shards over total trials: lo = index·total/shards,
// hi = (index+1)·total/shards. The ranges of indices 0..shards-1 partition
// [0, total) in order, sizes differ by at most one, and shards beyond the
// trial count receive empty ranges. ShardRange(total, 1, 0) is the whole
// range, so a single-shard run is literally the unsharded run.
func ShardRange(total, shards, index int) (lo, hi int) {
	return index * total / shards, (index + 1) * total / shards
}

// ShardTrialSeeds derives the canonical seed pair of a shard's local trial:
// shard index of shards owns the global range ShardRange(total, shards,
// index), and its local trial t is the global trial lo+t, so
//
//	ShardTrialSeeds(master, total, shards, index, t) = TrialSeeds(master, lo+t)
//
// for every shard count — the identity that makes sharded runs reproduce a
// single-process run's randomness exactly (and therefore its bytes).
func ShardTrialSeeds(master uint64, total, shards, index, local int) (deploySeed, protoSeed uint64) {
	lo, _ := ShardRange(total, shards, index)
	return TrialSeeds(master, lo+local)
}

// AggregatorState is the serializable snapshot of an Aggregator, used by
// the shard wire format (internal/shard) to carry per-shard summary
// statistics across the process boundary. encoding/json round-trips
// float64 exactly (shortest-representation encode, exact decode), so
// State → JSON → AggregatorFromState loses no precision.
type AggregatorState struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	M2       float64 `json:"m2"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Unsolved int     `json:"unsolved"`
}

// State snapshots the aggregator.
func (a *Aggregator) State() AggregatorState {
	return AggregatorState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max, Unsolved: a.unsolved}
}

// AggregatorFromState reconstructs the aggregator a State call snapshotted;
// Observe and Merge continue from the restored statistics.
func AggregatorFromState(s AggregatorState) *Aggregator {
	return &Aggregator{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max, unsolved: s.Unsolved}
}
