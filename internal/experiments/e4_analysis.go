package experiments

import (
	"fmt"
	"math"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// e4 — Figure 3: the staggered geometric decay of link class sizes that the
// class-bound vectors q_t of Section 3.3 predict.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Per-class decay vs the q_t envelope (Section 3.3)",
		Claim: "Link class sizes fall below the staggered geometric envelope q_t, smaller classes first; the whole schedule empties in Θ(log n + log R) rounds.",
		Run: func(cfg Config) ([]*table.Table, error) {
			const m, pairs = 6, 8 // 96 nodes across 6 populated classes
			trials := cfg.trials(10, 3)

			type classStat struct {
				initial    int
				halfRound  int // first round the suffix-max drops to ≤ half the initial size
				emptyRound int // first round the suffix-max reaches 0
			}
			sums := make([]classStat, m)
			counts := make([]int, m)
			var solveRounds []int
			worstSegment := 0

			// Each trial returns its solving round and per-round
			// suffix-max class sizes; the (order-sensitive) aggregation
			// below stays sequential in trial order.
			type traced struct {
				Rounds int     `json:"rounds"`
				Suffix [][]int `json:"suffix"`
			}
			outcomes, err := runTrials(cfg, trials, func(trial int) (traced, error) {
				d, err := geom.ExponentialChain(xrand.Split(cfg.Seed, uint64(trial)), m, pairs)
				if err != nil {
					return traced{}, err
				}
				ch, err := channelFor(cfg, DefaultParams(), d)
				if err != nil {
					return traced{}, err
				}
				an := &core.Analyzer{Points: d.Points, Alpha: DefaultParams().Alpha, R: d.R}
				res, err := sim.Run(ch, core.FixedProbability{}, xrand.Split(cfg.Seed, uint64(trial)+1000),
					sim.Config{MaxRounds: 4000, Tracer: an})
				if err != nil {
					return traced{}, err
				}
				if !res.Solved {
					return traced{}, fmt.Errorf("E4 trial %d unsolved", trial)
				}
				return traced{Rounds: res.Rounds, Suffix: an.MaxClassSizes()}, nil
			})
			if err != nil {
				return nil, err
			}
			for _, o := range outcomes {
				suffix := o.Suffix
				solveRounds = append(solveRounds, o.Rounds)
				for i := 0; i < m && i < len(suffix[0]); i++ {
					initial := suffix[0][i]
					if initial == 0 {
						continue
					}
					cs := classStat{initial: initial, halfRound: -1, emptyRound: -1}
					for r := range suffix {
						if cs.halfRound < 0 && suffix[r][i] <= initial/2 {
							cs.halfRound = r + 1
						}
						if suffix[r][i] == 0 {
							cs.emptyRound = r + 1
							break
						}
					}
					if cs.emptyRound < 0 {
						cs.emptyRound = o.Rounds // emptied by the solving round
					}
					if cs.halfRound < 0 {
						cs.halfRound = cs.emptyRound
					}
					sums[i].initial += cs.initial
					sums[i].halfRound += cs.halfRound
					sums[i].emptyRound += cs.emptyRound
					counts[i]++
				}
				if seg := fitEnvelopeSegment(suffix, o.Rounds); seg > worstSegment {
					worstSegment = seg
				}
			}

			decay := table.New("E4 — per-class decay (means over trials; exponential chain, 6 classes × 8 pairs)",
				"class", "initial size", "round ≤ half", "round empty")
			for i := 0; i < m; i++ {
				if counts[i] == 0 {
					continue
				}
				c := float64(counts[i])
				decay.AddRow(table.Int(i),
					table.Float(float64(sums[i].initial)/c, 1),
					table.Float(float64(sums[i].halfRound)/c, 1),
					table.Float(float64(sums[i].emptyRound)/c, 1))
			}

			env := table.New("E4 — q_t envelope fit", "quantity", "value")
			totalSolve := 0
			for _, r := range solveRounds {
				totalSolve += r
			}
			cb := core.DefaultClassBounds()
			env.AddRow("mean solve round", table.Float(float64(totalSolve)/float64(len(solveRounds)), 1))
			env.AddRow("envelope steps T (StepsToZero)", table.Int(cb.StepsToZero(2*m*pairs, m)))
			env.AddRow("min rounds/step so classes respect q_t", table.Int(worstSegment))
			return []*table.Table{decay, env}, nil
		},
	}
}

// fitEnvelopeSegment returns the smallest segment length L (rounds per
// envelope step) such that the observed suffix-max class sizes stay within
// the q_{⌊(r−1)/L⌋} envelope for every round r; Lemma 10 predicts a constant.
// Returns rounds+1 if even one step per round does not suffice at L = that
// bound (cannot happen in practice: at L ≥ rounds the envelope stays at q_0 ≈ n).
func fitEnvelopeSegment(suffix [][]int, rounds int) int {
	if len(suffix) == 0 {
		return 1
	}
	cb := core.DefaultClassBounds()
	m := len(suffix[0])
	n := 0
	for _, v := range suffix[0] {
		n += v
	}
	for l := 1; l <= rounds+1; l++ {
		ok := true
	scan:
		for r := range suffix {
			step := r / l
			q := cb.Vector(n, m, step)
			for i := 0; i < m; i++ {
				if float64(suffix[r][i]) > math.Max(q[i], 0) {
					ok = false
					break scan
				}
			}
		}
		if ok {
			return l
		}
	}
	return rounds + 1
}

// e5 — Figure 4: Lemma 6 — when a class dominates the smaller classes, at
// least half its nodes are good.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Good-node fractions per link class (Lemma 6)",
		Claim: "If n_{<i} ≤ δ·n_i then at least half the nodes of class d_i are good (annulus capacities 96·2^{t·α/2}).",
		Run: func(cfg Config) ([]*table.Table, error) {
			n := 512
			if cfg.Quick {
				n = 128
			}
			trials := cfg.trials(10, 3)
			const delta = 1.0 // even weaker than the lemma's δ < 1: a strict test

			type agg struct {
				cells, holds int
				fracSum      float64
				minFrac      float64
			}
			perClass := map[int]*agg{}

			type cell struct {
				Class int     `json:"class"`
				Frac  float64 `json:"frac"`
			}
			outcomes, err := runTrials(cfg, trials, func(trial int) ([]cell, error) {
				d, err := geom.UniformDisk(xrand.Split(cfg.Seed, uint64(trial)), n)
				if err != nil {
					return nil, err
				}
				active := make([]bool, n)
				for i := range active {
					active[i] = true
				}
				lc := geom.ComputeLinkClasses(d.Points, active)
				alpha := DefaultParams().Alpha
				var cells []cell
				for i, size := range lc.Sizes {
					if size == 0 || float64(lc.SizeBelow(i)) > delta*float64(size) {
						continue
					}
					good := 0
					for u := range d.Points {
						if lc.Class[u] != i {
							continue
						}
						if geom.IsGood(d.Points, active, u, i, alpha, geom.MaxAnnulusIndex(d.R, i)) {
							good++
						}
					}
					cells = append(cells, cell{Class: i, Frac: float64(good) / float64(size)})
				}
				return cells, nil
			})
			if err != nil {
				return nil, err
			}
			for _, cells := range outcomes {
				for _, c := range cells {
					a := perClass[c.Class]
					if a == nil {
						a = &agg{minFrac: 2}
						perClass[c.Class] = a
					}
					a.cells++
					a.fracSum += c.Frac
					if c.Frac < a.minFrac {
						a.minFrac = c.Frac
					}
					if c.Frac >= 0.5 {
						a.holds++
					}
				}
			}

			result := table.New(fmt.Sprintf("E5 — good-node fraction where n_<i ≤ δ·n_i (δ=%.1f, uniform disk n=%d, %d trials)", delta, n, trials),
				"class", "qualifying cells", "mean good frac", "min good frac", "≥½ holds")
			maxClass := -1
			for i := range perClass {
				if i > maxClass {
					maxClass = i
				}
			}
			for i := 0; i <= maxClass; i++ {
				a := perClass[i]
				if a == nil {
					continue
				}
				result.AddRow(table.Int(i), table.Int(a.cells),
					table.Float(a.fracSum/float64(a.cells), 3),
					table.Float(a.minFrac, 3),
					fmt.Sprintf("%d/%d", a.holds, a.cells))
			}
			return []*table.Table{result}, nil
		},
	}
}
