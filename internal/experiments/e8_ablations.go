package experiments

import (
	"fmt"
	"math"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/radio"
	"fadingcr/internal/sim"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
)

// e8 — Table 3: the radio-model baselines behave as published.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Radio-model baselines vs their published bounds",
		Claim: "On the collision channel the w.h.p. horizons of sweep and decay grow like log² n (decay's *median* is Θ(log n)); collision-detection halving stays Θ(log n) even w.h.p.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 32, 64, 128, 256, 512, 1024}
			if cfg.Quick {
				ns = []int{16, 64, 256}
			}
			trials := cfg.trials(40, 10)

			entries := []comparisonEntry{
				{"probability-sweep", func(int) sim.Builder { return baselines.ProbabilitySweep{} }, "radio",
					func(n int) int { l := ilog2(n) + 1; return 200 + 40*l*l }},
				{"decay(N=n)", func(n int) sim.Builder { return baselines.Decay{N: n} }, "radio",
					func(n int) int { l := ilog2(n) + 1; return 200 + 40*l*l }},
				{"cd-halving", func(int) sim.Builder { return baselines.CollisionDetectHalving{} }, "radio+cd", e1Budget},
				{"cd-binary-estimate", func(int) sim.Builder { return baselines.CDBinaryEstimate{} }, "radio+cd", e1Budget},
			}

			results := table.New("E8 — median rounds on the radio channel",
				append([]string{"algorithm"}, nCols(ns)...)...)
			fits := table.New("E8 — growth model per algorithm (fit on medians)",
				"algorithm", "log fit RMSE", "log² fit RMSE", "better model")
			for _, entry := range entries {
				row := []string{entry.label}
				var medians []float64
				for _, n := range ns {
					med, unsolved, err := comparisonMedian(cfg, trials, n, entry)
					if err != nil {
						return nil, fmt.Errorf("E8 %s n=%d: %w", entry.label, n, err)
					}
					cell := table.Float(med, 0)
					if unsolved > 0 {
						cell += fmt.Sprintf(" (%d unsolved)", unsolved)
					}
					row = append(row, cell)
					medians = append(medians, med)
				}
				results.AddRow(row...)
				growth, err := stats.CompareGrowth(ns, medians)
				if err != nil {
					return nil, err
				}
				better := "log² n"
				if growth.LogWins() {
					better = "log n"
				}
				fits.AddRow(entry.label, table.Float(growth.Log.RMSE, 2), table.Float(growth.Log2.RMSE, 2), better)
			}

			horizons, err := e8Horizons(cfg, entries)
			if err != nil {
				return nil, err
			}
			return []*table.Table{results, fits, horizons}, nil
		},
	}
}

// e8Horizons estimates the w.h.p. horizons: the (1 − 1/n)-quantile of the
// solving round, which is where the published Θ(log² n) bounds for sweep and
// decay live (decay's median is Θ(log n) — only its tail is quadratic). The
// quantile needs ≥ ~4n trials per point, so the sweep stops at n = 256.
func e8Horizons(cfg Config, entries []comparisonEntry) (*table.Table, error) {
	ns := []int{16, 64, 256}
	if cfg.Quick {
		ns = []int{16, 64}
	}
	horizons := table.New("E8 — w.h.p. horizon: (1−1/n)-quantile of the solving round",
		append([]string{"algorithm"}, nCols(ns)...)...)
	for _, entry := range entries {
		row := []string{entry.label}
		for _, n := range ns {
			trials := 4 * n
			if cfg.Quick {
				trials = 2 * n
			}
			builder := entry.builder(n)
			simCfg := sim.Config{
				MaxRounds:          4 * entry.budget(n),
				CollisionDetection: entry.channel == "radio+cd",
			}
			rounds, unsolved, err := trialRounds(cfg, trials,
				func(uint64) (*geom.Deployment, error) { return geom.TwoNode(), nil }, // positions unused on radio
				func(*geom.Deployment) (sim.Channel, error) { return radio.New(n, simCfg.CollisionDetection) },
				builder, simCfg)
			if err != nil {
				return nil, fmt.Errorf("E8 horizon %s n=%d: %w", entry.label, n, err)
			}
			if unsolved > 0 {
				row = append(row, fmt.Sprintf("≥%d (%d unsolved)", simCfg.MaxRounds, unsolved))
				continue
			}
			row = append(row, table.Float(stats.QuantileOf(rounds, 1-1/float64(n)), 0))
		}
		horizons.AddRow(row...)
	}
	return horizons, nil
}

func ilog2(n int) int { return int(math.Ceil(math.Log2(float64(n)))) }

// e9 — Figure 6: ablations A1 (broadcast probability) and A2 (path-loss
// exponent).
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Ablations: broadcast probability p and path-loss exponent α",
		Claim: "Any constant p works (flat optimum), and the log n behaviour holds for all α > 2, degrading as α → 2.",
		Run: func(cfg Config) ([]*table.Table, error) {
			n := 512
			if cfg.Quick {
				n = 128
			}
			trials := cfg.trials(30, 8)

			pTable := table.New(fmt.Sprintf("E9a — median rounds vs broadcast probability (n=%d, α=3)", n),
				"p", "mean", "median", "p95", "unsolved")
			for _, p := range []float64{1.0 / 32, 1.0 / 16, 1.0 / 8, 0.2, 0.3, 0.5} {
				rounds, unsolved, err := sinrTrialRounds(cfg, trials, n, core.FixedProbability{P: p}, 2000)
				if err != nil {
					return nil, fmt.Errorf("E9 p=%v: %w", p, err)
				}
				s, err := stats.Summarize(rounds)
				if err != nil {
					return nil, err
				}
				pTable.AddRow(table.Float(p, 4), table.Float(s.Mean, 1), table.Float(s.Median, 1),
					table.Float(stats.QuantileOf(rounds, 0.95), 1), table.Int(unsolved))
			}

			aTable := table.New(fmt.Sprintf("E9b — median rounds vs path-loss exponent α (n=%d, p=%.2g)", n, core.DefaultP),
				"α", "mean", "median", "p95", "unsolved")
			for _, alpha := range []float64{2.1, 2.5, 3, 4, 6} {
				params := DefaultParams()
				params.Alpha = alpha
				rounds, unsolved, err := trialRounds(cfg, trials,
					func(seed uint64) (*geom.Deployment, error) { return geom.UniformDisk(seed, n) },
					func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, params, d) },
					core.FixedProbability{},
					sim.Config{MaxRounds: 2000},
				)
				if err != nil {
					return nil, fmt.Errorf("E9 α=%v: %w", alpha, err)
				}
				s, err := stats.Summarize(rounds)
				if err != nil {
					return nil, err
				}
				aTable.AddRow(table.Float(alpha, 1), table.Float(s.Mean, 1), table.Float(s.Median, 1),
					table.Float(stats.QuantileOf(rounds, 0.95), 1), table.Int(unsolved))
			}
			return []*table.Table{pTable, aTable}, nil
		},
	}
}

// e10 — Figure 7: ablation A3 — the same algorithm with and without spatial
// reuse. On the collision channel the knock-out cascade never starts (a
// reception requires a solo broadcast, which already solves the problem), so
// the algorithm must wait for n simultaneous coin flips to produce a single
// transmitter: exponentially unlikely for fixed p. On the SINR channel,
// capture effects knock out nodes continuously.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Spatial reuse on/off: same algorithm, SINR vs collision channel",
		Claim: "The fixed-probability algorithm's speed comes entirely from spatial reuse; without fading it stalls beyond small n.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{4, 8, 16, 32, 64}
			trials := cfg.trials(20, 6)
			budget := 200000
			if cfg.Quick {
				budget = 20000
			}

			result := table.New("E10 — median rounds for fixed-probability, by channel",
				append([]string{"channel"}, nCols(ns)...)...)
			rows := []struct {
				label   string
				channel string
			}{
				{"SINR (fading)", "sinr"},
				{"collision (radio)", "radio"},
			}
			for _, r := range rows {
				row := []string{r.label}
				for _, n := range ns {
					entry := comparisonEntry{
						label:   r.label,
						builder: func(int) sim.Builder { return core.FixedProbability{} },
						channel: r.channel,
						budget:  func(int) int { return budget },
					}
					med, unsolved, err := comparisonMedian(cfg, trials, n, entry)
					if err != nil {
						return nil, fmt.Errorf("E10 %s n=%d: %w", r.label, n, err)
					}
					cell := table.Float(med, 0)
					if unsolved > 0 {
						cell = fmt.Sprintf("≥%d (%d/%d unsolved)", budget, unsolved, trials)
					}
					row = append(row, cell)
				}
				result.AddRow(row...)
			}
			note := table.New("E10 — expected stall on the collision channel", "n", "P(solo per round) = n·p·(1−p)^{n−1}")
			for _, n := range ns {
				p := core.DefaultP
				prob := float64(n) * p * math.Pow(1-p, float64(n-1))
				note.AddRow(table.Int(n), table.Sci(prob, 2))
			}
			return []*table.Table{result, note}, nil
		},
	}
}
