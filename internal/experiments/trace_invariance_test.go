package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"fadingcr/internal/trace"
)

// newTestCapture builds a capture writing into a fresh temp dir.
func newTestCapture(t *testing.T, dir string, p trace.Policy) *trace.Capture {
	t.Helper()
	p.Dir = dir
	c, err := trace.NewCapture("test", p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTraceInvariance is the observability contract of the tracing
// subsystem: for every registered experiment, the rendered result tables
// must be byte-identical with structured trace capture on or off. Tracing
// observes executions (an extra Tracer call per round, a reception observer
// on the channel) without touching any float or rng sequence, so enabling
// it must never leak into results.
func TestTraceInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			base := Config{Seed: 23, Quick: true, Trials: 2}
			plain := renderAll(t, e.ID, base)

			traced := base
			traced.Trace = newTestCapture(t, t.TempDir(), trace.Policy{Classes: true})
			if got := renderAll(t, e.ID, traced); got != plain {
				t.Errorf("%s tables differ with tracing enabled", e.ID)
			}
		})
	}
}

// TestTraceDeterminism: two traced runs with the same master seed must
// produce the same set of trace files with byte-identical contents, at
// different parallelisms, and trace.Diff must find the parsed traces
// identical (the contract `crtrace diff` exposes as an exit code).
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	capture := func(parallelism int) (string, *trace.Capture) {
		dir := t.TempDir()
		c := newTestCapture(t, dir, trace.Policy{Classes: true})
		cfg := Config{Seed: 42, Quick: true, Trials: 4, Parallelism: parallelism, Trace: c}
		renderAll(t, "E1", cfg)
		return dir, c
	}
	dirA, capA := capture(1)
	dirB, capB := capture(8)

	filesA, filesB := capA.Written(), capB.Written()
	if len(filesA) == 0 {
		t.Fatal("traced E1 run wrote no trace files")
	}
	if len(filesA) != len(filesB) {
		t.Fatalf("runs wrote %d vs %d trace files", len(filesA), len(filesB))
	}
	for i := range filesA {
		nameA, nameB := filepath.Base(filesA[i]), filepath.Base(filesB[i])
		if nameA != nameB {
			t.Fatalf("trace file %d named %s vs %s", i, nameA, nameB)
		}
		bytesA, err := os.ReadFile(filepath.Join(dirA, nameA))
		if err != nil {
			t.Fatal(err)
		}
		bytesB, err := os.ReadFile(filepath.Join(dirB, nameB))
		if err != nil {
			t.Fatal(err)
		}
		if string(bytesA) != string(bytesB) {
			t.Errorf("%s differs between same-seed runs", nameA)
		}

		fa, err := os.Open(filesA[i])
		if err != nil {
			t.Fatal(err)
		}
		ta, err := trace.Read(fa)
		fa.Close()
		if err != nil {
			t.Fatalf("%s: %v", nameA, err)
		}
		fb, err := os.Open(filesB[i])
		if err != nil {
			t.Fatal(err)
		}
		tb, err := trace.Read(fb)
		fb.Close()
		if err != nil {
			t.Fatalf("%s: %v", nameB, err)
		}
		if d := trace.Diff(ta, tb); d != nil {
			t.Errorf("%s: same-seed traces diverge: %+v", nameA, d)
		}
	}
}

// TestTraceRetentionBounds: the EveryK sampling policy bounds capture to
// the sampled trials only, deterministically.
func TestTraceRetentionBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	c := newTestCapture(t, t.TempDir(), trace.Policy{EveryK: 3})
	renderAll(t, "E1", Config{Seed: 9, Quick: true, Trials: 7, Trace: c})
	for _, path := range c.Written() {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if tr.Header.Trial%3 != 0 {
			t.Errorf("%s captured unsampled trial %d", filepath.Base(path), tr.Header.Trial)
		}
	}
}
