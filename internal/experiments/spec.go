package experiments

import (
	"fmt"
	"strings"

	"fadingcr/internal/sinr"
)

// Spec is a transport-agnostic request for an experiment run: the flag
// values of crbench and the JSON job fields of crserve both land here, so
// every front end shares one parsing/validation path. A Spec carries only
// user intent; execution settings (parallelism, context, tracing) are set
// on the returned Config by the caller, and none of them change results.
type Spec struct {
	// IDs selects experiments: "all" (or "") for every registered one, or
	// a comma-separated id list like "E1,E3" (spaces around ids are
	// tolerated, matching the crbench flag it replaces).
	IDs string
	// Seed is the master seed.
	Seed uint64
	// Trials is the trials per data point; 0 selects each experiment's
	// default, negative is rejected.
	Trials int
	// Quick shrinks sweeps for fast smoke runs.
	Quick bool
	// GainCache is the SINR delivery engine mode: ""/"auto", "on", "off".
	GainCache string
	// FarFieldEps enables ε far-field pruning when > 0 (see
	// Config.FarFieldEps); it changes results within the documented bound
	// and therefore the run's identity.
	FarFieldEps float64
	// SINRParallel is the intra-round Deliver worker count (see
	// Config.SINRParallel); 0 keeps the sequential default.
	SINRParallel int
}

// ConfigFromSpec validates a Spec and resolves it into the selected
// experiments plus a ready Config. All validation lives here: unknown
// experiment ids, an invalid gain-cache mode, and negative trial counts
// (which the old crbench flag path silently treated as "default") are
// rejected with descriptive errors.
func ConfigFromSpec(s Spec) ([]Experiment, Config, error) {
	if s.Trials < 0 {
		return nil, Config{}, fmt.Errorf("trials must be ≥ 0 (0 selects the experiment default), got %d", s.Trials)
	}
	if _, err := sinr.EngineOptions(s.GainCache, s.FarFieldEps, s.SINRParallel); err != nil {
		return nil, Config{}, err
	}
	selected, err := selectIDs(s.IDs)
	if err != nil {
		return nil, Config{}, err
	}
	return selected, Config{
		Seed:         s.Seed,
		Trials:       s.Trials,
		Quick:        s.Quick,
		GainCache:    s.GainCache,
		FarFieldEps:  s.FarFieldEps,
		SINRParallel: s.SINRParallel,
	}, nil
}

// selectIDs resolves the IDs field against the registry.
func selectIDs(ids string) ([]Experiment, error) {
	if ids == "" || ids == "all" {
		return All(), nil
	}
	var selected []Experiment
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment id %q", id)
		}
		selected = append(selected, e)
	}
	return selected, nil
}
