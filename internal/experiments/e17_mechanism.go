package experiments

import (
	"fmt"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
)

// e17 — mechanism ablation: which ingredient of the paper's algorithm buys
// the speed-up — the constant broadcast probability, or the knock-out rule?
// Grafting the knock-out rule onto the classical Θ(log² n) sweep (which uses
// a completely different probability schedule) answers it: on the fading
// channel, knock-outs exploit spatial reuse regardless of the schedule.
func e17() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Mechanism ablation: the knock-out rule grafted onto the sweep",
		Claim: "The knock-out rule is the enabling mechanism: knockout(sweep) on the fading channel collapses toward the paper's Θ(log n) behaviour, while the plain sweep stays Θ(log² n).",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 64, 256, 1024}
			if cfg.Quick {
				ns = []int{16, 64}
			}
			trials := cfg.trials(30, 8)

			algos := []struct {
				label   string
				builder sim.Builder
			}{
				{"probability-sweep (plain)", baselines.ProbabilitySweep{}},
				{"knockout(probability-sweep)", core.WithKnockout{Inner: baselines.ProbabilitySweep{}}},
				{"fixed-probability (paper)", core.FixedProbability{}},
			}

			result := table.New("E17 — median rounds on the SINR channel",
				append([]string{"algorithm"}, nCols(ns)...)...)
			for _, a := range algos {
				row := []string{a.label}
				for _, n := range ns {
					rounds, unsolved, err := trialRounds(cfg, trials,
						func(seed uint64) (*geom.Deployment, error) { return geom.UniformDisk(seed, n) },
						func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, DefaultParams(), d) },
						a.builder, sim.Config{MaxRounds: 40 * e1Budget(n)})
					if err != nil {
						return nil, fmt.Errorf("E17 %s n=%d: %w", a.label, n, err)
					}
					cell := table.Float(stats.Median(rounds), 0)
					if unsolved > 0 {
						cell += fmt.Sprintf(" (%d unsolved)", unsolved)
					}
					row = append(row, cell)
				}
				result.AddRow(row...)
			}
			return []*table.Table{result}, nil
		},
	}
}
