package experiments

import (
	"strings"
	"testing"
)

// renderAll renders an experiment's tables to one string for comparison.
func renderAll(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s missing", id)
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.Text())
	}
	return b.String()
}

// TestParallelismInvariance is the determinism regression of the parallel
// Monte Carlo engine: for a representative experiment (E1 quick) the
// rendered result tables must be byte-identical at parallelism 1, 4, and 8
// for the same master seed. Every trial derives its randomness from
// (Seed, trial index) alone and results are reassembled in trial order, so
// parallelism must never change output.
func TestParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	base := Config{Seed: 42, Quick: true, Trials: 6}
	sequential := renderAll(t, "E1", Config{Seed: base.Seed, Quick: true, Trials: base.Trials, Parallelism: 1})
	for _, par := range []int{4, 8} {
		cfg := base
		cfg.Parallelism = par
		if got := renderAll(t, "E1", cfg); got != sequential {
			t.Errorf("E1 tables at parallelism %d differ from parallelism 1", par)
		}
	}
}

// TestParallelismInvarianceAcrossSuite spot-checks the converted
// per-experiment loops (analyzer traces, hitting games, paired embeddings,
// energy medians, capacity sweeps) at a second parallelism.
func TestParallelismInvarianceAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range []string{"E4", "E6", "E14", "E15", "E16", "E18"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := renderAll(t, id, Config{Seed: 11, Quick: true, Trials: 3, Parallelism: 1})
			par := renderAll(t, id, Config{Seed: 11, Quick: true, Trials: 3, Parallelism: 8})
			if seq != par {
				t.Errorf("%s tables differ between parallelism 1 and 8", id)
			}
		})
	}
}
