package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fadingcr/internal/obs"
)

// renderAll renders an experiment's tables to one string for comparison.
func renderAll(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s missing", id)
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.Text())
	}
	return b.String()
}

// TestParallelismInvariance is the determinism regression of the parallel
// Monte Carlo engine: for a representative experiment (E1 quick) the
// rendered result tables must be byte-identical at parallelism 1, 4, and 8
// for the same master seed. Every trial derives its randomness from
// (Seed, trial index) alone and results are reassembled in trial order, so
// parallelism must never change output.
func TestParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	base := Config{Seed: 42, Quick: true, Trials: 6}
	sequential := renderAll(t, "E1", Config{Seed: base.Seed, Quick: true, Trials: base.Trials, Parallelism: 1})
	for _, par := range []int{4, 8} {
		cfg := base
		cfg.Parallelism = par
		if got := renderAll(t, "E1", cfg); got != sequential {
			t.Errorf("E1 tables at parallelism %d differ from parallelism 1", par)
		}
	}
}

// TestGainCacheInvariance is the determinism regression of the gain-cached
// delivery engine: a representative experiment must render byte-identical
// tables whether channels precompute the pairwise gain matrix ("on"),
// compute attenuations on the fly ("off"), or pick per channel ("auto").
// Both engines perform the per-listener float operations in the same order,
// so the engine choice must never leak into results.
func TestGainCacheInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	base := renderAll(t, "E1", Config{Seed: 42, Quick: true, Trials: 6, GainCache: "on"})
	for _, mode := range []string{"off", "auto"} {
		if got := renderAll(t, "E1", Config{Seed: 42, Quick: true, Trials: 6, GainCache: mode}); got != base {
			t.Errorf("E1 tables with gain cache %q differ from %q", mode, "on")
		}
	}
	// E12 covers the Rayleigh channel's cached fade path.
	rBase := renderAll(t, "E12", Config{Seed: 7, Quick: true, Trials: 3, GainCache: "on"})
	if got := renderAll(t, "E12", Config{Seed: 7, Quick: true, Trials: 3, GainCache: "off"}); got != rBase {
		t.Error("E12 tables differ between gain cache on and off")
	}
}

// TestGainCacheModeRejected: an invalid mode surfaces as an experiment
// error rather than being silently treated as a default.
func TestGainCacheModeRejected(t *testing.T) {
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	if _, err := e.Run(Config{Seed: 1, Quick: true, Trials: 2, GainCache: "banana"}); err == nil {
		t.Error("invalid gain-cache mode accepted")
	}
}

// TestParallelismInvarianceAcrossSuite spot-checks the converted
// per-experiment loops (analyzer traces, hitting games, paired embeddings,
// energy medians, capacity sweeps) at a second parallelism.
func TestParallelismInvarianceAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range []string{"E4", "E6", "E14", "E15", "E16", "E18"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := renderAll(t, id, Config{Seed: 11, Quick: true, Trials: 3, Parallelism: 1})
			par := renderAll(t, id, Config{Seed: 11, Quick: true, Trials: 3, Parallelism: 8})
			if seq != par {
				t.Errorf("%s tables differ between parallelism 1 and 8", id)
			}
		})
	}
}

// TestMetricsInvariance is the determinism regression of the observability
// layer: a representative experiment must render byte-identical tables with
// metrics recording plus an NDJSON report enabled versus all recording
// disabled. Instrumentation observes runs off the simulated-randomness path
// (DESIGN.md §8), so turning it on or off must never leak into results.
func TestMetricsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	cfg := Config{Seed: 42, Quick: true, Trials: 6}

	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(true) })
	withMetrics := renderAll(t, "E1", cfg)
	// Export a report mid-comparison, as a CLI -metrics run would.
	path := filepath.Join(t.TempDir(), "metrics.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Default.EmitTo(obs.NewSink(f)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty metrics report")
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("metrics line %d %q: %v", i+1, line, err)
		}
	}

	obs.SetEnabled(false)
	withoutMetrics := renderAll(t, "E1", cfg)
	obs.SetEnabled(true)

	if withMetrics != withoutMetrics {
		t.Error("E1 tables differ between metrics recording enabled and disabled")
	}
}
