package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := All()
	if len(exps) != 18 {
		t.Fatalf("registered %d experiments, want 18", len(exps))
	}
	for i, e := range exps {
		if want := i + 1; expNum(e.ID) != want {
			t.Errorf("position %d has ID %s, want E%d", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if e, ok := ByID("E3"); !ok || e.ID != "E3" {
		t.Errorf("ByID(E3) = %+v, %v", e, ok)
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found")
	}
}

func TestConfigTrials(t *testing.T) {
	if got := (Config{}).trials(40, 8); got != 40 {
		t.Errorf("default trials = %d, want 40", got)
	}
	if got := (Config{Quick: true}).trials(40, 8); got != 8 {
		t.Errorf("quick trials = %d, want 8", got)
	}
	if got := (Config{Trials: 3, Quick: true}).trials(40, 8); got != 3 {
		t.Errorf("explicit trials = %d, want 3", got)
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks basic table well-formedness. This is the harness's integration
// test; it is the slowest test in the repository.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tab.Title)
				}
				if len(tab.Columns) == 0 {
					t.Errorf("%s: table %q has no columns", e.ID, tab.Title)
				}
				if !strings.Contains(tab.Title, e.ID) {
					t.Errorf("%s: table title %q does not carry the experiment id", e.ID, tab.Title)
				}
			}
		})
	}
}

// TestExperimentDeterminism: the same seed must reproduce identical tables.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	e, ok := ByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	render := func() string {
		tables, err := e.Run(Config{Seed: 42, Quick: true, Trials: 4})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tab := range tables {
			b.WriteString(tab.Text())
		}
		return b.String()
	}
	if render() != render() {
		t.Error("E1 not deterministic for a fixed seed")
	}
}

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	p.Power = 1
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if p.Alpha <= 2 {
		t.Errorf("alpha = %v violates the model's α > 2", p.Alpha)
	}
}
