package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"

	"fadingcr/internal/runner"
)

// ShardScope is the trial-loop interception point of the distributed
// sharding protocol (internal/shard). Experiments funnel every Monte Carlo
// loop through runTrials; with Config.Shard set, each loop is assigned a
// sequential loop index (experiments run their loops in a deterministic
// order, so worker and assembler enumerate identical loop sequences) and
// handled in one of two modes:
//
//   - Worker mode (Worker set): only the shard's contiguous slice
//     [lo, hi) = runner.ShardRange(total, Count, Index) of the loop's
//     global trial range executes. Trial functions receive *global* trial
//     indices, so the runner.TrialSeeds contract makes every executed
//     trial identical to its unsharded counterpart. The executed values
//     are JSON-encoded (losslessly: encoding/json round-trips float64
//     exactly) and handed to Worker along with an exact summary; the
//     loop then returns a full-length slice padded with a donor value so
//     the experiment's post-loop aggregation code runs without crashing —
//     worker-mode tables are garbage and must be discarded.
//
//   - Assemble mode (Values set): no trials execute. Each loop's complete
//     value set, reassembled from all shards in global trial order, is
//     decoded back into the loop's value type, so the experiment's
//     aggregation and rendering produce bytes identical to an unsharded
//     run.
//
// A ShardScope is single-goroutine (loops run sequentially within a run)
// and must not be shared between concurrent runs.
type ShardScope struct {
	// Index and Count identify the shard in worker mode: Index ∈ [0, Count).
	Index, Count int
	// Worker receives each executed loop's record in worker mode.
	Worker func(LoopRecord) error
	// Values supplies each loop's complete reassembled value set in
	// assemble mode. Exactly one of Worker and Values is set.
	Values func(loop, total int) ([]json.RawMessage, error)

	loop int
}

// nextLoop assigns the next sequential loop index.
func (s *ShardScope) nextLoop() int {
	l := s.loop
	s.loop++
	return l
}

// Loops returns how many trial loops have passed through the scope.
func (s *ShardScope) Loops() int { return s.loop }

// LoopRecord is one trial loop's contribution to a shard result.
type LoopRecord struct {
	// Loop is the run-wide sequential loop index.
	Loop int
	// Total is the loop's global trial count.
	Total int
	// Lo and Hi delimit the shard's executed global trial range [Lo, Hi).
	Lo, Hi int
	// Values holds the executed trials' JSON-encoded values, local index
	// local holding global trial Lo+local.
	Values []json.RawMessage
	// Summary carries exact summary statistics when the loop's value type
	// supports them (trial outcomes and plain numeric loops), nil
	// otherwise.
	Summary *LoopSummary
}

// LoopSummary is a mergeable summary of a loop's executed trials: the
// runner aggregator state plus a solved count and a log₂ histogram of the
// observed magnitudes. Histogram, counts, min and max merge exactly
// (integer addition / order comparisons), so the merged values are
// identical at every shard count; mean and M2 merge by Chan et al. and are
// shard-count-dependent in their last bits, which is why the shard wire
// hash covers only the exact fields.
type LoopSummary struct {
	Agg    runner.AggregatorState `json:"agg"`
	Solved int                    `json:"solved"`
	Hist   [32]int64              `json:"hist"`
}

// observe folds one observation into the summary.
func (s *LoopSummary) observe(agg *runner.Aggregator, x float64, solved bool) {
	agg.Observe(x, solved)
	if solved {
		s.Solved++
	}
	b := 0
	if x >= 1 {
		if x > math.MaxInt64 {
			b = len(s.Hist) - 1
		} else {
			b = bits.Len64(uint64(x))
		}
		if b >= len(s.Hist) {
			b = len(s.Hist) - 1
		}
	}
	s.Hist[b]++
}

// Merge folds another loop summary into this one (shard reassembly calls it
// in ascending shard order; empty shards merge as no-ops).
func (s *LoopSummary) Merge(o *LoopSummary) {
	a := runner.AggregatorFromState(s.Agg)
	a.Merge(runner.AggregatorFromState(o.Agg))
	s.Agg = a.State()
	s.Solved += o.Solved
	for i := range s.Hist {
		s.Hist[i] += o.Hist[i]
	}
}

// summarizeLoop builds the loop summary for value types with a canonical
// numeric reading: trialOutcome (rounds, solved), float64 and int (value,
// always solved). Other loop types carry values only.
func summarizeLoop[T any](values []T) *LoopSummary {
	var zero T
	switch any(zero).(type) {
	case trialOutcome, float64, int:
	default:
		return nil
	}
	s := &LoopSummary{}
	agg := &runner.Aggregator{}
	for _, v := range values {
		switch o := any(v).(type) {
		case trialOutcome:
			s.observe(agg, o.Rounds, o.Solved)
		case float64:
			s.observe(agg, o, true)
		case int:
			s.observe(agg, float64(o), true)
		}
	}
	s.Agg = agg.State()
	return s
}

// runTrialsSharded is runTrials with Config.Shard set; see ShardScope.
func runTrialsSharded[T any](cfg Config, trials int, fn func(trial int) (T, error)) ([]T, error) {
	sc := cfg.Shard
	loop := sc.nextLoop()
	if sc.Values != nil {
		raws, err := sc.Values(loop, trials)
		if err != nil {
			return nil, fmt.Errorf("loop %d: %w", loop, err)
		}
		if len(raws) != trials {
			return nil, fmt.Errorf("loop %d: %d reassembled values for %d trials", loop, len(raws), trials)
		}
		out := make([]T, trials)
		for i, raw := range raws {
			if err := json.Unmarshal(raw, &out[i]); err != nil {
				return nil, fmt.Errorf("loop %d trial %d: decode shard value: %w", loop, i, err)
			}
		}
		return out, nil
	}
	lo, hi := runner.ShardRange(trials, sc.Count, sc.Index)
	if cfg.Trace != nil {
		// Tag the capture with the loop index before any of the loop's
		// commits: loops reuse trial indices (and hence trace file names),
		// and the loop tag is what lets trace federation reproduce the
		// unsharded directory's last-loop-wins overwrite order.
		cfg.Trace.SetLoop(loop)
	}
	res, err := runner.Run(cfg.ctx(), hi-lo,
		func(_ context.Context, local int) (T, error) { return fn(lo + local) },
		runner.Options[T]{Parallelism: cfg.Parallelism, Progress: cfg.Progress})
	if err != nil {
		return nil, err
	}
	if err := res.FirstErr(); err != nil {
		return nil, err
	}
	raws := make([]json.RawMessage, len(res.Values))
	for i, v := range res.Values {
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("loop %d trial %d: encode shard value: %w", loop, lo+i, err)
		}
		raws[i] = raw
	}
	rec := LoopRecord{Loop: loop, Total: trials, Lo: lo, Hi: hi, Values: raws, Summary: summarizeLoop(res.Values)}
	if err := sc.Worker(rec); err != nil {
		return nil, fmt.Errorf("loop %d: %w", loop, err)
	}
	// The experiment's post-loop code still runs (its tables are discarded
	// in worker mode) and may index or fold the slice, so return the full
	// length with non-owned indices padded by a donor value.
	out := make([]T, trials)
	if trials > 0 {
		donor, err := donorValue(res.Values, fn)
		if err != nil {
			return nil, fmt.Errorf("loop %d donor trial: %w", loop, err)
		}
		for i := range out {
			out[i] = donor
		}
		copy(out[lo:hi], res.Values)
	}
	return out, nil
}

// donorValue picks the padding value of a worker-mode loop: the shard's
// first executed value, or — for a shard whose range of this loop is
// empty — one freshly executed trial 0 (the cost only arises when the
// shard count exceeds a loop's trial count).
func donorValue[T any](executed []T, fn func(trial int) (T, error)) (T, error) {
	if len(executed) > 0 {
		return executed[0], nil
	}
	return fn(0)
}
