package experiments

import (
	"fmt"
	"sort"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/radio"
	"fadingcr/internal/runner"
	"fadingcr/internal/sim"
	"fadingcr/internal/table"
)

// e16 — energy accounting: total transmissions until the solving round.
// Rounds are the paper's complexity measure; for battery-powered radios the
// number of transmissions is the natural secondary cost. The knock-out
// cascade deactivates nodes geometrically, so the paper's algorithm spends
// Θ(p·n) transmissions total (a geometric series over the shrinking active
// set) — linear in n like every broadcast-based strategy, with a constant
// governed by p.
func e16() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Energy: total transmissions until the solving round",
		Claim: "The knock-out cascade keeps total transmissions Θ(n) (≈ p·n·Σγ^t); per-capita energy is O(1) transmissions, versus Θ(log n)-ish per capita for the oblivious radio strategies.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 64, 256, 1024}
			if cfg.Quick {
				ns = []int{16, 64}
			}
			trials := cfg.trials(30, 8)

			type entry struct {
				label   string
				builder func(n int) sim.Builder
				channel string
			}
			entries := []entry{
				{"fixed-probability / SINR", func(int) sim.Builder { return core.FixedProbability{} }, "sinr"},
				{"probability-sweep / radio", func(int) sim.Builder { return baselines.ProbabilitySweep{} }, "radio"},
				{"decay(N=n) / radio", func(n int) sim.Builder { return baselines.Decay{N: n} }, "radio"},
				{"cd-halving / radio+CD", func(int) sim.Builder { return baselines.CollisionDetectHalving{} }, "radio+cd"},
			}

			total := table.New("E16a — median total transmissions to solve",
				append([]string{"algorithm / channel"}, nCols(ns)...)...)
			perCap := table.New("E16b — median transmissions per node (energy per capita)",
				append([]string{"algorithm / channel"}, nCols(ns)...)...)
			for _, en := range entries {
				rowTotal := []string{en.label}
				rowPer := []string{en.label}
				for _, n := range ns {
					med, err := e16Median(cfg, trials, n, en.builder(n), en.channel)
					if err != nil {
						return nil, fmt.Errorf("E16 %s n=%d: %w", en.label, n, err)
					}
					rowTotal = append(rowTotal, table.Float(med, 0))
					rowPer = append(rowPer, table.Float(med/float64(n), 2))
				}
				total.AddRow(rowTotal...)
				perCap.AddRow(rowPer...)
			}
			return []*table.Table{total, perCap}, nil
		},
	}
}

// e16Median returns the median Transmissions over trials for one cell.
func e16Median(cfg Config, trials, n int, builder sim.Builder, channel string) (float64, error) {
	energies, err := runTrials(cfg, trials, func(trial int) (float64, error) {
		dseed, pseed := runner.TrialSeeds(cfg.Seed, trial)
		var (
			ch  sim.Channel
			err error
		)
		simCfg := sim.Config{MaxRounds: 40 * e1Budget(n)}
		switch channel {
		case "sinr":
			var d *geom.Deployment
			d, err = geom.UniformDisk(dseed, n)
			if err == nil {
				ch, err = channelFor(cfg, DefaultParams(), d)
			}
		case "radio":
			ch, err = radio.New(n, false)
		case "radio+cd":
			simCfg.CollisionDetection = true
			ch, err = radio.New(n, true)
		default:
			return 0, fmt.Errorf("unknown channel %q", channel)
		}
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(ch, builder, pseed, simCfg)
		if err != nil {
			return 0, err
		}
		if !res.Solved {
			return 0, fmt.Errorf("trial %d unsolved", trial)
		}
		return float64(res.Transmissions), nil
	})
	if err != nil {
		return 0, err
	}
	sort.Float64s(energies)
	return energies[len(energies)/2], nil
}
