package experiments

import (
	"strings"
	"testing"
)

func TestConfigFromSpecSelectsAll(t *testing.T) {
	for _, ids := range []string{"", "all"} {
		exps, cfg, err := ConfigFromSpec(Spec{IDs: ids, Seed: 3})
		if err != nil {
			t.Fatalf("IDs=%q: %v", ids, err)
		}
		if len(exps) != len(All()) {
			t.Errorf("IDs=%q selected %d of %d experiments", ids, len(exps), len(All()))
		}
		if cfg.Seed != 3 {
			t.Errorf("seed not threaded: %d", cfg.Seed)
		}
	}
}

func TestConfigFromSpecSelectsList(t *testing.T) {
	exps, _, err := ConfigFromSpec(Spec{IDs: "E5, E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "E5" || exps[1].ID != "E1" {
		t.Errorf("selection wrong: %+v", exps)
	}
}

func TestConfigFromSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown id", Spec{IDs: "E999"}, "unknown experiment id"},
		{"empty id in list", Spec{IDs: "E1,,E2"}, "unknown experiment id"},
		{"bad gaincache", Spec{IDs: "E1", GainCache: "sometimes"}, "gain-cache"},
		{"negative trials", Spec{IDs: "E1", Trials: -1}, "trials"},
	}
	for _, tc := range cases {
		if _, _, err := ConfigFromSpec(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestConfigFromSpecMatchesDirectConfig(t *testing.T) {
	// The spec path must produce the same Config a caller would build by
	// hand, so crbench's migration to it cannot change results.
	_, cfg, err := ConfigFromSpec(Spec{IDs: "E5", Seed: 9, Trials: 2, Quick: true, GainCache: "on"})
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 9, Trials: 2, Quick: true, GainCache: "on"}
	if cfg.Seed != want.Seed || cfg.Trials != want.Trials || cfg.Quick != want.Quick || cfg.GainCache != want.GainCache {
		t.Errorf("Config = %+v, want %+v", cfg, want)
	}
}
