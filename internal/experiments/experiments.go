// Package experiments is the reproduction harness: one registered
// experiment per table/figure of the experiment index in DESIGN.md §6. Each
// experiment validates one quantitative claim of the paper (the paper itself
// is a theory paper with no empirical section, so the targets are its
// theorems and lemmas) and renders its results as tables.
package experiments

import (
	"fmt"
	"sort"

	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// Config controls the scale of an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed uint64
	// Trials is the number of trials per data point; 0 selects the
	// experiment's default.
	Trials int
	// Quick shrinks sweeps for fast smoke runs (tests, CI).
	Quick bool
}

func (c Config) trials(def, quickDef int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quickDef
	}
	return def
}

// Experiment is a registered reproduction target.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md §6, e.g. "E1".
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper statement the experiment validates.
	Claim string
	// Run executes the experiment and returns its result tables.
	Run func(cfg Config) ([]*table.Table, error)
}

// All returns every registered experiment, ordered by ID.
func All() []Experiment {
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(),
		e12(), e13(), e14(), e15(), e16(), e17(), e18(),
	}
	sort.Slice(exps, func(i, j int) bool {
		// E1 < E2 < … < E10 < E11: compare numerically.
		return expNum(exps[i].ID) < expNum(exps[j].ID)
	})
	return exps
}

func expNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// DefaultParams returns the repository-standard physical-layer constants:
// α = 3 (super-quadratic fading per the model's α > 2), β = 1.5, N = 1, with
// power derived per deployment by channelFor.
func DefaultParams() sinr.Params {
	return sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
}

// channelFor builds a single-hop SINR channel over the deployment with the
// given parameters, deriving the minimum feasible power when p.Power is 0.
func channelFor(p sinr.Params, d *geom.Deployment) (*sinr.Channel, error) {
	if p.Power == 0 {
		p.Power = sinr.MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, sinr.DefaultSingleHopMargin)
	}
	return sinr.New(p, d.Points)
}

// trialRounds runs `trials` independent executions, each on a fresh
// deployment from deploy and a fresh protocol seed, and returns the solving
// round of each (or the budget for unsolved runs, counted in unsolved).
func trialRounds(
	cfg Config,
	trials int,
	deploy func(seed uint64) (*geom.Deployment, error),
	channel func(d *geom.Deployment) (sim.Channel, error),
	builder sim.Builder,
	simCfg sim.Config,
) (rounds []float64, unsolved int, err error) {
	rounds = make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		dseed := xrand.Split(cfg.Seed, uint64(trial)*2)
		pseed := xrand.Split(cfg.Seed, uint64(trial)*2+1)
		d, err := deploy(dseed)
		if err != nil {
			return nil, 0, fmt.Errorf("trial %d deployment: %w", trial, err)
		}
		ch, err := channel(d)
		if err != nil {
			return nil, 0, fmt.Errorf("trial %d channel: %w", trial, err)
		}
		res, err := sim.Run(ch, builder, pseed, simCfg)
		if err != nil {
			return nil, 0, fmt.Errorf("trial %d run: %w", trial, err)
		}
		if !res.Solved {
			unsolved++
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	return rounds, unsolved, nil
}

// sinrTrialRounds is trialRounds specialised to the default SINR channel.
func sinrTrialRounds(cfg Config, trials int, n int, builder sim.Builder, maxRounds int) ([]float64, int, error) {
	return trialRounds(cfg, trials,
		func(seed uint64) (*geom.Deployment, error) { return geom.UniformDisk(seed, n) },
		func(d *geom.Deployment) (sim.Channel, error) { return channelFor(DefaultParams(), d) },
		builder,
		sim.Config{MaxRounds: maxRounds},
	)
}
