// Package experiments is the reproduction harness: one registered
// experiment per table/figure of the experiment index in DESIGN.md §6. Each
// experiment validates one quantitative claim of the paper (the paper itself
// is a theory paper with no empirical section, so the targets are its
// theorems and lemmas) and renders its results as tables.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"fadingcr/internal/geom"
	"fadingcr/internal/radio"
	"fadingcr/internal/runner"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/table"
	"fadingcr/internal/trace"
)

// Config controls the scale of an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed uint64
	// Trials is the number of trials per data point; 0 selects the
	// experiment's default.
	Trials int
	// Quick shrinks sweeps for fast smoke runs (tests, CI).
	Quick bool
	// Parallelism is the number of worker goroutines trial loops run
	// across; 0 selects runtime.GOMAXPROCS(0). Results are bit-identical
	// at every parallelism: trials derive their seeds from (Seed, trial
	// index) alone and are reassembled in trial order.
	Parallelism int
	// Context, when non-nil, cancels in-flight trial loops (deadline or
	// interrupt); a canceled experiment returns the context's error.
	Context context.Context
	// GainCache selects the SINR delivery engine for every channel the
	// experiment builds: "" or "auto" precomputes pairwise gains up to the
	// default memory cap, "on" caches regardless of size, "off" forces
	// on-the-fly computation. Results are bit-identical in every mode.
	GainCache string
	// FarFieldEps, when > 0, enables the ε far-field pruning engine on
	// every SINR channel the experiment builds: per listener, transmitters
	// whose aggregate contribution is provably ≤ ε·(noise + near
	// interference) are skipped. Unlike every other knob this one is
	// approximate — receptions may differ from the exact engine within the
	// documented one-sided bound (DESIGN.md §8) — so it is part of the
	// result identity and must hash differently in the serve layer.
	FarFieldEps float64
	// SINRParallel, when ≥ 2, runs each Deliver round across that many
	// intra-round workers over a fixed-shape listener-tile partition.
	// Deterministic channels are byte-identical at any worker count; the
	// Rayleigh channel switches to the per-listener fade-substream engine
	// (also worker-count independent, but a different stream from the
	// sequential default, so the option is part of the result identity for
	// faded runs).
	SINRParallel int
	// Trace, when non-nil, captures structured per-trial event traces of
	// the experiment's trial loops under the capture's retention policy.
	// Tracing is observational: experiment results and rendered tables are
	// byte-identical with it on or off, at any parallelism.
	Trace *trace.Capture
	// Progress, when non-nil, observes every trial loop the experiment
	// runs, after each completed trial (see runner.Options.Progress; it
	// runs on the collector goroutine and must not block for long). An
	// experiment may run several loops, so Done restarts from zero at
	// each loop boundary. Purely observational: results are byte-identical
	// with it set or nil.
	Progress func(runner.Progress)
	// Shard, when non-nil, reroutes every trial loop through the
	// distributed-sharding protocol (internal/shard): in worker mode only
	// the shard's contiguous slice of each loop's global trial range is
	// executed, and in assemble mode trial values are decoded from merged
	// shard results instead of being computed. See ShardScope.
	Shard *ShardScope
}

// sinrOptions translates the engine knobs into channel options.
func (c Config) sinrOptions() ([]sinr.Option, error) {
	return sinr.EngineOptions(c.GainCache, c.FarFieldEps, c.SINRParallel)
}

// ctx returns the configured context, defaulting to context.Background.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// runTrials executes fn for every trial index on the shared Monte Carlo
// engine with the Config's parallelism and context, failing like the
// sequential loops it replaced: the first per-trial error (in trial
// order) aborts the experiment.
func runTrials[T any](cfg Config, trials int, fn func(trial int) (T, error)) ([]T, error) {
	if cfg.Shard != nil {
		return runTrialsSharded(cfg, trials, fn)
	}
	res, err := runner.Run(cfg.ctx(), trials,
		func(_ context.Context, trial int) (T, error) { return fn(trial) },
		runner.Options[T]{Parallelism: cfg.Parallelism, Progress: cfg.Progress})
	if err != nil {
		return nil, err
	}
	if err := res.FirstErr(); err != nil {
		return nil, err
	}
	return res.Values, nil
}

func (c Config) trials(def, quickDef int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quickDef
	}
	return def
}

// Experiment is a registered reproduction target.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md §6, e.g. "E1".
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper statement the experiment validates.
	Claim string
	// Run executes the experiment and returns its result tables.
	Run func(cfg Config) ([]*table.Table, error)
}

// All returns every registered experiment, ordered by ID.
func All() []Experiment {
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(),
		e12(), e13(), e14(), e15(), e16(), e17(), e18(),
	}
	sort.Slice(exps, func(i, j int) bool {
		// E1 < E2 < … < E10 < E11: compare numerically.
		return expNum(exps[i].ID) < expNum(exps[j].ID)
	})
	return exps
}

func expNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// DefaultParams returns the repository-standard physical-layer constants
// (sinr.DefaultParams), with power derived per deployment by channelFor.
func DefaultParams() sinr.Params {
	return sinr.DefaultParams()
}

// channelFor builds a single-hop SINR channel over the deployment with the
// given parameters, deriving the minimum feasible power when p.Power is 0.
// It is sinr.ChannelFor, the one shared definition of the derivation, with
// the Config's gain-cache mode applied.
func channelFor(cfg Config, p sinr.Params, d *geom.Deployment) (*sinr.Channel, error) {
	opts, err := cfg.sinrOptions()
	if err != nil {
		return nil, err
	}
	return sinr.ChannelFor(p, d, opts...)
}

// trialOutcome is one execution's contribution to a trial loop. The fields
// are exported with json tags because sharded runs ship trial values across
// the process boundary as JSON (encoding/json round-trips float64 exactly,
// so the wire form is lossless).
type trialOutcome struct {
	Rounds float64 `json:"rounds"`
	Solved bool    `json:"solved"`
}

// channelName maps a channel value to its trace header name.
func channelName(ch sim.Channel) string {
	switch ch.(type) {
	case *sinr.Channel:
		return "sinr"
	case *sinr.RayleighChannel:
		return "rayleigh"
	case *radio.Channel:
		return "radio"
	default:
		return ""
	}
}

// runTrialOutcomes is the common body of trialRounds and trialStats: one
// simulator execution per trial on a fresh deployment, seeded by the
// runner.TrialSeeds contract. Every trial builds its own deployment and
// channel, so Config.Trace capture composes with full parallelism: a
// sampled trial's recorder observes only that trial's channel, and each
// trace file is a pure function of (Seed, trial).
func runTrialOutcomes(
	cfg Config,
	trials int,
	deploy func(seed uint64) (*geom.Deployment, error),
	channel func(d *geom.Deployment) (sim.Channel, error),
	builder sim.Builder,
	simCfg sim.Config,
) ([]trialOutcome, error) {
	return runTrials(cfg, trials, func(trial int) (trialOutcome, error) {
		dseed, pseed := runner.TrialSeeds(cfg.Seed, trial)
		d, err := deploy(dseed)
		if err != nil {
			return trialOutcome{}, fmt.Errorf("trial %d deployment: %w", trial, err)
		}
		ch, err := channel(d)
		if err != nil {
			return trialOutcome{}, fmt.Errorf("trial %d channel: %w", trial, err)
		}
		trialCfg := simCfg // copy: trials run concurrently
		var rec *trace.Recorder
		if cfg.Trace != nil && trialCfg.Tracer == nil {
			if rec = cfg.Trace.Recorder(trial); rec != nil {
				rec.Header.N = d.N()
				rec.Header.Seed = pseed
				rec.Header.DeploySeed = dseed
				rec.Header.Algo = builder.Name()
				rec.Header.Channel = channelName(ch)
				rec.Header.MaxRounds = trialCfg.MaxRounds
				rec.Header.Points = append(rec.Header.Points[:0], d.Points...)
				trialCfg.Tracer = rec
				trace.Attach(rec, ch)
			}
		}
		res, err := sim.Run(ch, builder, pseed, trialCfg)
		if err != nil {
			return trialOutcome{}, fmt.Errorf("trial %d run: %w", trial, err)
		}
		if rec != nil {
			if err := cfg.Trace.Commit(trial, rec, res.Solved); err != nil {
				return trialOutcome{}, fmt.Errorf("trial %d trace: %w", trial, err)
			}
		}
		return trialOutcome{Rounds: float64(res.Rounds), Solved: res.Solved}, nil
	})
}

// trialRounds runs `trials` independent executions, each on a fresh
// deployment from deploy and a fresh protocol seed, and returns the solving
// round of each (or the budget for unsolved runs, counted in unsolved).
func trialRounds(
	cfg Config,
	trials int,
	deploy func(seed uint64) (*geom.Deployment, error),
	channel func(d *geom.Deployment) (sim.Channel, error),
	builder sim.Builder,
	simCfg sim.Config,
) (rounds []float64, unsolved int, err error) {
	outcomes, err := runTrialOutcomes(cfg, trials, deploy, channel, builder, simCfg)
	if err != nil {
		return nil, 0, err
	}
	rounds = make([]float64, 0, trials)
	for _, o := range outcomes {
		if !o.Solved {
			unsolved++
		}
		rounds = append(rounds, o.Rounds)
	}
	return rounds, unsolved, nil
}

// trialStats is trialRounds for callers that only need summary statistics:
// it folds the outcomes (in trial order, so the result is independent of
// parallelism) into an online aggregator instead of handing back a sample
// to buffer and sort.
func trialStats(
	cfg Config,
	trials int,
	deploy func(seed uint64) (*geom.Deployment, error),
	channel func(d *geom.Deployment) (sim.Channel, error),
	builder sim.Builder,
	simCfg sim.Config,
) (*runner.Aggregator, error) {
	outcomes, err := runTrialOutcomes(cfg, trials, deploy, channel, builder, simCfg)
	if err != nil {
		return nil, err
	}
	agg := &runner.Aggregator{}
	for _, o := range outcomes {
		agg.Observe(o.Rounds, o.Solved)
	}
	return agg, nil
}

// sinrTrialRounds is trialRounds specialised to the default SINR channel.
func sinrTrialRounds(cfg Config, trials int, n int, builder sim.Builder, maxRounds int) ([]float64, int, error) {
	return trialRounds(cfg, trials,
		func(seed uint64) (*geom.Deployment, error) { return geom.UniformDisk(seed, n) },
		func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, DefaultParams(), d) },
		builder,
		sim.Config{MaxRounds: maxRounds},
	)
}

// sinrTrialStats is sinrTrialRounds for summary-only callers (e.g. E7's
// failure counting): same executions, online aggregation.
func sinrTrialStats(cfg Config, trials int, n int, builder sim.Builder, maxRounds int) (*runner.Aggregator, error) {
	return trialStats(cfg, trials,
		func(seed uint64) (*geom.Deployment, error) { return geom.UniformDisk(seed, n) },
		func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, DefaultParams(), d) },
		builder,
		sim.Config{MaxRounds: maxRounds},
	)
}
