package experiments

import (
	"fmt"
	"math"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/hitting"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// e14 — the lower bound against the *adversarial* referee: Lemma 13 bounds
// players against a worst-case target, not an average one. Every player here
// is oblivious (the game's only feedback is content-free), so the optimal
// adversary is computable exactly: the target pair surviving the longest
// prefix of the player's proposal sequence.
func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Adversarial hitting-game values (worst-case referee)",
		Claim: "Against the optimal (worst-case) target choice, every oblivious player — including those derived from CR algorithms via Lemma 14 — needs Θ(log k) rounds.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ks := []int{8, 16, 32, 64, 128, 256}
			if cfg.Quick {
				ks = []int{8, 32}
			}
			trials := cfg.trials(20, 5)

			players := []struct {
				label string
				make  func(k int, seed uint64) (hitting.Player, error)
			}{
				{"half-density (optimal)", func(k int, seed uint64) (hitting.Player, error) {
					return hitting.NewFixedDensityPlayer(k, 0.5, seed)
				}},
				{"fixed-probability CR", func(k int, seed uint64) (hitting.Player, error) {
					return hitting.NewSimulationPlayer(core.FixedProbability{}, k, seed)
				}},
				{"probability-sweep CR", func(k int, seed uint64) (hitting.Player, error) {
					return hitting.NewSimulationPlayer(baselines.ProbabilitySweep{}, k, seed)
				}},
			}

			result := table.New("E14 — mean adversarial value (rounds the worst-case target survives)",
				append([]string{"player"}, kCols(ks)...)...)
			fits := table.New("E14 — linear fits of the adversarial value vs log₂(k)", "player", "fit")
			for _, pl := range players {
				row := []string{pl.label}
				var values, logs []float64
				for _, k := range ks {
					vals, err := runTrials(cfg, trials, func(trial int) (float64, error) {
						p, err := pl.make(k, xrand.Split(cfg.Seed, uint64(trial)))
						if err != nil {
							return 0, err
						}
						wc, err := hitting.ObliviousWorstCase(p, k, 5000)
						if err != nil {
							return 0, fmt.Errorf("E14 %s k=%d: %w", pl.label, k, err)
						}
						if wc.Survived {
							return 0, fmt.Errorf("E14 %s k=%d trial %d: target survived the budget", pl.label, k, trial)
						}
						return float64(wc.Rounds), nil
					})
					if err != nil {
						return nil, err
					}
					// Fold in trial order: identical float arithmetic to
					// the sequential loop this replaced.
					total := 0.0
					for _, v := range vals {
						total += v
					}
					mean := total / float64(trials)
					values = append(values, mean)
					logs = append(logs, math.Log2(float64(k)))
					row = append(row, table.Float(mean, 1))
				}
				result.AddRow(row...)
				fit, err := stats.LinearFit(logs, values)
				if err != nil {
					return nil, err
				}
				fits.AddRow(pl.label, fit.String())
			}
			return []*table.Table{result, fits}, nil
		},
	}
}
