package experiments

import (
	"fmt"
	"sort"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/hitting"
	"fadingcr/internal/sim"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// e15 — partial activation, the model's actual problem statement ("an
// unknown subset of nodes in V are activated"), plus the Theorem 12
// embedding: activating exactly two far-apart nodes of a large network is
// the two-player game — fading gives no advantage there, which is what lets
// the lower bound transfer to general networks.
func e15() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Partial activation: rounds depend on the activated subset, and m=2 embeds the two-player game",
		Claim: "Rounds scale with the activated count m (O(log m + log R)), not the network size n; with m = 2 the execution is distribution-identical to two-player contention resolution (the Theorem 12 embedding).",
		Run: func(cfg Config) ([]*table.Table, error) {
			const n = 1024
			ms := []int{2, 8, 64, 512, 1024}
			if cfg.Quick {
				ms = []int{2, 16, 128}
			}
			trials := cfg.trials(30, 8)

			scale := table.New(fmt.Sprintf("E15a — rounds vs activated count m (network n=%d, uniform disk)", n),
				"m activated", "mean", "median", "p95", "unsolved")
			for _, m := range ms {
				rounds, unsolved, err := trialRounds(cfg, trials,
					func(seed uint64) (*geom.Deployment, error) {
						d, err := geom.UniformDisk(seed, n)
						if err != nil {
							return nil, err
						}
						idx, err := geom.RandomSubset(xrand.Split(seed, 1), n, m)
						if err != nil {
							return nil, err
						}
						return d.Subset(idx)
					},
					func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, DefaultParams(), d) },
					core.FixedProbability{},
					sim.Config{MaxRounds: 4 * e1Budget(n)},
				)
				if err != nil {
					return nil, fmt.Errorf("E15 m=%d: %w", m, err)
				}
				s, err := stats.Summarize(rounds)
				if err != nil {
					return nil, err
				}
				scale.AddRow(table.Int(m), table.Float(s.Mean, 1), table.Float(s.Median, 1),
					table.Float(stats.QuantileOf(rounds, 0.95), 1), table.Int(unsolved))
			}

			embed, err := e15Embedding(cfg)
			if err != nil {
				return nil, err
			}
			return []*table.Table{scale, embed}, nil
		},
	}
}

// e15Embedding compares the solve-round distribution of (a) activating
// exactly two nodes of a large fading network and (b) the abstract
// two-player game on the collision channel. With two participants the SINR
// channel cannot deliver anything before the solo broadcast (both transmit ⇒
// both are deaf; one transmits ⇒ solved), so the distributions must agree —
// the observation at the heart of the Theorem 12 reduction.
func e15Embedding(cfg Config) (*table.Table, error) {
	trials := cfg.trials(400, 60)
	// One trial produces a paired observation: the same protocol seed run
	// as (a) two activated nodes on the fading network and (b) the
	// abstract two-player game.
	type paired struct {
		Embedded float64 `json:"embedded"`
		Abstract float64 `json:"abstract"`
	}
	outcomes, err := runTrials(cfg, trials, func(trial int) (paired, error) {
		dseed := xrand.Split(cfg.Seed, uint64(trial)*3)
		d, err := geom.UniformDisk(dseed, 256)
		if err != nil {
			return paired{}, err
		}
		idx, err := geom.RandomSubset(xrand.Split(cfg.Seed, uint64(trial)*3+1), 256, 2)
		if err != nil {
			return paired{}, err
		}
		pair, err := d.Subset(idx)
		if err != nil {
			return paired{}, err
		}
		ch, err := channelFor(cfg, DefaultParams(), pair)
		if err != nil {
			return paired{}, err
		}
		pseed := xrand.Split(cfg.Seed, uint64(trial)*3+2)
		res, err := sim.Run(ch, core.FixedProbability{}, pseed, sim.Config{MaxRounds: 100000})
		if err != nil {
			return paired{}, err
		}
		if !res.Solved {
			return paired{}, fmt.Errorf("E15 embedding trial %d unsolved", trial)
		}
		two, err := hitting.PlayTwoPlayer(core.FixedProbability{}, pseed, 100000)
		if err != nil {
			return paired{}, err
		}
		if !two.Won {
			return paired{}, fmt.Errorf("E15 two-player trial %d unsolved", trial)
		}
		return paired{Embedded: float64(res.Rounds), Abstract: float64(two.Rounds)}, nil
	})
	if err != nil {
		return nil, err
	}
	var embedded, abstract []float64
	for _, o := range outcomes {
		embedded = append(embedded, o.Embedded)
		abstract = append(abstract, o.Abstract)
	}
	sort.Float64s(embedded)
	sort.Float64s(abstract)
	result := table.New("E15b — the m=2 embedding vs the abstract two-player game (same protocol seeds)",
		"execution", "mean", "median", "p95", "max")
	for _, row := range []struct {
		label string
		xs    []float64
	}{
		{"2 activated nodes in a 256-node fading network", embedded},
		{"abstract two-player game (collision channel)", abstract},
	} {
		s, err := stats.Summarize(row.xs)
		if err != nil {
			return nil, err
		}
		result.AddRow(row.label, table.Float(s.Mean, 2), table.Float(s.Median, 1),
			table.Float(stats.Quantile(row.xs, 0.95), 1), table.Float(s.Max, 0))
	}
	d, err := stats.KolmogorovSmirnov(embedded, abstract)
	if err != nil {
		return nil, err
	}
	result.AddRow("Kolmogorov–Smirnov D (0 = identical)", table.Float(d, 4))
	return result, nil
}
