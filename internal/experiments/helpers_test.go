package experiments

import (
	"math"
	"strings"
	"testing"

	"fadingcr/internal/core"
	"fadingcr/internal/sim"
)

func TestE1Budget(t *testing.T) {
	if got := e1Budget(16); got != 400+100*4 {
		t.Errorf("e1Budget(16) = %d, want 800", got)
	}
	if got := e1Budget(1024); got != 400+100*10 {
		t.Errorf("e1Budget(1024) = %d, want 1400", got)
	}
	// Generous: always far above the observed medians (≈ 2·log₂ n).
	for _, n := range []int{16, 256, 4096} {
		if float64(e1Budget(n)) < 20*math.Log2(float64(n)) {
			t.Errorf("budget for n=%d too tight", n)
		}
	}
}

func TestIlog2(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ilog2(n); got != want {
			t.Errorf("ilog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestColumnHelpers(t *testing.T) {
	if got := nCols([]int{4, 8}); got[0] != "n=4" || got[1] != "n=8" {
		t.Errorf("nCols = %v", got)
	}
	if got := kCols([]int{16}); got[0] != "k=16" {
		t.Errorf("kCols = %v", got)
	}
	if got := cCols([]int{2, 4}); got[0] != "C=2" || got[1] != "C=4" {
		t.Errorf("cCols = %v", got)
	}
}

func TestWhpQuantile(t *testing.T) {
	rounds := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// k = 2 → quantile 0.5 → 5.5 with interpolation.
	if got := whpQuantile(rounds, 2); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("whpQuantile(k=2) = %v, want 5.5", got)
	}
	// Huge k → (essentially) the maximum, up to interpolation epsilon.
	if got := whpQuantile(rounds, 1<<30); got < 10-1e-6 {
		t.Errorf("whpQuantile(k=2^30) = %v, want ≈ 10", got)
	}
}

func TestComparisonMedianUnknownChannel(t *testing.T) {
	entry := comparisonEntry{
		label:   "broken",
		builder: func(int) sim.Builder { return core.FixedProbability{} },
		channel: "carrier-pigeon",
		budget:  func(int) int { return 10 },
	}
	if _, _, err := comparisonMedian(Config{Seed: 1}, 2, 4, entry); err == nil {
		t.Error("unknown channel regime accepted")
	}
}

func TestFitEnvelopeSegment(t *testing.T) {
	// A suffix-max history that exactly follows q with 1 round per step
	// (n = 8, one class, γ_slow = 0.8 default): q = 8, 6.4, 5.1, … — sizes
	// 8, 6, 5 fit at L = 1.
	suffix := [][]int{{8}, {6}, {5}}
	if got := fitEnvelopeSegment(suffix, 3); got != 1 {
		t.Errorf("fast decay: L = %d, want 1", got)
	}
	// A stubborn history that never decays needs the maximal L: sizes stay
	// at the initial value while q falls below it at step 1.
	stubborn := [][]int{{8}, {8}, {8}, {8}}
	if got := fitEnvelopeSegment(stubborn, 4); got <= 1 {
		t.Errorf("stubborn history: L = %d, want > 1", got)
	}
	if got := fitEnvelopeSegment(nil, 0); got != 1 {
		t.Errorf("empty history: L = %d, want 1", got)
	}
}

func TestExperimentClaimsMentionTheRightConcepts(t *testing.T) {
	// Light-weight registry hygiene: each experiment's claim names the
	// concept it validates.
	keywords := map[string][]string{
		"E1":  {"log n"},
		"E2":  {"log R"},
		"E3":  {"radio"},
		"E4":  {"q_t"},
		"E5":  {"good"},
		"E6":  {"hitting"},
		"E7":  {"1/n"},
		"E8":  {"collision"},
		"E9":  {"α"},
		"E10": {"spatial reuse"},
		"E11": {"two-player"},
		"E12": {"Rayleigh"},
		"E13": {"Interleaving"},
		"E14": {"worst-case"},
		"E15": {"two-player"},
		"E16": {"transmissions"},
		"E17": {"knock-out"},
		"E18": {"capacity"},
	}
	for id, words := range keywords {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("%s missing", id)
			continue
		}
		for _, w := range words {
			if !strings.Contains(strings.ToLower(e.Claim), strings.ToLower(w)) {
				t.Errorf("%s claim %q does not mention %q", id, e.Claim, w)
			}
		}
	}
}
