package experiments

import (
	"fmt"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
)

// e12 — extension: robustness to stochastic (Rayleigh) fading. The paper's
// model is deterministic geometric fading; real channels add multipath
// fading on top. The algorithm has no tuning that could overfit the
// deterministic model, so its behaviour should carry over.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Extension: robustness under Rayleigh fading",
		Claim: "The algorithm's Θ(log n) behaviour survives per-round stochastic (Rayleigh) signal fading — it does not depend on the deterministic fading model.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 64, 256, 1024}
			if cfg.Quick {
				ns = []int{16, 64}
			}
			trials := cfg.trials(30, 8)

			result := table.New("E12 — median rounds: deterministic SINR vs Rayleigh-faded SINR",
				append([]string{"channel"}, nCols(ns)...)...)
			opts, err := cfg.sinrOptions()
			if err != nil {
				return nil, err
			}
			channels := []struct {
				label string
				make  func(p sinr.Params, d *geom.Deployment, seed uint64) (sim.Channel, error)
			}{
				{"deterministic SINR", func(p sinr.Params, d *geom.Deployment, _ uint64) (sim.Channel, error) {
					return sinr.New(p, d.Points, opts...)
				}},
				{"Rayleigh-faded SINR", func(p sinr.Params, d *geom.Deployment, seed uint64) (sim.Channel, error) {
					return sinr.NewRayleigh(p, d.Points, seed, opts...)
				}},
			}
			for _, chn := range channels {
				row := []string{chn.label}
				for _, n := range ns {
					params := DefaultParams()
					rounds, unsolved, err := trialRounds(cfg, trials,
						func(seed uint64) (*geom.Deployment, error) { return geom.UniformDisk(seed, n) },
						func(d *geom.Deployment) (sim.Channel, error) {
							p := params
							p.Power = sinr.MinSingleHopPower(p.Alpha, p.Beta, p.Noise, d.R, sinr.DefaultSingleHopMargin)
							return chn.make(p, d, cfg.Seed+uint64(n))
						},
						core.FixedProbability{},
						sim.Config{MaxRounds: 4 * e1Budget(n)},
					)
					if err != nil {
						return nil, fmt.Errorf("E12 %s n=%d: %w", chn.label, n, err)
					}
					cell := table.Float(stats.Median(rounds), 0)
					if unsolved > 0 {
						cell += fmt.Sprintf(" (%d unsolved)", unsolved)
					}
					row = append(row, cell)
				}
				result.AddRow(row...)
			}
			return []*table.Table{result}, nil
		},
	}
}

// e13 — extension: the Section 3.1 remark made concrete. When R is unknown
// and possibly super-polynomial, the paper suggests interleaving the
// fixed-probability algorithm with an existing (R-insensitive) strategy: the
// combination inherits the better bound up to a factor 2.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Extension: interleaving with a sweep for unknown R (Section 3.1)",
		Claim: "Interleaving fixed-probability with the probability sweep costs at most 2× the better of the two on every workload, so no knowledge of R is needed.",
		Run: func(cfg Config) ([]*table.Table, error) {
			trials := cfg.trials(30, 8)
			workloads := []struct {
				label  string
				deploy func(seed uint64) (*geom.Deployment, error)
			}{
				{"uniform disk n=256", func(seed uint64) (*geom.Deployment, error) {
					return geom.UniformDisk(seed, 256)
				}},
				{"chain 12 classes (large R)", func(seed uint64) (*geom.Deployment, error) {
					return geom.ExponentialChain(seed, 12, 3)
				}},
				{"co-located pairs n=128", func(seed uint64) (*geom.Deployment, error) {
					return geom.CoLocatedPairs(128, 500)
				}},
			}
			if cfg.Quick {
				workloads = workloads[:2]
			}
			algos := []struct {
				label   string
				builder sim.Builder
			}{
				{"fixed-probability", core.FixedProbability{}},
				{"probability-sweep", baselines.ProbabilitySweep{}},
				{"interleaved (fixed ⊕ sweep)", core.Interleaved{A: core.FixedProbability{}, B: baselines.ProbabilitySweep{}}},
			}

			cols := []string{"algorithm"}
			for _, w := range workloads {
				cols = append(cols, w.label)
			}
			result := table.New("E13 — median rounds per workload (sweep runs on the same SINR channel)", cols...)
			for _, a := range algos {
				row := []string{a.label}
				for _, w := range workloads {
					rounds, unsolved, err := trialRounds(cfg, trials, w.deploy,
						func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, DefaultParams(), d) },
						a.builder, sim.Config{MaxRounds: 20000})
					if err != nil {
						return nil, fmt.Errorf("E13 %s / %s: %w", a.label, w.label, err)
					}
					cell := table.Float(stats.Median(rounds), 0)
					if unsolved > 0 {
						cell += fmt.Sprintf(" (%d unsolved)", unsolved)
					}
					row = append(row, cell)
				}
				result.AddRow(row...)
			}
			return []*table.Table{result}, nil
		},
	}
}
