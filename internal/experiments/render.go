package experiments

import (
	"fmt"
	"io"

	"fadingcr/internal/table"
)

// RenderTables writes one experiment's header, claim, and result tables in
// the canonical crbench layout. crbench, crshard, and the shard assembler
// all render through this one function, so a sharded run's stdout can be
// byte-identical to an unsharded one (timing lines, which would break that
// identity, go to stderr in the CLIs and never through here).
func RenderTables(w io.Writer, e Experiment, tables []*table.Table, markdown bool) error {
	if _, err := fmt.Fprintf(w, "\n==== %s — %s ====\n", e.ID, e.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Claim: %s\n\n", e.Claim); err != nil {
		return err
	}
	for _, tab := range tables {
		var err error
		if markdown {
			_, err = fmt.Fprintln(w, tab.Markdown())
		} else {
			_, err = fmt.Fprintln(w, tab.Text())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
