package experiments

import (
	"fmt"
	"math"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/radio"
	"fadingcr/internal/sim"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
)

// comparisonEntry pairs a builder with the channel regime it runs on.
type comparisonEntry struct {
	label   string
	builder func(n int) sim.Builder
	// channel: "sinr", "radio", or "radio+cd". The oblivious baselines'
	// solve time (first round with exactly one transmitter) is
	// channel-independent, so running them on the radio channel is without
	// loss of generality.
	channel string
	// budget is the per-run round cap as a function of n.
	budget func(n int) int
}

// e3 — Table 1: the headline comparison of every algorithm on its native
// channel.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "All algorithms head-to-head (fading log n vs radio log² n)",
		Claim: "The fading channel admits O(log n + log R) contention resolution; radio-model strategies need Θ(log² n) (Θ(log n) with collision detection).",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 64, 256, 1024}
			if cfg.Quick {
				ns = []int{16, 64}
			}
			trials := cfg.trials(30, 8)

			quad := func(n int) int {
				l := int(math.Ceil(math.Log2(float64(n)))) + 1
				return 200 + 40*l*l
			}
			entries := []comparisonEntry{
				{"fixed-probability (paper) / SINR", func(int) sim.Builder { return core.FixedProbability{} }, "sinr", e1Budget},
				{"probability-sweep / radio", func(int) sim.Builder { return baselines.ProbabilitySweep{} }, "radio", quad},
				{"decay(N=n) / radio", func(n int) sim.Builder { return baselines.Decay{N: n} }, "radio", quad},
				{"dampened-sweep(N=n) / radio", func(n int) sim.Builder { return baselines.DampenedSweep{N: maxInt(4, n)} }, "radio", quad},
				{"backoff / radio", func(int) sim.Builder { return baselines.BinaryExponentialBackoff{} }, "radio", func(n int) int { return 64 * quad(n) }},
				{"cd-halving / radio+CD", func(int) sim.Builder { return baselines.CollisionDetectHalving{} }, "radio+cd", e1Budget},
			}

			results := table.New("E3 — median rounds to solve (per algorithm and n)",
				append([]string{"algorithm / channel"}, nCols(ns)...)...)
			for _, entry := range entries {
				row := []string{entry.label}
				for _, n := range ns {
					med, unsolved, err := comparisonMedian(cfg, trials, n, entry)
					if err != nil {
						return nil, fmt.Errorf("E3 %s n=%d: %w", entry.label, n, err)
					}
					cell := table.Float(med, 0)
					if unsolved > 0 {
						cell = fmt.Sprintf("≥%s (%d/%d unsolved)", cell, unsolved, trials)
					}
					row = append(row, cell)
				}
				results.AddRow(row...)
			}
			return []*table.Table{results}, nil
		},
	}
}

func nCols(ns []int) []string {
	cols := make([]string, len(ns))
	for i, n := range ns {
		cols[i] = fmt.Sprintf("n=%d", n)
	}
	return cols
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// comparisonMedian runs one (algorithm, n) cell of the comparison.
func comparisonMedian(cfg Config, trials, n int, entry comparisonEntry) (float64, int, error) {
	builder := entry.builder(n)
	simCfg := sim.Config{MaxRounds: entry.budget(n)}
	var (
		rounds   []float64
		unsolved int
		err      error
	)
	switch entry.channel {
	case "sinr":
		rounds, unsolved, err = sinrTrialRounds(cfg, trials, n, builder, simCfg.MaxRounds)
	case "radio", "radio+cd":
		simCfg.CollisionDetection = entry.channel == "radio+cd"
		rounds, unsolved, err = trialRounds(cfg, trials,
			func(seed uint64) (*geom.Deployment, error) { return geom.TwoNode(), nil }, // unused positions
			func(*geom.Deployment) (sim.Channel, error) { return radio.New(n, simCfg.CollisionDetection) },
			builder, simCfg)
	default:
		return 0, 0, fmt.Errorf("unknown channel regime %q", entry.channel)
	}
	if err != nil {
		return 0, 0, err
	}
	return stats.Median(rounds), unsolved, nil
}
