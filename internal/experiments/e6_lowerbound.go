package experiments

import (
	"fmt"
	"math"
	"sort"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/hitting"
	"fadingcr/internal/sim"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// whpQuantile returns the empirical (1 − 1/k)-quantile of a sample of
// winning rounds: the round budget needed to win with the high probability
// the lower bound speaks about.
func whpQuantile(rounds []int, k int) float64 {
	xs := make([]float64, len(rounds))
	for i, r := range rounds {
		xs[i] = float64(r)
	}
	sort.Float64s(xs)
	return stats.Quantile(xs, 1-1/float64(k))
}

// e6 — Figure 5: the restricted k-hitting game needs Ω(log k) rounds.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Restricted k-hitting game horizons (Lemma 13)",
		Claim: "Any player winning the restricted k-hitting game with probability ≥ 1−1/k needs Ω(log k) rounds; the optimal constant-density player needs ≈ log₂ k.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ks := []int{4, 16, 64, 256, 1024}
			if cfg.Quick {
				ks = []int{4, 16, 64}
			}
			baseTrials := cfg.trials(600, 120)

			players := []struct {
				label string
				make  func(k int, seed uint64) (hitting.Player, error)
			}{
				{"half-density (optimal)", func(k int, seed uint64) (hitting.Player, error) {
					return hitting.NewFixedDensityPlayer(k, 0.5, seed)
				}},
				{"fixed-probability CR (Lemma 14 reduction)", func(k int, seed uint64) (hitting.Player, error) {
					return hitting.NewSimulationPlayer(core.FixedProbability{}, k, seed)
				}},
				{"probability-sweep CR (Lemma 14 reduction)", func(k int, seed uint64) (hitting.Player, error) {
					return hitting.NewSimulationPlayer(baselines.ProbabilitySweep{}, k, seed)
				}},
			}

			result := table.New("E6 — (1−1/k)-quantile of winning round in the restricted k-hitting game",
				append([]string{"player"}, kCols(ks)...)...)
			var fitRows [][2]string
			for _, pl := range players {
				row := []string{pl.label}
				var horizons []float64
				for _, k := range ks {
					// Estimating the (1 − 1/k)-quantile needs a sample that
					// resolves tail mass 1/k; use at least 4k trials.
					trials := baseTrials
					if !cfg.Quick && trials < 4*k {
						trials = 4 * k
					}
					rounds, err := runTrials(cfg, trials, func(trial int) (int, error) {
						ref, err := hitting.NewReferee(k, xrand.Split(cfg.Seed, uint64(trial)))
						if err != nil {
							return 0, err
						}
						p, err := pl.make(k, xrand.Split(cfg.Seed, uint64(trial)+7777))
						if err != nil {
							return 0, err
						}
						r, won, err := hitting.Play(ref, p, 1000000)
						if err != nil {
							return 0, err
						}
						if !won {
							return 0, fmt.Errorf("E6 %s k=%d trial %d never won", pl.label, k, trial)
						}
						return r, nil
					})
					if err != nil {
						return nil, err
					}
					h := whpQuantile(rounds, k)
					horizons = append(horizons, h)
					row = append(row, table.Float(h, 1))
				}
				result.AddRow(row...)
				// Fit horizon vs log₂ k.
				logs := make([]float64, len(ks))
				for i, k := range ks {
					logs[i] = math.Log2(float64(k))
				}
				fit, err := stats.LinearFit(logs, horizons)
				if err != nil {
					return nil, err
				}
				fitRows = append(fitRows, [2]string{pl.label, fit.String()})
			}

			fits := table.New("E6 — linear fits of the horizon vs log₂(k)", "player", "fit")
			for _, r := range fitRows {
				fits.AddRow(r[0], r[1])
			}
			return []*table.Table{result, fits}, nil
		},
	}
}

func kCols(ks []int) []string {
	cols := make([]string, len(ks))
	for i, k := range ks {
		cols[i] = fmt.Sprintf("k=%d", k)
	}
	return cols
}

// e7 — Table 2: "with high probability in n" verified directly.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Failure rate under a C·log₂(n) round budget (w.h.p. claim)",
		Claim: "With a modest constant C, the algorithm solves within C·log₂(n) rounds except with probability ≤ 1/n.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 64, 256}
			if !cfg.Quick {
				ns = append(ns, 1024)
			}
			cs := []int{4, 8, 16}
			trials := cfg.trials(300, 40)

			result := table.New("E7 — failures / trials under budget C·log₂(n) (fixed-probability on SINR)",
				append([]string{"n", "1/n"}, cCols(cs)...)...)
			for _, n := range ns {
				row := []string{table.Int(n), table.Sci(1/float64(n), 1)}
				for _, c := range cs {
					budget := c * int(math.Ceil(math.Log2(float64(n))))
					// Only the failure count matters here: aggregate
					// online instead of buffering the rounds sample.
					agg, err := sinrTrialStats(cfg, trials, n, core.FixedProbability{}, budget)
					if err != nil {
						return nil, fmt.Errorf("E7 n=%d C=%d: %w", n, c, err)
					}
					row = append(row, fmt.Sprintf("%d/%d", agg.Unsolved(), trials))
				}
				result.AddRow(row...)
			}
			return []*table.Table{result}, nil
		},
	}
}

func cCols(cs []int) []string {
	cols := make([]string, len(cs))
	for i, c := range cs {
		cols[i] = fmt.Sprintf("C=%d", c)
	}
	return cols
}

// e11 — Table 4: two-player contention resolution needs Ω(log k) rounds for
// success probability 1 − 1/k (Lemma 14), for any algorithm.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Two-player symmetry-breaking horizons (Lemma 14)",
		Claim: "Any algorithm solving two-player contention resolution with probability 1 − 1/k needs Ω(log k) rounds; in the two-node game fading gives no advantage.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ks := []int{4, 16, 64, 256, 1024}
			if cfg.Quick {
				ks = []int{4, 16, 64}
			}
			trials := cfg.trials(800, 150)
			// One trial pool serves every k; it must resolve the largest
			// quantile's tail mass 1/max(k).
			if !cfg.Quick && trials < 4*ks[len(ks)-1] {
				trials = 4 * ks[len(ks)-1]
			}

			algos := []struct {
				label   string
				builder sim.Builder
			}{
				{"fixed-probability (paper)", core.FixedProbability{}},
				{"probability-sweep", baselines.ProbabilitySweep{}},
				{"decay(N=2)", baselines.Decay{N: 2}},
			}

			result := table.New("E11 — (1−1/k)-quantile of symmetry-breaking round (two players)",
				append([]string{"algorithm"}, kCols(ks)...)...)
			for _, a := range algos {
				// One pool of trials serves every k: the quantile moves.
				rounds, err := runTrials(cfg, trials, func(trial int) (int, error) {
					res, err := hitting.PlayTwoPlayer(a.builder, xrand.Split(cfg.Seed, uint64(trial)), 1000000)
					if err != nil {
						return 0, err
					}
					if !res.Won {
						return 0, fmt.Errorf("E11 %s trial %d never won", a.label, trial)
					}
					return res.Rounds, nil
				})
				if err != nil {
					return nil, err
				}
				row := []string{a.label}
				for _, k := range ks {
					row = append(row, table.Float(whpQuantile(rounds, k), 1))
				}
				result.AddRow(row...)
			}
			return []*table.Table{result}, nil
		},
	}
}
