package experiments

import (
	"fmt"

	"fadingcr/internal/geom"
	"fadingcr/internal/schedule"
	"fadingcr/internal/sinr"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// e18 — the conjecture's origin quantified: one-shot SINR link capacity
// (how many nearest-neighbour links can be served simultaneously) grows
// linearly with n on constant-density deployments, while the collision
// channel serves exactly one link per round. This is the centralized
// spectrum-reuse result (Moscibroda–Wattenhofer line) whose distributed
// analogue the paper establishes.
func e18() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "One-shot SINR link capacity (centralized spatial reuse)",
		Claim: "Greedy SINR scheduling serves Θ(n) nearest-neighbour links per round (capacity/n roughly constant); the collision channel serves 1 — the spectrum-reuse headroom the paper's algorithm exploits.",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 32, 64, 128, 256, 512}
			if cfg.Quick {
				ns = []int{16, 64}
			}
			trials := cfg.trials(10, 3)

			result := table.New("E18 — one-shot capacity of greedy SINR scheduling (nearest-neighbour requests)",
				"n", "mean capacity", "capacity/n", "rounds to serve all (mean)", "collision channel")
			for _, n := range ns {
				type capacity struct {
					Links  float64 `json:"links"`
					Rounds float64 `json:"rounds"`
				}
				outcomes, err := runTrials(cfg, trials, func(trial int) (capacity, error) {
					d, err := geom.UniformDisk(xrand.Split(cfg.Seed, uint64(trial)), n)
					if err != nil {
						return capacity{}, err
					}
					params := DefaultParams()
					params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
					requests := schedule.NearestNeighborLinks(d.Points)
					chosen, err := schedule.Greedy(params, d.Points, requests)
					if err != nil {
						return capacity{}, fmt.Errorf("E18 n=%d: %w", n, err)
					}
					rounds, err := schedule.ScheduleAll(params, d.Points, requests)
					if err != nil {
						return capacity{}, fmt.Errorf("E18 n=%d schedule-all: %w", n, err)
					}
					return capacity{Links: float64(len(chosen)), Rounds: float64(len(rounds))}, nil
				})
				if err != nil {
					return nil, err
				}
				var caps, sched []float64
				for _, o := range outcomes {
					caps = append(caps, o.Links)
					sched = append(sched, o.Rounds)
				}
				meanCap := stats.Mean(caps)
				result.AddRow(table.Int(n),
					table.Float(meanCap, 1),
					table.Float(meanCap/float64(n), 3),
					table.Float(stats.Mean(sched), 1),
					fmt.Sprintf("1 link/round (%d rounds)", n))
			}
			return []*table.Table{result}, nil
		},
	}
}
