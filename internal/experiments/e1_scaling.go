package experiments

import (
	"fmt"
	"math"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
)

// e1 — Figure 1: Theorem 1's Θ(log n) growth on feasible deployments.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Rounds vs n on uniform deployments (Theorem 1 shape)",
		Claim: "The fixed-probability algorithm resolves contention in Θ(log n) rounds w.h.p. when R = poly(n).",
		Run: func(cfg Config) ([]*table.Table, error) {
			ns := []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
			if cfg.Quick {
				ns = []int{16, 64, 256}
			}
			trials := cfg.trials(40, 8)

			results := table.New("E1 — rounds to solve vs n (fixed-probability on SINR)",
				"n", "trials", "mean±95%CI", "median", "p95", "max", "unsolved", "Δ median", "median/log₂n")
			var medians []float64
			prevMedian := math.NaN()
			for _, n := range ns {
				// Large deployments get fewer trials: the per-trial cost is
				// Θ(n²·log n) and the medians are stable.
				t := trials
				if n >= 2048 && t > 15 {
					t = 15
				}
				rounds, unsolved, err := sinrTrialRounds(cfg, t, n, core.FixedProbability{}, e1Budget(n))
				if err != nil {
					return nil, fmt.Errorf("E1 n=%d: %w", n, err)
				}
				s, err := stats.Summarize(rounds)
				if err != nil {
					return nil, err
				}
				medians = append(medians, s.Median)
				// Δ median per doubling is the sharp discriminator: a Θ(log n)
				// algorithm shows bounded increments, Θ(log² n) shows
				// increments growing linearly in log n.
				delta := "—"
				if !math.IsNaN(prevMedian) {
					delta = table.Float(s.Median-prevMedian, 1)
				}
				prevMedian = s.Median
				lo, hi, err := stats.MeanCI(rounds, 1.96)
				if err != nil {
					return nil, err
				}
				results.AddRow(table.Int(n), table.Int(t),
					fmt.Sprintf("%.1f±%.1f", s.Mean, (hi-lo)/2), table.Float(s.Median, 1),
					table.Float(stats.QuantileOf(rounds, 0.95), 1),
					table.Float(s.Max, 0), table.Int(unsolved),
					delta, table.Float(s.Median/math.Log2(float64(n)), 2))
			}

			growth, err := stats.CompareGrowth(ns, medians)
			if err != nil {
				return nil, err
			}
			fits := table.New("E1 — growth model comparison on median rounds (both fit well at this range; the Δ-median column above is the sharper discriminator)",
				"model", "a", "b", "R²", "RMSE", "winner")
			mark := func(win bool) string {
				if win {
					return "◀"
				}
				return ""
			}
			fits.AddRow("a + b·log₂(n)", table.Float(growth.Log.A, 2), table.Float(growth.Log.B, 2),
				table.Float(growth.Log.R2, 4), table.Float(growth.Log.RMSE, 2), mark(growth.LogWins()))
			fits.AddRow("a + b·log₂²(n)", table.Float(growth.Log2.A, 2), table.Float(growth.Log2.B, 2),
				table.Float(growth.Log2.R2, 4), table.Float(growth.Log2.RMSE, 2), mark(!growth.LogWins()))
			return []*table.Table{results, fits}, nil
		},
	}
}

// e1Budget is a generous per-run round cap: far above C·log n so unsolved
// runs genuinely indicate failure, not a tight budget.
func e1Budget(n int) int {
	return 400 + 100*int(math.Ceil(math.Log2(float64(n))))
}

// e2 — Figure 2: the additive log R term of Theorem 1.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Rounds vs number of link classes (the log R term)",
		Claim: "Round complexity grows additively in log R: O(log n + log R).",
		Run: func(cfg Config) ([]*table.Table, error) {
			classes := []int{1, 2, 4, 8, 12, 16, 20}
			if cfg.Quick {
				classes = []int{1, 4, 8}
			}
			const pairsPerClass = 3
			trials := cfg.trials(30, 8)

			results := table.New("E2 — rounds to solve vs link classes (exponential chain, 3 pairs/class)",
				"classes", "n", "log2(R)≈", "trials", "mean", "median", "p95", "unsolved")
			var xs, medians []float64
			for _, m := range classes {
				n := 2 * m * pairsPerClass
				var logR float64
				rounds, unsolved, err := trialRounds(cfg, trials,
					func(seed uint64) (*geom.Deployment, error) {
						d, err := geom.ExponentialChain(seed, m, pairsPerClass)
						if err == nil {
							logR = math.Log2(d.R)
						}
						return d, err
					},
					func(d *geom.Deployment) (sim.Channel, error) { return channelFor(cfg, DefaultParams(), d) },
					core.FixedProbability{},
					sim.Config{MaxRounds: e1Budget(n) + 40*m},
				)
				if err != nil {
					return nil, fmt.Errorf("E2 m=%d: %w", m, err)
				}
				s, err := stats.Summarize(rounds)
				if err != nil {
					return nil, err
				}
				xs = append(xs, float64(m))
				medians = append(medians, s.Median)
				results.AddRow(table.Int(m), table.Int(n), table.Float(logR, 1), table.Int(trials),
					table.Float(s.Mean, 1), table.Float(s.Median, 1),
					table.Float(stats.QuantileOf(rounds, 0.95), 1), table.Int(unsolved))
			}

			fit, err := stats.LinearFit(xs, medians)
			if err != nil {
				return nil, err
			}
			fits := table.New("E2 — linear fit of median rounds vs class count m (m ≈ log R)",
				"model", "a", "b", "R²", "RMSE")
			fits.AddRow("a + b·m", table.Float(fit.A, 2), table.Float(fit.B, 2),
				table.Float(fit.R2, 4), table.Float(fit.RMSE, 2))
			return []*table.Table{results, fits}, nil
		},
	}
}
