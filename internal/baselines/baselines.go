// Package baselines implements the contention resolution algorithms the
// paper compares against, from scratch:
//
//   - ProbabilitySweep — the classical radio-network strategy needing no
//     knowledge of n: epoch k sweeps probabilities 2^{-1} … 2^{-k}. Solves
//     with high probability in Θ(log² n) rounds.
//   - Decay — Bar-Yehuda–Goldreich–Itai decay adapted to wake-up, given an
//     upper bound N ≥ n: phases of ⌈log₂ N⌉+1 rounds halving the broadcast
//     probability from 1. Θ(log² n) rounds w.h.p. (Θ(log n) in expectation).
//   - BinaryExponentialBackoff — the Ethernet-style folklore strategy: in
//     epoch k each node transmits in one uniformly chosen slot of a window
//     of length 2^k.
//   - DampenedSweep — a faithful-shape variant of Jurdziński & Stachowiak's
//     O(log² n / log log n) algorithm [6]; see its doc comment for exactly
//     what is and is not taken from the published algorithm.
//   - CollisionDetectHalving — leader election for the radio network model
//     with receiver collision detection: Θ(log n) rounds w.h.p., the bound
//     the fading channel matches without any collision detection.
//
// All builders implement sim.Builder and run on any sim.Channel; the
// oblivious ones (sweep, decay, backoff) ignore receptions entirely, exactly
// as their radio-network originals do.
package baselines

import (
	"fmt"
	"math"
	"math/rand/v2"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// ProbabilitySweep is the classical no-knowledge strategy: in epoch
// k = 1, 2, 3, …, it uses broadcast probability 2^{-j} in the j-th round of
// the epoch (j = 1 … k). Once the epoch length reaches log₂ n, each epoch
// contains a probability within a factor 2 of 1/n, which yields a solo
// broadcast with constant probability; Θ(log n) successful epochs of length
// Θ(log n) give the Θ(log² n) bound.
type ProbabilitySweep struct{}

var _ sim.Builder = ProbabilitySweep{}

// Name implements sim.Builder.
func (ProbabilitySweep) Name() string { return "probability-sweep" }

// Build implements sim.Builder.
func (ProbabilitySweep) Build(n int, seed uint64) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &sweepNode{rng: xrand.New(xrand.Split(seed, uint64(i)))}
	}
	return nodes
}

type sweepNode struct {
	rng *rand.Rand
}

func (u *sweepNode) Act(round int) sim.Action {
	if xrand.Bernoulli(u.rng, SweepProbability(round)) {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *sweepNode) Hear(int, int, sim.Feedback) {}

// SweepProbability returns the broadcast probability ProbabilitySweep uses
// in the given 1-based round: round r falls in epoch k (the smallest k with
// k(k+1)/2 ≥ r) at position j = r − k(k−1)/2, and the probability is 2^{-j}.
func SweepProbability(round int) float64 {
	if round < 1 {
		return 0
	}
	// Invert the triangular numbers: k = ⌈(−1+√(1+8r))/2⌉.
	k := int(math.Ceil((-1 + math.Sqrt(1+8*float64(round))) / 2))
	j := round - k*(k-1)/2
	return math.Pow(2, -float64(j))
}

// Decay is the BGI decay protocol given an upper bound N ≥ n on the number
// of participants. Execution is divided into phases of ⌈log₂ N⌉+1 rounds; in
// the j-th round of each phase every node broadcasts with probability
// 2^{-(j−1)}, i.e. the probability decays from 1 by halving. Each phase
// yields a solo broadcast with constant probability, so Θ(log(1/ε)) phases
// reach failure probability ε — Θ(log² N) rounds for ε = 1/N.
type Decay struct {
	// N is the upper bound on the participant count; must be ≥ 2.
	N int
}

var _ sim.Builder = Decay{}

// Name implements sim.Builder.
func (d Decay) Name() string { return fmt.Sprintf("decay(N=%d)", d.N) }

// PhaseLength returns the number of rounds per decay phase, ⌈log₂ N⌉+1.
func (d Decay) PhaseLength() int {
	return int(math.Ceil(math.Log2(float64(d.N)))) + 1
}

// Build implements sim.Builder. It panics if N < 2 (a static
// misconfiguration, not a runtime condition).
func (d Decay) Build(n int, seed uint64) []sim.Node {
	if d.N < 2 {
		panic(fmt.Sprintf("baselines: Decay.N = %d must be ≥ 2", d.N))
	}
	phase := d.PhaseLength()
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &decayNode{rng: xrand.New(xrand.Split(seed, uint64(i))), phase: phase}
	}
	return nodes
}

type decayNode struct {
	rng   *rand.Rand
	phase int
}

func (u *decayNode) Act(round int) sim.Action {
	j := (round - 1) % u.phase // 0-based position in phase
	p := math.Pow(2, -float64(j))
	if xrand.Bernoulli(u.rng, p) {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *decayNode) Hear(int, int, sim.Feedback) {}

// BinaryExponentialBackoff is the folklore windowed strategy: epoch k
// (k = 1, 2, …) is a window of 2^k consecutive rounds in which each node
// transmits exactly once, at a uniformly random position. Included for
// context; its contention resolution time is super-logarithmic.
type BinaryExponentialBackoff struct{}

var _ sim.Builder = BinaryExponentialBackoff{}

// Name implements sim.Builder.
func (BinaryExponentialBackoff) Name() string { return "binary-exponential-backoff" }

// Build implements sim.Builder.
func (BinaryExponentialBackoff) Build(n int, seed uint64) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &bebNode{rng: xrand.New(xrand.Split(seed, uint64(i)))}
	}
	return nodes
}

type bebNode struct {
	rng *rand.Rand
	// epoch bookkeeping: slot is the chosen transmit position within the
	// current window, end the last round of the window.
	slot, end int
}

func (u *bebNode) Act(round int) sim.Action {
	if round > u.end {
		// Entering the next window. Windows are 2, 4, 8, … rounds long,
		// starting at round 1.
		length := 2
		start := 1
		for start+length-1 < round {
			start += length
			length *= 2
		}
		u.end = start + length - 1
		u.slot = start + u.rng.IntN(length)
	}
	if round == u.slot {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *bebNode) Hear(int, int, sim.Feedback) {}

// DampenedSweep reproduces the round-complexity *shape* of Jurdziński &
// Stachowiak's O(log² n / log log n) fading-channel algorithm [6]. Like the
// published algorithm it (a) requires a polynomial upper bound N ≥ n, and
// (b) accelerates the standard sweep so a full pass over the probability
// scale takes Θ(log N · log N / log log N) rounds instead of Θ(log² N): each
// probability level 2^{-k} (k = 1 … ⌈log₂ N⌉) is visited
// m = ⌈log₂ N / log₂ log₂ N⌉ times per pass rather than Θ(log N) times. The
// published algorithm's dampening mechanism — slowing the sweep near the
// critical density using spatial reuse — is abstracted into this repeat
// count; the intricate backbone construction of [6] is NOT reproduced. The
// variant preserves what experiment E3 compares: total rounds
// Θ(log² n / log log n) with knowledge of N, versus the paper's Θ(log n)
// without.
type DampenedSweep struct {
	// N is the upper bound on the participant count; must be ≥ 4 so that
	// log log N is meaningful.
	N int
}

var _ sim.Builder = DampenedSweep{}

// Name implements sim.Builder.
func (d DampenedSweep) Name() string { return fmt.Sprintf("dampened-sweep(N=%d)", d.N) }

// Repeats returns m, the number of consecutive rounds spent on each
// probability level: ⌈log₂ N / log₂ log₂ N⌉, at least 1.
func (d DampenedSweep) Repeats() int {
	logN := math.Log2(float64(d.N))
	den := math.Log2(logN)
	m := int(math.Ceil(logN / den))
	if m < 1 {
		m = 1
	}
	return m
}

// Levels returns the number of probability levels per pass, ⌈log₂ N⌉.
func (d DampenedSweep) Levels() int {
	return int(math.Ceil(math.Log2(float64(d.N))))
}

// Build implements sim.Builder. It panics if N < 4.
func (d DampenedSweep) Build(n int, seed uint64) []sim.Node {
	if d.N < 4 {
		panic(fmt.Sprintf("baselines: DampenedSweep.N = %d must be ≥ 4", d.N))
	}
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &dampenedNode{
			rng:     xrand.New(xrand.Split(seed, uint64(i))),
			levels:  d.Levels(),
			repeats: d.Repeats(),
		}
	}
	return nodes
}

type dampenedNode struct {
	rng             *rand.Rand
	levels, repeats int
}

func (u *dampenedNode) Act(round int) sim.Action {
	pass := u.levels * u.repeats
	pos := (round - 1) % pass  // position within the pass
	level := pos/u.repeats + 1 // probability level 1 … levels
	p := math.Pow(2, -float64(level))
	if xrand.Bernoulli(u.rng, p) {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *dampenedNode) Hear(int, int, sim.Feedback) {}

// CollisionDetectHalving is leader election on a radio channel with
// receiver collision detection; run it with sim.Config.CollisionDetection
// set. Every node starts as a candidate. Each round, each candidate
// transmits with probability 1/2. A candidate that listened and detected a
// collision withdraws — the transmitters carry on, so the candidate set
// halves in expectation per round while never becoming empty, and a solo
// broadcast occurs within O(log n) rounds w.h.p. This is the Θ(log n)
// collision-detection bound the paper cites ([20]); the fading channel
// achieves the same bound with no collision detection at all.
type CollisionDetectHalving struct{}

var _ sim.Builder = CollisionDetectHalving{}

// Name implements sim.Builder.
func (CollisionDetectHalving) Name() string { return "cd-halving" }

// Build implements sim.Builder.
func (CollisionDetectHalving) Build(n int, seed uint64) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &cdNode{rng: xrand.New(xrand.Split(seed, uint64(i))), candidate: true}
	}
	return nodes
}

type cdNode struct {
	rng       *rand.Rand
	candidate bool
	sentLast  bool
}

func (u *cdNode) Act(round int) sim.Action {
	u.sentLast = u.candidate && xrand.Bernoulli(u.rng, 0.5)
	if u.sentLast {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *cdNode) Hear(round int, from int, detect sim.Feedback) {
	if u.candidate && !u.sentLast && detect == sim.Collision {
		u.candidate = false
	}
}

// Candidate reports whether the node is still contending; it implements the
// same Activeness shape as the core algorithm's nodes for tracing.
func (u *cdNode) Active() bool { return u.candidate }
