package baselines

import (
	"math"
	"math/rand/v2"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// CDBinaryEstimate is Willard-style leader election by contention
// estimation on a full-sensing collision-detection channel (every node —
// including transmitters — observes the round's silence/collision
// trichotomy, the standard assumption of the estimation literature). It
// binary-searches the probability exponent j (broadcast probability 2^{-j}):
//
//  1. doubling: probe j = 1, 2, 4, 8, … until a silent round brackets the
//     contention level;
//  2. binary search inside the bracket: collision ⇒ contention above the
//     probe, silence ⇒ below;
//  3. sweep: cycle exponents in a window around the estimate, widening the
//     window each pass so convergence to a mis-estimate (the feedback is
//     stochastic) still terminates.
//
// A solo broadcast anywhere in the process solves contention resolution and
// stops the execution. The expected round count is O(log log n) + O(1) —
// included to complete the collision-detection landscape the paper cites;
// its w.h.p. bound remains Ω(log n) per [20], which experiment E6/E11's
// lower-bound machinery also applies to.
//
// Every node runs the same deterministic controller on the common channel
// feedback, so all nodes probe the same exponent each round; only the
// per-node transmit coins differ.
type CDBinaryEstimate struct{}

var _ sim.Builder = CDBinaryEstimate{}

// Name implements sim.Builder.
func (CDBinaryEstimate) Name() string { return "cd-binary-estimate" }

// Build implements sim.Builder.
func (CDBinaryEstimate) Build(n int, seed uint64) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &estimateNode{
			rng:  xrand.New(xrand.Split(seed, uint64(i))),
			ctrl: newEstimateController(),
		}
	}
	return nodes
}

// estimateMode is the controller phase.
type estimateMode int

const (
	modeDoubling estimateMode = iota + 1
	modeSearch
	modeSweep
)

// estimateController is the shared (replicated) state machine. All replicas
// receive identical feedback and therefore stay in lockstep.
type estimateController struct {
	mode   estimateMode
	j      int // exponent probed this round
	prev   int // last collision exponent during doubling
	lo, hi int // search bracket
	// sweep state
	center, width, offset int
}

func newEstimateController() *estimateController {
	return &estimateController{mode: modeDoubling, j: 1}
}

// exponent returns the probability exponent to probe this round.
func (c *estimateController) exponent() int { return c.j }

// observe advances the controller on the common feedback. Message never
// arrives: a solo broadcast ends the execution first.
func (c *estimateController) observe(detect sim.Feedback) {
	switch c.mode {
	case modeDoubling:
		if detect == sim.Collision {
			c.prev = c.j
			c.j *= 2
			return
		}
		// Silence: contention lies between the last collision and here.
		c.mode = modeSearch
		c.lo = c.prev
		c.hi = c.j
		c.stepSearch()
	case modeSearch:
		if detect == sim.Collision {
			c.lo = c.j + 1
		} else {
			c.hi = c.j - 1
		}
		c.stepSearch()
	case modeSweep:
		c.stepSweep()
	}
}

// stepSearch probes the bracket midpoint, or settles into the sweep.
func (c *estimateController) stepSearch() {
	if c.lo > c.hi {
		c.mode = modeSweep
		c.center = c.j
		c.width = 1
		c.offset = -1
		c.stepSweep()
		return
	}
	c.j = (c.lo + c.hi) / 2
}

// stepSweep cycles j over [center−width, center+width], widening the window
// after each full pass so a mis-estimate is eventually covered.
func (c *estimateController) stepSweep() {
	c.offset++
	if c.offset > 2*c.width {
		c.width++
		c.offset = 0
	}
	j := c.center - c.width + c.offset
	if j < 0 {
		j = 0
	}
	c.j = j
}

type estimateNode struct {
	rng  *rand.Rand
	ctrl *estimateController
}

func (u *estimateNode) Act(round int) sim.Action {
	p := math.Pow(2, -float64(u.ctrl.exponent()))
	if xrand.Bernoulli(u.rng, p) {
		return sim.Transmit
	}
	return sim.Listen
}

func (u *estimateNode) Hear(round int, from int, detect sim.Feedback) {
	u.ctrl.observe(detect)
}
