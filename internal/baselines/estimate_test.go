package baselines

import (
	"math"
	"testing"

	"fadingcr/internal/sim"
)

func TestCDBinaryEstimateName(t *testing.T) {
	if got := (CDBinaryEstimate{}).Name(); got != "cd-binary-estimate" {
		t.Errorf("Name = %q", got)
	}
}

func TestCDBinaryEstimateSolves(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512, 4096} {
		ch := mustRadio(t, n, true)
		res, err := sim.Run(ch, CDBinaryEstimate{}, uint64(n)+3, sim.Config{MaxRounds: 10000, CollisionDetection: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Errorf("n=%d: unsolved in %d rounds", n, res.Rounds)
		}
	}
}

func TestCDBinaryEstimateMedianIsTiny(t *testing.T) {
	// Expected rounds are O(log log n) + O(1): medians should stay in the
	// single digits far beyond where even log n algorithms have grown.
	median := func(n int) float64 {
		var rounds []int
		for seed := uint64(0); seed < 21; seed++ {
			ch := mustRadio(t, n, true)
			res, err := sim.Run(ch, CDBinaryEstimate{}, seed, sim.Config{MaxRounds: 10000, CollisionDetection: true})
			if err != nil || !res.Solved {
				t.Fatalf("n=%d seed=%d: %+v err=%v", n, seed, res, err)
			}
			rounds = append(rounds, res.Rounds)
		}
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		return float64(rounds[len(rounds)/2])
	}
	m256, m4096 := median(256), median(4096)
	if m4096 > m256+10 {
		t.Errorf("median grew %v → %v from n=256 to n=4096; want ~log log growth", m256, m4096)
	}
	if m4096 > 12+3*math.Log2(math.Log2(4096)) {
		t.Errorf("median at n=4096 is %v; want O(log log n) + O(1)", m4096)
	}
}

func TestEstimateControllerLockstep(t *testing.T) {
	// All nodes must probe the same exponent every round regardless of
	// their private coins.
	n := 64
	nodes := CDBinaryEstimate{}.Build(n, 5)
	feedbacks := []sim.Feedback{sim.Collision, sim.Collision, sim.Silence, sim.Collision, sim.Silence, sim.Silence}
	for round, fb := range feedbacks {
		want := nodes[0].(*estimateNode).ctrl.exponent()
		for _, u := range nodes {
			if got := u.(*estimateNode).ctrl.exponent(); got != want {
				t.Fatalf("round %d: exponents diverged (%d vs %d)", round, got, want)
			}
			u.Act(round + 1)
		}
		for _, u := range nodes {
			u.Hear(round+1, -1, fb)
		}
	}
}

func TestEstimateControllerDoublingThenSearch(t *testing.T) {
	c := newEstimateController()
	if c.exponent() != 1 || c.mode != modeDoubling {
		t.Fatalf("fresh controller: j=%d mode=%d", c.exponent(), c.mode)
	}
	// Collisions double the exponent: 1 → 2 → 4 → 8.
	for _, want := range []int{2, 4, 8} {
		c.observe(sim.Collision)
		if c.exponent() != want {
			t.Fatalf("doubling: j=%d, want %d", c.exponent(), want)
		}
	}
	// Silence at 8 brackets [4, 8] and probes the midpoint 6.
	c.observe(sim.Silence)
	if c.mode != modeSearch || c.exponent() != 6 {
		t.Fatalf("after bracket: mode=%d j=%d, want search/6", c.mode, c.exponent())
	}
	// Collision at 6: lo=7 → probe (7+8)/2 = 7.
	c.observe(sim.Collision)
	if c.exponent() != 7 {
		t.Fatalf("search step: j=%d, want 7", c.exponent())
	}
	// Silence at 7: hi=6 < lo=7 → sweep around 7.
	c.observe(sim.Silence)
	if c.mode != modeSweep {
		t.Fatalf("mode=%d, want sweep", c.mode)
	}
	if got := c.exponent(); got != 6 {
		t.Fatalf("first sweep probe j=%d, want center−width = 6", got)
	}
}

func TestEstimateControllerSweepWidens(t *testing.T) {
	c := newEstimateController()
	// Drive straight into a sweep around a known centre.
	c.mode = modeSweep
	c.center, c.width, c.offset = 5, 1, -1
	var seen []int
	for i := 0; i < 14; i++ {
		c.stepSweep()
		seen = append(seen, c.exponent())
	}
	// First pass: 4,5,6 (width 1); second: 3,4,5,6,7 (width 2); then width 3.
	want := []int{4, 5, 6, 3, 4, 5, 6, 7, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("sweep sequence %v, want %v", seen, want)
		}
	}
}

func TestEstimateControllerSweepClampsAtZero(t *testing.T) {
	c := newEstimateController()
	c.mode = modeSweep
	c.center, c.width, c.offset = 1, 2, -1
	for i := 0; i < 10; i++ {
		c.stepSweep()
		if c.exponent() < 0 {
			t.Fatalf("negative exponent %d", c.exponent())
		}
	}
}
