package baselines

import (
	"math"
	"strings"
	"testing"

	"fadingcr/internal/radio"
	"fadingcr/internal/sim"
)

func mustRadio(t *testing.T, n int, cd bool) *radio.Channel {
	t.Helper()
	ch, err := radio.New(n, cd)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNames(t *testing.T) {
	cases := []struct {
		b    sim.Builder
		want string
	}{
		{ProbabilitySweep{}, "probability-sweep"},
		{Decay{N: 64}, "decay"},
		{BinaryExponentialBackoff{}, "backoff"},
		{DampenedSweep{N: 64}, "dampened"},
		{CollisionDetectHalving{}, "cd-halving"},
	}
	for _, c := range cases {
		if got := c.b.Name(); !strings.Contains(got, c.want) {
			t.Errorf("Name = %q, want substring %q", got, c.want)
		}
	}
}

func TestSweepProbabilitySchedule(t *testing.T) {
	// Epochs: r1 → (k=1, j=1); r2,3 → (k=2, j=1,2); r4,5,6 → (k=3, j=1..3).
	want := []float64{0.5, 0.5, 0.25, 0.5, 0.25, 0.125, 0.5, 0.25, 0.125, 0.0625}
	for r := 1; r <= len(want); r++ {
		if got := SweepProbability(r); math.Abs(got-want[r-1]) > 1e-12 {
			t.Errorf("SweepProbability(%d) = %v, want %v", r, got, want[r-1])
		}
	}
	if got := SweepProbability(0); got != 0 {
		t.Errorf("SweepProbability(0) = %v, want 0", got)
	}
}

func TestSweepProbabilityEpochsReachSmallValues(t *testing.T) {
	// By the end of epoch k the probability has reached 2^{-k}; the minimum
	// over the first k(k+1)/2 rounds must therefore be 2^{-k}.
	k := 20
	minP := 1.0
	for r := 1; r <= k*(k+1)/2; r++ {
		if p := SweepProbability(r); p < minP {
			minP = p
		}
	}
	if want := math.Pow(2, -20); minP != want {
		t.Errorf("min probability over 20 epochs = %v, want %v", minP, want)
	}
}

func TestDecayPhaseLength(t *testing.T) {
	if got := (Decay{N: 64}).PhaseLength(); got != 7 {
		t.Errorf("PhaseLength(64) = %d, want 7", got)
	}
	if got := (Decay{N: 65}).PhaseLength(); got != 8 {
		t.Errorf("PhaseLength(65) = %d, want 8", got)
	}
}

func TestDecayBuildPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decay{N:1} did not panic")
		}
	}()
	Decay{N: 1}.Build(3, 1)
}

func TestDampenedSweepParameters(t *testing.T) {
	d := DampenedSweep{N: 1 << 16}
	if got := d.Levels(); got != 16 {
		t.Errorf("Levels = %d, want 16", got)
	}
	if got := d.Repeats(); got != 4 {
		t.Errorf("Repeats = %d, want 4 (16/log2(16))", got)
	}
}

func TestDampenedSweepBuildPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DampenedSweep{N:2} did not panic")
		}
	}()
	DampenedSweep{N: 2}.Build(3, 1)
}

// TestAllSolveOnRadio: every baseline solves contention resolution on its
// native channel for a spread of n, within a generous budget.
func TestAllSolveOnRadio(t *testing.T) {
	for _, n := range []int{2, 3, 8, 32, 128} {
		builders := []sim.Builder{
			ProbabilitySweep{},
			Decay{N: n},
			BinaryExponentialBackoff{},
			DampenedSweep{N: max(4, n)},
		}
		for _, b := range builders {
			ch := mustRadio(t, n, false)
			res, err := sim.Run(ch, b, uint64(n), sim.Config{MaxRounds: 100000})
			if err != nil {
				t.Fatalf("%s n=%d: %v", b.Name(), n, err)
			}
			if !res.Solved {
				t.Errorf("%s n=%d: unsolved in %d rounds", b.Name(), n, res.Rounds)
			}
		}
	}
}

func TestCollisionDetectHalvingSolves(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		ch := mustRadio(t, n, true)
		res, err := sim.Run(ch, CollisionDetectHalving{}, uint64(n), sim.Config{MaxRounds: 10000, CollisionDetection: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Errorf("n=%d: unsolved in %d rounds", n, res.Rounds)
			continue
		}
		// Θ(log n) w.h.p.: even a loose cap distinguishes it from log².
		if float64(res.Rounds) > 30*math.Log2(float64(n))+30 {
			t.Errorf("n=%d: %d rounds, want O(log n)", n, res.Rounds)
		}
	}
}

func TestCollisionDetectHalvingCandidateNeverAllWithdraw(t *testing.T) {
	// Run many seeds; after every round at least one candidate remains.
	for seed := uint64(0); seed < 20; seed++ {
		n := 16
		nodes := CollisionDetectHalving{}.Build(n, seed)
		ch := mustRadio(t, n, true)
		tx := make([]bool, n)
		recv := make([]int, n)
		for round := 1; round <= 100; round++ {
			count := 0
			for u, node := range nodes {
				tx[u] = node.Act(round) == sim.Transmit
				if tx[u] {
					count++
				}
			}
			if count == 1 {
				break
			}
			ch.Deliver(tx, recv)
			detect := sim.Silence
			if count > 1 {
				detect = sim.Collision
			}
			candidates := 0
			for u, node := range nodes {
				node.Hear(round, recv[u], detect)
				if node.(*cdNode).candidate {
					candidates++
				}
			}
			if candidates == 0 {
				t.Fatalf("seed %d round %d: all candidates withdrew", seed, round)
			}
		}
	}
}

func TestCollisionDetectHalvingActive(t *testing.T) {
	nodes := CollisionDetectHalving{}.Build(1, 1)
	u := nodes[0].(*cdNode)
	if !u.Active() {
		t.Error("fresh node not active")
	}
	u.candidate = false
	if u.Active() {
		t.Error("withdrawn node still active")
	}
}

// TestObliviousIgnoreFeedback: the oblivious baselines' actions do not
// depend on what they hear.
func TestObliviousIgnoreFeedback(t *testing.T) {
	builders := []sim.Builder{ProbabilitySweep{}, Decay{N: 16}, BinaryExponentialBackoff{}, DampenedSweep{N: 16}}
	for _, b := range builders {
		a := b.Build(1, 9)[0]
		c := b.Build(1, 9)[0]
		for r := 1; r <= 300; r++ {
			ra := a.Act(r)
			rc := c.Act(r)
			if ra != rc {
				t.Errorf("%s: actions diverged at round %d despite equal seeds", b.Name(), r)
				break
			}
			a.Hear(r, -1, sim.Unknown)
			c.Hear(r, 0, sim.Collision) // feed c different observations
		}
	}
}

// TestBEBTransmitsOncePerWindow: each node transmits exactly once in every
// window 2, 4, 8, … rounds long.
func TestBEBTransmitsOncePerWindow(t *testing.T) {
	node := BinaryExponentialBackoff{}.Build(1, 123)[0]
	windows := []struct{ start, length int }{{1, 2}, {3, 4}, {7, 8}, {15, 16}, {31, 32}}
	round := 1
	for _, w := range windows {
		sent := 0
		for ; round < w.start+w.length; round++ {
			if node.Act(round) == sim.Transmit {
				sent++
			}
		}
		if sent != 1 {
			t.Errorf("window starting %d: %d transmissions, want 1", w.start, sent)
		}
	}
}

// TestScalingSeparation: the headline comparison in miniature — at n = 256
// the collision-detection algorithm (log n shape) must finish far faster
// than the probability sweep (log² n shape), medians over a few trials.
func TestScalingSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const n = 256
	median := func(b sim.Builder, cd bool) float64 {
		var rounds []int
		for trial := 0; trial < 11; trial++ {
			ch := mustRadio(t, n, cd)
			res, err := sim.Run(ch, b, uint64(1000+trial), sim.Config{MaxRounds: 100000, CollisionDetection: cd})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("%s unsolved", b.Name())
			}
			rounds = append(rounds, res.Rounds)
		}
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		return float64(rounds[len(rounds)/2])
	}
	mCD := median(CollisionDetectHalving{}, true)
	mSweep := median(ProbabilitySweep{}, false)
	if mCD*2 > mSweep {
		t.Errorf("cd-halving median %v not clearly below sweep median %v", mCD, mSweep)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
