// Package xrand provides reproducible random number utilities for the
// simulator. Every stochastic component in the repository is driven by an
// explicit *rand.Rand constructed here from a caller-supplied seed, so that
// identical seeds yield identical executions across runs and platforms.
//
// The package wraps math/rand/v2's PCG generator and adds deterministic seed
// splitting: a parent seed can be split into independent child streams (one
// per node, per trial, per round, ...) without the streams being trivially
// correlated.
package xrand

import (
	"math/rand/v2"
)

// New returns a deterministic generator for the given seed. Two generators
// built from the same seed produce identical streams.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, mix(seed)))
}

// Split derives a child seed from a parent seed and an index. Distinct
// indices yield well-separated child seeds; Split is pure, so the derivation
// is reproducible. It is safe to chain: Split(Split(s, a), b).
func Split(seed uint64, index uint64) uint64 {
	return mix(seed ^ mix(index+0x9e3779b97f4a7c15))
}

// SplitN derives n child seeds from a parent seed.
func SplitN(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = Split(seed, uint64(i))
	}
	return out
}

// mix is the SplitMix64 finaliser, a fast full-avalanche 64-bit mixer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Bernoulli reports true with probability p using the supplied generator.
// p outside [0, 1] is clamped.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// Perm returns a random permutation of [0, n) using the supplied generator.
func Perm(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// A Reseedable is a deterministic generator whose stream can be reset in
// place: after Reseed(s) it yields exactly the stream New(s) yields. Hot
// paths that previously built one generator per call (per round, per trial)
// keep a single Reseedable instead, avoiding the per-call allocations.
type Reseedable struct {
	*rand.Rand
	src *rand.PCG
}

// NewReseedable returns a Reseedable initially seeded with seed.
func NewReseedable(seed uint64) *Reseedable {
	src := rand.NewPCG(seed, mix(seed))
	return &Reseedable{Rand: rand.New(src), src: src}
}

// Reseed resets the generator to the beginning of New(seed)'s stream.
func (r *Reseedable) Reseed(seed uint64) {
	r.src.Seed(seed, mix(seed))
}
