package xrand

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 agreed on %d/64 draws", same)
	}
}

func TestSplitPureAndDistinct(t *testing.T) {
	if Split(7, 1) != Split(7, 1) {
		t.Error("Split is not pure")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := Split(42, i)
		if seen[s] {
			t.Fatalf("collision at index %d", i)
		}
		seen[s] = true
	}
}

func TestSplitAvoidsSelf(t *testing.T) {
	// A seed split by index 0 must not reproduce the parent stream.
	parent := New(99)
	child := New(Split(99, 0))
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("child stream mirrors parent on %d/64 draws", same)
	}
}

func TestSplitN(t *testing.T) {
	seeds := SplitN(5, 10)
	if len(seeds) != 10 {
		t.Fatalf("len = %d, want 10", len(seeds))
	}
	for i, s := range seeds {
		if s != Split(5, uint64(i)) {
			t.Errorf("SplitN[%d] != Split(5, %d)", i, i)
		}
	}
	if len(SplitN(5, 0)) != 0 {
		t.Error("SplitN(_, 0) should be empty")
	}
}

func TestSplitChainsIndependent(t *testing.T) {
	// Split(Split(s, a), b) should differ from Split(Split(s, b), a) in
	// general: the derivation is order-sensitive.
	if Split(Split(1, 2), 3) == Split(Split(1, 3), 2) {
		t.Error("chained splits commute; streams would collide")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	rng := New(1)
	for i := 0; i < 20; i++ {
		if Bernoulli(rng, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(rng, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(rng, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(rng, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := New(77)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(rng, 0.25) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("empirical rate %v far from 0.25", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := Perm(New(seed), n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermShuffles(t *testing.T) {
	// At n=52 the identity permutation is (astronomically) unlikely.
	p := Perm(New(3), 52)
	identity := true
	for i, v := range p {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("Perm returned the identity permutation")
	}
}
