package xrand

import (
	"math/bits"
	"testing"
)

// FuzzSplit fuzzes the two load-bearing properties of the seed-derivation
// layer: Split yields distinct, well-mixed child seeds for distinct indices
// (identical ones for identical indices), and a Reseedable reset to a seed
// replays exactly the stream a fresh New generator yields for that seed —
// the equivalence the hot paths rely on when they reuse one generator
// instead of allocating per call.
func FuzzSplit(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1))
	f.Add(uint64(7), uint64(0), uint64(1))
	f.Add(uint64(0xdeadbeef), uint64(41), uint64(42))
	f.Add(^uint64(0), uint64(1)<<63, uint64(1)<<63-1)
	f.Add(uint64(0x9e3779b97f4a7c15), uint64(3), uint64(3))
	f.Fuzz(func(t *testing.T, seed, i, j uint64) {
		ci, cj := Split(seed, i), Split(seed, j)
		if i == j {
			if ci != cj {
				t.Fatalf("Split(%#x, %d) not pure: %#x vs %#x", seed, i, ci, cj)
			}
			return
		}
		if ci == cj {
			t.Fatalf("Split(%#x, ·) collides for indices %d and %d", seed, i, j)
		}
		// SplitMix64's full-avalanche mixing should leave sibling seeds far
		// apart in Hamming distance, never near-misses.
		if d := bits.OnesCount64(ci ^ cj); d < 4 {
			t.Fatalf("child seeds %#x and %#x differ in only %d bits", ci, cj, d)
		}

		fresh := New(ci)
		r := NewReseedable(cj)
		r.Uint64() // advance, so Reseed must really rewind the state
		r.Reseed(ci)
		for k := 0; k < 8; k++ {
			if got, want := r.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("Reseed(%#x) stream diverges from New(%#x) at draw %d: %#x != %#x", ci, ci, k, got, want)
			}
		}
	})
}
