package table

import (
	"strings"
	"testing"
)

func TestTextRendering(t *testing.T) {
	tab := New("Demo", "n", "rounds")
	tab.AddRow("16", "12")
	tab.AddRow("1024", "30")
	got := tab.Text()
	for _, want := range []string{"Demo", "n", "rounds", "16", "1024", "30"} {
		if !strings.Contains(got, want) {
			t.Errorf("Text missing %q:\n%s", want, got)
		}
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Errorf("got %d lines, want 6:\n%s", len(lines), got)
	}
	// Columns align: "1024" forces the first column to width 4.
	if !strings.HasPrefix(lines[4], "16  ") && !strings.HasPrefix(lines[4], "16 ") {
		t.Errorf("row not aligned: %q", lines[4])
	}
}

func TestTextWithoutTitle(t *testing.T) {
	tab := New("", "a")
	tab.AddRow("1")
	got := tab.Text()
	if strings.HasPrefix(got, "\n") {
		t.Errorf("leading newline without title:\n%q", got)
	}
	if lines := strings.Split(strings.TrimRight(got, "\n"), "\n"); len(lines) != 3 {
		t.Errorf("got %d lines, want 3", len(lines))
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := New("T", "x", "y")
	tab.AddRow("1", "2")
	got := tab.Markdown()
	for _, want := range []string{"### T", "| x | y |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(got, want) {
			t.Errorf("Markdown missing %q:\n%s", want, got)
		}
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tab := New("", "a", "b")
	tab.AddRow("1")
	tab.AddRow("1", "2", "3")
	if got := tab.Rows[0]; got[1] != "" {
		t.Errorf("short row not padded: %v", got)
	}
	if got := tab.Rows[1]; len(got) != 2 {
		t.Errorf("long row not truncated: %v", got)
	}
}

func TestFormatters(t *testing.T) {
	if got := Int(42); got != "42" {
		t.Errorf("Int = %q", got)
	}
	if got := Float(3.14159, 2); got != "3.14" {
		t.Errorf("Float = %q", got)
	}
	if got := Sci(12345.678, 2); got != "1.23e+04" {
		t.Errorf("Sci = %q", got)
	}
}
