// Package table renders small result tables as aligned text or markdown.
// The experiment harness and the CLIs use it for every table and figure
// series they print.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is an ordered collection of rows under fixed column headers.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows are truncated (callers control both, so either is a
// cosmetic slip, not data loss worth an error path).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns the rendering width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > w[i] {
				w[i] = l
			}
		}
	}
	return w
}

// Text renders the table with space-aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("-", len([]rune(t.Title))))
		b.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := w[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Int formats an integer cell.
func Int(v int) string { return strconv.Itoa(v) }

// Float formats a float cell with the given number of decimals.
func Float(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Sci formats a float cell in scientific notation with the given precision.
func Sci(v float64, precision int) string {
	return strconv.FormatFloat(v, 'e', precision, 64)
}
