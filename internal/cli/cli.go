// Package cli holds the exit-status conventions shared by the repository's
// commands. All four CLIs parse flags with flag.ContinueOnError, whose
// FlagSet.Parse returns flag.ErrHelp for -h/-help after printing usage;
// funneling that error into the generic failure path made "crsim -h" exit 1.
// ExitCode centralizes the mapping so help is a success everywhere.
package cli

import (
	"errors"
	"flag"
)

// ExitCode maps a command's run error to its process exit status: 0 for nil
// and for flag.ErrHelp (asking for usage is a successful interaction, the
// GNU/POSIX convention), 1 for anything else.
func ExitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	return 1
}

// IsHelp reports whether err is the -h/-help pseudo-error. Commands use it
// to suppress the "crsim: flag: help requested" noise line — the flag
// package has already printed the usage text.
func IsHelp(err error) bool { return errors.Is(err, flag.ErrHelp) }
