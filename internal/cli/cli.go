// Package cli holds the exit-status conventions shared by the repository's
// commands. All CLIs parse flags with flag.ContinueOnError, whose
// FlagSet.Parse returns flag.ErrHelp for -h/-help after printing usage;
// funneling that error into the generic failure path made "crsim -h" exit 1.
// ExitCode centralizes the mapping so every command agrees:
//
//	0  success, and -h/-help (asking for usage is a successful interaction)
//	1  runtime failure (I/O errors, failed checks, canceled runs)
//	2  misuse (unknown flags, invalid flag values, unknown subcommands)
//
// The 0/1/2 split follows the grep/POSIX-utility convention crverify
// pioneered here: scripts can distinguish "the run failed" from "the
// invocation was wrong". Commands mark misuse by wrapping the offending
// error with Usage (or constructing one with Usagef) before returning it.
package cli

import (
	"errors"
	"flag"
	"fmt"
)

// usageError marks an error as invocation misuse (exit status 2).
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// Usage wraps err as a misuse error so ExitCode maps it to 2. A nil err
// stays nil, and flag.ErrHelp keeps its help semantics (ExitCode checks
// help before misuse), so flag.Parse errors can be wrapped unconditionally.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &usageError{err: err}
}

// Usagef constructs a misuse error from a format string.
func Usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// IsUsage reports whether err is (or wraps) a misuse error.
func IsUsage(err error) bool {
	var ue *usageError
	return errors.As(err, &ue)
}

// ExitCode maps a command's run error to its process exit status: 0 for nil
// and for flag.ErrHelp, 2 for misuse errors (see Usage), 1 for anything
// else.
func ExitCode(err error) int {
	switch {
	case err == nil || errors.Is(err, flag.ErrHelp):
		return 0
	case IsUsage(err):
		return 2
	default:
		return 1
	}
}

// IsHelp reports whether err is the -h/-help pseudo-error. Commands use it
// to suppress the "crsim: flag: help requested" noise line — the flag
// package has already printed the usage text.
func IsHelp(err error) bool { return errors.Is(err, flag.ErrHelp) }
