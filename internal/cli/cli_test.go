package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"help", flag.ErrHelp, 0},
		{"wrapped help", fmt.Errorf("parse: %w", flag.ErrHelp), 0},
		{"plain error", errors.New("boom"), 1},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestHelpFlagsYieldErrHelp(t *testing.T) {
	// The premise of the mapping: ContinueOnError turns -h and -help into
	// flag.ErrHelp from Parse.
	for _, arg := range []string{"-h", "-help", "--help"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		err := fs.Parse([]string{arg})
		if !IsHelp(err) {
			t.Errorf("Parse(%q) = %v, want flag.ErrHelp", arg, err)
		}
		if got := ExitCode(err); got != 0 {
			t.Errorf("ExitCode(Parse(%q)) = %d, want 0", arg, got)
		}
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse([]string{"-no-such-flag"}); IsHelp(err) || ExitCode(err) != 1 {
		t.Errorf("unknown flag: IsHelp=%v ExitCode=%d, want false/1", IsHelp(err), ExitCode(err))
	}
}
