package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"help", flag.ErrHelp, 0},
		{"wrapped help", fmt.Errorf("parse: %w", flag.ErrHelp), 0},
		{"plain error", errors.New("boom"), 1},
		{"usage error", Usagef("unknown format %q", "pdf"), 2},
		{"wrapped usage", fmt.Errorf("crserve: %w", Usage(errors.New("bad flag"))), 2},
		{"usage-wrapped help stays help", Usage(flag.ErrHelp), 0},
		{"usage of nil", Usage(nil), 0},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestUsage(t *testing.T) {
	if Usage(nil) != nil {
		t.Error("Usage(nil) should stay nil")
	}
	base := errors.New("boom")
	wrapped := Usage(base)
	if !IsUsage(wrapped) {
		t.Error("Usage result not detected by IsUsage")
	}
	if !errors.Is(wrapped, base) {
		t.Error("Usage must preserve the wrapped error chain")
	}
	if IsUsage(base) {
		t.Error("plain error misdetected as usage")
	}
	if wrapped.Error() != "boom" {
		t.Errorf("Usage changed the message: %q", wrapped.Error())
	}
}

func TestHelpFlagsYieldErrHelp(t *testing.T) {
	// The premise of the mapping: ContinueOnError turns -h and -help into
	// flag.ErrHelp from Parse, which must stay exit 0 even when a command
	// wraps every parse error with Usage.
	for _, arg := range []string{"-h", "-help", "--help"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		err := fs.Parse([]string{arg})
		if !IsHelp(err) {
			t.Errorf("Parse(%q) = %v, want flag.ErrHelp", arg, err)
		}
		if got := ExitCode(Usage(err)); got != 0 {
			t.Errorf("ExitCode(Usage(Parse(%q))) = %d, want 0", arg, got)
		}
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse([]string{"-no-such-flag"}); IsHelp(err) || ExitCode(Usage(err)) != 2 {
		t.Errorf("unknown flag: IsHelp=%v ExitCode=%d, want false/2", IsHelp(err), ExitCode(Usage(err)))
	}
}
