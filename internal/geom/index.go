package geom

import (
	"errors"
	"math"
)

// Index is a uniform-grid spatial index over a fixed point set. It
// accelerates nearest-active-neighbour queries from O(k) to (near) O(1) for
// bounded-density deployments, which makes per-round link class tracking
// affordable on large networks.
//
// The index is immutable over positions; the active set is passed per query
// so one index serves a whole execution.
type Index struct {
	pts        []Point
	cell       float64
	minX, minY float64
	cols, rows int
	// buckets[row*cols+col] lists the indices of the points in that cell.
	buckets [][]int
}

// NewIndex builds an index with the given cell size (> 0). Deployments are
// normalised to shortest link 1, so a cell size around 2 keeps buckets small
// on constant-density deployments.
func NewIndex(pts []Point, cell float64) (*Index, error) {
	if len(pts) == 0 {
		return nil, errors.New("geom: index needs at least one point")
	}
	if !(cell > 0) || math.IsInf(cell, 1) {
		return nil, errors.New("geom: cell size must be positive and finite")
	}
	ix := &Index{pts: pts, cell: cell, minX: math.Inf(1), minY: math.Inf(1)}
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		ix.minX = math.Min(ix.minX, p.X)
		ix.minY = math.Min(ix.minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ix.cols = int((maxX-ix.minX)/cell) + 1
	ix.rows = int((maxY-ix.minY)/cell) + 1
	ix.buckets = make([][]int, ix.cols*ix.rows)
	for i, p := range pts {
		c := ix.cellOf(p)
		ix.buckets[c] = append(ix.buckets[c], i)
	}
	return ix, nil
}

// NewIndexCapped builds an index whose grid never exceeds maxCells cells,
// doubling the cell size from the given starting value until the grid fits.
// Sparse-but-spread deployments (e.g. exponential chains, whose extent grows
// geometrically in n) would otherwise demand a bucket array proportional to
// their area rather than their population. The resulting cell size is a pure
// function of (pts, cell, maxCells), so callers building deterministic
// engines on top of the index keep their determinism. maxCells must be ≥ 1.
func NewIndexCapped(pts []Point, cell float64, maxCells int) (*Index, error) {
	if maxCells < 1 {
		return nil, errors.New("geom: maxCells must be ≥ 1")
	}
	if !(cell > 0) || math.IsInf(cell, 1) {
		return nil, errors.New("geom: cell size must be positive and finite")
	}
	if len(pts) == 0 {
		return nil, errors.New("geom: index needs at least one point")
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	for {
		cols := int((maxX-minX)/cell) + 1
		rows := int((maxY-minY)/cell) + 1
		if cols > 0 && rows > 0 && cols <= maxCells && rows <= maxCells/cols {
			return NewIndex(pts, cell)
		}
		cell *= 2
		if math.IsInf(cell, 1) {
			return nil, errors.New("geom: cell size overflow while capping grid")
		}
	}
}

// Grid returns the index's grid shape: column count, row count, and cell
// size. Cells are addressed as (col, row) with col in [0, cols) and row in
// [0, rows).
func (ix *Index) Grid() (cols, rows int, cell float64) {
	return ix.cols, ix.rows, ix.cell
}

// CellAt returns the (col, row) coordinates of the grid cell containing p,
// clamped to the grid like every internal lookup (points on the max edge
// land in the last cell).
func (ix *Index) CellAt(p Point) (col, row int) {
	col = int((p.X - ix.minX) / ix.cell)
	row = int((p.Y - ix.minY) / ix.cell)
	if col < 0 {
		col = 0
	} else if col >= ix.cols {
		col = ix.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= ix.rows {
		row = ix.rows - 1
	}
	return col, row
}

// CellPoints returns the indices of the points in cell (col, row), in
// ascending index order (points are inserted in index order at build time).
// The returned slice aliases the index's storage and must not be mutated.
// Out-of-grid coordinates return nil.
//
//crlint:hotpath
func (ix *Index) CellPoints(col, row int) []int {
	if col < 0 || col >= ix.cols || row < 0 || row >= ix.rows {
		return nil
	}
	return ix.buckets[row*ix.cols+col]
}

// CellMaxDist2 returns an upper bound on the squared distance from p to any
// point inside cell (col, row): the squared distance to the cell's farthest
// corner. It is used by conservative far-field bounds, where an upper bound
// on distance gives a lower bound on received signal.
//
//crlint:hotpath
func (ix *Index) CellMaxDist2(col, row int, p Point) float64 {
	x0 := ix.minX + float64(col)*ix.cell
	y0 := ix.minY + float64(row)*ix.cell
	dx := p.X - x0
	if d := x0 + ix.cell - p.X; d > dx {
		dx = d
	}
	dy := p.Y - y0
	if d := y0 + ix.cell - p.Y; d > dy {
		dy = d
	}
	return dx*dx + dy*dy
}

func (ix *Index) cellOf(p Point) int {
	col := int((p.X - ix.minX) / ix.cell)
	row := int((p.Y - ix.minY) / ix.cell)
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	return row*ix.cols + col
}

// Nearest returns the index of the nearest active point to pts[u]
// (excluding u itself) and the distance, or (−1, +Inf) when no other active
// point exists. It expands square rings of cells outward and stops as soon
// as no unexplored cell can contain a closer point.
func (ix *Index) Nearest(u int, active []bool) (int, float64) {
	p := ix.pts[u]
	col := int((p.X - ix.minX) / ix.cell)
	row := int((p.Y - ix.minY) / ix.cell)
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	best := math.Inf(1) // squared distance
	bestV := -1
	maxRing := ix.cols
	if ix.rows > maxRing {
		maxRing = ix.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Points in rings beyond `ring` are at distance ≥ (ring−1)·cell, so
		// once the best found distance is below that floor the scan is done.
		if bestV >= 0 {
			floor := float64(ring-1) * ix.cell
			if floor > 0 && best <= floor*floor {
				break
			}
		}
		scanned := false
		for dr := -ring; dr <= ring; dr++ {
			r := row + dr
			if r < 0 || r >= ix.rows {
				continue
			}
			for dc := -ring; dc <= ring; dc++ {
				// Only the ring's perimeter (interior scanned previously).
				if dr > -ring && dr < ring && dc > -ring && dc < ring {
					continue
				}
				c := col + dc
				if c < 0 || c >= ix.cols {
					continue
				}
				scanned = true
				for _, v := range ix.buckets[r*ix.cols+c] {
					if v == u || !active[v] {
						continue
					}
					if d2 := p.Dist2(ix.pts[v]); d2 < best {
						best, bestV = d2, v
					}
				}
			}
		}
		if !scanned && bestV >= 0 {
			break
		}
	}
	if bestV < 0 {
		return -1, math.Inf(1)
	}
	return bestV, math.Sqrt(best)
}

// ComputeLinkClassesIndexed is ComputeLinkClasses backed by a spatial index:
// identical output, O(k) queries instead of O(k²) scans on bounded-density
// deployments. The index must have been built over the same pts slice.
func ComputeLinkClassesIndexed(pts []Point, active []bool, ix *Index) *LinkClasses {
	n := len(pts)
	lc := &LinkClasses{
		Class:       make([]int, n),
		Nearest:     make([]int, n),
		NearestDist: make([]float64, n),
	}
	activeCount := 0
	for u := range pts {
		lc.Class[u] = -1
		lc.Nearest[u] = -1
		lc.NearestDist[u] = math.Inf(1)
		if active[u] {
			activeCount++
		}
	}
	if activeCount < 2 {
		return lc
	}
	maxClass := -1
	for u := range pts {
		if !active[u] {
			continue
		}
		v, d := ix.Nearest(u, active)
		c := LinkClassOf(d)
		lc.Class[u] = c
		lc.Nearest[u] = v
		lc.NearestDist[u] = d
		if c > maxClass {
			maxClass = c
		}
	}
	lc.Sizes = make([]int, maxClass+1)
	for u := range pts {
		if active[u] {
			lc.Sizes[lc.Class[u]]++
		}
	}
	return lc
}
