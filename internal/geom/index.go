package geom

import (
	"errors"
	"math"
)

// Index is a uniform-grid spatial index over a fixed point set. It
// accelerates nearest-active-neighbour queries from O(k) to (near) O(1) for
// bounded-density deployments, which makes per-round link class tracking
// affordable on large networks.
//
// The index is immutable over positions; the active set is passed per query
// so one index serves a whole execution.
type Index struct {
	pts        []Point
	cell       float64
	minX, minY float64
	cols, rows int
	// buckets[row*cols+col] lists the indices of the points in that cell.
	buckets [][]int
}

// NewIndex builds an index with the given cell size (> 0). Deployments are
// normalised to shortest link 1, so a cell size around 2 keeps buckets small
// on constant-density deployments.
func NewIndex(pts []Point, cell float64) (*Index, error) {
	if len(pts) == 0 {
		return nil, errors.New("geom: index needs at least one point")
	}
	if !(cell > 0) || math.IsInf(cell, 1) {
		return nil, errors.New("geom: cell size must be positive and finite")
	}
	ix := &Index{pts: pts, cell: cell, minX: math.Inf(1), minY: math.Inf(1)}
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		ix.minX = math.Min(ix.minX, p.X)
		ix.minY = math.Min(ix.minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ix.cols = int((maxX-ix.minX)/cell) + 1
	ix.rows = int((maxY-ix.minY)/cell) + 1
	ix.buckets = make([][]int, ix.cols*ix.rows)
	for i, p := range pts {
		c := ix.cellOf(p)
		ix.buckets[c] = append(ix.buckets[c], i)
	}
	return ix, nil
}

func (ix *Index) cellOf(p Point) int {
	col := int((p.X - ix.minX) / ix.cell)
	row := int((p.Y - ix.minY) / ix.cell)
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	return row*ix.cols + col
}

// Nearest returns the index of the nearest active point to pts[u]
// (excluding u itself) and the distance, or (−1, +Inf) when no other active
// point exists. It expands square rings of cells outward and stops as soon
// as no unexplored cell can contain a closer point.
func (ix *Index) Nearest(u int, active []bool) (int, float64) {
	p := ix.pts[u]
	col := int((p.X - ix.minX) / ix.cell)
	row := int((p.Y - ix.minY) / ix.cell)
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	best := math.Inf(1) // squared distance
	bestV := -1
	maxRing := ix.cols
	if ix.rows > maxRing {
		maxRing = ix.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Points in rings beyond `ring` are at distance ≥ (ring−1)·cell, so
		// once the best found distance is below that floor the scan is done.
		if bestV >= 0 {
			floor := float64(ring-1) * ix.cell
			if floor > 0 && best <= floor*floor {
				break
			}
		}
		scanned := false
		for dr := -ring; dr <= ring; dr++ {
			r := row + dr
			if r < 0 || r >= ix.rows {
				continue
			}
			for dc := -ring; dc <= ring; dc++ {
				// Only the ring's perimeter (interior scanned previously).
				if dr > -ring && dr < ring && dc > -ring && dc < ring {
					continue
				}
				c := col + dc
				if c < 0 || c >= ix.cols {
					continue
				}
				scanned = true
				for _, v := range ix.buckets[r*ix.cols+c] {
					if v == u || !active[v] {
						continue
					}
					if d2 := p.Dist2(ix.pts[v]); d2 < best {
						best, bestV = d2, v
					}
				}
			}
		}
		if !scanned && bestV >= 0 {
			break
		}
	}
	if bestV < 0 {
		return -1, math.Inf(1)
	}
	return bestV, math.Sqrt(best)
}

// ComputeLinkClassesIndexed is ComputeLinkClasses backed by a spatial index:
// identical output, O(k) queries instead of O(k²) scans on bounded-density
// deployments. The index must have been built over the same pts slice.
func ComputeLinkClassesIndexed(pts []Point, active []bool, ix *Index) *LinkClasses {
	n := len(pts)
	lc := &LinkClasses{
		Class:       make([]int, n),
		Nearest:     make([]int, n),
		NearestDist: make([]float64, n),
	}
	activeCount := 0
	for u := range pts {
		lc.Class[u] = -1
		lc.Nearest[u] = -1
		lc.NearestDist[u] = math.Inf(1)
		if active[u] {
			activeCount++
		}
	}
	if activeCount < 2 {
		return lc
	}
	maxClass := -1
	for u := range pts {
		if !active[u] {
			continue
		}
		v, d := ix.Nearest(u, active)
		c := LinkClassOf(d)
		lc.Class[u] = c
		lc.Nearest[u] = v
		lc.NearestDist[u] = d
		if c > maxClass {
			maxClass = c
		}
	}
	lc.Sizes = make([]int, maxClass+1)
	for u := range pts {
		if active[u] {
			lc.Sizes[lc.Class[u]]++
		}
	}
	return lc
}
