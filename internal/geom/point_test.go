package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v, want (4, -2)", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v, want (-2, 6)", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v, want (2, 4)", got)
	}
	if got := q.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDistKnownValues(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{-1, -1}, Point{-1, 1}, 2},
		{Point{1e9, 0}, Point{1e9, 7}, 7},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// clampPoint maps arbitrary quick-generated floats into a sane finite range
// so property tests exercise geometry, not float overflow.
func clampPoint(p Point) Point {
	c := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	return Point{c(p.X), c(p.Y)}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(a, b Point) bool {
		a, b = clampPoint(a), clampPoint(b)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c Point) bool {
		a, b, c = clampPoint(a), clampPoint(b), clampPoint(c)
		// Allow a relative epsilon for floating-point round-off.
		lhs := a.Dist(c)
		rhs := a.Dist(b) + b.Dist(c)
		return lhs <= rhs*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistNonNegativeAndIdentityProperty(t *testing.T) {
	f := func(a, b Point) bool {
		a, b = clampPoint(a), clampPoint(b)
		d := a.Dist(b)
		if d < 0 {
			return false
		}
		if a == b && d != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2ConsistentWithDistProperty(t *testing.T) {
	f := func(a, b Point) bool {
		a, b = clampPoint(a), clampPoint(b)
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxPairwiseDist(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {5, 0}, {5, 12}}
	minD, i, j := MinPairwiseDist(pts)
	if minD != 1 || i != 0 || j != 1 {
		t.Errorf("MinPairwiseDist = (%v, %d, %d), want (1, 0, 1)", minD, i, j)
	}
	maxD, i, j := MaxPairwiseDist(pts)
	want := Point{0, 0}.Dist(Point{5, 12}) // 13
	if maxD != want || i != 0 || j != 3 {
		t.Errorf("MaxPairwiseDist = (%v, %d, %d), want (%v, 0, 3)", maxD, i, j, want)
	}
}

func TestMinMaxPairwiseDistDegenerate(t *testing.T) {
	if d, i, j := MinPairwiseDist(nil); !math.IsInf(d, 1) || i != -1 || j != -1 {
		t.Errorf("MinPairwiseDist(nil) = (%v, %d, %d)", d, i, j)
	}
	if d, i, j := MinPairwiseDist([]Point{{1, 1}}); !math.IsInf(d, 1) || i != -1 || j != -1 {
		t.Errorf("MinPairwiseDist(single) = (%v, %d, %d)", d, i, j)
	}
	if d, i, j := MaxPairwiseDist([]Point{{1, 1}}); d != 0 || i != -1 || j != -1 {
		t.Errorf("MaxPairwiseDist(single) = (%v, %d, %d)", d, i, j)
	}
}

func TestNearestNeighbor(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {3, 0}}
	j, d := NearestNeighbor(pts, 0)
	if j != 1 || d != 2 {
		t.Errorf("NearestNeighbor(0) = (%d, %v), want (1, 2)", j, d)
	}
	j, d = NearestNeighbor(pts, 1)
	if j != 2 || d != 1 {
		t.Errorf("NearestNeighbor(1) = (%d, %v), want (2, 1)", j, d)
	}
	j, d = NearestNeighbor([]Point{{1, 1}}, 0)
	if j != -1 || !math.IsInf(d, 1) {
		t.Errorf("NearestNeighbor(single) = (%d, %v), want (-1, +Inf)", j, d)
	}
}

func TestNearestNeighborNeverSelfProperty(t *testing.T) {
	f := func(raw []Point, pick uint8) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, p := range raw {
			pts[i] = clampPoint(p)
		}
		i := int(pick) % len(pts)
		j, _ := NearestNeighbor(pts, i)
		return j != i && j >= 0 && j < len(pts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
