package geom

import (
	"strings"
	"testing"
)

func TestReadPointsBasic(t *testing.T) {
	pts, err := ReadPoints(strings.NewReader("x,y\n0,0\n1.5,-2\n3e2,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{{X: 0, Y: 0}, {X: 1.5, Y: -2}, {X: 300, Y: 4}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestReadPointsWithoutHeader(t *testing.T) {
	pts, err := ReadPoints(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0] != (Point{X: 1, Y: 2}) {
		t.Errorf("points = %v", pts)
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := ReadPoints(strings.NewReader("x,y\n1,2\nnope,4\n")); err == nil {
		t.Error("bad coordinate in body accepted")
	}
	if _, err := ReadPoints(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("3-field record accepted")
	}
	pts, err := ReadPoints(strings.NewReader(""))
	if err != nil || len(pts) != 0 {
		t.Errorf("empty input: %v, %v", pts, err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, err := UniformDisk(4, 25)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WritePoints(&b, d.Points); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Points) {
		t.Fatalf("round trip: %d points, want %d", len(got), len(d.Points))
	}
	for i := range got {
		if got[i] != d.Points[i] {
			t.Errorf("point %d = %v, want %v (exact round trip expected with 'g -1')", i, got[i], d.Points[i])
		}
	}
}
