package geom

// GreedySeparatedSubset returns a maximal subset of the candidate indices in
// which every two chosen points are more than minSep apart, built greedily in
// candidate order. By the standard circle-packing argument (Lemma 2 of the
// paper) the greedy subset contains a constant fraction of the candidates
// when the candidates themselves are at pairwise distance ≥ minSep/(s+1) for
// the relevant separation constant s.
func GreedySeparatedSubset(pts []Point, candidates []int, minSep float64) []int {
	sep2 := minSep * minSep
	chosen := make([]int, 0, len(candidates))
	for _, u := range candidates {
		ok := true
		for _, v := range chosen {
			if pts[u].Dist2(pts[v]) <= sep2 {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, u)
		}
	}
	return chosen
}

// PairwiseSeparated reports whether every two of the given points are more
// than minSep apart.
func PairwiseSeparated(pts []Point, idx []int, minSep float64) bool {
	sep2 := minSep * minSep
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			if pts[idx[a]].Dist2(pts[idx[b]]) <= sep2 {
				return false
			}
		}
	}
	return true
}
