package geom

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadPoints parses node positions from CSV: one "x,y" record per line, with
// an optional "x,y" header. It is the entry point for simulating user-
// supplied deployments (crsim -deploy-file).
func ReadPoints(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	var pts []Point
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("geom: read points: %w", err)
		}
		line++
		x, errX := strconv.ParseFloat(rec[0], 64)
		y, errY := strconv.ParseFloat(rec[1], 64)
		if errX != nil || errY != nil {
			if line == 1 {
				continue // tolerate a header row
			}
			return nil, fmt.Errorf("geom: record %d: cannot parse %q as coordinates", line, rec)
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return pts, nil
}

// WritePoints writes node positions as CSV with an "x,y" header, the inverse
// of ReadPoints.
func WritePoints(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y"}); err != nil {
		return fmt.Errorf("geom: write points: %w", err)
	}
	for _, p := range pts {
		rec := []string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("geom: write points: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
