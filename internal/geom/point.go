// Package geom provides the two-dimensional Euclidean substrate the paper's
// model lives in: points, distances, exponential annuli, deployments
// (placements of wireless nodes in the plane), link-length statistics, and
// link classes over the active nodes of an execution.
//
// Conventions follow Section 2 of the paper: deployments are normalised so
// the shortest link has length 1, R denotes the ratio of the longest to the
// shortest link, and link class d_i contains the active nodes whose nearest
// active neighbour lies at distance in [2^i, 2^{i+1}).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional Euclidean plane.
type Point struct {
	X, Y float64
}

// Add returns the vector sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as nearest-neighbour scans.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// MinPairwiseDist returns the smallest distance between any two distinct
// points, and the indices achieving it. It returns +Inf and (-1, -1) when
// fewer than two points are given.
func MinPairwiseDist(pts []Point) (d float64, i, j int) {
	d, i, j = math.Inf(1), -1, -1
	best := math.Inf(1)
	for a := range pts {
		for b := a + 1; b < len(pts); b++ {
			if d2 := pts[a].Dist2(pts[b]); d2 < best {
				best, i, j = d2, a, b
			}
		}
	}
	if i >= 0 {
		d = math.Sqrt(best)
	}
	return d, i, j
}

// MaxPairwiseDist returns the largest distance between any two distinct
// points, and the indices achieving it. It returns 0 and (-1, -1) when fewer
// than two points are given.
func MaxPairwiseDist(pts []Point) (d float64, i, j int) {
	i, j = -1, -1
	best := -1.0
	for a := range pts {
		for b := a + 1; b < len(pts); b++ {
			if d2 := pts[a].Dist2(pts[b]); d2 > best {
				best, i, j = d2, a, b
			}
		}
	}
	if i < 0 {
		return 0, -1, -1
	}
	return math.Sqrt(best), i, j
}

// NearestNeighbor returns the index of the point in pts nearest to pts[i]
// (excluding i itself) and the distance to it. It returns (-1, +Inf) when
// pts has fewer than two points.
func NearestNeighbor(pts []Point, i int) (j int, d float64) {
	j, d = -1, math.Inf(1)
	best := math.Inf(1)
	for b := range pts {
		if b == i {
			continue
		}
		if d2 := pts[i].Dist2(pts[b]); d2 < best {
			best, j = d2, b
		}
	}
	if j >= 0 {
		d = math.Sqrt(best)
	}
	return j, d
}
