package geom

import (
	"testing"
	"testing/quick"
)

func TestSubsetBasic(t *testing.T) {
	d, err := NewDeployment([]Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 10, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Original normalises by min distance 2: R = 5.
	if d.R != 5 {
		t.Fatalf("R = %v, want 5", d.R)
	}
	sub, err := d.Subset([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 {
		t.Errorf("N = %d, want 2", sub.N())
	}
	// The pair re-normalises to distance 1, R = 1.
	if sub.R != 1 {
		t.Errorf("subset R = %v, want 1", sub.R)
	}
}

func TestSubsetValidation(t *testing.T) {
	d, err := UniformDisk(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subset([]int{3}); err == nil {
		t.Error("single index accepted")
	}
	if _, err := d.Subset([]int{0, 10}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := d.Subset([]int{-1, 2}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := d.Subset([]int{2, 2}); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestRandomSubset(t *testing.T) {
	idx, err := RandomSubset(5, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 7 {
		t.Fatalf("len = %d, want 7", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 20 || seen[i] {
			t.Fatalf("invalid or duplicate index %d in %v", i, idx)
		}
		seen[i] = true
	}
	if _, err := RandomSubset(1, 5, 6); err == nil {
		t.Error("m > n accepted")
	}
	if _, err := RandomSubset(1, 5, -1); err == nil {
		t.Error("negative m accepted")
	}
	// Determinism.
	a, _ := RandomSubset(9, 30, 10)
	b, _ := RandomSubset(9, 30, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomSubset not deterministic")
		}
	}
}

// TestSubsetPreservesRelativeGeometry: distances in the subset equal the
// original distances divided by the subset's own minimum distance (pure
// rescale, no distortion).
func TestSubsetPreservesRelativeGeometry(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := 4 + int(nRaw%20)
		m := 2 + int(mRaw)%(n-2)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		idx, err := RandomSubset(seed+1, n, m)
		if err != nil {
			return false
		}
		sub, err := d.Subset(idx)
		if err != nil {
			return false
		}
		// Ratios of distances are scale-invariant: compare a pair ratio.
		if m < 3 {
			return true
		}
		origAB := d.Points[idx[0]].Dist(d.Points[idx[1]])
		origAC := d.Points[idx[0]].Dist(d.Points[idx[2]])
		subAB := sub.Points[0].Dist(sub.Points[1])
		subAC := sub.Points[0].Dist(sub.Points[2])
		if origAC == 0 || subAC == 0 {
			return false
		}
		ratioOrig := origAB / origAC
		ratioSub := subAB / subAC
		diff := ratioOrig - ratioSub
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+ratioOrig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
