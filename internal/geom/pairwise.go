package geom

// PopulatedLinkClasses returns the number of link classes that contain at
// least one of the (n choose 2) pairwise links of the deployment — the
// sense in which the paper's footnote 3 counts a network's link classes
// ("when we say a network has l link classes, we mean there are l link
// classes that contain at least one of the (n 2) possible links"). The lower
// bound of Theorem 12 is stated for networks with O(log n) link classes in
// exactly this sense.
//
// The scan is O(n²); deployments used in experiments are small enough for
// this to be incidental.
func PopulatedLinkClasses(pts []Point) int {
	seen := map[int]bool{}
	for a := range pts {
		for b := a + 1; b < len(pts); b++ {
			seen[LinkClassOf(pts[a].Dist(pts[b]))] = true
		}
	}
	return len(seen)
}

// PairwiseClassHistogram returns, for each link class index, how many of the
// (n choose 2) pairwise links fall into it; the slice is truncated at the
// largest populated class. Useful for characterising workloads in
// experiment write-ups.
func PairwiseClassHistogram(pts []Point) []int {
	var counts []int
	for a := range pts {
		for b := a + 1; b < len(pts); b++ {
			c := LinkClassOf(pts[a].Dist(pts[b]))
			for len(counts) <= c {
				counts = append(counts, 0)
			}
			counts[c]++
		}
	}
	return counts
}
