package geom

import (
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/xrand"
)

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestLinkClassOf(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{1, 0}, {1.5, 0}, {1.999, 0},
		{2, 1}, {3.9, 1},
		{4, 2}, {7.99, 2},
		{8, 3},
		{0.999999, 0}, // float slack clamps to class 0
	}
	for _, c := range cases {
		if got := LinkClassOf(c.d); got != c.want {
			t.Errorf("LinkClassOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestComputeLinkClassesSimple(t *testing.T) {
	// Nodes at 0, 1, 10 on a line: classes are d_0 (nodes 0, 1) and d_3
	// (node 2: nearest neighbour at distance 9 ∈ [8, 16)).
	pts := []Point{{0, 0}, {1, 0}, {10, 0}}
	lc := ComputeLinkClasses(pts, allActive(3))
	if lc.Class[0] != 0 || lc.Class[1] != 0 || lc.Class[2] != 3 {
		t.Errorf("classes = %v, want [0 0 3]", lc.Class)
	}
	if lc.Nearest[0] != 1 || lc.Nearest[1] != 0 || lc.Nearest[2] != 1 {
		t.Errorf("nearest = %v, want [1 0 1]", lc.Nearest)
	}
	wantSizes := []int{2, 0, 0, 1}
	for i, w := range wantSizes {
		if lc.Sizes[i] != w {
			t.Errorf("Sizes = %v, want %v", lc.Sizes, wantSizes)
			break
		}
	}
	if lc.MaxClass() != 3 {
		t.Errorf("MaxClass = %d, want 3", lc.MaxClass())
	}
	if lc.SizeBelow(3) != 2 {
		t.Errorf("SizeBelow(3) = %d, want 2", lc.SizeBelow(3))
	}
	if lc.SizeBelow(0) != 0 {
		t.Errorf("SizeBelow(0) = %d, want 0", lc.SizeBelow(0))
	}
	if lc.SizeBelow(100) != 3 {
		t.Errorf("SizeBelow(100) = %d, want 3", lc.SizeBelow(100))
	}
}

func TestComputeLinkClassesRespectsActiveMask(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {10, 0}}
	active := []bool{true, false, true}
	lc := ComputeLinkClasses(pts, active)
	// With node 1 inactive, node 0's nearest active neighbour is node 2 at
	// distance 10 (class 3); node 1 belongs to no class.
	if lc.Class[1] != -1 {
		t.Errorf("inactive node has class %d, want -1", lc.Class[1])
	}
	if lc.Class[0] != 3 || lc.Class[2] != 3 {
		t.Errorf("classes = %v, want [3 -1 3]", lc.Class)
	}
	if lc.Nearest[0] != 2 {
		t.Errorf("Nearest[0] = %d, want 2", lc.Nearest[0])
	}
}

func TestComputeLinkClassesLastNode(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}}
	active := []bool{true, false}
	lc := ComputeLinkClasses(pts, active)
	if lc.Class[0] != -1 {
		t.Errorf("sole active node has class %d, want -1 (no class)", lc.Class[0])
	}
	if lc.Nearest[0] != -1 || !math.IsInf(lc.NearestDist[0], 1) {
		t.Errorf("sole active node nearest = (%d, %v)", lc.Nearest[0], lc.NearestDist[0])
	}
	if len(lc.Sizes) != 0 {
		t.Errorf("Sizes = %v, want empty", lc.Sizes)
	}
	if lc.MaxClass() != -1 {
		t.Errorf("MaxClass = %d, want -1", lc.MaxClass())
	}
}

// TestLinkClassesPartitionProperty: over random deployments, the link
// classes partition exactly the active nodes with ≥2 active, class indices
// lie in [0, log2 R], and Sizes sums to the active count.
func TestLinkClassesPartitionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, maskSeed uint64) bool {
		n := 2 + int(nRaw%30)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		rng := xrand.New(maskSeed)
		active := make([]bool, n)
		count := 0
		for i := range active {
			active[i] = rng.Float64() < 0.7
			if active[i] {
				count++
			}
		}
		lc := ComputeLinkClasses(d.Points, active)
		classed := 0
		for u := range active {
			if !active[u] {
				if lc.Class[u] != -1 {
					return false
				}
				continue
			}
			if count < 2 {
				if lc.Class[u] != -1 {
					return false
				}
				continue
			}
			c := lc.Class[u]
			if c < 0 || float64(c) > math.Log2(d.R)+1e-9 {
				return false
			}
			if v := lc.Nearest[u]; v < 0 || !active[v] || v == u {
				return false
			}
			classed++
		}
		total := 0
		for _, s := range lc.Sizes {
			total += s
		}
		return total == classed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAnnulusCount(t *testing.T) {
	// u at origin; ring boundaries for i=0: (1,2], (2,4], (4,8].
	pts := []Point{
		{0, 0},
		{1.5, 0}, // t=0 annulus
		{2, 0},   // boundary: distance exactly 2 belongs to t=0 (inner-exclusive, outer-inclusive)
		{3, 0},   // t=1
		{5, 0},   // t=2
		{0.5, 0}, // inside B(u, 2^i=1): in no annulus for i=0
	}
	active := allActive(len(pts))
	if got := AnnulusCount(pts, active, 0, 0, 0); got != 2 {
		t.Errorf("t=0 count = %d, want 2", got)
	}
	if got := AnnulusCount(pts, active, 0, 0, 1); got != 1 {
		t.Errorf("t=1 count = %d, want 1", got)
	}
	if got := AnnulusCount(pts, active, 0, 0, 2); got != 1 {
		t.Errorf("t=2 count = %d, want 1", got)
	}
	// Inactive nodes are not counted.
	active[1] = false
	if got := AnnulusCount(pts, active, 0, 0, 0); got != 1 {
		t.Errorf("t=0 count after deactivation = %d, want 1", got)
	}
	// Scaling i shifts the rings: for i=1 the t=0 annulus is (2,4].
	active[1] = true
	if got := AnnulusCount(pts, active, 0, 1, 0); got != 1 {
		t.Errorf("i=1,t=0 count = %d, want 1", got)
	}
}

func TestGoodBound(t *testing.T) {
	// For α = 4: ε = 1, capacity = 96·2^{2t}.
	if got := GoodBound(4, 0); got != 96 {
		t.Errorf("GoodBound(4, 0) = %v, want 96", got)
	}
	if got := GoodBound(4, 1); got != 192*2 {
		t.Errorf("GoodBound(4, 1) = %v, want 384", got)
	}
	// For α = 3: capacity = 96·2^{1.5t}.
	want := 96 * math.Pow(2, 1.5)
	if got := GoodBound(3, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("GoodBound(3, 1) = %v, want %v", got, want)
	}
}

func TestIsGoodSparseNodeIsGood(t *testing.T) {
	// Two distant nodes: trivially good (annuli nearly empty).
	pts := []Point{{0, 0}, {100, 0}}
	active := allActive(2)
	if !IsGood(pts, active, 0, 6, 3, MaxAnnulusIndex(100, 6)) {
		t.Error("isolated node should be good")
	}
}

func TestIsGoodDenseClusterIsBad(t *testing.T) {
	// Pack 200 extra active nodes into the t=0 annulus of u for class 0
	// (distances in (1, 2]): exceeds the 96-node capacity for any α, so u
	// must not be good.
	rng := xrand.New(99)
	pts := []Point{{0, 0}}
	for len(pts) < 201 {
		r := 1.1 + rng.Float64()*0.8
		th := rng.Float64() * 2 * math.Pi
		pts = append(pts, Point{r * math.Cos(th), r * math.Sin(th)})
	}
	active := allActive(len(pts))
	if IsGood(pts, active, 0, 0, 3, 4) {
		t.Error("node with 200 annulus neighbours should not be good")
	}
}

func TestMaxAnnulusIndex(t *testing.T) {
	if got := MaxAnnulusIndex(0.5, 0); got != 0 {
		t.Errorf("R<1: got %d, want 0", got)
	}
	if got := MaxAnnulusIndex(1024, 0); got != 10 {
		t.Errorf("R=1024,i=0: got %d, want 10", got)
	}
	if got := MaxAnnulusIndex(1024, 8); got != 2 {
		t.Errorf("R=1024,i=8: got %d, want 2", got)
	}
	if got := MaxAnnulusIndex(4, 10); got != 0 {
		t.Errorf("i beyond R: got %d, want 0", got)
	}
}

func TestGreedySeparatedSubset(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2.5, 0}, {10, 0}}
	got := GreedySeparatedSubset(pts, []int{0, 1, 2, 3}, 2)
	// Greedy keeps 0, rejects 1 (dist 1 ≤ 2) and 2 (dist 2.5 > 2 from 0 →
	// kept), then 3.
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("subset = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subset = %v, want %v", got, want)
		}
	}
	if !PairwiseSeparated(pts, got, 2) {
		t.Error("greedy subset not pairwise separated")
	}
	if PairwiseSeparated(pts, []int{0, 1}, 2) {
		t.Error("PairwiseSeparated false negative")
	}
}

// TestGreedySeparatedSubsetProperties: the result is always separated,
// maximal (every rejected candidate conflicts with a chosen one), and a
// subset of the candidates.
func TestGreedySeparatedSubsetProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8, sepRaw uint8) bool {
		n := 2 + int(nRaw%40)
		sep := 1 + float64(sepRaw%8)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		cands := make([]int, n)
		for i := range cands {
			cands[i] = i
		}
		chosen := GreedySeparatedSubset(d.Points, cands, sep)
		if !PairwiseSeparated(d.Points, chosen, sep) {
			return false
		}
		inChosen := make(map[int]bool, len(chosen))
		for _, u := range chosen {
			inChosen[u] = true
		}
		for _, u := range cands {
			if inChosen[u] {
				continue
			}
			conflict := false
			for _, v := range chosen {
				if d.Points[u].Dist2(d.Points[v]) <= sep*sep {
					conflict = true
					break
				}
			}
			if !conflict {
				return false // not maximal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSeparatedSubsetConstantFraction checks the Lemma 2 shape: among nodes
// of one link class (pairwise distance ≥ 2^i), the (s+1)·2^i-separated greedy
// subset keeps at least a packing-constant fraction.
func TestSeparatedSubsetConstantFraction(t *testing.T) {
	const n = 400
	rng := xrand.New(5)
	// Place n points with pairwise distance ≥ 1 via rejection on a grid
	// region; these model one link class with i = 0.
	pts := make([]Point, 0, n)
	for len(pts) < n {
		cand := Point{rng.Float64() * 60, rng.Float64() * 60}
		ok := true
		for _, p := range pts {
			if p.Dist2(cand) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	cands := make([]int, n)
	for i := range cands {
		cands[i] = i
	}
	const s = 4.0
	chosen := GreedySeparatedSubset(pts, cands, (s+1)*1)
	// Packing argument: each chosen point eliminates at most
	// (2(s+1)+1)² / 1² ≈ 121 candidates; expect ≥ n/121 chosen. Use a safe
	// slack factor.
	if minWant := n / 200; len(chosen) < minWant {
		t.Errorf("chosen %d of %d, want ≥ %d (constant fraction)", len(chosen), n, minWant)
	}
}
