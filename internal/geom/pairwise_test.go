package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPopulatedLinkClassesSimple(t *testing.T) {
	// Nodes at 0, 1, 5: links 1 (class 0), 4 (class 2), 5 (class 2).
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 0}}
	if got := PopulatedLinkClasses(pts); got != 2 {
		t.Errorf("PopulatedLinkClasses = %d, want 2", got)
	}
	if got := PopulatedLinkClasses(pts[:2]); got != 1 {
		t.Errorf("two nodes: %d, want 1", got)
	}
	if got := PopulatedLinkClasses(nil); got != 0 {
		t.Errorf("empty: %d, want 0", got)
	}
}

func TestPairwiseClassHistogram(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 0}}
	got := PairwiseClassHistogram(pts)
	want := []int{1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("histogram = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", got, want)
		}
	}
	if PairwiseClassHistogram(nil) != nil {
		t.Error("empty input should give nil histogram")
	}
}

// TestPairwisePropertyConsistency: the histogram sums to (n choose 2), its
// populated entries match PopulatedLinkClasses, and every class index is at
// most log2(R) for the normalised deployment.
func TestPairwisePropertyConsistency(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%30)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		hist := PairwiseClassHistogram(d.Points)
		total, populated := 0, 0
		for _, c := range hist {
			total += c
			if c > 0 {
				populated++
			}
		}
		if total != n*(n-1)/2 {
			return false
		}
		if populated != PopulatedLinkClasses(d.Points) {
			return false
		}
		return float64(len(hist)-1) <= math.Log2(d.R)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExponentialChainPopulatesExactlyRequestedNearestClasses: the chain's
// nearest-neighbour classes are [0, classes); the pairwise census adds the
// long inter-pair links on top.
func TestExponentialChainPairwiseCensus(t *testing.T) {
	d, err := ExponentialChain(2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	hist := PairwiseClassHistogram(d.Points)
	for i := 0; i < 5; i++ {
		if hist[i] == 0 {
			t.Errorf("class %d unpopulated in pairwise census: %v", i, hist)
		}
	}
	// The chain also has long links, so the census exceeds 5 classes.
	if PopulatedLinkClasses(d.Points) <= 5 {
		t.Errorf("expected long-link classes beyond the 5 nearest-neighbour ones")
	}
}
