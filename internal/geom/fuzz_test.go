package geom

import (
	"math"
	"testing"
)

// Native Go fuzz targets for the numeric kernels. `go test` runs the seed
// corpus as regular tests; `go test -fuzz FuzzLinkClassOf ./internal/geom`
// explores further.

func FuzzLinkClassOf(f *testing.F) {
	for _, seed := range []float64{0, 0.5, 1, 1.999, 2, 3.9999999999999996, 1e6, 1e300} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, d float64) {
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			t.Skip()
		}
		c := LinkClassOf(d)
		if c < 0 {
			t.Fatalf("LinkClassOf(%v) = %d < 0", d, c)
		}
		// Consistency: the class's nominal interval contains d up to the
		// documented round-off tolerance.
		lo := math.Pow(2, float64(c))
		hi := math.Pow(2, float64(c+1))
		if d > 0 && (d < lo*(1-1e-12) || d >= hi*(1+1e-12)) && d >= 1 {
			t.Fatalf("LinkClassOf(%v) = %d but [2^%d, 2^%d) = [%v, %v)", d, c, c, c+1, lo, hi)
		}
	})
}

func FuzzGoodBound(f *testing.F) {
	f.Add(3.0, 0)
	f.Add(2.1, 5)
	f.Add(6.0, 20)
	f.Fuzz(func(t *testing.T, alpha float64, tt int) {
		if math.IsNaN(alpha) || alpha <= 2 || alpha > 64 || tt < 0 || tt > 64 {
			t.Skip()
		}
		b := GoodBound(alpha, tt)
		if b < 96 {
			t.Fatalf("GoodBound(%v, %d) = %v < 96", alpha, tt, b)
		}
		if tt > 0 && GoodBound(alpha, tt) <= GoodBound(alpha, tt-1) {
			t.Fatalf("GoodBound not increasing in t at (%v, %d)", alpha, tt)
		}
	})
}

func FuzzSubsetIndices(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw uint8) {
		n := 2 + int(nRaw%40)
		m := int(mRaw) % (n + 2) // deliberately allows invalid m > n
		idx, err := RandomSubset(seed, n, m)
		if m > n {
			if err == nil {
				t.Fatalf("RandomSubset(%d, %d) accepted m > n", n, m)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != m {
			t.Fatalf("len = %d, want %d", len(idx), m)
		}
	})
}
