package geom

import (
	"math"
)

// LinkClassOf returns the link class index for a nearest-active-neighbour
// distance d ≥ 1: the i with d ∈ [2^i, 2^{i+1}). A relative tolerance of a
// few ulps absorbs floating-point round-off (e.g. a geometric distance of
// 3.9999999999999996 classifies as class 2, not 1); distances marginally
// below 1 likewise clamp to class 0.
func LinkClassOf(d float64) int {
	const tol = 1 + 4e-15
	d *= tol
	if d < 1 {
		return 0
	}
	return int(math.Floor(math.Log2(d)))
}

// LinkClasses describes the partition of the currently active nodes into the
// paper's link classes d_0, d_1, …: node u belongs to d_i iff its nearest
// active neighbour lies at distance in [2^i, 2^{i+1}).
type LinkClasses struct {
	// Class[u] is the link class of active node u, or -1 if u is inactive or
	// is the only active node (the last node has no nearest active
	// neighbour and belongs to no class, per Section 3.1).
	Class []int
	// Nearest[u] is the index of u's nearest active neighbour (its
	// "partner" candidate), or -1 when undefined.
	Nearest []int
	// NearestDist[u] is the distance to Nearest[u], or +Inf when undefined.
	NearestDist []float64
	// Sizes[i] is n_i, the number of active nodes in class d_i. The slice is
	// truncated to the largest non-empty class.
	Sizes []int
}

// MaxClass returns the largest non-empty class index, or -1 if no active
// node belongs to any class.
func (lc *LinkClasses) MaxClass() int { return len(lc.Sizes) - 1 }

// SizeBelow returns n_{<i}: the total number of active nodes in classes
// strictly smaller than i.
func (lc *LinkClasses) SizeBelow(i int) int {
	total := 0
	for j := 0; j < i && j < len(lc.Sizes); j++ {
		total += lc.Sizes[j]
	}
	return total
}

// ComputeLinkClasses partitions the active nodes of a deployment into link
// classes. active[u] reports whether node u is still active. The computation
// is O(k²) in the number k of active nodes; callers that trace every round
// should expect cost proportional to the (geometrically shrinking) active
// set.
func ComputeLinkClasses(pts []Point, active []bool) *LinkClasses {
	n := len(pts)
	lc := &LinkClasses{
		Class:       make([]int, n),
		Nearest:     make([]int, n),
		NearestDist: make([]float64, n),
	}
	idx := make([]int, 0, n)
	for u := range pts {
		lc.Class[u] = -1
		lc.Nearest[u] = -1
		lc.NearestDist[u] = math.Inf(1)
		if active[u] {
			idx = append(idx, u)
		}
	}
	if len(idx) < 2 {
		return lc
	}
	maxClass := -1
	for _, u := range idx {
		best := math.Inf(1)
		bestV := -1
		for _, v := range idx {
			if v == u {
				continue
			}
			if d2 := pts[u].Dist2(pts[v]); d2 < best {
				best, bestV = d2, v
			}
		}
		d := math.Sqrt(best)
		c := LinkClassOf(d)
		lc.Class[u] = c
		lc.Nearest[u] = bestV
		lc.NearestDist[u] = d
		if c > maxClass {
			maxClass = c
		}
	}
	lc.Sizes = make([]int, maxClass+1)
	for _, u := range idx {
		lc.Sizes[lc.Class[u]]++
	}
	return lc
}

// AnnulusCount returns |A_t^i(u)|: the number of active nodes at distance in
// (2^t·2^i, 2^{t+1}·2^i] from pts[u] — the exponential annulus of Section
// 3.2, defined as B(u, 2^{t+1}·2^i) \ B(u, 2^t·2^i). The node u itself is
// never counted.
func AnnulusCount(pts []Point, active []bool, u, i, t int) int {
	inner := math.Pow(2, float64(t)) * math.Pow(2, float64(i))
	outer := 2 * inner
	inner2, outer2 := inner*inner, outer*outer
	count := 0
	for v := range pts {
		if v == u || !active[v] {
			continue
		}
		d2 := pts[u].Dist2(pts[v])
		if d2 > inner2 && d2 <= outer2 {
			count++
		}
	}
	return count
}

// GoodBound returns the paper's good-node annulus capacity 96·2^{t(α−1−ε)}
// with ε = α/2 − 1; a node u in class d_i is good iff every annulus A_t^i(u)
// holds at most this many active nodes. Note α−1−ε = α/2, so the capacity is
// 96·2^{t·α/2}.
func GoodBound(alpha float64, t int) float64 {
	eps := alpha/2 - 1
	return 96 * math.Pow(2, float64(t)*(alpha-1-eps))
}

// IsGood reports whether active node u (in link class classOf) is good in
// the sense of Definition 1: for every annulus index t ≥ 0 with inner radius
// below the active diameter, |A_t^i(u)| ≤ 96·2^{t(α−1−ε)}.
func IsGood(pts []Point, active []bool, u int, classOf int, alpha float64, maxT int) bool {
	for t := 0; t <= maxT; t++ {
		if float64(AnnulusCount(pts, active, u, classOf, t)) > GoodBound(alpha, t) {
			return false
		}
	}
	return true
}

// MaxAnnulusIndex returns the largest annulus index t that can be non-empty
// for class i in a deployment of link ratio R: the inner radius 2^t·2^i must
// not exceed R. It is the loop bound for IsGood scans.
func MaxAnnulusIndex(r float64, i int) int {
	if r < 1 {
		return 0
	}
	t := int(math.Ceil(math.Log2(r))) - i
	if t < 0 {
		return 0
	}
	return t
}
