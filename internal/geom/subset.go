package geom

import (
	"errors"
	"fmt"

	"fadingcr/internal/xrand"
)

// Subset returns the deployment induced by the given node indices — the
// model's "unknown subset of nodes in V are activated": only the activated
// nodes participate, so the effective network is the sub-deployment over
// their positions. The result is re-normalised (shortest link 1), which is
// without loss of generality by the scale invariance of the SINR equation
// (sinr.TestScaleInvarianceProperty); the activated subset's own R governs
// the O(log n + log R) bound.
//
// Indices must be distinct, in range, and at least two.
func (d *Deployment) Subset(indices []int) (*Deployment, error) {
	if len(indices) < 2 {
		return nil, errors.New("geom: subset needs at least 2 nodes")
	}
	seen := make(map[int]bool, len(indices))
	raw := make([]Point, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(d.Points) {
			return nil, fmt.Errorf("geom: subset index %d outside [0, %d)", i, len(d.Points))
		}
		if seen[i] {
			return nil, fmt.Errorf("geom: duplicate subset index %d", i)
		}
		seen[i] = true
		raw = append(raw, d.Points[i])
	}
	return NewDeployment(raw)
}

// RandomSubset draws m distinct node indices uniformly at random — the
// adversary's activation choice in expectation experiments.
func RandomSubset(seed uint64, n, m int) ([]int, error) {
	if m < 0 || m > n {
		return nil, fmt.Errorf("geom: subset size %d outside [0, %d]", m, n)
	}
	perm := xrand.Perm(xrand.New(seed), n)
	out := append([]int(nil), perm[:m]...)
	return out, nil
}
