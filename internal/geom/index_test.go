package geom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/xrand"
)

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil, 2); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := NewIndex([]Point{{X: 0, Y: 0}}, 0); err == nil {
		t.Error("zero cell accepted")
	}
	if _, err := NewIndex([]Point{{X: 0, Y: 0}}, -1); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := NewIndex([]Point{{X: 0, Y: 0}}, math.Inf(1)); err == nil {
		t.Error("infinite cell accepted")
	}
}

func TestIndexNearestSimple(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 10, Y: 0}}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, true, true}
	v, d := ix.Nearest(0, active)
	if v != 1 || d != 3 {
		t.Errorf("Nearest(0) = (%d, %v), want (1, 3)", v, d)
	}
	// Deactivate node 1: nearest becomes node 2 at distance 10.
	active[1] = false
	v, d = ix.Nearest(0, active)
	if v != 2 || d != 10 {
		t.Errorf("Nearest(0) with 1 inactive = (%d, %v), want (2, 10)", v, d)
	}
	// No other active node.
	active[2] = false
	v, d = ix.Nearest(0, active)
	if v != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest(0) alone = (%d, %v), want (-1, +Inf)", v, d)
	}
}

// TestIndexNearestMatchesBruteForceProperty: the grid index returns exactly
// the brute-force nearest active neighbour on random deployments and masks.
func TestIndexNearestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, cellRaw uint8, maskSeed uint64) bool {
		n := 2 + int(nRaw%60)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		cell := 0.5 + float64(cellRaw%8)
		ix, err := NewIndex(d.Points, cell)
		if err != nil {
			return false
		}
		rng := xrand.New(maskSeed)
		active := make([]bool, n)
		for i := range active {
			active[i] = rng.Float64() < 0.8
		}
		for u := 0; u < n; u++ {
			gotV, gotD := ix.Nearest(u, active)
			wantV, wantD := bruteNearestActive(d.Points, active, u)
			if wantV < 0 {
				if gotV != -1 || !math.IsInf(gotD, 1) {
					return false
				}
				continue
			}
			// Distances must agree exactly; ties may pick different nodes.
			if math.Abs(gotD-wantD) > 1e-12 || gotV < 0 || !active[gotV] || gotV == u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteNearestActive(pts []Point, active []bool, u int) (int, float64) {
	best, bestV := math.Inf(1), -1
	for v := range pts {
		if v == u || !active[v] {
			continue
		}
		if d2 := pts[u].Dist2(pts[v]); d2 < best {
			best, bestV = d2, v
		}
	}
	if bestV < 0 {
		return -1, math.Inf(1)
	}
	return bestV, math.Sqrt(best)
}

// TestComputeLinkClassesIndexedMatches: indexed and brute-force link classes
// agree on class assignment and sizes (nearest node may differ on exact
// ties, but the class is distance-derived and must match).
func TestComputeLinkClassesIndexedMatches(t *testing.T) {
	f := func(seed uint64, nRaw uint8, maskSeed uint64) bool {
		n := 2 + int(nRaw%50)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		ix, err := NewIndex(d.Points, 2)
		if err != nil {
			return false
		}
		rng := xrand.New(maskSeed)
		active := make([]bool, n)
		for i := range active {
			active[i] = rng.Float64() < 0.7
		}
		a := ComputeLinkClasses(d.Points, active)
		b := ComputeLinkClassesIndexed(d.Points, active, ix)
		for u := 0; u < n; u++ {
			if a.Class[u] != b.Class[u] {
				return false
			}
			if math.Abs(a.NearestDist[u]-b.NearestDist[u]) > 1e-12 &&
				!(math.IsInf(a.NearestDist[u], 1) && math.IsInf(b.NearestDist[u], 1)) {
				return false
			}
		}
		if len(a.Sizes) != len(b.Sizes) {
			return false
		}
		for i := range a.Sizes {
			if a.Sizes[i] != b.Sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComputeLinkClassesIndexedChain(t *testing.T) {
	d, err := ExponentialChain(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(d.Points, 2)
	if err != nil {
		t.Fatal(err)
	}
	active := allActive(d.N())
	lc := ComputeLinkClassesIndexed(d.Points, active, ix)
	for i := 0; i < 5; i++ {
		if lc.Sizes[i] != 4 {
			t.Errorf("class %d size = %d, want 4 (sizes %v)", i, lc.Sizes[i], lc.Sizes)
		}
	}
}

// TestIndexDegenerateOneCell: every point in a single grid cell — the ring
// scan must still find neighbours, and the accessors must report the 1×1
// grid faithfully.
func TestIndexDegenerateOneCell(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 0.3, Y: 0.1}, {X: 0.1, Y: 0.4}, {X: 0.45, Y: 0.45}}
	ix, err := NewIndex(pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows, cell := ix.Grid()
	if cols != 1 || rows != 1 || cell != 100 {
		t.Fatalf("Grid() = (%d, %d, %v), want (1, 1, 100)", cols, rows, cell)
	}
	got := ix.CellPoints(0, 0)
	if len(got) != len(pts) {
		t.Fatalf("CellPoints(0,0) = %v, want all %d points", got, len(pts))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("CellPoints(0,0) = %v, want ascending indices", got)
		}
	}
	active := allActive(len(pts))
	for u := range pts {
		gotV, gotD := ix.Nearest(u, active)
		wantV, wantD := bruteNearestActive(pts, active, u)
		if gotV != wantV || math.Abs(gotD-wantD) > 1e-12 {
			t.Errorf("Nearest(%d) = (%d, %v), want (%d, %v)", u, gotV, gotD, wantV, wantD)
		}
	}
}

func TestIndexDegenerateSinglePoint(t *testing.T) {
	pts := []Point{{X: 3, Y: -2}}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v, d := ix.Nearest(0, []bool{true}); v != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest on singleton = (%d, %v), want (-1, +Inf)", v, d)
	}
	if col, row := ix.CellAt(pts[0]); col != 0 || row != 0 {
		t.Errorf("CellAt = (%d, %d), want (0, 0)", col, row)
	}
	if got := ix.CellPoints(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("CellPoints(0,0) = %v, want [0]", got)
	}
	if got := ix.CellPoints(1, 0); got != nil {
		t.Errorf("out-of-grid CellPoints = %v, want nil", got)
	}
	if got := ix.CellPoints(0, -1); got != nil {
		t.Errorf("out-of-grid CellPoints = %v, want nil", got)
	}
}

// TestIndexDegenerateCollinear: collinear points produce a 1-row grid; the
// ring scan degenerates to a 1-D sweep and must still match brute force.
func TestIndexDegenerateCollinear(t *testing.T) {
	pts := make([]Point, 17)
	for i := range pts {
		pts[i] = Point{X: float64(i) * 1.5, Y: 0}
	}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, rows, _ := ix.Grid(); rows != 1 {
		t.Fatalf("collinear grid rows = %d, want 1", rows)
	}
	active := allActive(len(pts))
	active[5] = false
	active[6] = false
	for u := range pts {
		gotV, gotD := ix.Nearest(u, active)
		wantV, wantD := bruteNearestActive(pts, active, u)
		if wantV < 0 {
			if gotV != -1 {
				t.Errorf("Nearest(%d) = %d, want -1", u, gotV)
			}
			continue
		}
		if math.Abs(gotD-wantD) > 1e-12 {
			t.Errorf("Nearest(%d) dist = %v, want %v", u, gotD, wantD)
		}
	}
}

func TestNewIndexCapped(t *testing.T) {
	if _, err := NewIndexCapped(nil, 2, 64); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := NewIndexCapped([]Point{{}}, 2, 0); err == nil {
		t.Error("zero maxCells accepted")
	}
	if _, err := NewIndexCapped([]Point{{}}, -1, 64); err == nil {
		t.Error("negative cell accepted")
	}

	// A huge-spread deployment: with cell 2 the grid would need ~2^20 columns;
	// capping to 4096 cells must coarsen the cell size instead of allocating
	// a multi-megabyte bucket array.
	pts := []Point{{X: 0, Y: 0}, {X: 1 << 21, Y: 0}, {X: 3, Y: 0}}
	ix, err := NewIndexCapped(pts, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows, cell := ix.Grid()
	if cols*rows > 4096 {
		t.Fatalf("capped grid has %d×%d = %d cells, want ≤ 4096", cols, rows, cols*rows)
	}
	if cell <= 2 {
		t.Fatalf("capped cell = %v, want coarsened above 2", cell)
	}
	active := allActive(len(pts))
	if v, d := ix.Nearest(0, active); v != 2 || d != 3 {
		t.Errorf("Nearest(0) = (%d, %v), want (2, 3)", v, d)
	}

	// Under the cap, NewIndexCapped must behave exactly like NewIndex.
	small := []Point{{X: 0, Y: 0}, {X: 5, Y: 5}}
	capped, err := NewIndexCapped(small, 2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewIndex(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	cc, cr, ccell := capped.Grid()
	pc, pr, pcell := plain.Grid()
	if cc != pc || cr != pr || ccell != pcell {
		t.Errorf("capped grid (%d, %d, %v) != plain grid (%d, %d, %v)", cc, cr, ccell, pc, pr, pcell)
	}
}

func TestIndexCellMaxDist2(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 7, Y: 7}}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows, _ := ix.Grid()
	// Every point in every cell must be within the bound from every probe.
	probes := []Point{{X: 0, Y: 0}, {X: 3.5, Y: 3.5}, {X: 7, Y: 7}, {X: -1, Y: 9}}
	extra := []Point{{X: 1.9, Y: 0.1}, {X: 4.2, Y: 6.6}, {X: 6.99, Y: 0}}
	all := append(append([]Point{}, pts...), extra...)
	ix2, err := NewIndex(all, 2)
	if err != nil {
		t.Fatal(err)
	}
	cols2, rows2, _ := ix2.Grid()
	if cols2 != cols || rows2 != rows {
		t.Fatalf("grid changed: (%d, %d) vs (%d, %d)", cols2, rows2, cols, rows)
	}
	for _, p := range probes {
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				bound := ix2.CellMaxDist2(col, row, p)
				for _, v := range ix2.CellPoints(col, row) {
					if d2 := p.Dist2(all[v]); d2 > bound+1e-9 {
						t.Errorf("point %d in cell (%d, %d): dist2 %v exceeds bound %v", v, col, row, d2, bound)
					}
				}
			}
		}
	}
}

// BenchmarkIndexCellIteration measures the per-listener cost of the cell
// walk the far-field Deliver path performs: locate the listener's cell, then
// stream the point lists of the surrounding ring of cells.
func BenchmarkIndexCellIteration(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := UniformDisk(11, n)
			if err != nil {
				b.Fatal(err)
			}
			ix, err := NewIndexCapped(d.Points, 2, 4*n)
			if err != nil {
				b.Fatal(err)
			}
			cols, rows, _ := ix.Grid()
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				u := i % n
				col, row := ix.CellAt(d.Points[u])
				for dr := -2; dr <= 2; dr++ {
					r := row + dr
					if r < 0 || r >= rows {
						continue
					}
					for dc := -2; dc <= 2; dc++ {
						c := col + dc
						if c < 0 || c >= cols {
							continue
						}
						sink += len(ix.CellPoints(c, r))
					}
				}
			}
			benchSink = sink
		})
	}
}

var benchSink int

func TestComputeLinkClassesIndexedSingleActive(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	lc := ComputeLinkClassesIndexed(pts, []bool{true, false}, ix)
	if lc.Class[0] != -1 || len(lc.Sizes) != 0 {
		t.Errorf("sole active: class=%d sizes=%v", lc.Class[0], lc.Sizes)
	}
}
