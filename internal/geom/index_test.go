package geom

import (
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/xrand"
)

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil, 2); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := NewIndex([]Point{{X: 0, Y: 0}}, 0); err == nil {
		t.Error("zero cell accepted")
	}
	if _, err := NewIndex([]Point{{X: 0, Y: 0}}, -1); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := NewIndex([]Point{{X: 0, Y: 0}}, math.Inf(1)); err == nil {
		t.Error("infinite cell accepted")
	}
}

func TestIndexNearestSimple(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 10, Y: 0}}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, true, true}
	v, d := ix.Nearest(0, active)
	if v != 1 || d != 3 {
		t.Errorf("Nearest(0) = (%d, %v), want (1, 3)", v, d)
	}
	// Deactivate node 1: nearest becomes node 2 at distance 10.
	active[1] = false
	v, d = ix.Nearest(0, active)
	if v != 2 || d != 10 {
		t.Errorf("Nearest(0) with 1 inactive = (%d, %v), want (2, 10)", v, d)
	}
	// No other active node.
	active[2] = false
	v, d = ix.Nearest(0, active)
	if v != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest(0) alone = (%d, %v), want (-1, +Inf)", v, d)
	}
}

// TestIndexNearestMatchesBruteForceProperty: the grid index returns exactly
// the brute-force nearest active neighbour on random deployments and masks.
func TestIndexNearestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, cellRaw uint8, maskSeed uint64) bool {
		n := 2 + int(nRaw%60)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		cell := 0.5 + float64(cellRaw%8)
		ix, err := NewIndex(d.Points, cell)
		if err != nil {
			return false
		}
		rng := xrand.New(maskSeed)
		active := make([]bool, n)
		for i := range active {
			active[i] = rng.Float64() < 0.8
		}
		for u := 0; u < n; u++ {
			gotV, gotD := ix.Nearest(u, active)
			wantV, wantD := bruteNearestActive(d.Points, active, u)
			if wantV < 0 {
				if gotV != -1 || !math.IsInf(gotD, 1) {
					return false
				}
				continue
			}
			// Distances must agree exactly; ties may pick different nodes.
			if math.Abs(gotD-wantD) > 1e-12 || gotV < 0 || !active[gotV] || gotV == u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteNearestActive(pts []Point, active []bool, u int) (int, float64) {
	best, bestV := math.Inf(1), -1
	for v := range pts {
		if v == u || !active[v] {
			continue
		}
		if d2 := pts[u].Dist2(pts[v]); d2 < best {
			best, bestV = d2, v
		}
	}
	if bestV < 0 {
		return -1, math.Inf(1)
	}
	return bestV, math.Sqrt(best)
}

// TestComputeLinkClassesIndexedMatches: indexed and brute-force link classes
// agree on class assignment and sizes (nearest node may differ on exact
// ties, but the class is distance-derived and must match).
func TestComputeLinkClassesIndexedMatches(t *testing.T) {
	f := func(seed uint64, nRaw uint8, maskSeed uint64) bool {
		n := 2 + int(nRaw%50)
		d, err := UniformDisk(seed, n)
		if err != nil {
			return false
		}
		ix, err := NewIndex(d.Points, 2)
		if err != nil {
			return false
		}
		rng := xrand.New(maskSeed)
		active := make([]bool, n)
		for i := range active {
			active[i] = rng.Float64() < 0.7
		}
		a := ComputeLinkClasses(d.Points, active)
		b := ComputeLinkClassesIndexed(d.Points, active, ix)
		for u := 0; u < n; u++ {
			if a.Class[u] != b.Class[u] {
				return false
			}
			if math.Abs(a.NearestDist[u]-b.NearestDist[u]) > 1e-12 &&
				!(math.IsInf(a.NearestDist[u], 1) && math.IsInf(b.NearestDist[u], 1)) {
				return false
			}
		}
		if len(a.Sizes) != len(b.Sizes) {
			return false
		}
		for i := range a.Sizes {
			if a.Sizes[i] != b.Sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComputeLinkClassesIndexedChain(t *testing.T) {
	d, err := ExponentialChain(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(d.Points, 2)
	if err != nil {
		t.Fatal(err)
	}
	active := allActive(d.N())
	lc := ComputeLinkClassesIndexed(d.Points, active, ix)
	for i := 0; i < 5; i++ {
		if lc.Sizes[i] != 4 {
			t.Errorf("class %d size = %d, want 4 (sizes %v)", i, lc.Sizes[i], lc.Sizes)
		}
	}
}

func TestComputeLinkClassesIndexedSingleActive(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	ix, err := NewIndex(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	lc := ComputeLinkClassesIndexed(pts, []bool{true, false}, ix)
	if lc.Class[0] != -1 || len(lc.Sizes) != 0 {
		t.Errorf("sole active: class=%d sizes=%v", lc.Class[0], lc.Sizes)
	}
}
