package geom

import (
	"errors"
	"fmt"
	"math"

	"fadingcr/internal/xrand"
)

// A Deployment is a placement of n wireless nodes in the plane, normalised
// per Section 2 of the paper so that the shortest link (smallest pairwise
// distance) has length exactly 1. R is then the length of the longest link.
type Deployment struct {
	// Points holds the node positions after normalisation.
	Points []Point
	// R is the ratio of the longest link to the shortest (the shortest is 1
	// by normalisation). R is 1 when the deployment has fewer than two nodes
	// or all distances coincide.
	R float64
}

// N returns the number of nodes in the deployment.
func (d *Deployment) N() int { return len(d.Points) }

// LinkClassCount returns the number of possible link classes, 1 + floor(log2 R):
// class indices range over [0, log2 R]. It returns 0 for deployments with
// fewer than two nodes.
func (d *Deployment) LinkClassCount() int {
	if len(d.Points) < 2 {
		return 0
	}
	return int(math.Floor(math.Log2(d.R))) + 1
}

// errTooFewPoints is returned by generators asked for fewer than two nodes.
var errTooFewPoints = errors.New("geom: deployment needs at least 2 points")

// NewDeployment normalises the given raw positions into a Deployment: all
// coordinates are scaled so that the minimum pairwise distance becomes 1.
// It returns an error if fewer than two points are supplied or if two points
// coincide (R would be infinite).
func NewDeployment(raw []Point) (*Deployment, error) {
	if len(raw) < 2 {
		return nil, errTooFewPoints
	}
	minD, _, _ := MinPairwiseDist(raw)
	if minD == 0 {
		return nil, errors.New("geom: coincident points; cannot normalise shortest link to 1")
	}
	pts := make([]Point, len(raw))
	inv := 1 / minD
	for i, p := range raw {
		pts[i] = p.Scale(inv)
	}
	maxD, _, _ := MaxPairwiseDist(pts)
	r := maxD
	if r < 1 {
		r = 1
	}
	return &Deployment{Points: pts, R: r}, nil
}

// UniformDisk places n nodes uniformly at random inside a disk whose radius
// scales as sqrt(n), giving constant expected density; with n nodes the
// resulting R is polynomial in n with high probability, the paper's "feasible
// deployment" regime. Coincident draws are retried.
func UniformDisk(seed uint64, n int) (*Deployment, error) {
	if n < 2 {
		return nil, errTooFewPoints
	}
	rng := xrand.New(seed)
	radius := math.Sqrt(float64(n))
	raw := make([]Point, n)
	for i := range raw {
		for {
			x := rng.Float64()*2 - 1
			y := rng.Float64()*2 - 1
			if x*x+y*y <= 1 {
				raw[i] = Point{x * radius, y * radius}
				break
			}
		}
	}
	return NewDeployment(raw)
}

// UniformSquare places n nodes uniformly at random in an axis-aligned square
// with side sqrt(n) (constant expected density).
func UniformSquare(seed uint64, n int) (*Deployment, error) {
	if n < 2 {
		return nil, errTooFewPoints
	}
	rng := xrand.New(seed)
	side := math.Sqrt(float64(n))
	raw := make([]Point, n)
	for i := range raw {
		raw[i] = Point{rng.Float64() * side, rng.Float64() * side}
	}
	return NewDeployment(raw)
}

// PerturbedGrid places n nodes on a near-square grid with unit spacing and
// per-node uniform jitter of magnitude jitter in each coordinate
// (0 ≤ jitter < 0.5 keeps nodes distinct). It is the lowest-variance
// "feasible" deployment: R = Θ(sqrt n) exactly.
func PerturbedGrid(seed uint64, n int, jitter float64) (*Deployment, error) {
	if n < 2 {
		return nil, errTooFewPoints
	}
	if jitter < 0 || jitter >= 0.5 {
		return nil, fmt.Errorf("geom: jitter %v outside [0, 0.5)", jitter)
	}
	rng := xrand.New(seed)
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	raw := make([]Point, 0, n)
	for i := 0; len(raw) < n; i++ {
		x := float64(i%cols) + (rng.Float64()*2-1)*jitter
		y := float64(i/cols) + (rng.Float64()*2-1)*jitter
		raw = append(raw, Point{x, y})
	}
	return NewDeployment(raw)
}

// Clusters places n nodes into k circular clusters of radius clusterRadius
// whose centres are spread over a region of side spread. It produces
// deployments with two natural scales (intra- and inter-cluster), populating
// both small and large link classes.
func Clusters(seed uint64, n, k int, clusterRadius, spread float64) (*Deployment, error) {
	if n < 2 {
		return nil, errTooFewPoints
	}
	if k < 1 {
		return nil, errors.New("geom: need at least one cluster")
	}
	if clusterRadius <= 0 || spread <= 0 {
		return nil, errors.New("geom: clusterRadius and spread must be positive")
	}
	rng := xrand.New(seed)
	centers := make([]Point, k)
	for i := range centers {
		centers[i] = Point{rng.Float64() * spread, rng.Float64() * spread}
	}
	raw := make([]Point, n)
	for i := range raw {
		c := centers[i%k]
		for {
			x := rng.Float64()*2 - 1
			y := rng.Float64()*2 - 1
			if x*x+y*y <= 1 {
				raw[i] = Point{c.X + x*clusterRadius, c.Y + y*clusterRadius}
				break
			}
		}
	}
	return NewDeployment(raw)
}

// ExponentialChain builds a deployment with exactly classes populated link
// classes: for each class i in [0, classes) it places pairsPerClass pairs of
// nodes at intra-pair separation 2^i, with consecutive pairs spaced far
// enough apart (4·2^classes) that every node's nearest neighbour is its pair
// partner. The deployment therefore realises every nearest-neighbour link
// class d_0 … d_{classes−1}, and log2(R) = Θ(classes). This is the workload
// that isolates the log R term of Theorem 1 (experiment E2).
func ExponentialChain(seed uint64, classes, pairsPerClass int) (*Deployment, error) {
	if classes < 1 || pairsPerClass < 1 {
		return nil, errors.New("geom: classes and pairsPerClass must be ≥ 1")
	}
	rng := xrand.New(seed)
	gap := 4 * math.Pow(2, float64(classes))
	raw := make([]Point, 0, 2*classes*pairsPerClass)
	x := 0.0
	for i := 0; i < classes; i++ {
		sep := math.Pow(2, float64(i))
		for p := 0; p < pairsPerClass; p++ {
			// Small jitter on the pair's baseline avoids exact collinearity
			// (which is harmless but makes degenerate tests less telling).
			y := rng.Float64() * 0.25
			raw = append(raw, Point{x, y}, Point{x, y + sep})
			x += gap
		}
	}
	return NewDeployment(raw)
}

// TwoNode returns the minimal deployment: two nodes at distance 1. It is the
// embedded instance used by the two-player lower-bound experiments.
func TwoNode() *Deployment {
	return &Deployment{Points: []Point{{0, 0}, {1, 0}}, R: 1}
}

// CoLocatedPairs is an adversarial deployment: n/2 pairs at the
// normalisation limit (intra-pair distance 1) arranged on a circle of radius
// ringRadius. All nodes live in link class d_0, maximising same-class
// contention. n must be even and ≥ 2.
func CoLocatedPairs(n int, ringRadius float64) (*Deployment, error) {
	if n < 2 || n%2 != 0 {
		return nil, errors.New("geom: CoLocatedPairs needs an even n ≥ 2")
	}
	if ringRadius <= 0 {
		return nil, errors.New("geom: ringRadius must be positive")
	}
	pairs := n / 2
	raw := make([]Point, 0, n)
	for i := 0; i < pairs; i++ {
		theta := 2 * math.Pi * float64(i) / float64(pairs)
		c := Point{ringRadius * math.Cos(theta), ringRadius * math.Sin(theta)}
		raw = append(raw, c, Point{c.X + 1, c.Y})
	}
	return NewDeployment(raw)
}
