package geom

import (
	"math"
	"testing"
)

// checkNormalised verifies the two Deployment invariants: the shortest link
// is 1 (up to float round-off) and R equals the longest link.
func checkNormalised(t *testing.T, d *Deployment) {
	t.Helper()
	minD, _, _ := MinPairwiseDist(d.Points)
	if math.Abs(minD-1) > 1e-9 {
		t.Errorf("shortest link = %v, want 1", minD)
	}
	maxD, _, _ := MaxPairwiseDist(d.Points)
	if math.Abs(maxD-d.R) > 1e-9*d.R {
		t.Errorf("R = %v but longest link = %v", d.R, maxD)
	}
	if d.R < 1 {
		t.Errorf("R = %v < 1", d.R)
	}
}

func TestNewDeploymentNormalises(t *testing.T) {
	d, err := NewDeployment([]Point{{0, 0}, {0, 2}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	checkNormalised(t, d)
	if d.R != 5 {
		t.Errorf("R = %v, want 5", d.R)
	}
	if d.N() != 3 {
		t.Errorf("N = %d, want 3", d.N())
	}
}

func TestNewDeploymentErrors(t *testing.T) {
	if _, err := NewDeployment(nil); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := NewDeployment([]Point{{1, 1}}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := NewDeployment([]Point{{1, 1}, {1, 1}}); err == nil {
		t.Error("want error for coincident points")
	}
}

func TestUniformDiskProperties(t *testing.T) {
	for _, n := range []int{2, 3, 16, 100} {
		d, err := UniformDisk(42, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d.N() != n {
			t.Errorf("n=%d: got %d points", n, d.N())
		}
		checkNormalised(t, d)
	}
	if _, err := UniformDisk(1, 1); err == nil {
		t.Error("want error for n=1")
	}
}

func TestUniformDiskDeterministic(t *testing.T) {
	a, err := UniformDisk(7, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformDisk(7, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("same seed produced different point %d: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
	c, err := UniformDisk(8, 50)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical deployments")
	}
}

func TestUniformSquare(t *testing.T) {
	d, err := UniformSquare(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 64 {
		t.Errorf("N = %d, want 64", d.N())
	}
	checkNormalised(t, d)
}

func TestPerturbedGrid(t *testing.T) {
	d, err := PerturbedGrid(5, 49, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 49 {
		t.Errorf("N = %d, want 49", d.N())
	}
	checkNormalised(t, d)
	// With unit spacing and jitter 0.2 the grid diameter is Θ(sqrt n); after
	// normalisation R stays below a comfortable multiple of sqrt(n).
	if d.R > 10*math.Sqrt(49) {
		t.Errorf("R = %v suspiciously large for a grid", d.R)
	}

	if _, err := PerturbedGrid(5, 49, 0.5); err == nil {
		t.Error("want error for jitter = 0.5")
	}
	if _, err := PerturbedGrid(5, 49, -0.1); err == nil {
		t.Error("want error for negative jitter")
	}
	if _, err := PerturbedGrid(5, 1, 0.1); err == nil {
		t.Error("want error for n=1")
	}
}

func TestClusters(t *testing.T) {
	d, err := Clusters(11, 40, 4, 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 40 {
		t.Errorf("N = %d, want 40", d.N())
	}
	checkNormalised(t, d)

	for _, bad := range []struct {
		n, k          int
		radius, sprea float64
	}{
		{1, 1, 1, 1},
		{10, 0, 1, 1},
		{10, 2, 0, 1},
		{10, 2, 1, 0},
	} {
		if _, err := Clusters(1, bad.n, bad.k, bad.radius, bad.sprea); err == nil {
			t.Errorf("Clusters(%+v): want error", bad)
		}
	}
}

func TestExponentialChainRealisesAllClasses(t *testing.T) {
	const classes, pairs = 6, 2
	d, err := ExponentialChain(9, classes, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2*classes*pairs {
		t.Fatalf("N = %d, want %d", d.N(), 2*classes*pairs)
	}
	checkNormalised(t, d)

	active := make([]bool, d.N())
	for i := range active {
		active[i] = true
	}
	lc := ComputeLinkClasses(d.Points, active)
	for i := 0; i < classes; i++ {
		if i >= len(lc.Sizes) || lc.Sizes[i] != 2*pairs {
			t.Errorf("class %d size = %d, want %d (sizes %v)", i, sizeAt(lc.Sizes, i), 2*pairs, lc.Sizes)
		}
	}
	// Every node's nearest neighbour must be its pair partner: partner
	// indices differ by exactly 1 within a pair (2k, 2k+1).
	for u := 0; u < d.N(); u += 2 {
		if lc.Nearest[u] != u+1 || lc.Nearest[u+1] != u {
			t.Errorf("pair (%d,%d): nearest = (%d,%d)", u, u+1, lc.Nearest[u], lc.Nearest[u+1])
		}
	}

	if _, err := ExponentialChain(1, 0, 1); err == nil {
		t.Error("want error for classes=0")
	}
	if _, err := ExponentialChain(1, 1, 0); err == nil {
		t.Error("want error for pairsPerClass=0")
	}
}

func sizeAt(sizes []int, i int) int {
	if i < len(sizes) {
		return sizes[i]
	}
	return 0
}

func TestTwoNode(t *testing.T) {
	d := TwoNode()
	if d.N() != 2 || d.R != 1 {
		t.Errorf("TwoNode = %d nodes, R=%v", d.N(), d.R)
	}
	if got := d.Points[0].Dist(d.Points[1]); got != 1 {
		t.Errorf("distance = %v, want 1", got)
	}
}

func TestCoLocatedPairs(t *testing.T) {
	d, err := CoLocatedPairs(20, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 20 {
		t.Errorf("N = %d, want 20", d.N())
	}
	checkNormalised(t, d)
	active := make([]bool, d.N())
	for i := range active {
		active[i] = true
	}
	lc := ComputeLinkClasses(d.Points, active)
	if lc.Sizes[0] != 20 {
		t.Errorf("class 0 size = %d, want all 20 (sizes %v)", lc.Sizes[0], lc.Sizes)
	}

	if _, err := CoLocatedPairs(7, 10); err == nil {
		t.Error("want error for odd n")
	}
	if _, err := CoLocatedPairs(4, 0); err == nil {
		t.Error("want error for zero radius")
	}
}

func TestLinkClassCount(t *testing.T) {
	d := &Deployment{R: 1}
	d.Points = []Point{{0, 0}, {1, 0}}
	if got := d.LinkClassCount(); got != 1 {
		t.Errorf("R=1: LinkClassCount = %d, want 1", got)
	}
	d.R = 8
	if got := d.LinkClassCount(); got != 4 {
		t.Errorf("R=8: LinkClassCount = %d, want 4", got)
	}
	d.Points = d.Points[:1]
	if got := d.LinkClassCount(); got != 0 {
		t.Errorf("single node: LinkClassCount = %d, want 0", got)
	}
}
