package radio

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, false); err == nil {
		t.Error("n=0 accepted")
	}
	c, err := New(5, true)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 {
		t.Errorf("N = %d, want 5", c.N())
	}
	if !c.CollisionDetection() {
		t.Error("CollisionDetection = false, want true")
	}
}

func TestDeliverSolo(t *testing.T) {
	c, _ := New(4, false)
	recv := make([]int, 4)
	c.Deliver([]bool{false, true, false, false}, recv)
	want := []int{1, -1, 1, 1}
	for v := range want {
		if recv[v] != want[v] {
			t.Errorf("recv = %v, want %v", recv, want)
			break
		}
	}
}

func TestDeliverCollisionLosesEverything(t *testing.T) {
	c, _ := New(4, false)
	recv := make([]int, 4)
	c.Deliver([]bool{true, true, false, false}, recv)
	for v, r := range recv {
		if r != -1 {
			t.Errorf("recv[%d] = %d under collision, want -1", v, r)
		}
	}
}

func TestDeliverSilence(t *testing.T) {
	c, _ := New(3, false)
	recv := make([]int, 3)
	c.Deliver([]bool{false, false, false}, recv)
	for v, r := range recv {
		if r != -1 {
			t.Errorf("recv[%d] = %d under silence, want -1", v, r)
		}
	}
}

func TestDeliverPanicsOnBadLengths(t *testing.T) {
	c, _ := New(3, false)
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched slice lengths")
		}
	}()
	c.Deliver(make([]bool, 2), make([]int, 3))
}

// TestDeliverExactlyOneTransmitterProperty: reception happens iff exactly
// one node transmits, and then every listener hears it.
func TestDeliverExactlyOneTransmitterProperty(t *testing.T) {
	f := func(bits uint16) bool {
		const n = 12
		c, err := New(n, false)
		if err != nil {
			return false
		}
		tx := make([]bool, n)
		count, solo := 0, -1
		for i := 0; i < n; i++ {
			tx[i] = bits&(1<<i) != 0
			if tx[i] {
				count++
				solo = i
			}
		}
		recv := make([]int, n)
		c.Deliver(tx, recv)
		for v := range recv {
			want := -1
			if count == 1 && !tx[v] {
				want = solo
			}
			if recv[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObserve(t *testing.T) {
	cd, _ := New(3, true)
	noCD, _ := New(3, false)
	cases := []struct {
		tx      []bool
		withCD  Feedback
		without Feedback
	}{
		{[]bool{false, false, false}, Silence, Silence},
		{[]bool{false, true, false}, Message, Message},
		{[]bool{true, true, false}, Collision, Silence},
		{[]bool{true, true, true}, Collision, Silence},
	}
	for _, c := range cases {
		if got := cd.Observe(c.tx); got != c.withCD {
			t.Errorf("CD Observe(%v) = %v, want %v", c.tx, got, c.withCD)
		}
		if got := noCD.Observe(c.tx); got != c.without {
			t.Errorf("no-CD Observe(%v) = %v, want %v", c.tx, got, c.without)
		}
	}
}

func TestFeedbackString(t *testing.T) {
	if Silence.String() != "silence" || Message.String() != "message" || Collision.String() != "collision" {
		t.Error("Feedback String values wrong")
	}
	if Feedback(0).String() != "Feedback(0)" {
		t.Errorf("zero Feedback String = %q", Feedback(0).String())
	}
}
