// Package radio implements the classical radio network model of Chlamtac and
// Kutten / Bar-Yehuda et al. used as the paper's point of comparison: all
// nodes share a single-hop collision channel on which a listener receives a
// message iff exactly one node transmits in the round. Concurrent
// transmissions are lost at every listener, and — matching the model the
// paper cites — transmitters learn nothing about the fate of their
// transmissions.
//
// The channel optionally provides receiver-side collision detection: with it
// enabled, listeners can distinguish silence (no transmitter) from a
// collision (two or more transmitters), which is the capability that drops
// the contention-resolution bound from Θ(log² n) to Θ(log n).
package radio

import (
	"errors"
	"fmt"
)

// Feedback is what a listener perceives in a round on a collision-detection
// channel.
type Feedback int

const (
	// Silence: no node transmitted.
	Silence Feedback = iota + 1
	// Message: exactly one node transmitted; listeners received it.
	Message
	// Collision: two or more nodes transmitted. Only distinguishable from
	// Silence when collision detection is enabled.
	Collision
)

// String implements fmt.Stringer.
func (f Feedback) String() string {
	switch f {
	case Silence:
		return "silence"
	case Message:
		return "message"
	case Collision:
		return "collision"
	default:
		return fmt.Sprintf("Feedback(%d)", int(f))
	}
}

// Channel is a single-hop collision channel over n nodes. The zero value is
// not usable; construct with New.
type Channel struct {
	n               int
	collisionDetect bool
}

// New builds a collision channel for n ≥ 1 nodes. collisionDetect enables
// receiver-side collision detection.
func New(n int, collisionDetect bool) (*Channel, error) {
	if n < 1 {
		return nil, errors.New("radio: channel needs at least one node")
	}
	return &Channel{n: n, collisionDetect: collisionDetect}, nil
}

// N returns the number of nodes on the channel.
func (c *Channel) N() int { return c.n }

// CollisionDetection reports whether listeners can distinguish collisions
// from silence.
func (c *Channel) CollisionDetection() bool { return c.collisionDetect }

// Deliver computes one round of reception: recv[v] is the transmitter whose
// message v received (only when exactly one node transmitted and v was
// listening), else −1. The slice contract matches the SINR channel so the
// two are interchangeable behind the sim.Channel interface.
func (c *Channel) Deliver(tx []bool, recv []int) {
	if len(tx) != c.n || len(recv) != c.n {
		panic(fmt.Sprintf("radio: Deliver slice lengths tx=%d recv=%d, want %d", len(tx), len(recv), c.n))
	}
	solo, count := -1, 0
	for u, t := range tx {
		if t {
			count++
			solo = u
		}
	}
	for v := range recv {
		if count == 1 && !tx[v] {
			recv[v] = solo
		} else {
			recv[v] = -1
		}
	}
}

// Observe returns the channel feedback a listener perceives for the given
// transmit vector. Without collision detection, Collision is reported as
// Silence (indistinguishable).
func (c *Channel) Observe(tx []bool) Feedback {
	count := 0
	for _, t := range tx {
		if t {
			count++
			if count > 1 {
				break
			}
		}
	}
	switch {
	case count == 0:
		return Silence
	case count == 1:
		return Message
	case c.collisionDetect:
		return Collision
	default:
		return Silence
	}
}
