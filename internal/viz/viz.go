// Package viz renders deployments and execution traces as ASCII art for the
// CLIs: a scatter view of node positions (with active/inactive marks) and
// bar/sparkline views of per-round series. Pure text, no terminal control
// codes — output is pipe- and log-friendly.
package viz

import (
	"fmt"
	"math"
	"strings"

	"fadingcr/internal/geom"
)

// Scatter renders node positions into a width×height character grid.
// active[u] selects the glyph: '●' for active nodes, '·' for inactive; a
// cell holding several nodes shows the count (capped at '9', then '+'). A
// nil active slice marks every node active.
func Scatter(pts []geom.Point, active []bool, width, height int) string {
	if len(pts) == 0 || width < 1 || height < 1 {
		return ""
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	type cell struct {
		count  int
		active bool
	}
	grid := make([]cell, width*height)
	for u, p := range pts {
		col := int((p.X - minX) / spanX * float64(width-1))
		row := int((p.Y - minY) / spanY * float64(height-1))
		c := &grid[row*width+col]
		c.count++
		if active == nil || active[u] {
			c.active = true
		}
	}
	var b strings.Builder
	// Render top row last so the y axis points up.
	for row := height - 1; row >= 0; row-- {
		for col := 0; col < width; col++ {
			c := grid[row*width+col]
			switch {
			case c.count == 0:
				b.WriteByte(' ')
			case c.count == 1 && c.active:
				b.WriteRune('●')
			case c.count == 1:
				b.WriteRune('·')
			case c.count <= 9:
				b.WriteByte(byte('0' + c.count))
			default:
				b.WriteByte('+')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bars renders an integer series as a horizontal bar chart, one row per
// value, scaled to maxWidth characters. Labels carry the row names; len
// mismatches are truncated to the shorter.
func Bars(labels []string, values []int, maxWidth int) string {
	n := len(labels)
	if len(values) < n {
		n = len(values)
	}
	if n == 0 || maxWidth < 1 {
		return ""
	}
	maxV := 1
	labelW := 0
	for i := 0; i < n; i++ {
		if values[i] > maxV {
			maxV = values[i]
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		bar := values[i] * maxWidth / maxV
		if values[i] > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %d\n", labelW, labels[i], strings.Repeat("█", bar), values[i])
	}
	return b.String()
}

// sparkGlyphs are the eight block heights of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a one-line sparkline scaled to its own
// range. An empty series renders as an empty string.
func Sparkline(values []int) string {
	if len(values) == 0 {
		return ""
	}
	minV, maxV := values[0], values[0]
	for _, v := range values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = (v - minV) * (len(sparkGlyphs) - 1) / span
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}
