package viz

import (
	"testing"

	"fadingcr/internal/geom"
)

// Golden renderings: the exact character output of each renderer is part of
// its contract (CLIs pipe it into logs and CI artifacts diff it), so these
// tests pin full frames, not substrings.

func TestScatterGolden(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0},    // bottom-left, active
		{X: 4, Y: 0},    // bottom-right, inactive
		{X: 0, Y: 2},    // top-left, active
		{X: 2, Y: 1},    // centre, three co-located nodes
		{X: 2.01, Y: 1}, // |
		{X: 2.02, Y: 1}, // |
		{X: 4, Y: 2},    // top-right, inactive
	}
	active := []bool{true, false, true, true, true, true, false}
	got := Scatter(pts, active, 5, 3)
	want := "" +
		"●   ·\n" +
		"  3  \n" +
		"●   ·\n"
	if got != want {
		t.Errorf("Scatter golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestScatterZeroSpanGolden(t *testing.T) {
	// All nodes share one x: the span collapses and everything lands in the
	// left column, top row last (y axis points up).
	pts := []geom.Point{{X: 5, Y: 0}, {X: 5, Y: 1}}
	got := Scatter(pts, []bool{true, false}, 3, 2)
	want := "" +
		"·  \n" +
		"●  \n"
	if got != want {
		t.Errorf("Scatter zero-span golden mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
	// A single point (both spans zero) renders in the bottom-left cell.
	got = Scatter([]geom.Point{{X: 3, Y: 7}}, nil, 3, 2)
	want = "" +
		"   \n" +
		"●  \n"
	if got != want {
		t.Errorf("Scatter single-point golden mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestBarsGolden(t *testing.T) {
	got := Bars([]string{"fixed", "sweep", "decay"}, []int{4, 8, 1}, 8)
	want := "" +
		"fixed |████ 4\n" +
		"sweep |████████ 8\n" +
		"decay |█ 1\n"
	if got != want {
		t.Errorf("Bars golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestBarsZeroValueGolden(t *testing.T) {
	got := Bars([]string{"a", "b"}, []int{0, 2}, 4)
	want := "" +
		"a | 0\n" +
		"b |████ 2\n"
	if got != want {
		t.Errorf("Bars zero-value golden mismatch:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestSparklineGolden(t *testing.T) {
	cases := []struct {
		name   string
		values []int
		want   string
	}{
		{"ramp", []int{0, 1, 2, 3, 4, 5, 6, 7}, "▁▂▃▄▅▆▇█"},
		{"contention decay", []int{100, 51, 26, 12, 6, 3, 1, 0}, "█▄▂▁▁▁▁▁"},
		{"negative and positive", []int{-2, 0, 2}, "▁▄█"},
		{"two levels", []int{1, 9, 1, 9}, "▁█▁█"},
		{"single value", []int{42}, "▁"},
	}
	for _, c := range cases {
		if got := Sparkline(c.values); got != c.want {
			t.Errorf("%s: Sparkline(%v) = %q, want %q", c.name, c.values, got, c.want)
		}
	}
}
