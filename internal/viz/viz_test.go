package viz

import (
	"strings"
	"testing"

	"fadingcr/internal/geom"
)

func TestScatterBasic(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}
	got := Scatter(pts, nil, 11, 11)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11", len(lines))
	}
	// Y axis points up: the (10,10) node is on the first rendered line, the
	// (0,0) node on the last.
	if !strings.Contains(lines[0], "●") {
		t.Errorf("top line missing node: %q", lines[0])
	}
	if !strings.HasPrefix(lines[10], "●") {
		t.Errorf("bottom-left node missing: %q", lines[10])
	}
}

func TestScatterActiveMask(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	got := Scatter(pts, []bool{true, false}, 11, 1)
	if !strings.Contains(got, "●") || !strings.Contains(got, "·") {
		t.Errorf("expected one active and one inactive glyph: %q", got)
	}
}

func TestScatterCollisionCounts(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.01, Y: 0}, {X: 0.02, Y: 0}, {X: 10, Y: 0}}
	got := Scatter(pts, nil, 5, 1)
	if !strings.Contains(got, "3") {
		t.Errorf("expected a '3' multi-node cell: %q", got)
	}
	// 12 co-located nodes overflow to '+'.
	var many []geom.Point
	for i := 0; i < 12; i++ {
		many = append(many, geom.Point{X: 0, Y: 0})
	}
	many = append(many, geom.Point{X: 10, Y: 0})
	if got := Scatter(many, nil, 5, 1); !strings.Contains(got, "+") {
		t.Errorf("expected '+' overflow cell: %q", got)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if got := Scatter(nil, nil, 10, 10); got != "" {
		t.Errorf("empty points rendered %q", got)
	}
	if got := Scatter([]geom.Point{{X: 1, Y: 1}}, nil, 0, 5); got != "" {
		t.Errorf("zero width rendered %q", got)
	}
	// A single point (zero span) must not divide by zero.
	got := Scatter([]geom.Point{{X: 3, Y: 7}}, nil, 5, 3)
	if !strings.Contains(got, "●") {
		t.Errorf("single point missing: %q", got)
	}
}

func TestBars(t *testing.T) {
	got := Bars([]string{"a", "bb"}, []int{2, 4}, 8)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "████ 2") {
		t.Errorf("row a = %q, want 4-block bar and value", lines[0])
	}
	if !strings.Contains(lines[1], "████████ 4") {
		t.Errorf("row bb = %q, want 8-block bar", lines[1])
	}
	// Labels align to the widest.
	if !strings.HasPrefix(lines[0], "a  |") {
		t.Errorf("label padding wrong: %q", lines[0])
	}
}

func TestBarsNonZeroValuesVisible(t *testing.T) {
	got := Bars([]string{"x", "y"}, []int{1, 1000}, 10)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if !strings.Contains(lines[0], "█") {
		t.Errorf("tiny non-zero value rendered with no bar: %q", lines[0])
	}
}

func TestBarsDegenerate(t *testing.T) {
	if got := Bars(nil, nil, 10); got != "" {
		t.Errorf("empty bars rendered %q", got)
	}
	if got := Bars([]string{"a"}, []int{1}, 0); got != "" {
		t.Errorf("zero width rendered %q", got)
	}
	// Mismatched lengths truncate to the shorter.
	got := Bars([]string{"a", "b", "c"}, []int{1}, 5)
	if lines := strings.Split(strings.TrimRight(got, "\n"), "\n"); len(lines) != 1 {
		t.Errorf("mismatched lengths rendered %d rows", len(lines))
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("Sparkline = %q", got)
	}
	if got := Sparkline([]int{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("constant series = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty series = %q", got)
	}
}
