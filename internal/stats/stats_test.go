package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	// Sample std with n−1: Σ(x−5)² = 32, 32/7 ≈ 4.571, √ ≈ 2.138.
	if !almost(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if !almost(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileOfUnsorted(t *testing.T) {
	if got := QuantileOf([]float64{5, 1, 3}, 0.5); got != 3 {
		t.Errorf("QuantileOf = %v, want 3", got)
	}
}

// TestQuantileMonotoneProperty: quantiles are monotone in q and bounded by
// the sample extremes.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e6)
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a := QuantileOf(xs, q1)
		b := QuantileOf(xs, q2)
		lo := QuantileOf(xs, 0)
		hi := QuantileOf(xs, 1)
		return a <= b && lo <= a && b <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	lo, hi, err := MeanCI([]float64{1, 2, 3, 4, 5}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 3 || hi <= 3 {
		t.Errorf("CI [%v, %v] does not bracket the mean 3", lo, hi)
	}
	if _, _, err := MeanCI(nil, 1.96); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestMeanCISingleObservationRejected(t *testing.T) {
	// A lone observation has no sample standard deviation; it used to
	// produce a zero-width "interval" claiming perfect certainty.
	if _, _, err := MeanCI([]float64{7}, 1.96); err == nil {
		t.Error("single observation accepted; want an error, not a degenerate zero-width interval")
	}
	// Two observations are the minimum well-defined sample.
	lo, hi, err := MeanCI([]float64{1, 3}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 2 && 2 < hi) {
		t.Errorf("CI [%v, %v] does not bracket the mean 2", lo, hi)
	}
}

func TestBootstrapCIBracketsTruth(t *testing.T) {
	rng := xrand.New(8)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapCI(xs, Mean, 0.95, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("bootstrap CI [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("bootstrap CI [%v, %v] implausibly wide for n=400", lo, hi)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, _, err := BootstrapCI(nil, Mean, 0.95, 10, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 0, 10, 1); err == nil {
		t.Error("level 0 accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 1, 10, 1); err == nil {
		t.Error("level 1 accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 0.95, 1, 1); err == nil {
		t.Error("iters 1 accepted")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	lo1, hi1, _ := BootstrapCI(xs, Median, 0.9, 200, 42)
	lo2, hi2, _ := BootstrapCI(xs, Median, 0.9, 200, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic for equal seeds")
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 3, 1e-9) || !almost(fit.B, 2, 1e-9) {
		t.Errorf("fit = %+v, want a=3 b=2", fit)
	}
	if !almost(fit.R2, 1, 1e-12) || !almost(fit.RMSE, 0, 1e-9) {
		t.Errorf("R²=%v RMSE=%v, want 1 and 0", fit.R2, fit.RMSE)
	}
	if got := fit.Predict(10); !almost(got, 23, 1e-9) {
		t.Errorf("Predict(10) = %v, want 23", got)
	}
	if fit.String() == "" {
		t.Error("empty String")
	}
}

func TestLinearFitRecoversPlantedCoefficients(t *testing.T) {
	rng := xrand.New(77)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 20
		xs = append(xs, x)
		ys = append(ys, 1.5+0.75*x+rng.NormFloat64()*0.2)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 1.5, 0.1) || !almost(fit.B, 0.75, 0.02) {
		t.Errorf("fit = %+v, want ≈ (1.5, 0.75)", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v, want near 1", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.B, 0, 1e-12) || !almost(fit.R2, 1, 1e-12) {
		t.Errorf("constant-y fit = %+v", fit)
	}
}

func TestCompareGrowthPicksRightModel(t *testing.T) {
	ns := []int{16, 32, 64, 128, 256, 512, 1024}
	// Planted Θ(log n): rounds = 5 + 3·log₂ n.
	var linear []float64
	for _, n := range ns {
		linear = append(linear, 5+3*math.Log2(float64(n)))
	}
	g, err := CompareGrowth(ns, linear)
	if err != nil {
		t.Fatal(err)
	}
	if !g.LogWins() {
		t.Errorf("log model should win on planted log data: %+v", g)
	}
	if !almost(g.Log.B, 3, 1e-9) {
		t.Errorf("log fit slope = %v, want 3", g.Log.B)
	}
	// Planted Θ(log² n): rounds = 2 + 0.9·log₂² n.
	var quad []float64
	for _, n := range ns {
		l := math.Log2(float64(n))
		quad = append(quad, 2+0.9*l*l)
	}
	g, err = CompareGrowth(ns, quad)
	if err != nil {
		t.Fatal(err)
	}
	if g.LogWins() {
		t.Errorf("log² model should win on planted log² data: log RMSE %v vs log² RMSE %v", g.Log.RMSE, g.Log2.RMSE)
	}
}

func TestCompareGrowthValidation(t *testing.T) {
	if _, err := CompareGrowth([]int{2, 4}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := CompareGrowth([]int{1, 4}, []float64{1, 2}); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 0 || h.Max != 10 {
		t.Errorf("range [%v, %v]", h.Min, h.Max)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 11 {
		t.Errorf("counts sum to %d, want 11", total)
	}
	// Max value must land in the last bin, not overflow.
	if h.Counts[4] == 0 {
		t.Error("last bin empty; max mis-binned")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("constant sample: counts = %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("bins=0 accepted")
	}
}

// TestHistogramTotalProperty: counts always sum to the sample size.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e4)
		}
		bins := 1 + int(binsRaw%16)
		h, err := NewHistogram(xs, bins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 10}
	d, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("D(identical) = %v, want 0", d)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	d, err := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("D(disjoint) = %v, want 1", d)
	}
}

func TestKolmogorovSmirnovKnownValue(t *testing.T) {
	// F_a steps at 1, 2; F_b steps at 2, 3. After x=1: |1/2 − 0| = 1/2.
	d, err := KolmogorovSmirnov([]float64{1, 2}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 0.5, 1e-12) {
		t.Errorf("D = %v, want 0.5", d)
	}
}

func TestKolmogorovSmirnovErrorsAndBounds(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty a accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("empty b accepted")
	}
	f := func(raw1, raw2 []float64) bool {
		if len(raw1) == 0 || len(raw2) == 0 {
			return true
		}
		clamp := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					x = 0
				}
				out[i] = math.Mod(x, 1e5)
			}
			return out
		}
		a, b := clamp(raw1), clamp(raw2)
		d, err := KolmogorovSmirnov(a, b)
		if err != nil {
			return false
		}
		dRev, err := KolmogorovSmirnov(b, a)
		if err != nil {
			return false
		}
		return d >= 0 && d <= 1 && almost(d, dRev, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
