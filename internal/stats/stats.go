// Package stats provides the statistical toolkit used by the experiment
// harness: summaries, quantiles, confidence intervals (normal-approximation
// and bootstrap), ordinary least squares, and the log-model comparison used
// to discriminate Θ(log n) from Θ(log² n) growth in the reproduction
// experiments.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fadingcr/internal/xrand"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It returns an error for an
// empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s, nil
}

// Quantile returns the q-th quantile (q ∈ [0, 1]) of an ascending-sorted
// sample using linear interpolation between order statistics. It panics on
// an empty sample (a programming error in harness code).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileOf sorts a copy of the sample and returns its q-th quantile.
func QuantileOf(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, q)
}

// MeanCI returns the normal-approximation confidence interval
// mean ± z·std/√n. Use z = 1.96 for 95%. It returns an error for samples
// of fewer than two observations: the sample standard deviation of a
// single point is undefined (its n−1 denominator vanishes), so n = 1 used
// to yield a silently degenerate zero-width interval — certainty the data
// cannot support.
func MeanCI(xs []float64, z float64) (lo, hi float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	if s.N < 2 {
		return 0, 0, fmt.Errorf("stats: MeanCI needs at least 2 observations, got %d", s.N)
	}
	half := z * s.Std / math.Sqrt(float64(s.N))
	return s.Mean - half, s.Mean + half, nil
}

// BootstrapCI returns a percentile bootstrap confidence interval for an
// arbitrary statistic at the given level (e.g. 0.95), using iters resamples
// driven by seed.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, iters int, seed uint64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, errors.New("stats: empty sample")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: level %v outside (0, 1)", level)
	}
	if iters < 2 {
		return 0, 0, fmt.Errorf("stats: iters %d must be ≥ 2", iters)
	}
	rng := xrand.New(seed)
	resample := make([]float64, len(xs))
	vals := make([]float64, iters)
	for i := range vals {
		for j := range resample {
			resample[j] = xs[rng.IntN(len(xs))]
		}
		vals[i] = stat(resample)
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha), nil
}

// Mean is a convenience statistic for BootstrapCI.
func Mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median is a convenience statistic for BootstrapCI.
func Median(xs []float64) float64 { return QuantileOf(xs, 0.5) }

// Fit is an ordinary least squares fit y ≈ A + B·x.
type Fit struct {
	A, B float64
	// R2 is the coefficient of determination in [−∞, 1]; 1 is a perfect
	// fit. (Negative values are possible for fits worse than the mean.)
	R2 float64
	// RMSE is the root mean squared residual.
	RMSE float64
}

// String implements fmt.Stringer.
func (f Fit) String() string {
	return fmt.Sprintf("y = %.4g + %.4g·x (R²=%.4f, RMSE=%.4g)", f.A, f.B, f.R2, f.RMSE)
}

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 { return f.A + f.B*x }

// LinearFit computes the least squares line through (xs[i], ys[i]). It
// returns an error when fewer than two points are given or all xs coincide.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: degenerate x values")
	}
	b := sxy / sxx
	a := my - b*mx
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - (a + b*xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	fit := Fit{A: a, B: b, RMSE: math.Sqrt(ssRes / n)}
	if ssTot == 0 {
		fit.R2 = 1 // constant y perfectly explained by a horizontal line
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// GrowthComparison fits the two competing growth models of the headline
// experiment to (n, rounds) data:
//
//	rounds ≈ a + b·log₂(n)    (Theorem 1's shape), and
//	rounds ≈ a + b·log₂²(n)   (the classical radio-network shape),
//
// and reports both fits. The winner is the model with the lower RMSE.
type GrowthComparison struct {
	Log  Fit // rounds vs log₂ n
	Log2 Fit // rounds vs log₂² n
}

// LogWins reports whether the Θ(log n) model explains the data at least as
// well as the Θ(log² n) model.
func (g GrowthComparison) LogWins() bool { return g.Log.RMSE <= g.Log2.RMSE }

// CompareGrowth runs the two fits. ns must all be ≥ 2.
func CompareGrowth(ns []int, rounds []float64) (GrowthComparison, error) {
	if len(ns) != len(rounds) {
		return GrowthComparison{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(ns), len(rounds))
	}
	logs := make([]float64, len(ns))
	logs2 := make([]float64, len(ns))
	for i, n := range ns {
		if n < 2 {
			return GrowthComparison{}, fmt.Errorf("stats: n = %d must be ≥ 2", n)
		}
		l := math.Log2(float64(n))
		logs[i] = l
		logs2[i] = l * l
	}
	fitLog, err := LinearFit(logs, rounds)
	if err != nil {
		return GrowthComparison{}, fmt.Errorf("log fit: %w", err)
	}
	fitLog2, err := LinearFit(logs2, rounds)
	if err != nil {
		return GrowthComparison{}, fmt.Errorf("log² fit: %w", err)
	}
	return GrowthComparison{Log: fitLog, Log2: fitLog2}, nil
}

// Histogram bins the sample into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with the given number of bins ≥ 1. The
// maximum value lands in the last bin.
func NewHistogram(xs []float64, bins int) (Histogram, error) {
	if len(xs) == 0 {
		return Histogram{}, errors.New("stats: empty sample")
	}
	if bins < 1 {
		return Histogram{}, fmt.Errorf("stats: bins %d must be ≥ 1", bins)
	}
	h := Histogram{Min: math.Inf(1), Max: math.Inf(-1), Counts: make([]int, bins)}
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	width := (h.Max - h.Min) / float64(bins)
	for _, x := range xs {
		var idx int
		if width == 0 {
			idx = 0
		} else {
			idx = int((x - h.Min) / width)
			if idx >= bins {
				idx = bins - 1
			}
		}
		h.Counts[idx]++
	}
	return h, nil
}

// KolmogorovSmirnov returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) − F_b(x)|, the maximum gap between the two empirical
// CDFs. D = 0 iff the samples induce identical empirical distributions.
// Used by experiment E15 to quantify the two-player embedding's exactness.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		// Advance over ties in lockstep so the CDF gap is evaluated after
		// each distinct value.
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if gap > d {
			d = gap
		}
	}
	return d, nil
}
