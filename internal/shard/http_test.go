// The HTTP executor tests live in an external test package so they can
// drive a real serve daemon: serve imports shard (to run shard jobs), so an
// internal test here could not import serve back without a cycle.
package shard_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"fadingcr/internal/experiments"
	"fadingcr/internal/serve"
	"fadingcr/internal/shard"
)

// startDaemon brings up an in-process crserve instance and returns its base
// URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	exec := serve.NewExecutor(serve.Options{Workers: 2, JobParallelism: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = exec.Drain(ctx)
	})
	ts := httptest.NewServer(serve.NewServer(exec, serve.ServerOptions{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func httpRequest(shards int) shard.Request {
	return shard.Request{
		Spec:   experiments.Spec{IDs: "E5", Quick: true, Trials: 2, Seed: 9},
		Shards: shards,
	}
}

// TestEndpointMatchesLocalWorker pins the serve↔shard wire compatibility:
// the bytes a crserve daemon returns for a shard job are exactly the bytes
// shard.RunWorker produces in-process. This is the cross-package guard on
// the submit schema too — serve decodes submissions with
// DisallowUnknownFields, so a drifted field in the client would fail here.
func TestEndpointMatchesLocalWorker(t *testing.T) {
	url := startDaemon(t)
	req := httpRequest(3)
	ep := &shard.Endpoint{URL: url}
	remote, err := ep.RunShard(context.Background(), req, 1)
	if err != nil {
		t.Fatal(err)
	}
	local, err := shard.RunWorker(context.Background(), req, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local) {
		t.Errorf("daemon shard bytes differ from in-process worker:\n--- remote ---\n%s\n--- local ---\n%s", remote, local)
	}
}

// TestCoordinatorOverEndpoints runs a full sharded run against two daemons
// and requires output byte-identical to local workers.
func TestCoordinatorOverEndpoints(t *testing.T) {
	req := httpRequest(4)

	localCoord := shard.Coordinator{Executors: []shard.Executor{&shard.Local{Parallelism: 2}}}
	lm, err := localCoord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := shard.Assemble(context.Background(), &want, req, lm, false); err != nil {
		t.Fatal(err)
	}

	remoteCoord := shard.Coordinator{Executors: []shard.Executor{
		&shard.Endpoint{URL: startDaemon(t)},
		&shard.Endpoint{URL: startDaemon(t)},
	}}
	rm, err := remoteCoord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := shard.Assemble(context.Background(), &got, req, rm, false); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("endpoint-run output differs from local workers:\n--- local ---\n%s\n--- endpoints ---\n%s", want.String(), got.String())
	}
	if lm.Hash() != rm.Hash() {
		t.Errorf("aggregate hash differs: local %s, endpoints %s", lm.Hash(), rm.Hash())
	}
}

// TestEndpointReportsJobFailure pins that a daemon-side failure surfaces as
// an executor error, not as garbage bytes: an out-of-range index is rejected
// by spec validation at submit time.
func TestEndpointReportsJobFailure(t *testing.T) {
	url := startDaemon(t)
	ep := &shard.Endpoint{URL: url}
	if _, err := ep.RunShard(context.Background(), httpRequest(2), 5); err == nil {
		t.Error("out-of-range shard index accepted by the daemon")
	}
}
