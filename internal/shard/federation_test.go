// Trace-federation goldens. Like the HTTP executor tests, these live in the
// external test package so they can mix Local executors with real crserve
// daemons behind Endpoint.
package shard_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fadingcr/internal/experiments"
	"fadingcr/internal/shard"
	"fadingcr/internal/trace"
)

// tracedRequest is the golden trace-federation workload: E1's trial loops at
// quick scale, traced on every trial.
func tracedRequest(shards int) shard.Request {
	return shard.Request{
		Spec:   experiments.Spec{IDs: "E1", Quick: true, Trials: 2, Seed: 7},
		Shards: shards,
		Trace:  &shard.TraceSpec{},
	}
}

// captureUnsharded executes the request's experiments exactly like an
// unsharded `crbench -trace-dir` run — same capture command, same policy —
// and returns the capture directory.
func captureUnsharded(t *testing.T, req shard.Request) string {
	t.Helper()
	dir := t.TempDir()
	selected, cfg, err := experiments.ConfigFromSpec(req.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Context = context.Background()
	cfg.Trace, err = trace.NewCapture("crbench", trace.Policy{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range selected {
		if _, err := e.Run(cfg); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	return dir
}

// dirSnapshot reads a trace directory into name → contents.
func dirSnapshot(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = data
	}
	return snap
}

// requireSameDir asserts two trace directories hold identical file sets with
// identical bytes.
func requireSameDir(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	names := func(m map[string][]byte) []string {
		var ns []string
		for n := range m {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		return ns
	}
	w, g := names(want), names(got)
	if strings.Join(w, "\n") != strings.Join(g, "\n") {
		t.Fatalf("%s: federated file set differs:\n--- unsharded ---\n%s\n--- federated ---\n%s",
			label, strings.Join(w, "\n"), strings.Join(g, "\n"))
	}
	for _, n := range w {
		if !bytes.Equal(want[n], got[n]) {
			t.Errorf("%s: trace file %s bytes differ from the unsharded capture", label, n)
		}
	}
}

// TestGoldenTraceFederationMatchesUnsharded is the tentpole's golden: a
// sharded traced run — at shard counts 1, 3, and 8, over local workers and
// a local+HTTP endpoint mix — federates a trace directory whose file set
// and bytes are identical to an unsharded `crbench -trace-dir` capture, and
// the assembled stdout is byte-identical to an untraced run.
func TestGoldenTraceFederationMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments and daemons")
	}
	want := dirSnapshot(t, captureUnsharded(t, tracedRequest(1)))
	if len(want) == 0 {
		t.Fatal("unsharded capture wrote no trace files; the golden is vacuous")
	}

	var untraced bytes.Buffer
	{
		req := tracedRequest(1)
		req.Trace = nil
		coord := shard.Coordinator{Executors: []shard.Executor{&shard.Local{Parallelism: 2}}}
		m, err := coord.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if m.Traces != nil || m.TracePolicy != nil {
			t.Fatal("untraced run carries federated traces")
		}
		if err := shard.Assemble(context.Background(), &untraced, req, m, false); err != nil {
			t.Fatal(err)
		}
	}

	mixes := map[string][]shard.Executor{
		"local": {
			&shard.Local{ID: "w0", Parallelism: 2},
			&shard.Local{ID: "w1", Parallelism: 2},
		},
		"local+http": {
			&shard.Local{ID: "w0", Parallelism: 2},
			&shard.Endpoint{URL: startDaemon(t)},
		},
	}
	for name, executors := range mixes {
		for _, shards := range []int{1, 3, 8} {
			label := name
			req := tracedRequest(shards)
			coord := shard.Coordinator{Executors: executors}
			m, err := coord.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%s/%d shards: %v", label, shards, err)
			}
			out := t.TempDir()
			n, err := m.WriteTraceDir(out)
			if err != nil {
				t.Fatalf("%s/%d shards: %v", label, shards, err)
			}
			if n != len(want) {
				t.Errorf("%s/%d shards: federated %d trace files, unsharded capture has %d", label, shards, n, len(want))
			}
			requireSameDir(t, label, want, dirSnapshot(t, out))

			// Tracing is observational: assembled stdout must not move a byte.
			var got bytes.Buffer
			if err := shard.Assemble(context.Background(), &got, req, m, false); err != nil {
				t.Fatal(err)
			}
			if got.String() != untraced.String() {
				t.Errorf("%s/%d shards: traced stdout differs from untraced stdout", label, shards)
			}
		}
	}
}

// TestResumeRejectsDifferentlyTracedCheckpoints pins the checkpoint trace
// guard: RequestHash ignores the trace spec, so an untraced run's checkpoints
// load cleanly for a traced resume of the same spec — and must be ignored
// and recomputed, or the resumed run would silently lose its trace files.
func TestResumeRejectsDifferentlyTracedCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	ckpt := &shard.CheckpointDir{Dir: t.TempDir()}
	untraced := tracedRequest(2)
	untraced.Trace = nil
	warm := shard.Coordinator{Executors: []shard.Executor{&shard.Local{Parallelism: 2}}, Checkpoints: ckpt}
	if _, err := warm.Run(context.Background(), untraced); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	resumed := shard.Coordinator{
		Executors:   []shard.Executor{&shard.Local{Parallelism: 2}},
		Checkpoints: ckpt,
		Resume:      true,
		Log:         &log,
	}
	m, err := resumed.Run(context.Background(), tracedRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "ignoring checkpoint") {
		t.Errorf("untraced checkpoints silently resumed into a traced run:\n%s", log.String())
	}
	want := dirSnapshot(t, captureUnsharded(t, tracedRequest(1)))
	out := t.TempDir()
	if _, err := m.WriteTraceDir(out); err != nil {
		t.Fatal(err)
	}
	requireSameDir(t, "traced resume", want, dirSnapshot(t, out))
}
