// Package shard is the distributed Monte Carlo sharding protocol: it
// splits one experiment run into contiguous per-shard trial ranges,
// executes the shards locally or on remote crserve daemons, and reassembles
// their results into output byte-identical to an unsharded run.
//
// Determinism is inherited, not re-established: the (master, shard, trial)
// seed contract (runner.ShardTrialSeeds, DESIGN.md §8) makes every sharded
// trial execute with exactly the seeds its unsharded counterpart uses, and
// the experiments.ShardScope hook feeds trial values back into the
// unmodified aggregation/rendering code in global trial order — so the
// assembler's stdout equals the unsharded run's stdout at any shard count,
// worker count, endpoint mix, and across checkpoint kill-and-resume.
//
// The wire format is NDJSON (one shard result per stream): a header line
// binding the result to its request hash and shard coordinates, one line
// per trial loop carrying the executed values and an exact mergeable
// summary, and an end line whose loop count makes truncation detectable.
package shard

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"fadingcr/internal/experiments"
	"fadingcr/internal/obs"
	"fadingcr/internal/runner"
	"fadingcr/internal/trace"
)

// schemaVersion identifies the wire layout; bump on incompatible change.
const schemaVersion = 1

// Result is one shard's contribution to a sharded run: the decoded form of
// the wire stream.
type Result struct {
	// SpecHash is RequestHash of the run the shard belongs to.
	SpecHash string
	// Shards is the run's total shard count; Index ∈ [0, Shards).
	Shards int
	Index  int
	// Seed echoes the run's master seed (diagnostic; the hash binds it).
	Seed uint64
	// Loops holds one record per trial loop, in loop order.
	Loops []experiments.LoopRecord
	// Bundle carries the worker's captured trace files when the request
	// asked for tracing, nil otherwise. On the wire it rides directly after
	// the end line (see trace.Bundle for the format), so one stream carries
	// both the shard's values and its traces and checkpoints federate
	// traces for free.
	Bundle *trace.Bundle
}

// Encode writes the canonical wire form. The bytes are a pure function of
// the result: field order is fixed and values JSON-encode deterministically.
func (r *Result) Encode(w io.Writer) error {
	enc := obs.NewLineEncoder(w)
	enc.Begin("shard")
	enc.Int("schema", schemaVersion)
	enc.Str("spec", r.SpecHash)
	enc.Int("shard", int64(r.Index))
	enc.Int("shards", int64(r.Shards))
	enc.Uint("seed", r.Seed)
	if err := enc.End(); err != nil {
		return err
	}
	for _, lr := range r.Loops {
		enc.Begin("loop")
		enc.Int("loop", int64(lr.Loop))
		enc.Int("total", int64(lr.Total))
		enc.Int("lo", int64(lr.Lo))
		enc.Int("hi", int64(lr.Hi))
		enc.Arr("values")
		for _, v := range lr.Values {
			enc.ElemRaw(v)
		}
		enc.ArrEnd()
		if lr.Summary != nil {
			raw, err := json.Marshal(lr.Summary)
			if err != nil {
				return fmt.Errorf("shard: encode loop %d summary: %w", lr.Loop, err)
			}
			enc.Raw("summary", raw)
		}
		if err := enc.End(); err != nil {
			return err
		}
	}
	enc.Begin("end")
	enc.Int("loops", int64(len(r.Loops)))
	if err := enc.End(); err != nil {
		return err
	}
	if r.Bundle != nil {
		return r.Bundle.Encode(w)
	}
	return nil
}

// Bytes is Encode into memory.
func (r *Result) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// wireLine is the union of all wire line shapes; Event discriminates.
type wireLine struct {
	Event   string                   `json:"event"`
	Schema  int                      `json:"schema"`
	Spec    string                   `json:"spec"`
	Shard   int                      `json:"shard"`
	Shards  int                      `json:"shards"`
	Seed    uint64                   `json:"seed"`
	Loop    int                      `json:"loop"`
	Total   int                      `json:"total"`
	Lo      int                      `json:"lo"`
	Hi      int                      `json:"hi"`
	Values  []json.RawMessage        `json:"values"`
	Summary *experiments.LoopSummary `json:"summary"`
	Loops   int                      `json:"loops"`
}

// Decode parses and validates one wire stream: header first, loop lines in
// strictly sequential loop order with range-consistent value counts, and a
// loop-count-matching end line at EOF. A truncated or reordered stream is
// an error, which is what makes half-written checkpoints safe to discard.
func Decode(r io.Reader) (*Result, error) {
	br := bufio.NewReader(r)
	readLine := func() (*wireLine, error) {
		for {
			raw, err := br.ReadBytes('\n')
			if len(raw) == 0 && err != nil {
				if errors.Is(err, io.EOF) {
					return nil, io.EOF
				}
				return nil, err
			}
			if err != nil && !errors.Is(err, io.EOF) {
				return nil, err
			}
			trimmed := bytes.TrimSpace(raw)
			if len(trimmed) == 0 {
				if err != nil {
					return nil, io.EOF
				}
				continue
			}
			var l wireLine
			if uerr := json.Unmarshal(trimmed, &l); uerr != nil {
				return nil, fmt.Errorf("shard: parse wire line: %w", uerr)
			}
			return &l, nil
		}
	}

	head, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("shard: missing header: %w", err)
	}
	if head.Event != "shard" {
		return nil, fmt.Errorf("shard: first event %q, want shard", head.Event)
	}
	if head.Schema != schemaVersion {
		return nil, fmt.Errorf("shard: wire schema %d, want %d", head.Schema, schemaVersion)
	}
	if head.Shards < 1 || head.Shard < 0 || head.Shard >= head.Shards {
		return nil, fmt.Errorf("shard: invalid coordinates %d/%d", head.Shard, head.Shards)
	}
	res := &Result{SpecHash: head.Spec, Shards: head.Shards, Index: head.Shard, Seed: head.Seed}
	for {
		l, err := readLine()
		if errors.Is(err, io.EOF) {
			return nil, errors.New("shard: truncated stream (no end line)")
		}
		if err != nil {
			return nil, err
		}
		switch l.Event {
		case "loop":
			if l.Loop != len(res.Loops) {
				return nil, fmt.Errorf("shard: loop %d out of order (want %d)", l.Loop, len(res.Loops))
			}
			wantLo, wantHi := runner.ShardRange(l.Total, res.Shards, res.Index)
			if l.Lo != wantLo || l.Hi != wantHi {
				return nil, fmt.Errorf("shard: loop %d range [%d,%d), want [%d,%d) for shard %d/%d of %d trials",
					l.Loop, l.Lo, l.Hi, wantLo, wantHi, res.Index, res.Shards, l.Total)
			}
			if len(l.Values) != l.Hi-l.Lo {
				return nil, fmt.Errorf("shard: loop %d carries %d values for range [%d,%d)", l.Loop, len(l.Values), l.Lo, l.Hi)
			}
			res.Loops = append(res.Loops, experiments.LoopRecord{
				Loop: l.Loop, Total: l.Total, Lo: l.Lo, Hi: l.Hi,
				Values: l.Values, Summary: l.Summary,
			})
		case "end":
			if l.Loops != len(res.Loops) {
				return nil, fmt.Errorf("shard: end line counts %d loops, stream has %d", l.Loops, len(res.Loops))
			}
			// An optional trace bundle may ride after the end line; anything
			// else trailing is still an error.
			if peeked, _ := br.Peek(trace.BundleMagicLen); trace.IsBundlePrefix(peeked) {
				bundle, berr := trace.ReadBundle(br)
				if berr != nil {
					return nil, fmt.Errorf("shard: %w", berr)
				}
				res.Bundle = bundle
			}
			if _, err := readLine(); !errors.Is(err, io.EOF) {
				return nil, errors.New("shard: trailing data after end line")
			}
			return res, nil
		default:
			return nil, fmt.Errorf("shard: unexpected event %q", l.Event)
		}
	}
}

// MergedLoop is one trial loop reassembled across all shards.
type MergedLoop struct {
	// Total is the loop's global trial count.
	Total int
	// Values holds every trial's JSON value in global trial order.
	Values []json.RawMessage
	// Summary is the shard summaries merged in ascending shard order, nil
	// when the loop's value type carries none.
	Summary *experiments.LoopSummary
}

// Merged is a full sharded run reassembled from all of its shards.
type Merged struct {
	SpecHash string
	Shards   int
	Seed     uint64
	Loops    []MergedLoop
	// TracePolicy and Traces federate the shards' trace captures when the
	// run was traced: Traces holds every bundle entry in (loop, name, shard)
	// order with exact duplicates collapsed, ready for WriteTraceDir. Both
	// are nil/empty for untraced runs, and neither contributes to Hash —
	// traces are observational, and Hash must stay identical between traced
	// and untraced runs of one spec.
	TracePolicy *trace.Policy
	Traces      []trace.BundleFile
}

// WriteTraceDir materializes the federated trace capture into dir,
// reproducing an unsharded capture exactly: entries are written in loop
// order, so a name written by several loops ends up holding its last loop's
// bytes, just as the unsharded run's sequential loops would have left it.
// It returns the number of distinct trace files in the directory.
func (m *Merged) WriteTraceDir(dir string) (int, error) {
	return trace.WriteFiles(dir, m.Traces)
}

// Merge reassembles a run from its shard results, in any input order. It
// validates that the parts agree on (hash, shard count, seed, loop
// structure), that every shard index appears exactly once, and that each
// loop's ranges partition its global trial range — so a merged result is
// complete by construction. Empty shards (shard counts above a loop's
// trial count) merge as no-ops.
func Merge(parts []*Result) (*Merged, error) {
	if len(parts) == 0 {
		return nil, errors.New("shard: merge of zero shards")
	}
	first := parts[0]
	byIndex := make([]*Result, first.Shards)
	for _, p := range parts {
		if p.SpecHash != first.SpecHash || p.Shards != first.Shards || p.Seed != first.Seed {
			return nil, fmt.Errorf("shard: mixed runs: shard %d is (%.12s…, %d shards, seed %d), shard %d is (%.12s…, %d shards, seed %d)",
				first.Index, first.SpecHash, first.Shards, first.Seed,
				p.Index, p.SpecHash, p.Shards, p.Seed)
		}
		if p.Index < 0 || p.Index >= first.Shards {
			return nil, fmt.Errorf("shard: index %d out of range [0,%d)", p.Index, first.Shards)
		}
		if byIndex[p.Index] != nil {
			return nil, fmt.Errorf("shard: duplicate shard %d", p.Index)
		}
		byIndex[p.Index] = p
	}
	for i, p := range byIndex {
		if p == nil {
			return nil, fmt.Errorf("shard: missing shard %d of %d", i, first.Shards)
		}
		if len(p.Loops) != len(first.Loops) {
			return nil, fmt.Errorf("shard: shard %d has %d loops, shard %d has %d", p.Index, len(p.Loops), first.Index, len(first.Loops))
		}
	}
	m := &Merged{SpecHash: first.SpecHash, Shards: first.Shards, Seed: first.Seed}
	for li := range first.Loops {
		ml := MergedLoop{Total: first.Loops[li].Total}
		next := 0
		for i, p := range byIndex {
			lr := p.Loops[li]
			if lr.Total != ml.Total {
				return nil, fmt.Errorf("shard: loop %d total %d on shard %d, %d on shard 0", li, lr.Total, i, ml.Total)
			}
			wantLo, wantHi := runner.ShardRange(lr.Total, first.Shards, i)
			if lr.Lo != wantLo || lr.Hi != wantHi || lr.Lo != next {
				return nil, fmt.Errorf("shard: loop %d shard %d range [%d,%d) does not continue partition at %d", li, i, lr.Lo, lr.Hi, next)
			}
			if len(lr.Values) != lr.Hi-lr.Lo {
				return nil, fmt.Errorf("shard: loop %d shard %d carries %d values for range [%d,%d)", li, i, len(lr.Values), lr.Lo, lr.Hi)
			}
			next = lr.Hi
			ml.Values = append(ml.Values, lr.Values...)
			if lr.Summary != nil {
				if ml.Summary == nil {
					ml.Summary = &experiments.LoopSummary{}
				}
				// Ascending shard order = ascending global trial order:
				// the deterministic fold direction (DESIGN.md §8).
				ml.Summary.Merge(lr.Summary)
			}
		}
		if next != ml.Total {
			return nil, fmt.Errorf("shard: loop %d shards cover [0,%d) of %d trials", li, next, ml.Total)
		}
		m.Loops = append(m.Loops, ml)
	}
	if err := mergeTraces(m, byIndex); err != nil {
		return nil, err
	}
	return m, nil
}

// mergeTraces federates the shards' trace bundles into m. Bundles must be
// all-or-none across shards and captured under one policy — a mix means the
// parts come from runs with different trace settings, which the coordinator
// treats like a spec mismatch. Entries sort by (loop, name) with ascending
// shard index breaking ties, which makes the write order deterministic and
// equal to the unsharded capture's loop overwrite order; entries for the
// same (loop, name) must be byte-identical (they are re-executions of the
// same pure trial — e.g. an empty shard's donor trial) and collapse to one.
func mergeTraces(m *Merged, byIndex []*Result) error {
	traced := 0
	for _, p := range byIndex {
		if p.Bundle != nil {
			traced++
		}
	}
	if traced == 0 {
		return nil
	}
	if traced != len(byIndex) {
		return fmt.Errorf("shard: %d of %d shard(s) carry trace bundles; traced runs need all of them", traced, len(byIndex))
	}
	policy := byIndex[0].Bundle.Policy
	var files []trace.BundleFile
	for i, p := range byIndex {
		if p.Bundle.Policy != policy {
			return fmt.Errorf("shard: shard %d traces were captured under a different policy than shard 0", i)
		}
		files = append(files, p.Bundle.Files...)
	}
	sort.SliceStable(files, func(i, j int) bool {
		if files[i].Loop != files[j].Loop {
			return files[i].Loop < files[j].Loop
		}
		return files[i].Name < files[j].Name
	})
	var out []trace.BundleFile
	for _, f := range files {
		if n := len(out); n > 0 && out[n-1].Loop == f.Loop && out[n-1].Name == f.Name {
			if !bytes.Equal(out[n-1].Data, f.Data) {
				return fmt.Errorf("shard: trace file %q (loop %d) diverges between shards", f.Name, f.Loop)
			}
			continue
		}
		out = append(out, f)
	}
	m.TracePolicy = &policy
	m.Traces = out
	return nil
}

// Hash is the canonical identity of a merged run: the hex SHA-256 of a
// canonical encoding covering the request hash, seed, and every loop's
// trial values plus the *exact* summary fields (counts, min/max,
// histogram). The floating-point mean/M2 of a merged summary depend on the
// merge tree and are deliberately excluded — Hash is therefore identical
// for the same run at any shard count, which the golden tests assert.
func (m *Merged) Hash() string {
	h := sha256.New()
	enc := obs.NewLineEncoder(h)
	enc.Begin("merged")
	enc.Int("schema", schemaVersion)
	enc.Str("spec", m.SpecHash)
	enc.Uint("seed", m.Seed)
	enc.Int("loops", int64(len(m.Loops)))
	_ = enc.End()
	for li, ml := range m.Loops {
		enc.Begin("loop")
		enc.Int("loop", int64(li))
		enc.Int("total", int64(ml.Total))
		enc.Arr("values")
		for _, v := range ml.Values {
			enc.ElemRaw(v)
		}
		enc.ArrEnd()
		if ml.Summary != nil {
			enc.Int("n", int64(ml.Summary.Agg.N))
			enc.Int("unsolved", int64(ml.Summary.Agg.Unsolved))
			enc.Float("min", ml.Summary.Agg.Min)
			enc.Float("max", ml.Summary.Agg.Max)
			enc.Int("solved", int64(ml.Summary.Solved))
			enc.Arr("hist")
			for _, c := range ml.Summary.Hist {
				enc.ElemInt(c)
			}
			enc.ArrEnd()
		}
		_ = enc.End()
	}
	return hex.EncodeToString(h.Sum(nil))
}
