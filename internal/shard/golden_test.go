package shard

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"fadingcr/internal/experiments"
)

// goldenRequest is the satellite spec the byte-identity goldens run: two
// real experiments (E1's scalar trial loops, E12's multi-column sweep) at
// quick scale.
func goldenRequest(shards int) Request {
	return Request{
		Spec:   experiments.Spec{IDs: "E1,E12", Quick: true, Trials: 2, Seed: 7},
		Shards: shards,
	}
}

// renderUnsharded runs the request's experiments directly (no sharding
// anywhere) and renders them exactly like crbench does.
func renderUnsharded(t *testing.T, req Request) string {
	t.Helper()
	selected, cfg, err := experiments.ConfigFromSpec(req.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Context = context.Background()
	var buf bytes.Buffer
	for _, e := range selected {
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if err := experiments.RenderTables(&buf, e, tables, false); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestGoldenShardedMatchesUnsharded is the tentpole's binding invariant:
// coordinator + assembler output is byte-identical to the unsharded run at
// shard counts 1, 3, and 8 over two local workers, and the merged aggregate
// hash is identical at every shard count.
func TestGoldenShardedMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	want := renderUnsharded(t, goldenRequest(1))
	hashes := map[string]int{}
	for _, shards := range []int{1, 3, 8} {
		req := goldenRequest(shards)
		coord := Coordinator{Executors: []Executor{
			&Local{ID: "w0", Parallelism: 2},
			&Local{ID: "w1", Parallelism: 2},
		}}
		m, err := coord.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := Assemble(context.Background(), &buf, req, m, false); err != nil {
			t.Fatalf("%d shards: assemble: %v", shards, err)
		}
		if got := buf.String(); got != want {
			t.Errorf("%d shards: output differs from unsharded:\n--- unsharded ---\n%s\n--- %d shards ---\n%s", shards, want, shards, got)
		}
		hashes[m.Hash()] = shards
	}
	if len(hashes) != 1 {
		t.Errorf("aggregate wire hash varies with shard count: %v", hashes)
	}
}

// failAfterExec wraps Local but fails every shard once the kill budget is
// spent, simulating a worker that dies partway through a run.
type failAfterExec struct {
	inner  *Local
	budget int
}

func (f *failAfterExec) Name() string { return "mortal" }

func (f *failAfterExec) RunShard(ctx context.Context, req Request, index int) ([]byte, error) {
	if f.budget <= 0 {
		return nil, fmt.Errorf("killed before shard %d", index)
	}
	f.budget--
	return f.inner.RunShard(ctx, req, index)
}

// TestGoldenKillAndResume kills the run after two shards, asserts the
// partial failure is surfaced with the exact missing shards, then resumes
// from the checkpoints with a healthy worker and requires byte-identical
// output and an identical aggregate hash to the unsharded run.
func TestGoldenKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	const shards = 5
	req := goldenRequest(shards)
	ckpt := &CheckpointDir{Dir: t.TempDir()}

	mortal := &failAfterExec{inner: &Local{Parallelism: 2}, budget: 2}
	first := Coordinator{
		Executors:   []Executor{mortal},
		Checkpoints: ckpt,
		Retries:     0,
		Backoff:     time.Millisecond,
	}
	_, err := first.Run(context.Background(), req)
	if err == nil {
		t.Fatal("killed run reported success")
	}
	if !strings.Contains(err.Error(), "3/5 shard(s) failed") || !strings.Contains(err.Error(), "killed before") {
		t.Fatalf("partial failure report:\n%v", err)
	}

	// The survivor's shards are checkpointed; a resumed run with a healthy
	// worker completes only the missing ones (the fake would fail them).
	resumed := Coordinator{
		Executors:   []Executor{&Local{Parallelism: 2}},
		Checkpoints: ckpt,
		Resume:      true,
	}
	m, err := resumed.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	var buf bytes.Buffer
	if err := Assemble(context.Background(), &buf, req, m, false); err != nil {
		t.Fatal(err)
	}
	if want := renderUnsharded(t, req); buf.String() != want {
		t.Errorf("kill-and-resume output differs from unsharded:\n--- unsharded ---\n%s\n--- resumed ---\n%s", want, buf.String())
	}

	// Cross-check the aggregate hash against an uninterrupted sharded run.
	clean := Coordinator{Executors: []Executor{&Local{Parallelism: 2}}}
	cm, err := clean.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash() != cm.Hash() {
		t.Errorf("resumed hash %s != clean hash %s", m.Hash(), cm.Hash())
	}
}
