package shard

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"fadingcr/internal/experiments"
)

func quickRequest(shards int) Request {
	return Request{
		Spec:   experiments.Spec{IDs: "E5", Quick: true, Trials: 2, Seed: 9},
		Shards: shards,
	}
}

func TestRequestHashNormalizesDefaults(t *testing.T) {
	implicit := Request{Spec: experiments.Spec{Seed: 1}, Shards: 2}
	explicit := Request{Spec: experiments.Spec{IDs: "all", GainCache: "auto", Seed: 1}, Shards: 2}
	if RequestHash(implicit) != RequestHash(explicit) {
		t.Error("equivalent requests hash differently")
	}
}

func TestRequestHashDistinguishesRuns(t *testing.T) {
	base := quickRequest(2)
	seen := map[string]string{RequestHash(base): "base"}
	variants := map[string]Request{}
	r := quickRequest(2)
	r.Spec.Seed = 10
	variants["seed"] = r
	r = quickRequest(2)
	r.Spec.Trials = 3
	variants["trials"] = r
	r = quickRequest(2)
	r.Spec.IDs = "E4"
	variants["ids"] = r
	for name, req := range variants {
		h := RequestHash(req)
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestRequestHashIsShardCountInvariant(t *testing.T) {
	// Sharding never changes the computed values, so the run identity —
	// and with it Merged.Hash — must not depend on the shard count.
	if RequestHash(quickRequest(2)) != RequestHash(quickRequest(7)) {
		t.Error("request hash depends on the shard count")
	}
}

func TestRequestValidate(t *testing.T) {
	if err := quickRequest(2).Validate(); err != nil {
		t.Errorf("good request rejected: %v", err)
	}
	if err := quickRequest(0).Validate(); err == nil || !strings.Contains(err.Error(), "shard count") {
		t.Errorf("zero shards: %v", err)
	}
	bad := quickRequest(2)
	bad.Spec.IDs = "E999"
	if err := bad.Validate(); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWorkerRejectsBadIndex(t *testing.T) {
	for _, idx := range []int{-1, 2} {
		if _, err := RunWorker(context.Background(), quickRequest(2), idx, 1, nil); err == nil {
			t.Errorf("index %d accepted", idx)
		}
	}
}

func TestRunWorkerBytesAreParallelismInvariant(t *testing.T) {
	req := quickRequest(3)
	a, err := RunWorker(context.Background(), req, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorker(context.Background(), req, 1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("shard wire bytes depend on worker parallelism")
	}
}

func TestAssembleRejectsForeignMerge(t *testing.T) {
	req := quickRequest(1)
	raw, err := RunWorker(context.Background(), req, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge([]*Result{res})
	if err != nil {
		t.Fatal(err)
	}
	other := quickRequest(1)
	other.Spec.Seed = 1234
	var buf bytes.Buffer
	if err := Assemble(context.Background(), &buf, other, m, false); err == nil || !strings.Contains(err.Error(), "request is") {
		t.Errorf("foreign merged result accepted: %v", err)
	}
}
