package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeExec is an in-memory Executor producing structurally valid wire bytes
// (zero-loop results bound to the request hash), with scriptable failures.
type fakeExec struct {
	name string
	// fail, when non-nil, decides whether a given call errors.
	fail func(index int, call int) error
	// block, when true, parks every RunShard until ctx ends.
	block bool
	// started is closed on the first RunShard call when non-nil.
	started   chan struct{}
	startOnce sync.Once

	mu    sync.Mutex
	calls map[int]int // shard index → attempts on this executor
}

func (f *fakeExec) Name() string { return f.name }

func (f *fakeExec) RunShard(ctx context.Context, req Request, index int) ([]byte, error) {
	if f.started != nil {
		f.startOnce.Do(func() { close(f.started) })
	}
	f.mu.Lock()
	if f.calls == nil {
		f.calls = map[int]int{}
	}
	f.calls[index]++
	call := f.calls[index]
	f.mu.Unlock()
	if f.block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if f.fail != nil {
		if err := f.fail(index, call); err != nil {
			return nil, err
		}
	}
	res := &Result{SpecHash: RequestHash(req), Shards: req.Shards, Index: index, Seed: req.Spec.Seed}
	return res.Bytes()
}

func (f *fakeExec) attempts(index int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[index]
}

func (f *fakeExec) totalCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c
	}
	return n
}

func TestCoordinatorRunsEveryShardOnce(t *testing.T) {
	req := quickRequest(5)
	a := &fakeExec{name: "a"}
	b := &fakeExec{name: "b"}
	coord := Coordinator{Executors: []Executor{a, b}}
	m, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 5 || m.SpecHash != RequestHash(req) {
		t.Errorf("merged header: %+v", m)
	}
	for i := 0; i < 5; i++ {
		if got := a.attempts(i) + b.attempts(i); got != 1 {
			t.Errorf("shard %d ran %d times, want 1", i, got)
		}
	}
}

func TestCoordinatorRetriesTransientFailures(t *testing.T) {
	req := quickRequest(3)
	flaky := &fakeExec{name: "flaky", fail: func(index, call int) error {
		if call == 1 {
			return fmt.Errorf("transient %d", index)
		}
		return nil
	}}
	coord := Coordinator{Executors: []Executor{flaky}, Retries: 2, Backoff: time.Millisecond}
	if _, err := coord.Run(context.Background(), req); err != nil {
		t.Fatalf("retriable failures not recovered: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got := flaky.attempts(i); got != 2 {
			t.Errorf("shard %d attempted %d times, want 2", i, got)
		}
	}
}

func TestCoordinatorPartialFailureListsShards(t *testing.T) {
	req := quickRequest(4)
	broken := &fakeExec{name: "broken", fail: func(index, call int) error {
		if index >= 2 {
			return errors.New("disk on fire")
		}
		return nil
	}}
	coord := Coordinator{Executors: []Executor{broken}, Retries: 0, Backoff: time.Millisecond}
	_, err := coord.Run(context.Background(), req)
	if err == nil {
		t.Fatal("partial failure not surfaced")
	}
	msg := err.Error()
	for _, want := range []string{"2/4 shard(s) failed", "shard 2:", "shard 3:", "broken", "disk on fire"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure report missing %q:\n%s", want, msg)
		}
	}
}

// TestCoordinatorRedispatchesStragglers pins the dead-worker recovery path:
// an executor that hangs on its claimed shard must not stall the run — the
// healthy executor re-dispatches the in-flight shard and finishes it.
func TestCoordinatorRedispatchesStragglers(t *testing.T) {
	req := quickRequest(3)
	dead := &fakeExec{name: "dead", block: true, started: make(chan struct{})}
	live := &fakeExec{name: "live", fail: func(index, call int) error {
		// Hold the first result until the dead executor has certainly
		// claimed (and is hanging on) some shard, so the re-dispatch path
		// is exercised deterministically.
		<-dead.started
		return nil
	}}
	coord := Coordinator{
		Executors:    []Executor{dead, live},
		Retries:      0,
		Backoff:      time.Millisecond,
		ShardTimeout: 50 * time.Millisecond,
	}
	m, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("dead executor stalled the run: %v", err)
	}
	if m.Shards != 3 {
		t.Errorf("merged %d shards, want 3", m.Shards)
	}
	if live.totalCalls() < 3 {
		t.Errorf("live executor ran %d shards, want all 3", live.totalCalls())
	}
	if dead.totalCalls() < 1 {
		t.Error("dead executor never claimed a shard; straggler path untested")
	}
}

func TestCoordinatorInvalidResultBytesAreRejected(t *testing.T) {
	req := quickRequest(2)
	// An executor whose bytes decode but belong to a different run must be
	// treated as a failure, not merged.
	var liar liarExec
	coord := Coordinator{Executors: []Executor{&liar}, Retries: 0, Backoff: time.Millisecond}
	_, err := coord.Run(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "result is for run") {
		t.Errorf("foreign result accepted: %v", err)
	}
}

type liarExec struct{}

func (liarExec) Name() string { return "liar" }
func (liarExec) RunShard(_ context.Context, req Request, index int) ([]byte, error) {
	res := &Result{SpecHash: "0000dead0000", Shards: req.Shards, Index: index, Seed: req.Spec.Seed}
	return res.Bytes()
}

func TestCoordinatorResumeSkipsCheckpointedShards(t *testing.T) {
	req := quickRequest(3)
	dir := t.TempDir()
	ckpt := &CheckpointDir{Dir: dir}

	// First run writes checkpoints for every shard.
	first := &fakeExec{name: "first"}
	coord := Coordinator{Executors: []Executor{first}, Checkpoints: ckpt}
	if _, err := coord.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "shard-*.ndjson"))
	if len(files) != 3 {
		t.Fatalf("checkpoint dir holds %d files, want 3", len(files))
	}

	// Drop one checkpoint: the resumed run must recompute exactly that shard.
	if err := os.Remove(ckpt.path(3, 1)); err != nil {
		t.Fatal(err)
	}
	second := &fakeExec{name: "second"}
	resumeCoord := Coordinator{Executors: []Executor{second}, Checkpoints: ckpt, Resume: true}
	if _, err := resumeCoord.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if second.attempts(0) != 0 || second.attempts(2) != 0 {
		t.Error("resume recomputed checkpointed shards")
	}
	if second.attempts(1) != 1 {
		t.Errorf("resume ran the missing shard %d times, want 1", second.attempts(1))
	}
}

func TestCoordinatorResumeIgnoresForeignCheckpoints(t *testing.T) {
	req := quickRequest(2)
	dir := t.TempDir()
	ckpt := &CheckpointDir{Dir: dir}
	// A checkpoint from a different run (wrong spec hash) in the right slot.
	foreign := &Result{SpecHash: "feedfacecafe", Shards: 2, Index: 0, Seed: 1}
	raw, err := foreign.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Store(2, 0, raw); err != nil {
		t.Fatal(err)
	}
	// And a plainly corrupt one in the other slot.
	if err := ckpt.Store(2, 1, []byte("not a wire stream\n")); err != nil {
		t.Fatal(err)
	}

	exec := &fakeExec{name: "exec"}
	var log strings.Builder
	coord := Coordinator{Executors: []Executor{exec}, Checkpoints: ckpt, Resume: true, Log: &log}
	if _, err := coord.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if exec.attempts(0) != 1 || exec.attempts(1) != 1 {
		t.Errorf("foreign/corrupt checkpoints not recomputed: attempts %d/%d", exec.attempts(0), exec.attempts(1))
	}
	if !strings.Contains(log.String(), "ignoring checkpoint") {
		t.Errorf("bad checkpoints not surfaced in the log:\n%s", log.String())
	}
}

func TestCoordinatorWithoutResumeIgnoresExistingCheckpoints(t *testing.T) {
	req := quickRequest(2)
	dir := t.TempDir()
	ckpt := &CheckpointDir{Dir: dir}
	warm := &fakeExec{name: "warm"}
	coord := Coordinator{Executors: []Executor{warm}, Checkpoints: ckpt}
	if _, err := coord.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	cold := &fakeExec{name: "cold"}
	again := Coordinator{Executors: []Executor{cold}, Checkpoints: ckpt} // Resume unset
	if _, err := again.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if cold.totalCalls() != 2 {
		t.Errorf("non-resume run executed %d shards, want 2 (checkpoints must be opt-in reads)", cold.totalCalls())
	}
}

func TestCoordinatorContextCancellation(t *testing.T) {
	req := quickRequest(2)
	hang := &fakeExec{name: "hang", block: true}
	coord := Coordinator{Executors: []Executor{hang}, Retries: 0}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(ctx, req)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled coordinator never returned")
	}
}

func TestCoordinatorRequiresExecutors(t *testing.T) {
	coord := Coordinator{}
	if _, err := coord.Run(context.Background(), quickRequest(2)); err == nil || !strings.Contains(err.Error(), "no executors") {
		t.Errorf("executorless run: %v", err)
	}
}
