package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"fadingcr/internal/experiments"
	"fadingcr/internal/runner"
)

// fakeResult builds a structurally valid shard result for hand-driven wire
// and merge tests: `loops` trial loops of `total` trials each, every value
// the JSON number of its global trial index, with an exact summary.
func fakeResult(specHash string, shards, index int, loops, total int) *Result {
	r := &Result{SpecHash: specHash, Shards: shards, Index: index, Seed: 7}
	for l := 0; l < loops; l++ {
		lo, hi := runner.ShardRange(total, shards, index)
		rec := experiments.LoopRecord{Loop: l, Total: total, Lo: lo, Hi: hi, Summary: &experiments.LoopSummary{}}
		var agg runner.Aggregator
		for t := lo; t < hi; t++ {
			rec.Values = append(rec.Values, json.RawMessage(fmt.Sprintf("%d", t)))
			agg.Observe(float64(t), true)
			rec.Summary.Solved++
		}
		rec.Summary.Agg = agg.State()
		r.Loops = append(r.Loops, rec)
	}
	return r
}

func TestWireRoundTrip(t *testing.T) {
	in := fakeResult("abc123", 3, 1, 2, 10)
	raw, err := in.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if out.SpecHash != in.SpecHash || out.Shards != in.Shards || out.Index != in.Index || out.Seed != in.Seed {
		t.Errorf("header mismatch: %+v", out)
	}
	if len(out.Loops) != len(in.Loops) {
		t.Fatalf("decoded %d loops, want %d", len(out.Loops), len(in.Loops))
	}
	for i, lr := range out.Loops {
		want := in.Loops[i]
		if lr.Loop != want.Loop || lr.Total != want.Total || lr.Lo != want.Lo || lr.Hi != want.Hi {
			t.Errorf("loop %d coordinates mismatch: %+v", i, lr)
		}
		for j, v := range lr.Values {
			if string(v) != string(want.Values[j]) {
				t.Errorf("loop %d value %d = %s, want %s", i, j, v, want.Values[j])
			}
		}
		if lr.Summary == nil || lr.Summary.Agg.N != want.Summary.Agg.N || lr.Summary.Solved != want.Summary.Solved {
			t.Errorf("loop %d summary mismatch: %+v", i, lr.Summary)
		}
	}

	// Re-encoding the decoded result reproduces the bytes: the wire form is
	// canonical.
	raw2, err := out.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("re-encoded wire bytes differ from the original")
	}
}

func TestWireEmptyShardRange(t *testing.T) {
	// 5 shards over 3 trials: shards past the trial count carry loops with
	// zero values and must round-trip.
	in := fakeResult("abc123", 5, 2, 1, 3)
	if lo, hi := in.Loops[0].Lo, in.Loops[0].Hi; lo != hi {
		t.Fatalf("expected an empty range, got [%d,%d)", lo, hi)
	}
	raw, err := in.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(raw)); err != nil {
		t.Fatalf("empty shard rejected: %v", err)
	}
}

func TestDecodeRejectsCorruptStreams(t *testing.T) {
	good, err := fakeResult("abc123", 3, 1, 2, 10).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(good), "\n"), "\n")
	// lines = [header, loop0, loop1, end]
	cases := []struct {
		name string
		raw  string
		want string
	}{
		{"empty", "", "missing header"},
		{"no header", strings.Join(lines[1:], "\n") + "\n", "first event"},
		{"truncated after header", lines[0] + "\n", "truncated"},
		{"truncated mid-loops", strings.Join(lines[:2], "\n") + "\n", "truncated"},
		{"missing loop before end", strings.Join([]string{lines[0], lines[1], lines[3]}, "\n") + "\n", "end line counts"},
		{"reordered loops", strings.Join([]string{lines[0], lines[2], lines[1], lines[3]}, "\n") + "\n", "out of order"},
		{"trailing data", string(good) + lines[1] + "\n", "trailing data"},
		{"garbage line", lines[0] + "\n{not json\n", "parse wire line"},
		{"wrong schema", strings.Replace(lines[0], `"schema":1`, `"schema":99`, 1) + "\n", "schema"},
		{"bad coordinates", strings.Replace(lines[0], `"shard":1`, `"shard":7`, 1) + "\n", "coordinates"},
		{"wrong range", strings.Replace(strings.Join(lines, "\n")+"\n", `"lo":3`, `"lo":4`, 1), "range"},
	}
	for _, tc := range cases {
		_, err := Decode(strings.NewReader(tc.raw))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestMergeReassemblesInShardOrder(t *testing.T) {
	const shards, total = 3, 10
	parts := make([]*Result, shards)
	for i := range parts {
		parts[i] = fakeResult("abc123", shards, i, 2, total)
	}
	// Merge must accept any input order and still produce global trial order.
	m, err := Merge([]*Result{parts[2], parts[0], parts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Loops) != 2 {
		t.Fatalf("merged %d loops, want 2", len(m.Loops))
	}
	for li, ml := range m.Loops {
		if ml.Total != total || len(ml.Values) != total {
			t.Fatalf("loop %d: total=%d values=%d", li, ml.Total, len(ml.Values))
		}
		for i, v := range ml.Values {
			if string(v) != fmt.Sprintf("%d", i) {
				t.Errorf("loop %d value %d = %s, want %d", li, i, v, i)
			}
		}
		if ml.Summary.Agg.N != total || ml.Summary.Solved != total {
			t.Errorf("loop %d merged summary: %+v", li, ml.Summary)
		}
	}
}

func TestMergeRejectsInconsistentParts(t *testing.T) {
	mk := func() []*Result {
		return []*Result{
			fakeResult("abc123", 2, 0, 1, 10),
			fakeResult("abc123", 2, 1, 1, 10),
		}
	}
	cases := []struct {
		name  string
		parts func() []*Result
		want  string
	}{
		{"zero parts", func() []*Result { return nil }, "zero shards"},
		{"missing shard", func() []*Result { return mk()[:1] }, "missing shard 1"},
		{"duplicate shard", func() []*Result { p := mk(); p[1] = p[0]; return p }, "duplicate shard"},
		{"mixed hashes", func() []*Result { p := mk(); p[1].SpecHash = "other"; return p }, "mixed runs"},
		{"mixed seeds", func() []*Result { p := mk(); p[1].Seed = 99; return p }, "mixed runs"},
		{"mixed shard counts", func() []*Result {
			return []*Result{fakeResult("abc123", 2, 0, 1, 10), fakeResult("abc123", 3, 1, 1, 10)}
		}, "mixed runs"},
		{"index out of range", func() []*Result { p := mk(); p[1].Index = 5; return p }, "out of range"},
		{"loop count mismatch", func() []*Result { p := mk(); p[1].Loops = p[1].Loops[:0]; return p }, "loops"},
		{"total mismatch", func() []*Result { p := mk(); p[1].Loops[0].Total = 11; return p }, "total"},
		{"broken partition", func() []*Result { p := mk(); p[1].Loops[0].Lo = 6; return p }, "partition"},
		{"value count mismatch", func() []*Result { p := mk(); p[1].Loops[0].Values = p[1].Loops[0].Values[:2]; return p }, "values"},
	}
	for _, tc := range cases {
		_, err := Merge(tc.parts())
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestMergedHashIsShardCountInvariant(t *testing.T) {
	const total = 10
	hashes := map[string]int{}
	for _, shards := range []int{1, 2, 3, 7, 15} {
		parts := make([]*Result, shards)
		for i := range parts {
			parts[i] = fakeResult("abc123", shards, i, 2, total)
		}
		m, err := Merge(parts)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		hashes[m.Hash()] = shards
	}
	if len(hashes) != 1 {
		t.Errorf("aggregate hash varies with shard count: %v", hashes)
	}
}
