package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Endpoint is the remote executor: it runs shards on a crserve daemon via
// the service's job workflow — POST /v1/jobs with a shard-carrying
// experiment spec, follow GET /v1/jobs/{id}/stream until the job turns
// terminal, then GET /v1/jobs/{id}/result for the wire bytes. The daemon's
// result cache composes for free: a re-dispatched or resumed shard that
// the daemon already computed is served from cache, bytes unchanged.
type Endpoint struct {
	// URL is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Client, when non-nil, overrides http.DefaultClient. Use a client
	// without a global timeout: streams last as long as shards run, and
	// the coordinator bounds attempts via context.
	Client *http.Client
}

// Name implements Executor.
func (e *Endpoint) Name() string { return e.URL }

// client returns the configured or default HTTP client.
func (e *Endpoint) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

// shardJobSpec is the serve.Spec JSON a shard job submits. The field set
// must stay within serve's schema (the daemon decodes submissions with
// DisallowUnknownFields); the cross-package test in internal/serve pins
// the compatibility.
type shardJobSpec struct {
	Experiment   string      `json:"experiment"`
	Seed         uint64      `json:"seed"`
	Trials       int         `json:"trials,omitempty"`
	Quick        bool        `json:"quick,omitempty"`
	GainCache    string      `json:"gaincache,omitempty"`
	FarFieldEps  float64     `json:"farfield_eps,omitempty"`
	SINRParallel int         `json:"sinr_parallel,omitempty"`
	Shard        shardJobRef `json:"shard"`
}

type shardJobRef struct {
	Index int `json:"index"`
	Count int `json:"count"`
	// Trace mirrors Request.Trace; absent for untraced runs so traced and
	// untraced submissions of one spec stay distinct cache keys on the
	// daemon (the bundle rides inside the cached result bytes).
	Trace *shardJobTrace `json:"trace,omitempty"`
}

// shardJobTrace is the wire form of TraceSpec in a job submission.
type shardJobTrace struct {
	Format   string `json:"format,omitempty"`
	Every    int    `json:"every,omitempty"`
	Failures bool   `json:"failures,omitempty"`
	Classes  bool   `json:"classes,omitempty"`
}

// jobStatus is the slice of serve's job Status the client reads.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// RunShard implements Executor.
func (e *Endpoint) RunShard(ctx context.Context, req Request, index int) ([]byte, error) {
	ids := req.Spec.IDs
	if ids == "" {
		ids = "all"
	}
	ref := shardJobRef{Index: index, Count: req.Shards}
	if req.Trace != nil {
		ref.Trace = &shardJobTrace{
			Format:   req.Trace.Format,
			Every:    req.Trace.EveryK,
			Failures: req.Trace.Failures,
			Classes:  req.Trace.Classes,
		}
	}
	body, err := json.Marshal(shardJobSpec{
		Experiment:   ids,
		Seed:         req.Spec.Seed,
		Trials:       req.Spec.Trials,
		Quick:        req.Spec.Quick,
		GainCache:    req.Spec.GainCache,
		FarFieldEps:  req.Spec.FarFieldEps,
		SINRParallel: req.Spec.SINRParallel,
		Shard:        ref,
	})
	if err != nil {
		return nil, err
	}
	st, err := e.submit(ctx, body)
	if err != nil {
		return nil, err
	}
	if err := e.follow(ctx, st.ID); err != nil {
		return nil, err
	}
	return e.result(ctx, st.ID)
}

// submit POSTs the job, absorbing the daemon's 429 backpressure (bounded
// waits honoring Retry-After) so a saturated queue reads as "try again in
// a second", not a shard failure.
func (e *Endpoint) submit(ctx context.Context, body []byte) (*jobStatus, error) {
	const submitAttempts = 5
	var lastErr error
	for attempt := 0; attempt < submitAttempts; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.URL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := e.client().Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			drainBody(resp)
			lastErr = fmt.Errorf("%s: queue full", e.URL)
			if err := sleepCtx(ctx, wait); err != nil {
				return nil, err
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return nil, fmt.Errorf("%s: submit: %s", e.URL, httpErrorString(resp))
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: decode submit response: %w", e.URL, err)
		}
		if st.ID == "" {
			return nil, fmt.Errorf("%s: submit response carries no job id", e.URL)
		}
		return &st, nil
	}
	return nil, lastErr
}

// follow reads the job's NDJSON progress stream to its end. The stream
// protocol guarantees a terminal event before EOF (serve's subscriber
// channels are latest-wins, but the terminal notification is the job's
// last and is never displaced), so EOF means the job is terminal.
func (e *Endpoint) follow(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.URL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := e.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: stream: %s", e.URL, httpErrorString(resp))
	}
	// Progress lines are advisory here; the result endpoint is the source
	// of truth once the stream ends.
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// result fetches the terminal job's result body.
func (e *Endpoint) result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.URL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := e.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: result: %s", e.URL, httpErrorString(resp))
	}
	return io.ReadAll(resp.Body)
}

// httpErrorString renders a non-2xx response compactly, preferring the
// service's {"error": ...} body.
func httpErrorString(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(bytes.TrimSpace(raw), &e) == nil && e.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, e.Error)
	}
	if s := strings.TrimSpace(string(raw)); s != "" {
		return fmt.Sprintf("%s: %s", resp.Status, s)
	}
	return resp.Status
}

// drainBody discards and closes a response body so the connection can be
// reused.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	resp.Body.Close()
}
