package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"fadingcr/internal/obs"
)

// Executor runs one shard of a request and returns its wire bytes. The
// two implementations are Local (in-process) and Endpoint (a remote
// crserve daemon); a Coordinator drives any mix of them.
type Executor interface {
	// Name identifies the executor in logs and failure reports.
	Name() string
	// RunShard executes shard index of the request, honoring ctx.
	RunShard(ctx context.Context, req Request, index int) ([]byte, error)
}

// Coordinator fans the shards of one request out over a set of executors
// and merges the results. Fault handling: per-attempt timeout, retry with
// exponential backoff, straggler re-dispatch (an executor that runs out of
// unstarted shards duplicates the lowest-indexed in-flight one — first
// valid result wins, so one dead worker cannot stall the run), optional
// per-shard checkpoints for kill-and-resume, and partial-failure
// surfacing: a run with any unrecoverable shard reports exactly which
// shards failed and why.
type Coordinator struct {
	// Executors run shards concurrently, one shard per executor at a time.
	Executors []Executor
	// Checkpoints, when non-nil, stores every completed shard as it
	// finishes.
	Checkpoints *CheckpointDir
	// Resume consults Checkpoints before dispatch, so a restarted run
	// recomputes only the missing shards. Checkpoints from a different
	// request or shard count never match (the spec hash and coordinates
	// are validated on load) — they are logged and recomputed.
	Resume bool
	// Retries is how many times one executor re-attempts one shard after
	// its first failure; < 0 selects the default (2).
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt;
	// 0 selects the default (200ms).
	Backoff time.Duration
	// ShardTimeout bounds one attempt's wall clock; 0 means no bound
	// beyond the run context.
	ShardTimeout time.Duration
	// Log, when non-nil, receives one NDJSON line per dispatch-relevant
	// event (resume, completion, retry, failure): {"event":"shard",
	// "msg":…, …structured fields}. Writes are serialized.
	Log io.Writer
	// Spans, when non-nil, receives one span per scheduling phase —
	// run → dispatch → execute, with retry/backoff events and a final merge
	// span — so `crtrace spans` can reconstruct per-shard timelines, retry
	// counts, and straggler attribution. Purely observational: the merged
	// bytes are identical with Spans set or nil.
	Spans *obs.SpanLog
}

const (
	defaultRetries = 2
	defaultBackoff = 200 * time.Millisecond
)

// coordState is the mutex-guarded scheduler state shared by the executor
// goroutines.
type coordState struct {
	mu       sync.Mutex
	done     []bool
	results  [][]byte
	inflight []int
	// gaveUp[shard][executor] marks an (executor, shard) pair whose
	// retry budget is exhausted; a shard is lost only when every executor
	// gave up on it.
	gaveUp  [][]bool
	lastErr []error
	log     *obs.Logger
	run     *obs.Span
}

// next picks the executor's next shard under the lock: the lowest-indexed
// unfinished shard nobody is running, else (straggler re-dispatch) the
// lowest-indexed unfinished shard someone is running — the second return
// reports which case fired. The third return is false when the executor
// has nothing left to do.
func (s *coordState) next(executor int) (int, bool, bool) {
	pick := -1
	for i := range s.done {
		if s.done[i] || s.gaveUp[i][executor] {
			continue
		}
		if s.inflight[i] == 0 {
			pick = i
			break
		}
		if pick < 0 {
			pick = i
		}
	}
	if pick < 0 {
		return 0, false, false
	}
	straggler := s.inflight[pick] > 0
	s.inflight[pick]++
	return pick, straggler, true
}

// Run executes the request across the coordinator's executors and returns
// the merged result. The merged bytes are independent of executor count,
// dispatch order, stragglers, and resume history — only the request
// determines them.
func (c *Coordinator) Run(ctx context.Context, req Request) (*Merged, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if len(c.Executors) == 0 {
		return nil, errors.New("shard: coordinator has no executors")
	}
	specHash := RequestHash(req)
	st := &coordState{
		done:     make([]bool, req.Shards),
		results:  make([][]byte, req.Shards),
		inflight: make([]int, req.Shards),
		gaveUp:   make([][]bool, req.Shards),
		lastErr:  make([]error, req.Shards),
	}
	if c.Log != nil {
		st.log = obs.NewLogger(c.Log, "shard")
	}
	for i := range st.gaveUp {
		st.gaveUp[i] = make([]bool, len(c.Executors))
	}
	st.run = c.Spans.Begin("run",
		obs.F("shards", req.Shards), obs.F("executors", len(c.Executors)), obs.F("spec", specHash[:12]))

	resumed := 0
	if c.Checkpoints != nil && c.Resume {
		for i := 0; i < req.Shards; i++ {
			res, raw, err := c.Checkpoints.Load(specHash, req.Shards, i)
			if err == nil && raw != nil {
				// RequestHash ignores the trace spec, so a checkpoint of the
				// same spec captured under a different (or no) trace policy
				// loads cleanly — reject it structurally here.
				err = req.traceMatches(res)
			}
			if err != nil {
				st.log.Log("ignoring checkpoint", obs.F("shard", i), obs.F("error", err.Error()))
				continue
			}
			if raw != nil {
				st.done[i] = true
				st.results[i] = raw
				resumed++
			}
		}
		if resumed > 0 {
			st.log.Log("resumed shards from checkpoints",
				obs.F("resumed", resumed), obs.F("shards", req.Shards), obs.F("dir", c.Checkpoints.Dir))
			st.run.Event("resume", obs.F("resumed", resumed))
		}
	}

	retries := c.Retries
	if retries < 0 {
		retries = defaultRetries
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}

	var wg sync.WaitGroup
	for e := range c.Executors {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c.executorLoop(ctx, req, specHash, st, e, retries, backoff)
		}(e)
	}
	wg.Wait()

	var failed []int
	for i, ok := range st.done {
		if !ok {
			failed = append(failed, i)
		}
	}
	if len(failed) > 0 {
		st.run.End(obs.F("failed", len(failed)))
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("shard: run canceled with %d/%d shard(s) incomplete: %w", len(failed), req.Shards, err)
		}
		sort.Ints(failed)
		var b strings.Builder
		fmt.Fprintf(&b, "shard: %d/%d shard(s) failed on every executor:", len(failed), req.Shards)
		for _, i := range failed {
			fmt.Fprintf(&b, "\n  shard %d: %v", i, st.lastErr[i])
		}
		return nil, errors.New(b.String())
	}

	ms := st.run.Child("merge", obs.F("shards", req.Shards))
	parts := make([]*Result, req.Shards)
	for i, raw := range st.results {
		res, err := Decode(bytes.NewReader(raw))
		if err != nil {
			ms.End(obs.F("ok", false))
			st.run.End(obs.F("failed", 1))
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		parts[i] = res
	}
	m, err := Merge(parts)
	ms.End(obs.F("ok", err == nil))
	st.run.End(obs.F("failed", 0))
	return m, err
}

// executorLoop is one executor's work loop: claim a shard, attempt it with
// retries, record the outcome, repeat until nothing is left.
func (c *Coordinator) executorLoop(ctx context.Context, req Request, specHash string, st *coordState, e int, retries int, backoff time.Duration) {
	ex := c.Executors[e]
	for ctx.Err() == nil {
		st.mu.Lock()
		index, straggler, ok := st.next(e)
		st.mu.Unlock()
		if !ok {
			return
		}
		sp := st.run.Child("dispatch",
			obs.F("shard", index), obs.F("executor", ex.Name()), obs.F("straggler", straggler))
		raw, err := c.attemptShard(ctx, req, specHash, st, sp, ex, index, retries, backoff)
		sp.End(obs.F("ok", err == nil))
		st.mu.Lock()
		st.inflight[index]--
		if err != nil {
			st.gaveUp[index][e] = true
			st.lastErr[index] = fmt.Errorf("%s: %w", ex.Name(), err)
			st.log.Log("gave up",
				obs.F("shard", index), obs.F("executor", ex.Name()), obs.F("error", err.Error()))
		} else if !st.done[index] {
			st.done[index] = true
			st.results[index] = raw
			st.log.Log("shard done",
				obs.F("shard", index), obs.F("shards", req.Shards), obs.F("executor", ex.Name()))
			if c.Checkpoints != nil {
				if cerr := c.Checkpoints.Store(req.Shards, index, raw); cerr != nil {
					st.log.Log("checkpoint write failed", obs.F("shard", index), obs.F("error", cerr.Error()))
				}
			}
		}
		st.mu.Unlock()
	}
}

// attemptShard runs one (executor, shard) pair with the retry policy and
// validates the returned wire bytes before accepting them. sp is the
// dispatch span the attempts nest under (nil-safe).
func (c *Coordinator) attemptShard(ctx context.Context, req Request, specHash string, st *coordState, sp *obs.Span, ex Executor, index, retries int, backoff time.Duration) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			st.mu.Lock()
			already := st.done[index]
			st.mu.Unlock()
			if already {
				// Another executor finished the shard while this one was
				// failing; stop burning attempts on it.
				return nil, lastErr
			}
			st.log.Log("retrying shard",
				obs.F("shard", index), obs.F("executor", ex.Name()),
				obs.F("attempt", attempt+1), obs.F("attempts", retries+1), obs.F("error", lastErr.Error()))
			sp.Event("retry", obs.F("attempt", attempt+1), obs.F("error", lastErr.Error()))
			wait := backoff << (attempt - 1)
			sp.Event("backoff", obs.F("ms", wait.Milliseconds()))
			if err := sleepCtx(ctx, wait); err != nil {
				return nil, err
			}
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if c.ShardTimeout > 0 {
			//crlint:allow nowallclock per-shard timeout is an explicitly configured wall-clock budget
			attemptCtx, cancel = context.WithTimeout(ctx, c.ShardTimeout)
		}
		es := sp.Child("execute", obs.F("shard", index), obs.F("attempt", attempt+1))
		raw, err := ex.RunShard(attemptCtx, req, index)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			res, derr := Decode(bytes.NewReader(raw))
			switch {
			case derr != nil:
				err = fmt.Errorf("invalid shard result: %w", derr)
			case res.SpecHash != specHash:
				err = fmt.Errorf("shard result is for run %.12s…, want %.12s…", res.SpecHash, specHash)
			case res.Shards != req.Shards || res.Index != index:
				err = fmt.Errorf("shard result is %d/%d, want %d/%d", res.Index, res.Shards, index, req.Shards)
			default:
				err = req.traceMatches(res)
			}
			if err == nil {
				es.End(obs.F("ok", true))
				return raw, nil
			}
		}
		es.End(obs.F("ok", false))
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// sleepCtx waits d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d) //crlint:allow nowallclock retry backoff is wall-clock by nature and never feeds results
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
