package shard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"fadingcr/internal/experiments"
	"fadingcr/internal/runner"
	"fadingcr/internal/trace"
)

// Request identifies one sharded run: the experiment spec plus the shard
// count. Every executor of a run receives the same Request; a shard result
// binds itself to RequestHash(req) so mixed-run merges are impossible.
type Request struct {
	Spec   experiments.Spec
	Shards int
	// Trace, when non-nil, asks every worker to capture per-trial structured
	// traces under its global trial indices and ship them back in the
	// result's trace bundle. Tracing is observational: it never changes the
	// computed values, so it is excluded from RequestHash — but results and
	// checkpoints echo the capture policy in their bundle header, and the
	// coordinator rejects a result whose policy does not match the request.
	Trace *TraceSpec
}

// TraceSpec mirrors trace.Policy minus the output directory (workers
// capture into a private temp dir; only the coordinator materializes a
// directory). The zero of each field is the trace subsystem's default.
type TraceSpec struct {
	// Format is the per-trial file encoding: "ndjson" (also ""), "binary".
	Format string
	// EveryK samples every Kth trial (trial % K == 0 on global indices);
	// values ≤ 1 trace every trial.
	EveryK int
	// Failures keeps only unsolved trials' traces.
	Failures bool
	// Classes additionally records per-round link-class censuses.
	Classes bool
}

// tracePolicy resolves the request's trace spec into the canonical capture
// policy (Dir unset). Equivalent spellings normalize to one policy —
// "" and "ndjson", EveryK 0 and 1 — so a worker, a crserve daemon, and the
// coordinator's validation all agree on the policy a bundle must echo.
func (r Request) tracePolicy() (trace.Policy, bool, error) {
	if r.Trace == nil {
		return trace.Policy{}, false, nil
	}
	format, err := trace.ParseFormat(r.Trace.Format)
	if err != nil {
		return trace.Policy{}, false, err
	}
	if r.Trace.EveryK < 0 {
		return trace.Policy{}, false, fmt.Errorf("shard: trace sampling interval %d must be ≥ 0", r.Trace.EveryK)
	}
	every := r.Trace.EveryK
	if every <= 1 {
		every = 0
	}
	return trace.Policy{
		Format: format, EveryK: every,
		FailuresOnly: r.Trace.Failures, Classes: r.Trace.Classes,
	}, true, nil
}

// traceMatches validates a decoded result (or checkpoint) against the
// request's trace policy: a bundle must be present iff the request traces,
// and must have been captured under exactly the requested policy. This is
// what makes stale checkpoints safe — RequestHash ignores tracing, so a
// checkpoint from an untraced run of the same spec is otherwise
// indistinguishable from a traced one.
func (r Request) traceMatches(res *Result) error {
	want, traced, err := r.tracePolicy()
	if err != nil {
		return err
	}
	if !traced {
		if res.Bundle != nil {
			return errors.New("shard: result carries a trace bundle the request did not ask for")
		}
		return nil
	}
	if res.Bundle == nil {
		return errors.New("shard: result carries no trace bundle for a traced request")
	}
	if got := res.Bundle.Policy; got != want {
		return fmt.Errorf("shard: result traces were captured under policy (%s, every %d, failures %v, classes %v), request wants (%s, every %d, failures %v, classes %v)",
			got.Format, got.EveryK, got.FailuresOnly, got.Classes,
			want.Format, want.EveryK, want.FailuresOnly, want.Classes)
	}
	return nil
}

// Validate rejects requests no executor could run.
func (r Request) Validate() error {
	if r.Shards < 1 {
		return fmt.Errorf("shard: shard count %d must be ≥ 1", r.Shards)
	}
	if _, _, err := experiments.ConfigFromSpec(r.Spec); err != nil {
		return err
	}
	if _, _, err := r.tracePolicy(); err != nil {
		return err
	}
	return nil
}

// RequestHash is the canonical identity of the computation a request
// shards, hashed like serve.Spec: hex SHA-256 of a canonical JSON form with
// defaults made explicit ("" → "all" ids, "" → "auto" gain cache) and a
// fixed field order. The shard coordinates — index AND count — are
// deliberately absent: sharding never changes the computed values, so runs
// of the same spec share the hash at every shard count (Merged.Hash
// inherits that invariance), while Merge and the checkpoint loader validate
// the coordinates structurally. The trace spec is absent for the same
// reason — tracing is observational — and bundle presence/policy is
// validated structurally instead (see Request.traceMatches).
func RequestHash(r Request) string {
	spec := r.Spec
	if spec.IDs == "" {
		spec.IDs = "all"
	}
	if spec.GainCache == "" {
		spec.GainCache = "auto"
	}
	canonical, err := json.Marshal(struct {
		IDs          string  `json:"ids"`
		Seed         uint64  `json:"seed"`
		Trials       int     `json:"trials"`
		Quick        bool    `json:"quick"`
		GainCache    string  `json:"gaincache"`
		FarFieldEps  float64 `json:"farfield_eps"`
		SINRParallel int     `json:"sinr_parallel"`
	}{spec.IDs, spec.Seed, spec.Trials, spec.Quick, spec.GainCache, spec.FarFieldEps, spec.SINRParallel})
	if err != nil {
		// Plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("shard: canonical request encoding: %v", err))
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// RunWorker executes one shard of a request in-process and returns its
// canonical wire bytes. Trial loops run with the given per-loop
// parallelism (≤ 0 selects GOMAXPROCS); parallelism never changes the
// bytes. The optional progress callback observes every trial loop.
func RunWorker(ctx context.Context, req Request, index, parallelism int, progress func(runner.Progress)) ([]byte, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if index < 0 || index >= req.Shards {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", index, req.Shards)
	}
	selected, cfg, err := experiments.ConfigFromSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	res := &Result{SpecHash: RequestHash(req), Shards: req.Shards, Index: index, Seed: req.Spec.Seed}
	cfg.Context = ctx
	cfg.Parallelism = parallelism
	cfg.Progress = progress
	var capture *trace.Capture
	if policy, traced, err := req.tracePolicy(); err != nil {
		return nil, err
	} else if traced {
		// Capture into a private temp dir: trace files travel to the
		// coordinator in the result's bundle, never by path. The capture
		// command is "crbench" regardless of which process hosts the worker,
		// because the federated directory must be byte-identical to an
		// unsharded `crbench -trace-dir` run and trace headers embed the
		// command.
		tmp, err := os.MkdirTemp("", "crshard-trace-")
		if err != nil {
			return nil, fmt.Errorf("shard: trace capture: %w", err)
		}
		defer os.RemoveAll(tmp)
		policy.Dir = tmp
		capture, err = trace.NewCapture("crbench", policy)
		if err != nil {
			return nil, err
		}
		cfg.Trace = capture
	}
	cfg.Shard = &experiments.ShardScope{
		Index: index,
		Count: req.Shards,
		Worker: func(rec experiments.LoopRecord) error {
			res.Loops = append(res.Loops, rec)
			return nil
		},
	}
	for _, e := range selected {
		// Worker-mode tables are donor-padded garbage; only the loop
		// records matter.
		if _, err := e.Run(cfg); err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	if capture != nil {
		bundle, err := capture.Bundle()
		if err != nil {
			return nil, err
		}
		res.Bundle = bundle
	}
	return res.Bytes()
}

// Assemble replays the request's experiments in assemble mode — every
// trial loop reads its reassembled values from m instead of executing —
// and renders the tables to w in the canonical crbench layout. The output
// is byte-identical to an unsharded run of the same spec.
func Assemble(ctx context.Context, w io.Writer, req Request, m *Merged, markdown bool) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if want := RequestHash(req); m.SpecHash != want {
		return fmt.Errorf("shard: merged result is for run %.12s…, request is %.12s…", m.SpecHash, want)
	}
	selected, cfg, err := experiments.ConfigFromSpec(req.Spec)
	if err != nil {
		return err
	}
	cfg.Context = ctx
	scope := &experiments.ShardScope{
		Values: func(loop, total int) ([]json.RawMessage, error) {
			if loop >= len(m.Loops) {
				return nil, fmt.Errorf("shard: loop %d beyond the %d merged loops", loop, len(m.Loops))
			}
			ml := m.Loops[loop]
			if ml.Total != total {
				return nil, fmt.Errorf("shard: loop %d reassembled %d trials, experiment wants %d", loop, ml.Total, total)
			}
			return ml.Values, nil
		},
	}
	cfg.Shard = scope
	for _, e := range selected {
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := experiments.RenderTables(w, e, tables, markdown); err != nil {
			return err
		}
	}
	if scope.Loops() != len(m.Loops) {
		return fmt.Errorf("shard: experiments ran %d loops, merged result has %d", scope.Loops(), len(m.Loops))
	}
	return nil
}
