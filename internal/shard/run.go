package shard

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"fadingcr/internal/experiments"
	"fadingcr/internal/runner"
)

// Request identifies one sharded run: the experiment spec plus the shard
// count. Every executor of a run receives the same Request; a shard result
// binds itself to RequestHash(req) so mixed-run merges are impossible.
type Request struct {
	Spec   experiments.Spec
	Shards int
}

// Validate rejects requests no executor could run.
func (r Request) Validate() error {
	if r.Shards < 1 {
		return fmt.Errorf("shard: shard count %d must be ≥ 1", r.Shards)
	}
	if _, _, err := experiments.ConfigFromSpec(r.Spec); err != nil {
		return err
	}
	return nil
}

// RequestHash is the canonical identity of the computation a request
// shards, hashed like serve.Spec: hex SHA-256 of a canonical JSON form with
// defaults made explicit ("" → "all" ids, "" → "auto" gain cache) and a
// fixed field order. The shard coordinates — index AND count — are
// deliberately absent: sharding never changes the computed values, so runs
// of the same spec share the hash at every shard count (Merged.Hash
// inherits that invariance), while Merge and the checkpoint loader validate
// the coordinates structurally.
func RequestHash(r Request) string {
	spec := r.Spec
	if spec.IDs == "" {
		spec.IDs = "all"
	}
	if spec.GainCache == "" {
		spec.GainCache = "auto"
	}
	canonical, err := json.Marshal(struct {
		IDs          string  `json:"ids"`
		Seed         uint64  `json:"seed"`
		Trials       int     `json:"trials"`
		Quick        bool    `json:"quick"`
		GainCache    string  `json:"gaincache"`
		FarFieldEps  float64 `json:"farfield_eps"`
		SINRParallel int     `json:"sinr_parallel"`
	}{spec.IDs, spec.Seed, spec.Trials, spec.Quick, spec.GainCache, spec.FarFieldEps, spec.SINRParallel})
	if err != nil {
		// Plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("shard: canonical request encoding: %v", err))
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// RunWorker executes one shard of a request in-process and returns its
// canonical wire bytes. Trial loops run with the given per-loop
// parallelism (≤ 0 selects GOMAXPROCS); parallelism never changes the
// bytes. The optional progress callback observes every trial loop.
func RunWorker(ctx context.Context, req Request, index, parallelism int, progress func(runner.Progress)) ([]byte, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if index < 0 || index >= req.Shards {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", index, req.Shards)
	}
	selected, cfg, err := experiments.ConfigFromSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	res := &Result{SpecHash: RequestHash(req), Shards: req.Shards, Index: index, Seed: req.Spec.Seed}
	cfg.Context = ctx
	cfg.Parallelism = parallelism
	cfg.Progress = progress
	cfg.Shard = &experiments.ShardScope{
		Index: index,
		Count: req.Shards,
		Worker: func(rec experiments.LoopRecord) error {
			res.Loops = append(res.Loops, rec)
			return nil
		},
	}
	for _, e := range selected {
		// Worker-mode tables are donor-padded garbage; only the loop
		// records matter.
		if _, err := e.Run(cfg); err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return res.Bytes()
}

// Assemble replays the request's experiments in assemble mode — every
// trial loop reads its reassembled values from m instead of executing —
// and renders the tables to w in the canonical crbench layout. The output
// is byte-identical to an unsharded run of the same spec.
func Assemble(ctx context.Context, w io.Writer, req Request, m *Merged, markdown bool) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if want := RequestHash(req); m.SpecHash != want {
		return fmt.Errorf("shard: merged result is for run %.12s…, request is %.12s…", m.SpecHash, want)
	}
	selected, cfg, err := experiments.ConfigFromSpec(req.Spec)
	if err != nil {
		return err
	}
	cfg.Context = ctx
	scope := &experiments.ShardScope{
		Values: func(loop, total int) ([]json.RawMessage, error) {
			if loop >= len(m.Loops) {
				return nil, fmt.Errorf("shard: loop %d beyond the %d merged loops", loop, len(m.Loops))
			}
			ml := m.Loops[loop]
			if ml.Total != total {
				return nil, fmt.Errorf("shard: loop %d reassembled %d trials, experiment wants %d", loop, ml.Total, total)
			}
			return ml.Values, nil
		},
	}
	cfg.Shard = scope
	for _, e := range selected {
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := experiments.RenderTables(w, e, tables, markdown); err != nil {
			return err
		}
	}
	if scope.Loops() != len(m.Loops) {
		return fmt.Errorf("shard: experiments ran %d loops, merged result has %d", scope.Loops(), len(m.Loops))
	}
	return nil
}
