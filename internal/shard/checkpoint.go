package shard

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// CheckpointDir stores one completed shard result per file so a killed
// coordinator can resume without recomputing finished shards. Files are
// whole wire streams (the same bytes an executor returned) written via
// temp-file + atomic rename, so a checkpoint either exists completely or
// not at all; Decode's end-line check rejects anything a crash left behind
// from a pre-rename write.
type CheckpointDir struct {
	Dir string
}

// path names a shard's checkpoint file.
func (c CheckpointDir) path(shards, index int) string {
	return filepath.Join(c.Dir, fmt.Sprintf("shard-%03d-of-%03d.ndjson", index, shards))
}

// Store writes a shard's wire bytes atomically. The raw bytes must already
// be validated (the coordinator decodes every result before storing).
func (c CheckpointDir) Store(shards, index int, raw []byte) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	final := c.path(shards, index)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load returns a shard's checkpointed result if a valid one exists for
// exactly this (request hash, shard count, index). A missing file is not
// an error; a corrupt, truncated, or mismatched checkpoint (different
// run, stale shard count) is reported so the caller can surface it and
// recompute.
func (c CheckpointDir) Load(specHash string, shards, index int) (*Result, []byte, error) {
	raw, err := os.ReadFile(c.path(shards, index))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	res, err := Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: %w", c.path(shards, index), err)
	}
	if res.SpecHash != specHash {
		return nil, nil, fmt.Errorf("checkpoint %s belongs to run %.12s…, want %.12s…", c.path(shards, index), res.SpecHash, specHash)
	}
	if res.Shards != shards || res.Index != index {
		return nil, nil, fmt.Errorf("checkpoint %s is shard %d/%d, want %d/%d", c.path(shards, index), res.Index, res.Shards, index, shards)
	}
	return res, raw, nil
}
