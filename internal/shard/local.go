package shard

import (
	"context"
	"fmt"
)

// Local is the in-process executor: it runs shards on this process's
// Monte Carlo engine via RunWorker. N Local executors give a coordinator
// N-way shard-level parallelism on one machine; Parallelism additionally
// fans each shard's trial loops out over goroutines. Neither knob changes
// bytes.
type Local struct {
	// ID distinguishes workers in logs ("local-0", "local-1", …).
	ID string
	// Parallelism is the per-trial-loop worker count (≤ 0 = GOMAXPROCS).
	Parallelism int
}

// Name implements Executor.
func (l *Local) Name() string {
	if l.ID != "" {
		return l.ID
	}
	return "local"
}

// RunShard implements Executor.
func (l *Local) RunShard(ctx context.Context, req Request, index int) ([]byte, error) {
	raw, err := RunWorker(ctx, req, index, l.Parallelism, nil)
	if err != nil {
		return nil, fmt.Errorf("local shard %d: %w", index, err)
	}
	return raw, nil
}
