package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestService starts a full service (real runSpec unless opts.run is
// stubbed) on an httptest server.
func newTestService(t *testing.T, opts Options) (*httptest.Server, *Executor) {
	t.Helper()
	exec := NewExecutor(opts)
	ts := httptest.NewServer(NewServer(exec, ServerOptions{}).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = exec.Drain(ctx)
	})
	return ts, exec
}

func postJob(t *testing.T, ts *httptest.Server, body string) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return st, resp
}

func getBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// awaitDone polls the status endpoint until the job is terminal — the
// plain client workflow (submit → poll → fetch result).
func awaitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d: %s", code, body)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const smallSimJob = `{"sim":{"n":16,"deploy":"disk","algo":"fixed"},"seed":7,"trials":4}`

func TestServiceLifecycleSimJob(t *testing.T) {
	ts, _ := newTestService(t, Options{Workers: 2})

	st, resp := postJob(t, ts, smallSimJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if st.ID == "" || st.Kind != KindSim || st.Hash == "" {
		t.Fatalf("submit snapshot incomplete: %+v", st)
	}

	final := awaitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.Done != 4 || final.Progress.Total != 4 {
		t.Errorf("final progress %+v, want 4/4", final.Progress)
	}

	code, body, hdr := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("result Content-Type = %q", ct)
	}
	var out struct {
		Kind         string `json:"kind"`
		Trials       int    `json:"trials"`
		Solved       int    `json:"solved"`
		TrialResults []struct {
			Trial  int `json:"trial"`
			Rounds int `json:"rounds"`
		} `json:"trial_results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("result body not JSON: %v\n%s", err, body)
	}
	if out.Kind != "sim" || out.Trials != 4 || len(out.TrialResults) != 4 {
		t.Errorf("result shape wrong: %+v", out)
	}
	if out.Solved == 0 {
		t.Error("no trial solved contention resolution on a 16-node disk")
	}
}

func TestServiceStreamCarriesLifecycleAndResult(t *testing.T) {
	ts, _ := newTestService(t, Options{Workers: 1})
	st, _ := postJob(t, ts, smallSimJob)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}

	type event struct {
		Event       string `json:"event"`
		ID          string `json:"id"`
		State       string `json:"state"`
		Done        int    `json:"done"`
		Total       int    `json:"total"`
		ContentType string `json:"content_type"`
		Body        string `json:"body"`
		Error       string `json:"error"`
	}
	var events []event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	first, last := events[0], events[len(events)-1]
	if first.Event != "job" || first.ID != st.ID {
		t.Errorf("first event = %+v, want job/%s", first, st.ID)
	}
	if last.Event != "result" || last.State != string(StateDone) {
		t.Fatalf("last event = %+v, want result/done", last)
	}

	// The streamed body is the same bytes the result endpoint serves.
	_, resultBody, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if last.Body != string(resultBody) {
		t.Error("streamed result body differs from GET /result body")
	}
}

func TestServiceCacheHitIsByteIdenticalToColdRun(t *testing.T) {
	ts, exec := newTestService(t, Options{Workers: 1})

	cold, resp := postJob(t, ts, smallSimJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold submit: HTTP %d", resp.StatusCode)
	}
	if awaitDone(t, ts, cold.ID).State != StateDone {
		t.Fatal("cold run failed")
	}
	_, coldBody, coldHdr := getBody(t, ts.URL+"/v1/jobs/"+cold.ID+"/result")

	warm, resp := postJob(t, ts, smallSimJob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit submit: HTTP %d, want 200", resp.StatusCode)
	}
	if !warm.Cached || warm.State != StateDone {
		t.Fatalf("second submit not a cache hit: %+v", warm)
	}
	if warm.ID == cold.ID {
		t.Error("cache hit reused the cold job's id")
	}
	_, warmBody, warmHdr := getBody(t, ts.URL+"/v1/jobs/"+warm.ID+"/result")

	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("cache-served body differs from computed body:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	if coldHdr.Get("X-Job-Cached") != "false" || warmHdr.Get("X-Job-Cached") != "true" {
		t.Errorf("X-Job-Cached cold=%q warm=%q", coldHdr.Get("X-Job-Cached"), warmHdr.Get("X-Job-Cached"))
	}
	if exec.Cache().Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", exec.Cache().Len())
	}
}

func TestServiceResultsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	// The service-determinism contract: the same job produces the same
	// bytes whatever the worker pool or per-job parallelism.
	run := func(workers, parallel int) []byte {
		ts, _ := newTestService(t, Options{Workers: workers, JobParallelism: parallel, CacheEntries: -1})
		st, _ := postJob(t, ts, smallSimJob)
		if awaitDone(t, ts, st.ID).State != StateDone {
			t.Fatalf("run at workers=%d parallel=%d failed", workers, parallel)
		}
		_, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
		return body
	}
	serial := run(1, 1)
	wide := run(8, 8)
	if !bytes.Equal(serial, wide) {
		t.Errorf("result bytes depend on parallelism:\n-workers 1: %s\n-workers 8: %s", serial, wide)
	}
}

func TestServiceQueueFullReturns429(t *testing.T) {
	stub := newBlockingRun()
	ts, _ := newTestService(t, Options{Workers: 1, QueueDepth: 1, run: stub.run})
	defer close(stub.release)

	if _, resp := postJob(t, ts, `{"sim":{"n":16,"deploy":"disk","algo":"fixed"},"seed":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	<-stub.started
	if _, resp := postJob(t, ts, `{"sim":{"n":16,"deploy":"disk","algo":"fixed"},"seed":2}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts, `{"sim":{"n":16,"deploy":"disk","algo":"fixed"},"seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestServiceDeleteCancelsMidRun(t *testing.T) {
	stub := newBlockingRun()
	ts, _ := newTestService(t, Options{Workers: 1, run: stub.run})
	st, _ := postJob(t, ts, smallSimJob)
	<-stub.started // the job is running and parked on its context

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}

	final := awaitDone(t, ts, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}
	code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusConflict {
		t.Errorf("result of cancelled job: HTTP %d (%s), want 409", code, body)
	}
}

func TestServiceExperimentJob(t *testing.T) {
	ts, _ := newTestService(t, Options{Workers: 1})
	st, resp := postJob(t, ts, `{"experiment":"E5","quick":true,"trials":2,"seed":9}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := awaitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("experiment job ended %s (%s)", final.State, final.Error)
	}
	_, body, hdr := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"==== E5", "Claim:"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("experiment body missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(string(body), "completed in") {
		t.Error("experiment body contains a timing line; bodies must be deterministic")
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	ts, _ := newTestService(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"unknown field", `{"bogus":1}`, http.StatusBadRequest},
		{"invalid spec", `{"sim":{"n":0,"deploy":"disk","algo":"fixed"}}`, http.StatusBadRequest},
		{"unknown algo", `{"sim":{"n":8,"deploy":"disk","algo":"magic"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, resp := postJob(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if code, _, _ := getBody(t, ts.URL+"/v1/jobs/j999"); code != http.StatusNotFound {
		t.Errorf("unknown job status: HTTP %d, want 404", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/v1/jobs/j999/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result: HTTP %d, want 404", code)
	}
}

func TestServiceResultOfRunningJobConflicts(t *testing.T) {
	stub := newBlockingRun()
	ts, _ := newTestService(t, Options{Workers: 1, run: stub.run})
	defer close(stub.release)
	st, _ := postJob(t, ts, smallSimJob)
	<-stub.started
	code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusConflict || !strings.Contains(string(body), "running") {
		t.Errorf("result while running: HTTP %d %s, want 409/running", code, body)
	}
}

func TestServiceHealthAndMetricsEndpoints(t *testing.T) {
	ts, exec := newTestService(t, Options{Workers: 1})
	if code, body, _ := getBody(t, ts.URL+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body, _ := getBody(t, ts.URL+"/readyz"); code != 200 || string(body) != "ready\n" {
		t.Errorf("readyz: %d %q", code, body)
	}
	code, body, hdr := getBody(t, ts.URL+"/metrics")
	if code != 200 || hdr.Get("Content-Type") != "application/x-ndjson" {
		t.Errorf("metrics: %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(string(body), `"name":"serve.jobs_submitted"`) {
		t.Errorf("metrics missing serve counters:\n%s", body)
	}

	if err := exec.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(body) != "draining\n" {
		t.Errorf("readyz while draining: %d %q, want 503 draining", code, body)
	}
	if _, resp := postJob(t, ts, smallSimJob); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestDaemonStartServeShutdown(t *testing.T) {
	var log bytes.Buffer
	d, err := StartDaemon(DaemonConfig{
		Addr:      "127.0.0.1:0",
		Executor:  Options{Workers: 1},
		LogWriter: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", d.Addr())

	code, _, _ := getBody(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("healthz over TCP: %d", code)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(smallSimJob))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Graceful drain: the accepted job finished before shutdown returned.
	if s := d.Executor(); true {
		job, ok := s.Job(st.ID)
		if !ok || job.Snapshot().State != StateDone {
			t.Errorf("job after drain: ok=%t state=%v", ok, job.Snapshot().State)
		}
	}
	if !strings.Contains(log.String(), `"event":"http"`) {
		t.Errorf("request log missing http events: %q", log.String())
	}
}
