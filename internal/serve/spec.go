package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"

	"fadingcr/internal/catalog"
	"fadingcr/internal/experiments"
	"fadingcr/internal/sinr"
	"fadingcr/internal/trace"
)

// Spec is the domain object of the service: one simulation job, as
// submitted by a client. A Spec names either a registered experiment (the
// crbench workload) or a single-scenario Monte Carlo run (the crsim
// workload); both are resolved against the same registries the CLIs use
// (internal/experiments, internal/catalog), so a spec is valid here iff
// the equivalent CLI invocation is.
//
// Because every job derives all randomness from (Spec, Seed) via the
// runner.TrialSeeds contract, a normalized Spec fully determines the
// result body, byte for byte — the property the result cache is keyed on.
//
// The spechash directive below holds this struct to the canonical-hash
// discipline (DESIGN.md §8): new fields need json omitempty tags so legacy
// job hashes stay stable, and must be added to specHashFields.
//
//crlint:spechash
type Spec struct {
	// Kind is "experiment" or "sim". Normalization infers it from which
	// of Experiment/Sim is set, so clients may omit it.
	Kind string `json:"kind,omitempty"`
	// Experiment selects registered experiments for an experiment job:
	// "all" or a comma-separated id list, exactly like crbench -ids.
	Experiment string `json:"experiment,omitempty"`
	// Sim describes the scenario of a sim job.
	Sim *SimSpec `json:"sim,omitempty"`
	// Seed is the master seed (runner.TrialSeeds derives every trial's
	// randomness from it). Omitting it means seed 0, a valid seed.
	//crlint:allow spechash seed is always serialized; adding omitempty now would change every legacy seed-0 hash
	Seed uint64 `json:"seed"`
	// Trials is the trial count: for sim jobs the number of independent
	// runs (default 1); for experiment jobs the trials per data point
	// (0 selects each experiment's default).
	Trials int `json:"trials,omitempty"`
	// Quick shrinks experiment sweeps for smoke runs (experiment jobs).
	Quick bool `json:"quick,omitempty"`
	// GainCache is the SINR delivery engine mode: "auto" (default), "on",
	// "off". Results are byte-identical in every mode.
	GainCache string `json:"gaincache,omitempty"`
	// FarFieldEps enables ε far-field pruning when > 0 (valid range
	// (0, 0.5)). Unlike GainCache it is approximate — receptions may
	// differ from the exact engine within the documented one-sided bound —
	// so it is part of the result identity: the omitempty tag keeps legacy
	// spec hashes stable while every ε job hashes differently from its
	// exact counterpart.
	FarFieldEps float64 `json:"farfield_eps,omitempty"`
	// SINRParallel is the intra-round Deliver worker count (0 or 1 keeps
	// the sequential engine; max sinr.MaxDeliverParallelism). Deterministic
	// channels are byte-identical at any worker count, but the Rayleigh
	// channel switches to the fade-substream engine, so the knob is kept in
	// the canonical form (omitempty preserves legacy hashes).
	SINRParallel int `json:"sinr_parallel,omitempty"`
	// Format renders experiment tables: "text" (default) or "markdown".
	Format string `json:"format,omitempty"`
	// Trace, on a single-trial sim job, includes the per-round event
	// trace in the result body.
	Trace bool `json:"trace,omitempty"`
	// Shard, on an experiment job, restricts execution to one shard of a
	// distributed run: only the trials of shard Index of Count (contiguous
	// global ranges per runner.ShardRange) execute, and the result body is
	// the canonical shard wire stream (internal/shard) instead of rendered
	// tables. The omitempty tag keeps every legacy job hash stable, and
	// each (index, count) hashes differently, so shard bodies can never
	// collide with table bodies — or with each other — in the result
	// cache.
	Shard *ShardRef `json:"shard,omitempty"`
}

// ShardRef identifies one shard of a distributed experiment run. It feeds
// the canonical hash like SimSpec, so it follows the same field discipline.
//
//crlint:spechash
type ShardRef struct {
	// Index is the shard index, in [0, Count).
	//crlint:allow spechash index is required and 0 is a valid value that must always serialize
	Index int `json:"index"`
	// Count is the run's total shard count.
	//crlint:allow spechash count is required on every shard job; there is no legacy zero form to preserve
	Count int `json:"count"`
	// Trace, when non-nil, asks the shard to capture per-trial traces and
	// append the trace bundle to the wire stream (trace federation). It is
	// part of the canonical form deliberately even though tracing never
	// changes the computed values: the cached result BODY differs (bundle
	// appended), so traced and untraced runs must occupy distinct cache
	// slots. The omitempty tag keeps every untraced legacy hash stable.
	Trace *ShardTraceRef `json:"trace,omitempty"`
}

// ShardTraceRef is the capture policy of a traced shard job, mirroring
// shard.TraceSpec. It feeds the canonical hash, so it follows the same
// field discipline.
//
//crlint:spechash
type ShardTraceRef struct {
	// Format is the per-trial file encoding: "" ≡ "ndjson", or "binary".
	Format string `json:"format,omitempty"`
	// Every samples every Kth trial on global indices; 0 and 1 both trace
	// every trial.
	Every int `json:"every,omitempty"`
	// Failures keeps only unsolved trials' traces.
	Failures bool `json:"failures,omitempty"`
	// Classes additionally records per-round link-class censuses.
	Classes bool `json:"classes,omitempty"`
}

// SimSpec is the scenario of a sim job, mirroring crsim's flags. It feeds
// the same canonical hash as Spec, so it follows the same field discipline.
//
//crlint:spechash
type SimSpec struct {
	// N is the number of nodes.
	//crlint:allow spechash n is required (Validate rejects 0) and always serialized in legacy hashes
	N int `json:"n"`
	// Deploy is the deployment name (catalog.Deployments).
	//crlint:allow spechash deploy is required and always serialized in legacy hashes
	Deploy string `json:"deploy"`
	// Algo is the algorithm name (catalog.Algorithms).
	//crlint:allow spechash algo is required and always serialized in legacy hashes
	Algo string `json:"algo"`
	// Channel is the channel name (catalog.Channels); default "sinr".
	Channel string `json:"channel,omitempty"`
	// P is the broadcast probability of the fixed-probability algorithms;
	// 0 selects core.DefaultP.
	P float64 `json:"p,omitempty"`
	// MaxRounds is the round budget; 0 selects
	// catalog.DefaultMaxRounds(N).
	MaxRounds int `json:"max_rounds,omitempty"`
}

// The canonical-hash field lists: every field (by json name) that feeds
// Spec.Hash through CanonicalJSON. The spechash analyzer keeps each list in
// exact correspondence with its struct, and TestSpecHashFieldManifest
// cross-checks them against the struct tags by reflection — so widening the
// hash surface is always an explicit, reviewed change in two places.
var (
	specHashFields = []string{
		"kind", "experiment", "sim", "seed", "trials", "quick", "gaincache",
		"farfield_eps", "sinr_parallel", "format", "trace", "shard",
	}
	simSpecHashFields = []string{
		"n", "deploy", "algo", "channel", "p", "max_rounds",
	}
	shardRefHashFields = []string{
		"index", "count", "trace",
	}
	shardTraceRefHashFields = []string{
		"format", "every", "failures", "classes",
	}
)

// Job kind names.
const (
	KindExperiment = "experiment"
	KindSim        = "sim"
)

// Limits protecting the daemon from absurd submissions. Generous: the
// biggest registered experiment and crsim's largest documented scenarios
// fit far below them.
const (
	// MaxSimNodes bounds SimSpec.N.
	MaxSimNodes = 1 << 17
	// MaxTrials bounds Spec.Trials for both job kinds.
	MaxTrials = 1 << 20
	// MaxShards bounds ShardRef.Count.
	MaxShards = 1 << 12
)

// Normalized returns a copy with defaults made explicit and the Kind
// inferred, so that every spec meaning the same job serializes to the same
// canonical bytes. Validate operates on (and the executor runs) normalized
// specs only.
func (s Spec) Normalized() Spec {
	n := s
	if n.Sim != nil {
		sim := *n.Sim
		n.Sim = &sim
	}
	if n.Shard != nil {
		shard := *n.Shard
		if shard.Trace != nil {
			// Equivalent trace spellings must share a cache slot: "ndjson"
			// is the default format and every∈{0,1} both mean "every trial",
			// so both normalize to the omitted form.
			tr := *shard.Trace
			if tr.Format == "ndjson" {
				tr.Format = ""
			}
			if tr.Every == 1 {
				tr.Every = 0
			}
			shard.Trace = &tr
		}
		n.Shard = &shard
	}
	if n.Kind == "" {
		switch {
		case n.Experiment != "" && n.Sim == nil:
			n.Kind = KindExperiment
		case n.Sim != nil && n.Experiment == "":
			n.Kind = KindSim
		}
		// Ambiguous or empty specs keep Kind "" and fail Validate.
	}
	if n.GainCache == "" {
		n.GainCache = "auto"
	}
	switch n.Kind {
	case KindExperiment:
		if n.Shard != nil {
			// A shard job's body is the wire stream, never rendered
			// tables, so Format must not perturb its canonical form (a
			// format-carrying submission would miss the cache for no
			// reason).
			n.Format = ""
		} else if n.Format == "" {
			n.Format = "text"
		}
		if n.Experiment == "" {
			n.Experiment = "all"
		}
	case KindSim:
		// Experiment-only knobs must not perturb the canonical form of a
		// sim job (and vice versa), or equal jobs would miss the cache.
		n.Format = ""
		n.Quick = false
		if n.Trials == 0 {
			n.Trials = 1
		}
		if n.Sim != nil && n.Sim.Channel == "" {
			n.Sim.Channel = "sinr"
		}
	}
	return n
}

// Validate checks a normalized spec against the experiment registry and
// the catalog. It returns nil iff the executor can run the spec.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindExperiment:
		if s.Sim != nil {
			return fmt.Errorf("a job is either %q or %q, not both", KindExperiment, KindSim)
		}
		if _, _, err := experiments.ConfigFromSpec(s.experimentSpec()); err != nil {
			return err
		}
		if s.Shard != nil {
			if s.Shard.Count < 1 || s.Shard.Count > MaxShards {
				return fmt.Errorf("shard.count must be in [1, %d], got %d", MaxShards, s.Shard.Count)
			}
			if s.Shard.Index < 0 || s.Shard.Index >= s.Shard.Count {
				return fmt.Errorf("shard.index must be in [0, %d), got %d", s.Shard.Count, s.Shard.Index)
			}
			if tr := s.Shard.Trace; tr != nil {
				if _, err := trace.ParseFormat(tr.Format); err != nil {
					return err
				}
				if tr.Every < 0 {
					return fmt.Errorf("shard.trace.every must be ≥ 0, got %d", tr.Every)
				}
			}
		} else if s.Format != "text" && s.Format != "markdown" {
			return fmt.Errorf("unknown format %q (want text|markdown)", s.Format)
		}
		if s.Trace {
			return fmt.Errorf("trace is only available on sim jobs with trials=1")
		}
	case KindSim:
		if s.Experiment != "" {
			return fmt.Errorf("a job is either %q or %q, not both", KindExperiment, KindSim)
		}
		if s.Sim == nil {
			return fmt.Errorf("sim jobs need a sim scenario")
		}
		if s.Shard != nil {
			return fmt.Errorf("shard is only available on experiment jobs")
		}
		if s.Sim.N < 1 || s.Sim.N > MaxSimNodes {
			return fmt.Errorf("sim.n must be in [1, %d], got %d", MaxSimNodes, s.Sim.N)
		}
		if s.Trials < 1 || s.Trials > MaxTrials {
			return fmt.Errorf("trials must be in [1, %d], got %d", MaxTrials, s.Trials)
		}
		if !slices.Contains(catalog.Deployments(), s.Sim.Deploy) {
			return fmt.Errorf("unknown deployment %q (have %v)", s.Sim.Deploy, catalog.Deployments())
		}
		if !slices.Contains(catalog.Algorithms(), s.Sim.Algo) {
			return fmt.Errorf("unknown algorithm %q (have %v)", s.Sim.Algo, catalog.Algorithms())
		}
		if !slices.Contains(catalog.Channels(), s.Sim.Channel) {
			return fmt.Errorf("unknown channel %q (have %v)", s.Sim.Channel, catalog.Channels())
		}
		if s.Sim.P < 0 || s.Sim.P > 1 {
			return fmt.Errorf("sim.p must be in [0, 1] (0 selects the default), got %v", s.Sim.P)
		}
		if s.Sim.MaxRounds < 0 {
			return fmt.Errorf("sim.max_rounds must be ≥ 0 (0 selects the default), got %d", s.Sim.MaxRounds)
		}
		if _, err := sinr.EngineOptions(s.GainCache, s.FarFieldEps, s.SINRParallel); err != nil {
			return err
		}
		if s.Trace && s.Trials != 1 {
			return fmt.Errorf("trace needs trials=1, got %d", s.Trials)
		}
	default:
		return fmt.Errorf(`a job sets exactly one of "experiment" or "sim"`)
	}
	return nil
}

// experimentSpec maps an experiment job onto the shared crbench/crserve
// parsing path.
func (s Spec) experimentSpec() experiments.Spec {
	return experiments.Spec{
		IDs:          s.Experiment,
		Seed:         s.Seed,
		Trials:       s.Trials,
		Quick:        s.Quick,
		GainCache:    s.GainCache,
		FarFieldEps:  s.FarFieldEps,
		SINRParallel: s.SINRParallel,
	}
}

// CanonicalJSON renders the normalized spec as canonical bytes: struct
// field order is fixed and defaults are explicit, so two specs meaning the
// same job always produce identical bytes.
func (s Spec) CanonicalJSON() []byte {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: canonical spec encoding: %v", err))
	}
	return b
}

// Hash returns the canonical (config, seed) key of the spec: the hex
// SHA-256 of CanonicalJSON. Determinism makes this a perfect result-cache
// key — equal hashes imply byte-identical result bodies.
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}
