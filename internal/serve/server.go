// Package serve is the simulation-farm service: an HTTP/JSON job daemon
// over the repository's Monte Carlo engine. It is built from four layers —
// a domain layer (Spec: job specification, normalization, canonical
// hashing; Job: lifecycle state machine), a queue/executor layer
// (Executor: bounded queue, worker pool, backpressure, cancellation, panic
// isolation), a results layer (Cache: LRU of result bodies keyed by the
// canonical spec hash; NDJSON progress streaming), and this transport
// layer (stdlib net/http mux, JSON in/out).
//
// The service inherits the repository's determinism contract (DESIGN.md
// §8) wholesale: a job's result body is a pure function of its normalized
// spec, byte for byte, at any worker count, any per-job parallelism, and
// any cache state. That is what makes the result cache sound and what the
// serve tests and the CI smoke job assert with literal byte comparisons.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"fadingcr/internal/obs"
)

// ServerOptions configures the HTTP layer.
type ServerOptions struct {
	// Registry backs GET /metrics; nil selects obs.Default.
	Registry *obs.Registry
	// Log, when non-nil, receives one NDJSON "http" event per request.
	Log *obs.Sink
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Server is the transport layer: it translates HTTP to Executor calls.
type Server struct {
	exec *Executor
	opts ServerOptions
}

// NewServer wraps an executor.
func NewServer(exec *Executor, opts ServerOptions) *Server {
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	return &Server{exec: exec, opts: opts}
}

// Handler returns the service mux:
//
//	POST   /v1/jobs           submit a job (Spec JSON body)
//	GET    /v1/jobs/{id}      job status
//	GET    /v1/jobs/{id}/result  result body (done jobs)
//	GET    /v1/jobs/{id}/stream  NDJSON progress stream until terminal
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET    /healthz           liveness
//	GET    /readyz            readiness (503 while draining)
//	GET    /metrics           obs registry snapshot (NDJSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.exec.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", s.opts.Registry.Handler())
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.logged(mux)
}

// maxSpecBytes bounds a submission body; specs are small.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode spec: %v", err))
		return
	}
	job, err := s.exec.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the queue is bounded by design; ask the client
		// to come back. One second is a deliberate flat hint — job
		// durations vary over orders of magnitude, so anything cleverer
		// would be false precision.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusAccepted
	if job.Snapshot().State.Terminal() {
		status = http.StatusOK // cache hit: born done
	}
	writeJSON(w, status, job.Snapshot())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.exec.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.exec.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	st := job.Snapshot()
	res, done := job.ResultIfDone()
	if !done {
		if st.State.Terminal() {
			httpError(w, http.StatusConflict, fmt.Sprintf("job %s: %s", st.State, st.Error))
		} else {
			httpError(w, http.StatusConflict, fmt.Sprintf("job still %s", st.State))
		}
		return
	}
	w.Header().Set("Content-Type", res.ContentType)
	w.Header().Set("X-Job-Cached", fmt.Sprintf("%t", st.Cached))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.Body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok, _ := s.exec.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// httpError writes a JSON error body with deterministic shape.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	_, _ = w.Write(append(body, '\n'))
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, err := json.Marshal(v)
	if err != nil {
		// Statuses and snapshots are plain data; Marshal cannot fail.
		return
	}
	_, _ = w.Write(append(body, '\n'))
}

// statusRecorder captures the response status for the request log while
// passing Flush through, so streaming endpoints still flush line by line
// when logging is enabled.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logged wraps the mux with structured request logging (one "http" NDJSON
// event per request) when a log sink is configured.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		if s.opts.Log == nil {
			next.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now() //crlint:allow nowallclock request latency logging is reporting-only
		next.ServeHTTP(rec, r)
		_ = s.opts.Log.Emit("http",
			obs.F("method", r.Method),
			obs.F("path", r.URL.Path),
			obs.F("status", rec.status),
			//crlint:allow nowallclock request latency logging is reporting-only
			obs.F("ms", time.Since(start).Milliseconds()),
		)
	})
}
