package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"

	"fadingcr/internal/obs"
)

// DaemonConfig wires a whole service instance: executor sizing plus the
// HTTP listener.
type DaemonConfig struct {
	// Addr is the TCP listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// Executor sizes the worker pool, queue, and cache.
	Executor Options
	// LogWriter, when non-nil, receives NDJSON request logs.
	LogWriter io.Writer
	// Registry backs /metrics; nil selects obs.Default.
	Registry *obs.Registry
	// EnablePprof mounts /debug/pprof/.
	EnablePprof bool
}

// Daemon is a running service: executor, worker pool, and HTTP listener.
type Daemon struct {
	exec *Executor
	srv  *http.Server
	ln   net.Listener
	errc chan error
}

// StartDaemon listens on cfg.Addr and serves until Shutdown. It returns
// after the listener is bound, so Addr is immediately usable (handy with
// ":0" in tests).
func StartDaemon(cfg DaemonConfig) (*Daemon, error) {
	exec := NewExecutor(cfg.Executor)
	var sink *obs.Sink
	if cfg.LogWriter != nil {
		sink = obs.NewSink(cfg.LogWriter)
	}
	server := NewServer(exec, ServerOptions{
		Registry:    cfg.Registry,
		Log:         sink,
		EnablePprof: cfg.EnablePprof,
	})
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		// The executor's workers are already running; stop them so a
		// failed start leaks nothing. The queue is empty, so this is
		// instant.
		_ = exec.Drain(context.Background())
		return nil, err
	}
	d := &Daemon{
		exec: exec,
		srv:  &http.Server{Handler: server.Handler()},
		ln:   ln,
		errc: make(chan error, 1),
	}
	go func() {
		if err := d.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.errc <- err
		}
		close(d.errc)
	}()
	return d, nil
}

// Addr returns the bound listen address.
func (d *Daemon) Addr() net.Addr { return d.ln.Addr() }

// Executor exposes the daemon's executor (tests, stats).
func (d *Daemon) Executor() *Executor { return d.exec }

// Shutdown drains gracefully within ctx's deadline: intake stops first
// (readyz turns 503, new submissions get ErrDraining), accepted jobs run
// to completion, then the HTTP server closes. On deadline, in-flight jobs
// are cancelled and remaining connections are torn down.
func (d *Daemon) Shutdown(ctx context.Context) error {
	drainErr := d.exec.Drain(ctx)
	httpErr := d.srv.Shutdown(ctx)
	if httpErr != nil {
		// Deadline passed with connections (e.g. streams) still open.
		_ = d.srv.Close()
	}
	var serveErr error
	if err, ok := <-d.errc; ok {
		serveErr = err
	}
	return errors.Join(drainErr, httpErr, serveErr)
}
