package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"fadingcr/internal/catalog"
	"fadingcr/internal/experiments"
	"fadingcr/internal/runner"
	"fadingcr/internal/shard"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/xrand"
)

// runSpec executes a validated, normalized spec and produces its result
// body. The body is a pure function of the spec: all randomness derives
// from (Spec.Seed, trial index) via runner.TrialSeeds, trials are
// reassembled in trial order, and rendering never touches wall-clock or
// map iteration order — so any worker count and any cache state produce
// byte-identical bodies.
func runSpec(ctx context.Context, spec Spec, parallelism int, progress func(Progress)) (*Result, error) {
	switch spec.Kind {
	case KindExperiment:
		return runExperimentSpec(ctx, spec, parallelism, progress)
	case KindSim:
		return runSimSpec(ctx, spec, parallelism, progress)
	default:
		return nil, fmt.Errorf("serve: unvalidated spec kind %q", spec.Kind)
	}
}

// runExperimentSpec renders the selected experiments' tables, like crbench
// minus the timing lines (which would break byte-identity). With Shard set
// the job is one worker of a distributed run: it executes only its shard's
// trial ranges and returns the canonical shard wire stream instead.
func runExperimentSpec(ctx context.Context, spec Spec, parallelism int, progress func(Progress)) (*Result, error) {
	if spec.Shard != nil {
		return runShardSpec(ctx, spec, parallelism, progress)
	}
	selected, cfg, err := experiments.ConfigFromSpec(spec.experimentSpec())
	if err != nil {
		return nil, err
	}
	cfg.Parallelism = parallelism
	cfg.Context = ctx
	if progress != nil {
		cfg.Progress = func(p runner.Progress) {
			progress(Progress{Done: p.Done, Total: p.Total, Solved: p.Solved, Errors: p.Errors})
		}
	}
	var buf bytes.Buffer
	for _, e := range selected {
		tables, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(&buf, "==== %s — %s ====\n", e.ID, e.Title)
		fmt.Fprintf(&buf, "Claim: %s\n\n", e.Claim)
		for _, tab := range tables {
			if spec.Format == "markdown" {
				fmt.Fprintln(&buf, tab.Markdown())
			} else {
				fmt.Fprintln(&buf, tab.Text())
			}
		}
	}
	return &Result{Body: buf.Bytes(), ContentType: "text/plain; charset=utf-8"}, nil
}

// runShardSpec executes one shard of a distributed experiment run
// (internal/shard.RunWorker) and returns its NDJSON wire stream. The body
// is a pure function of the normalized spec like every other job body, so
// the result cache serves re-dispatched shards byte-identically.
func runShardSpec(ctx context.Context, spec Spec, parallelism int, progress func(Progress)) (*Result, error) {
	var rp func(runner.Progress)
	if progress != nil {
		rp = func(p runner.Progress) {
			progress(Progress{Done: p.Done, Total: p.Total, Solved: p.Solved, Errors: p.Errors})
		}
	}
	req := shard.Request{Spec: spec.experimentSpec(), Shards: spec.Shard.Count}
	if tr := spec.Shard.Trace; tr != nil {
		req.Trace = &shard.TraceSpec{
			Format: tr.Format, EveryK: tr.Every,
			Failures: tr.Failures, Classes: tr.Classes,
		}
	}
	body, err := shard.RunWorker(ctx, req, spec.Shard.Index, parallelism, rp)
	if err != nil {
		return nil, err
	}
	return &Result{Body: body, ContentType: "application/x-ndjson"}, nil
}

// simTrial is one trial's outcome in a sim job's result body.
type simTrial struct {
	Trial         int   `json:"trial"`
	Rounds        int   `json:"rounds"`
	Solved        bool  `json:"solved"`
	Winner        int   `json:"winner"`
	Transmissions int64 `json:"transmissions"`
}

// simTraceEvent is one executed round in an optional single-trial trace.
type simTraceEvent struct {
	Round        int `json:"round"`
	Transmitters int `json:"transmitters"`
	Receptions   int `json:"receptions"`
}

// simResult is the JSON result body of a sim job. Field order is the
// struct order, fixed; no maps appear anywhere in the encoding.
type simResult struct {
	Kind        string          `json:"kind"`
	Spec        Spec            `json:"spec"`
	MaxRounds   int             `json:"max_rounds"`
	Trials      int             `json:"trials"`
	Solved      int             `json:"solved"`
	Unsolved    int             `json:"unsolved"`
	RoundsMean  float64         `json:"rounds_mean"`
	RoundsP50   float64         `json:"rounds_p50"`
	RoundsP95   float64         `json:"rounds_p95"`
	RoundsMax   int             `json:"rounds_max"`
	TotalTx     int64           `json:"total_transmissions"`
	TrialValues []simTrial      `json:"trial_results"`
	Trace       []simTraceEvent `json:"trace,omitempty"`
}

// traceTap records per-round transmitter/reception counts of one
// execution. It only ever observes the single trial of a trace-enabled
// job, so it needs no synchronization.
type traceTap struct {
	events []simTraceEvent
}

func (t *traceTap) OnRound(round int, _ []sim.Node, tx []bool, recv []int) {
	ev := simTraceEvent{Round: round}
	for _, b := range tx {
		if b {
			ev.Transmitters++
		}
	}
	for _, r := range recv {
		if r >= 0 {
			ev.Receptions++
		}
	}
	t.events = append(t.events, ev)
}

// runSimSpec executes a sim job: Trials independent executions of the
// scenario, each on a fresh deployment and channel, per the
// runner.TrialSeeds contract (exactly the harness crsim -trials uses).
func runSimSpec(ctx context.Context, spec Spec, parallelism int, progress func(Progress)) (*Result, error) {
	ss := spec.Sim
	sinrOpts, err := sinr.EngineOptions(spec.GainCache, spec.FarFieldEps, spec.SINRParallel)
	if err != nil {
		return nil, err
	}
	maxRounds := ss.MaxRounds
	if maxRounds == 0 {
		maxRounds = catalog.DefaultMaxRounds(ss.N)
	}
	var tap *traceTap
	if spec.Trace {
		tap = &traceTap{} // Validate guarantees Trials == 1
	}
	res, err := runner.Run(ctx, spec.Trials, func(_ context.Context, trial int) (simTrial, error) {
		dseed, pseed := runner.TrialSeeds(spec.Seed, trial)
		d, err := catalog.Deployment(ss.Deploy, dseed, ss.N)
		if err != nil {
			return simTrial{}, fmt.Errorf("trial %d deployment: %w", trial, err)
		}
		params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
		built, err := catalog.Channel(ss.Channel, params, d, xrand.Split(pseed, 1), sinrOpts...)
		if err != nil {
			return simTrial{}, fmt.Errorf("trial %d channel: %w", trial, err)
		}
		builder, err := catalog.Builder(ss.Algo, ss.P, d.N())
		if err != nil {
			return simTrial{}, fmt.Errorf("trial %d builder: %w", trial, err)
		}
		cfg := sim.Config{MaxRounds: maxRounds, CollisionDetection: built.CollisionDetection}
		if tap != nil {
			cfg.Tracer = tap
		}
		r, err := sim.Run(built.Channel, builder, pseed, cfg)
		if err != nil {
			return simTrial{}, fmt.Errorf("trial %d run: %w", trial, err)
		}
		return simTrial{
			Trial:         trial,
			Rounds:        r.Rounds,
			Solved:        r.Solved,
			Winner:        r.Winner,
			Transmissions: r.Transmissions,
		}, nil
	}, runner.Options[simTrial]{
		Parallelism: parallelism,
		Solved:      func(t simTrial) bool { return t.Solved },
		Progress: func(p runner.Progress) {
			if progress != nil {
				progress(Progress{Done: p.Done, Total: p.Total, Solved: p.Solved, Errors: p.Errors})
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if ferr := res.FirstErr(); ferr != nil {
		return nil, ferr
	}

	out := simResult{
		Kind:        KindSim,
		Spec:        spec,
		MaxRounds:   maxRounds,
		Trials:      spec.Trials,
		Solved:      res.Solved,
		Unsolved:    spec.Trials - res.Solved,
		TrialValues: res.Values,
	}
	rounds := make([]int, 0, len(res.Values))
	for _, t := range res.Values {
		rounds = append(rounds, t.Rounds)
		out.TotalTx += t.Transmissions
		if t.Rounds > out.RoundsMax {
			out.RoundsMax = t.Rounds
		}
	}
	out.RoundsMean = meanInt(rounds)
	out.RoundsP50 = percentileInt(rounds, 0.50)
	out.RoundsP95 = percentileInt(rounds, 0.95)
	if tap != nil {
		out.Trace = tap.events
		if out.Trace == nil {
			out.Trace = []simTraceEvent{}
		}
	}
	body, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("encode result: %w", err)
	}
	body = append(body, '\n')
	return &Result{Body: body, ContentType: "application/json"}, nil
}

// meanInt is the arithmetic mean; 0 for an empty slice.
func meanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// percentileInt is the nearest-rank percentile of xs; 0 for empty input.
func percentileInt(xs []int, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx])
}

// The tracer must satisfy sim.Tracer.
var _ sim.Tracer = (*traceTap)(nil)
