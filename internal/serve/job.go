package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// State is the lifecycle state of a job.
type State string

// Job lifecycle: queued → running → one of the three terminal states.
// Cache hits are born done. A queued job can go straight to cancelled
// without ever running.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is a point-in-time view of a running job's trial loop.
type Progress struct {
	// Done is the number of completed trials; for experiment jobs it
	// restarts from zero at each data point of the sweep.
	Done int `json:"done"`
	// Total is the trial count of the current loop.
	Total int `json:"total"`
	// Solved counts trials that solved contention resolution so far.
	Solved int `json:"solved"`
	// Errors counts failed trials so far.
	Errors int `json:"errors"`
}

// Update is one streamed state/progress observation of a job.
type Update struct {
	State    State
	Progress Progress
}

// Status is the externally visible snapshot of a job, as served by
// GET /v1/jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Hash  string `json:"hash"`
	State State  `json:"state"`
	// Cached reports that the result was served from the result cache
	// rather than recomputed. Determinism makes the two byte-identical.
	Cached   bool     `json:"cached,omitempty"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
	// Timestamps are RFC 3339; empty until the phase is reached.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// Job is one accepted submission. All mutable state is guarded by mu;
// the done channel closes exactly once, when the job reaches a terminal
// state, and the result (if any) is immutable from then on.
type Job struct {
	ID   string
	Spec Spec // normalized
	Hash string

	mu       sync.Mutex
	state    State
	cached   bool
	result   *Result
	errMsg   string
	progress Progress
	cancel   context.CancelFunc
	subs     []chan Update
	done     chan struct{}

	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id string, spec Spec, hash string) *Job {
	return &Job{
		ID:    id,
		Spec:  spec,
		Hash:  hash,
		state: StateQueued,
		done:  make(chan struct{}),
		// Timestamps are reporting-only; no simulation state derives
		// from them.
		submitted: time.Now(), //crlint:allow nowallclock job timestamps are reporting-only
	}
}

// Snapshot returns the current Status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Kind:        j.Spec.Kind,
		Hash:        j.Hash,
		State:       j.state,
		Cached:      j.cached,
		Progress:    j.progress,
		Error:       j.errMsg,
		SubmittedAt: stamp(j.submitted),
		StartedAt:   stamp(j.started),
		FinishedAt:  stamp(j.finished),
	}
	return st
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// ResultIfDone returns the result body when the job is done.
func (j *Job) ResultIfDone() (*Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// Subscribe registers a capacity-1, latest-wins update channel and returns
// it with its unsubscribe function. Slow consumers only ever delay their
// own view: a new update displaces an unconsumed one instead of blocking
// the job — and never lose the terminal event, because finish's
// notification is the job's last (nothing later can displace it) and a
// subscriber that arrives after the job is already terminal has the
// terminal update seeded into its channel here.
func (j *Job) Subscribe() (<-chan Update, func()) {
	ch := make(chan Update, 1)
	j.mu.Lock()
	if j.state.Terminal() {
		ch <- Update{State: j.state, Progress: j.progress}
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	unsub := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
	return ch, unsub
}

// notifyLocked pushes the current state to every subscriber, displacing
// any unconsumed previous update. Callers hold j.mu.
func (j *Job) notifyLocked() {
	upd := Update{State: j.state, Progress: j.progress}
	for _, ch := range j.subs {
		select {
		case ch <- upd:
		default:
			// Drop the stale update, then try once more; a concurrent
			// receive between the two selects just means the subscriber
			// is live and will pick up the next notification.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- upd:
			default:
			}
		}
	}
}

// claimRunning transitions queued → running and installs the job's cancel
// function. It reports false if the job was cancelled while queued, in
// which case the worker must skip it.
func (j *Job) claimRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = time.Now() //crlint:allow nowallclock job timestamps are reporting-only
	j.notifyLocked()
	return true
}

// setProgress records trial-loop progress and notifies subscribers.
func (j *Job) setProgress(p Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress = p
	j.notifyLocked()
}

// finish moves the job to a terminal state exactly once; later calls are
// no-ops (e.g. a cancel racing the natural completion).
func (j *Job) finish(state State, res *Result, errMsg string, cached bool) {
	if !state.Terminal() {
		panic(fmt.Sprintf("serve: finish with non-terminal state %q", state))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.cached = cached
	j.finished = time.Now() //crlint:allow nowallclock job timestamps are reporting-only
	j.notifyLocked()
	close(j.done)
}

// requestCancel asks a non-terminal job to stop: a queued job is finished
// as cancelled on the spot; a running job has its context cancelled and
// reaches the cancelled state when its trial loop unwinds. Reports whether
// the job was still cancellable.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	if j.state == StateQueued {
		j.mu.Unlock()
		j.finish(StateCancelled, nil, "cancelled while queued", false)
		return true
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}
