package serve

import (
	"container/list"
	"sync"
)

// Result is a finished job's immutable payload. Body is never mutated
// after creation, so cache entries can be shared across jobs and served
// concurrently without copying.
type Result struct {
	Body        []byte
	ContentType string
}

// Cache is a fixed-capacity LRU of job results keyed by Spec.Hash.
// Determinism is what makes it sound: equal hashes imply byte-identical
// bodies, so serving a hit is indistinguishable from recomputing.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache returns an LRU holding at most capacity results; capacity ≤ 0
// disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*Result, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores the result for key, evicting the least recently used entry
// when over capacity. Storing an existing key refreshes its recency (the
// bodies are byte-identical by the determinism contract, so which one is
// kept is unobservable).
func (c *Cache) Put(key string, res *Result) {
	if c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
