package serve

import (
	"testing"
)

// drainLatest consumes every buffered update and returns the last one seen.
func drainLatest(ch <-chan Update) (Update, bool) {
	var last Update
	var any bool
	for {
		select {
		case u := <-ch:
			last, any = u, true
		default:
			return last, any
		}
	}
}

// TestSubscribeAfterTerminalSeesTerminalUpdate pins the streaming protocol's
// core guarantee: a subscriber that arrives after the job finished still
// receives the terminal event (seeded at Subscribe time), so a stream client
// can never hang waiting for a state change that already happened.
func TestSubscribeAfterTerminalSeesTerminalUpdate(t *testing.T) {
	j := newJob("j1", simSpec().Normalized(), "h")
	j.finish(StateDone, &Result{Body: []byte("x")}, "", false)

	ch, unsub := j.Subscribe()
	defer unsub()
	select {
	case u := <-ch:
		if u.State != StateDone {
			t.Errorf("seeded update state = %s, want done", u.State)
		}
	default:
		t.Fatal("late subscriber got no seeded terminal update")
	}
}

// TestTerminalUpdateSurvivesProgressFlood pins that the terminal
// notification is never displaced: the channels are capacity-1 latest-wins,
// but finish's notification is the job's last (setProgress refuses terminal
// jobs), so however many progress updates went unread, the final readable
// update is terminal.
func TestTerminalUpdateSurvivesProgressFlood(t *testing.T) {
	j := newJob("j1", simSpec().Normalized(), "h")
	j.claimRunning(func() {})
	ch, unsub := j.Subscribe()
	defer unsub()

	// Never read during the flood: every update displaces the previous.
	for i := 0; i < 100; i++ {
		j.setProgress(Progress{Done: i, Total: 100})
	}
	j.finish(StateDone, &Result{Body: []byte("x")}, "", false)
	// A post-terminal progress write must be a no-op.
	j.setProgress(Progress{Done: 999, Total: 100})

	last, any := drainLatest(ch)
	if !any {
		t.Fatal("subscriber channel empty after flood + finish")
	}
	if last.State != StateDone {
		t.Errorf("last update state = %s, want done", last.State)
	}
	if last.Progress.Done == 999 {
		t.Error("progress mutated after the terminal state")
	}
}

// TestUnsubscribeStopsDelivery pins that an unsubscribed channel is removed
// from the fanout list.
func TestUnsubscribeStopsDelivery(t *testing.T) {
	j := newJob("j1", simSpec().Normalized(), "h")
	j.claimRunning(func() {})
	ch, unsub := j.Subscribe()
	drainLatest(ch) // discard the claimRunning notification
	unsub()
	j.setProgress(Progress{Done: 1, Total: 2})
	if _, any := drainLatest(ch); any {
		t.Error("unsubscribed channel still received updates")
	}
}
