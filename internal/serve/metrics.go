package serve

import "fadingcr/internal/obs"

// Service metrics on the shared registry, exported by GET /metrics (and by
// the -metrics flag like every other obs consumer). Counters cover the job
// lifecycle and the result cache; gauges track instantaneous load.
var (
	mJobsSubmitted = obs.Default.Counter("serve.jobs_submitted")
	mJobsDone      = obs.Default.Counter("serve.jobs_done")
	mJobsFailed    = obs.Default.Counter("serve.jobs_failed")
	mJobsCancelled = obs.Default.Counter("serve.jobs_cancelled")
	mCacheHits     = obs.Default.Counter("serve.cache_hits")
	mCacheMisses   = obs.Default.Counter("serve.cache_misses")
	mQueueRejects  = obs.Default.Counter("serve.queue_rejects")
	mHTTPRequests  = obs.Default.Counter("serve.http_requests")
	mJobsRunning   = obs.Default.Gauge("serve.jobs_running")
	mQueueDepth    = obs.Default.Gauge("serve.queue_depth")
	mJobSeconds    = obs.Default.Histogram("serve.job_seconds", 1e-3, 24)
)
