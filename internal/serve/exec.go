package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// runningJobs backs the serve.jobs_running gauge (obs gauges are
// set-only, so the executor tracks the instantaneous count itself).
var runningJobs atomic.Int64

// Submission failure modes, mapped to HTTP statuses by the transport
// layer (429 and 503 respectively).
var (
	// ErrQueueFull means the bounded queue has no room; the client should
	// retry after a moment (backpressure, not failure).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the executor is shutting down and accepts no new
	// work.
	ErrDraining = errors.New("serve: draining, not accepting jobs")
)

// Options sizes an Executor.
type Options struct {
	// Workers is the number of jobs run concurrently; ≤ 0 selects 2.
	Workers int
	// QueueDepth is the number of jobs that may wait beyond the running
	// ones before Submit returns ErrQueueFull; ≤ 0 selects 16.
	QueueDepth int
	// CacheEntries is the result-cache capacity; 0 selects 128, negative
	// disables caching.
	CacheEntries int
	// JobParallelism is the per-job trial-loop parallelism (the
	// runner.Options.Parallelism each job runs with); ≤ 0 selects
	// runtime.GOMAXPROCS(0). Results are byte-identical at every value —
	// it only trades per-job latency against cross-job throughput.
	JobParallelism int
	// FarFieldEps, when > 0, is a server-side default: submitted specs
	// that leave farfield_eps unset get this ε injected *before*
	// normalization, so the job's canonical hash reflects the effective
	// engine — ε results differ from exact ones within the documented
	// bound and must never share a cache entry with them.
	FarFieldEps float64
	// SINRParallel, when > 0, is the server-side default intra-round
	// Deliver worker count, injected into unset specs like FarFieldEps
	// (hash-relevant for Rayleigh jobs, which switch fade streams).
	SINRParallel int

	// run substitutes the job body in tests; nil selects runSpec.
	run func(ctx context.Context, spec Spec, parallelism int, progress func(Progress)) (*Result, error)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 128
	}
	if o.JobParallelism <= 0 {
		o.JobParallelism = runtime.GOMAXPROCS(0)
	}
	if o.run == nil {
		o.run = runSpec
	}
	return o
}

// Executor owns the job queue, the worker pool, and the result cache: the
// queue/executor and results layers of the service. Jobs are identified by
// monotonically assigned ids ("j1", "j2", …) and retained for status
// queries until the executor is discarded.
type Executor struct {
	opts  Options
	cache *Cache
	queue chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int
	draining bool
}

// NewExecutor starts an executor with opts.Workers worker goroutines.
// Callers must Drain it to stop them.
func NewExecutor(opts Options) *Executor {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Executor{
		opts:       opts,
		cache:      NewCache(opts.CacheEntries),
		queue:      make(chan *Job, opts.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	for range opts.Workers {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Cache exposes the result cache (for tests and stats).
func (e *Executor) Cache() *Cache { return e.cache }

// Submit injects the executor's engine defaults into unset spec fields,
// then normalizes, validates, and accepts the job. A result-cache hit
// returns a job already in the done state, its result served from the
// cache (byte-identical to recomputation, by the determinism contract).
// Otherwise the job is enqueued; ErrQueueFull reports a full queue and
// ErrDraining a stopping executor. Validation errors are returned as-is.
func (e *Executor) Submit(spec Spec) (*Job, error) {
	if spec.FarFieldEps == 0 && e.opts.FarFieldEps > 0 {
		spec.FarFieldEps = e.opts.FarFieldEps
	}
	if spec.SINRParallel == 0 && e.opts.SINRParallel > 0 {
		spec.SINRParallel = e.opts.SINRParallel
	}
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	hash := norm.Hash()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return nil, ErrDraining
	}
	if res, ok := e.cache.Get(hash); ok {
		mCacheHits.Inc()
		mJobsSubmitted.Inc()
		job := e.newJobLocked(norm, hash)
		job.finish(StateDone, res, "", true)
		mJobsDone.Inc()
		return job, nil
	}
	mCacheMisses.Inc()
	job := e.newJobLocked(norm, hash)
	select {
	case e.queue <- job:
	default:
		delete(e.jobs, job.ID)
		e.seq-- // the id was never visible; reuse it
		mQueueRejects.Inc()
		return nil, ErrQueueFull
	}
	mJobsSubmitted.Inc()
	mQueueDepth.Set(int64(len(e.queue)))
	return job, nil
}

// newJobLocked allocates the next job id and registers the job. Callers
// hold e.mu.
func (e *Executor) newJobLocked(spec Spec, hash string) *Job {
	e.seq++
	job := newJob(fmt.Sprintf("j%d", e.seq), spec, hash)
	e.jobs[job.ID] = job
	return job
}

// Job returns the job with the given id.
func (e *Executor) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel requests cancellation of the job with the given id: a queued job
// finishes as cancelled immediately; a running one when its trial loop
// observes the context. Returns the job, whether it exists, and whether it
// was still cancellable.
func (e *Executor) Cancel(id string) (job *Job, ok, cancelled bool) {
	j, ok := e.Job(id)
	if !ok {
		return nil, false, false
	}
	return j, true, j.requestCancel()
}

// Draining reports whether the executor has stopped accepting jobs.
func (e *Executor) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Drain stops intake and waits for accepted jobs — running and queued —
// to finish. If ctx expires first, in-flight jobs are cancelled and Drain
// waits for the workers to unwind before returning the context's error.
// Drain is idempotent; concurrent calls all wait.
func (e *Executor) Drain(ctx context.Context) error {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		// Safe: Submit's send and this close are both under e.mu.
		close(e.queue)
	}
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.baseCancel()
		<-done
		return ctx.Err()
	}
}

// worker runs queued jobs until the queue closes and empties.
func (e *Executor) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		mQueueDepth.Set(int64(len(e.queue)))
		e.runJob(job)
	}
}

// runJob executes one job with panic isolation: a panic that escapes the
// job body (the runner already contains per-trial panics; this guards
// spec resolution and rendering) fails the job, never the worker.
func (e *Executor) runJob(job *Job) {
	ctx, cancel := context.WithCancel(e.baseCtx)
	defer cancel()
	if !job.claimRunning(cancel) {
		// Cancelled while queued.
		mJobsCancelled.Inc()
		return
	}
	mJobsRunning.Set(runningJobs.Add(1))
	defer func() { mJobsRunning.Set(runningJobs.Add(-1)) }()
	start := time.Now() //crlint:allow nowallclock job duration metric is reporting-only

	var res *Result
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		res, err = e.opts.run(ctx, job.Spec, e.opts.JobParallelism, job.setProgress)
		return err
	}()
	mJobSeconds.Observe(time.Since(start).Seconds()) //crlint:allow nowallclock job duration metric is reporting-only

	switch {
	case err == nil:
		e.cache.Put(job.Hash, res)
		job.finish(StateDone, res, "", false)
		mJobsDone.Inc()
	case ctx.Err() != nil:
		// The job was cancelled (client DELETE or executor shutdown);
		// whatever error surfaced is a symptom of that cancellation.
		job.finish(StateCancelled, nil, ctx.Err().Error(), false)
		mJobsCancelled.Inc()
	default:
		job.finish(StateFailed, nil, err.Error(), false)
		mJobsFailed.Inc()
	}
}
