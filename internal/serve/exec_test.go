package serve

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// blockingRun is a stub job body that parks until released (or the job's
// context is cancelled), so tests control exactly when jobs finish.
type blockingRun struct {
	started chan string   // receives the job's hash when it starts
	release chan struct{} // closed (or sent to) to let jobs finish
	runs    atomic.Int64
}

func newBlockingRun() *blockingRun {
	return &blockingRun{
		started: make(chan string, 64),
		release: make(chan struct{}, 64),
	}
}

func (b *blockingRun) run(ctx context.Context, spec Spec, _ int, _ func(Progress)) (*Result, error) {
	b.runs.Add(1)
	b.started <- spec.Hash()
	select {
	case <-b.release:
		return &Result{Body: []byte("stub:" + spec.Hash()), ContentType: "text/plain"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func newTestExecutor(t *testing.T, opts Options) *Executor {
	t.Helper()
	e := NewExecutor(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = e.Drain(ctx)
	})
	return e
}

// specN returns sim specs that hash differently (distinct seeds).
func specN(seed uint64) Spec {
	s := simSpec()
	s.Seed = seed
	return s
}

func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished (state %s)", j.ID, j.Snapshot().State)
	}
	return j.Snapshot()
}

func TestExecutorRunsJob(t *testing.T) {
	stub := newBlockingRun()
	e := newTestExecutor(t, Options{Workers: 1, run: stub.run})
	job, err := e.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j1" {
		t.Errorf("first job id = %q, want j1", job.ID)
	}
	<-stub.started
	stub.release <- struct{}{}
	st := waitTerminal(t, job)
	if st.State != StateDone || st.Cached {
		t.Errorf("state = %s cached=%t, want done/false", st.State, st.Cached)
	}
	if got, _ := e.Job(job.ID); got != job {
		t.Error("Job lookup lost the job")
	}
}

func TestExecutorQueueFull(t *testing.T) {
	stub := newBlockingRun()
	e := newTestExecutor(t, Options{Workers: 1, QueueDepth: 1, run: stub.run})

	running, err := e.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started // j1 occupies the worker
	queued, err := e.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(specN(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}

	// Backpressure, not failure: releasing capacity admits the job again.
	stub.release <- struct{}{}
	waitTerminal(t, running)
	<-stub.started // queued job claims the worker
	retried, err := e.Submit(specN(3))
	if err != nil {
		t.Fatalf("retry after capacity freed: %v", err)
	}
	stub.release <- struct{}{}
	waitTerminal(t, queued)
	<-stub.started
	stub.release <- struct{}{}
	waitTerminal(t, retried)
}

func TestExecutorCancelQueuedJob(t *testing.T) {
	stub := newBlockingRun()
	e := newTestExecutor(t, Options{Workers: 1, QueueDepth: 2, run: stub.run})
	first, _ := e.Submit(specN(1))
	<-stub.started
	queued, _ := e.Submit(specN(2))

	_, ok, cancelled := e.Cancel(queued.ID)
	if !ok || !cancelled {
		t.Fatalf("Cancel = %t/%t, want true/true", ok, cancelled)
	}
	st := waitTerminal(t, queued)
	if st.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", st.State)
	}
	if st.StartedAt != "" {
		t.Error("queued job was cancelled but has a start timestamp")
	}

	stub.release <- struct{}{}
	waitTerminal(t, first)
	if runs := stub.runs.Load(); runs != 1 {
		t.Errorf("cancelled queued job still ran (%d runs)", runs)
	}
}

func TestExecutorCancelRunningJob(t *testing.T) {
	stub := newBlockingRun()
	e := newTestExecutor(t, Options{Workers: 1, run: stub.run})
	job, _ := e.Submit(specN(1))
	<-stub.started

	if _, ok, cancelled := e.Cancel(job.ID); !ok || !cancelled {
		t.Fatal("cancel of running job refused")
	}
	st := waitTerminal(t, job)
	if st.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", st.State)
	}

	// A terminal job is no longer cancellable, but still known.
	if _, ok, cancelled := e.Cancel(job.ID); !ok || cancelled {
		t.Errorf("cancel of finished job = %t/%t, want true/false", ok, cancelled)
	}
	if _, ok, _ := e.Cancel("j999"); ok {
		t.Error("cancel of unknown job reported ok")
	}
}

func TestExecutorPanicIsolation(t *testing.T) {
	var calm atomic.Bool
	run := func(context.Context, Spec, int, func(Progress)) (*Result, error) {
		if calm.Load() {
			return &Result{Body: []byte("ok"), ContentType: "text/plain"}, nil
		}
		panic("kaboom")
	}
	e := newTestExecutor(t, Options{Workers: 1, run: run})
	job, err := e.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed || !strings.Contains(st.Error, "kaboom") {
		t.Errorf("state=%s error=%q, want failed/kaboom", st.State, st.Error)
	}

	// The worker survived the panic and keeps serving.
	calm.Store(true)
	next, err := e.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, next); st.State != StateDone {
		t.Errorf("job after panic: %s", st.State)
	}
}

func TestExecutorCacheHitIsByteIdenticalAndSkipsQueue(t *testing.T) {
	var runs atomic.Int64
	e := newTestExecutor(t, Options{Workers: 1, run: func(_ context.Context, spec Spec, _ int, _ func(Progress)) (*Result, error) {
		runs.Add(1)
		return &Result{Body: []byte("body-of-" + spec.Hash()), ContentType: "text/plain"}, nil
	}})

	cold, err := e.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	coldSt := waitTerminal(t, cold)
	coldRes, _ := cold.ResultIfDone()

	warm, err := e.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	warmSt := warm.Snapshot() // born done: no waiting involved
	if warmSt.State != StateDone || !warmSt.Cached {
		t.Fatalf("cache hit state=%s cached=%t, want done/true", warmSt.State, warmSt.Cached)
	}
	warmRes, _ := warm.ResultIfDone()
	if string(coldRes.Body) != string(warmRes.Body) {
		t.Errorf("cache hit body differs from recomputation:\n%q\n%q", coldRes.Body, warmRes.Body)
	}
	if coldSt.Hash != warmSt.Hash {
		t.Errorf("hashes differ: %s vs %s", coldSt.Hash, warmSt.Hash)
	}
	if runs.Load() != 1 {
		t.Errorf("spec ran %d times, want 1", runs.Load())
	}
}

func TestExecutorDrainFinishesAcceptedJobs(t *testing.T) {
	stub := newBlockingRun()
	e := NewExecutor(Options{Workers: 1, QueueDepth: 4, run: stub.run})
	running, _ := e.Submit(specN(1))
	<-stub.started
	queued, _ := e.Submit(specN(2))

	close(stub.release) // let everything finish as the drain proceeds
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := running.Snapshot(); st.State != StateDone {
		t.Errorf("running job drained to %s, want done", st.State)
	}
	if st := queued.Snapshot(); st.State != StateDone {
		t.Errorf("queued job drained to %s, want done", st.State)
	}
	if !e.Draining() {
		t.Error("Draining() false after Drain")
	}
	if _, err := e.Submit(specN(3)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
}

func TestExecutorDrainDeadlineCancelsInFlight(t *testing.T) {
	stub := newBlockingRun() // never released: jobs only end via ctx
	e := NewExecutor(Options{Workers: 1, run: stub.run})
	job, _ := e.Submit(specN(1))
	<-stub.started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired deadline: drain must force-cancel and still return
	if err := e.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}
	if st := job.Snapshot(); st.State != StateCancelled {
		t.Errorf("in-flight job drained to %s, want cancelled", st.State)
	}
}

func TestExecutorRejectsInvalidSpec(t *testing.T) {
	e := newTestExecutor(t, Options{Workers: 1, run: newBlockingRun().run})
	if _, err := e.Submit(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}
