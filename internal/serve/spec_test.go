package serve

import (
	"reflect"
	"slices"
	"strings"
	"testing"
)

func simSpec() Spec {
	return Spec{
		Sim:    &SimSpec{N: 16, Deploy: "disk", Algo: "fixed"},
		Seed:   7,
		Trials: 2,
	}
}

func TestNormalizedInfersKindAndDefaults(t *testing.T) {
	n := simSpec().Normalized()
	if n.Kind != KindSim {
		t.Errorf("Kind = %q, want %q", n.Kind, KindSim)
	}
	if n.Sim.Channel != "sinr" {
		t.Errorf("Channel = %q, want sinr", n.Sim.Channel)
	}
	if n.GainCache != "auto" {
		t.Errorf("GainCache = %q, want auto", n.GainCache)
	}

	e := Spec{Experiment: "E5"}.Normalized()
	if e.Kind != KindExperiment || e.Format != "text" {
		t.Errorf("experiment normalization: kind=%q format=%q", e.Kind, e.Format)
	}
	if e.Trials != 0 {
		t.Errorf("experiment Trials defaulted to %d, want 0 (experiment default)", e.Trials)
	}

	s := simSpec()
	s.Trials = 0
	if got := s.Normalized().Trials; got != 1 {
		t.Errorf("sim Trials defaulted to %d, want 1", got)
	}
}

func TestNormalizedShardJob(t *testing.T) {
	s := Spec{Experiment: "E5", Shard: &ShardRef{Index: 1, Count: 3}}
	n := s.Normalized()
	if n.Format != "" {
		t.Errorf("shard job Format = %q, want empty (wire stream body has no render format)", n.Format)
	}
	if n.Shard == nil || n.Shard.Index != 1 || n.Shard.Count != 3 {
		t.Errorf("Shard not carried through normalization: %+v", n.Shard)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("valid shard job rejected: %v", err)
	}

	// The clone must not alias the caller's ShardRef.
	n.Shard.Index = 2
	if s.Shard.Index != 1 {
		t.Error("Normalized aliased the caller's ShardRef")
	}
}

func TestHashDistinguishesShardCoordinates(t *testing.T) {
	base := Spec{Experiment: "E5", Quick: true, Trials: 2, Seed: 7}
	seen := map[string]string{base.Hash(): "unsharded"}
	for _, ref := range []ShardRef{{Index: 0, Count: 1}, {Index: 0, Count: 2}, {Index: 1, Count: 2}, {Index: 0, Count: 3}} {
		s := base
		s.Shard = &ShardRef{Index: ref.Index, Count: ref.Count}
		name := string(s.CanonicalJSON())
		if prev, dup := seen[s.Hash()]; dup {
			t.Errorf("shard variant %s collides with %s", name, prev)
		}
		seen[s.Hash()] = name
	}
}

// TestShardTraceHashing pins the trace-federation cache contract: a traced
// shard job occupies a different cache slot than its untraced twin (the
// result body differs — a bundle rides after the end line), every distinct
// policy hashes differently, and equivalent policy spellings hash the same.
func TestShardTraceHashing(t *testing.T) {
	base := Spec{Experiment: "E5", Quick: true, Trials: 2, Seed: 7, Shard: &ShardRef{Index: 0, Count: 2}}
	withTrace := func(tr ShardTraceRef) Spec {
		s := base
		ref := *base.Shard
		ref.Trace = &tr
		s.Shard = &ref
		return s
	}

	seen := map[string]string{base.Hash(): "untraced"}
	for _, tr := range []ShardTraceRef{{}, {Format: "binary"}, {Every: 5}, {Failures: true}, {Classes: true}} {
		s := withTrace(tr)
		if err := s.Normalized().Validate(); err != nil {
			t.Fatalf("traced shard job %+v rejected: %v", tr, err)
		}
		name := string(s.CanonicalJSON())
		if prev, dup := seen[s.Hash()]; dup {
			t.Errorf("trace variant %s collides with %s", name, prev)
		}
		seen[s.Hash()] = name
	}

	// "" ≡ "ndjson" and every 0 ≡ 1: same policy, same cache slot.
	if a, b := withTrace(ShardTraceRef{}).Hash(), withTrace(ShardTraceRef{Format: "ndjson", Every: 1}).Hash(); a != b {
		t.Error("equivalent trace policy spellings hash differently")
	}

	// Bad policies never reach the executor.
	if err := withTrace(ShardTraceRef{Format: "xml"}).Normalized().Validate(); err == nil {
		t.Error("unknown trace format validated")
	}
	if err := withTrace(ShardTraceRef{Every: -1}).Normalized().Validate(); err == nil {
		t.Error("negative trace sampling interval validated")
	}

	// The clone must not alias the caller's ShardTraceRef.
	s := withTrace(ShardTraceRef{Every: 4})
	n := s.Normalized()
	n.Shard.Trace.Every = 9
	if s.Shard.Trace.Every != 4 {
		t.Error("Normalized aliased the caller's ShardTraceRef")
	}
}

func TestNormalizedDoesNotMutateInput(t *testing.T) {
	s := simSpec()
	s.Sim.Channel = ""
	_ = s.Normalized()
	if s.Sim.Channel != "" {
		t.Error("Normalized mutated the caller's SimSpec")
	}
}

func TestHashEqualForEquivalentSpecs(t *testing.T) {
	implicit := simSpec() // kind, channel, gaincache all defaulted
	explicit := simSpec()
	explicit.Kind = KindSim
	explicit.GainCache = "auto"
	explicit.Sim.Channel = "sinr"
	if implicit.Hash() != explicit.Hash() {
		t.Errorf("equivalent specs hash differently:\n%s\n%s",
			implicit.CanonicalJSON(), explicit.CanonicalJSON())
	}

	// Experiment-only knobs must not perturb a sim job's hash.
	noisy := simSpec()
	noisy.Format = "markdown"
	noisy.Quick = true
	if noisy.Hash() != implicit.Hash() {
		t.Error("experiment-only fields perturb a sim spec's hash")
	}
}

func TestHashDistinguishesJobs(t *testing.T) {
	base := simSpec()
	seen := map[string]string{base.Hash(): "base"}
	variants := map[string]Spec{}
	v := simSpec()
	v.Seed = 8
	variants["seed"] = v
	v = simSpec()
	v.Trials = 3
	variants["trials"] = v
	v = simSpec()
	v.Sim.N = 17
	variants["n"] = v
	v = simSpec()
	v.Sim.Algo = "decay"
	variants["algo"] = v
	for name, spec := range variants {
		h := spec.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestValidateAcceptsRealJobs(t *testing.T) {
	good := []Spec{
		simSpec(),
		{Experiment: "E5", Quick: true, Trials: 2},
		{Experiment: "all"},
		{Sim: &SimSpec{N: 4, Deploy: "pairs", Algo: "sweep", Channel: "radio-cd"}, Trace: true},
	}
	for i, s := range good {
		if err := s.Normalized().Validate(); err != nil {
			t.Errorf("spec %d rejected: %v", i, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	tr3 := simSpec()
	tr3.Trials = 3
	tr3.Trace = true
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty", Spec{}, "exactly one"},
		{"both kinds", Spec{Experiment: "E1", Sim: &SimSpec{N: 4, Deploy: "disk", Algo: "fixed"}}, "exactly one"},
		{"unknown experiment", Spec{Experiment: "E999"}, "unknown experiment id"},
		{"bad format", Spec{Experiment: "E1", Format: "yaml"}, "unknown format"},
		{"experiment trace", Spec{Experiment: "E1", Trace: true}, "trace"},
		{"no scenario", Spec{Kind: KindSim}, "sim jobs need"},
		{"zero nodes", Spec{Sim: &SimSpec{N: 0, Deploy: "disk", Algo: "fixed"}}, "sim.n"},
		{"unknown deploy", Spec{Sim: &SimSpec{N: 8, Deploy: "moon", Algo: "fixed"}}, "unknown deployment"},
		{"unknown algo", Spec{Sim: &SimSpec{N: 8, Deploy: "disk", Algo: "magic"}}, "unknown algorithm"},
		{"unknown channel", Spec{Sim: &SimSpec{N: 8, Deploy: "disk", Algo: "fixed", Channel: "fiber"}}, "unknown channel"},
		{"bad p", Spec{Sim: &SimSpec{N: 8, Deploy: "disk", Algo: "fixed", P: 1.5}}, "sim.p"},
		{"negative rounds", Spec{Sim: &SimSpec{N: 8, Deploy: "disk", Algo: "fixed", MaxRounds: -1}}, "max_rounds"},
		{"bad gaincache", func() Spec { s := simSpec(); s.GainCache = "maybe"; return s }(), "gain-cache"},
		{"trace multi-trial", tr3, "trials=1"},
		{"shard on sim", func() Spec { s := simSpec(); s.Shard = &ShardRef{Index: 0, Count: 2}; return s }(), "experiment jobs"},
		{"shard zero count", Spec{Experiment: "E5", Shard: &ShardRef{Index: 0, Count: 0}}, "shard.count"},
		{"shard count over max", Spec{Experiment: "E5", Shard: &ShardRef{Index: 0, Count: MaxShards + 1}}, "shard.count"},
		{"shard index negative", Spec{Experiment: "E5", Shard: &ShardRef{Index: -1, Count: 2}}, "shard.index"},
		{"shard index past count", Spec{Experiment: "E5", Shard: &ShardRef{Index: 2, Count: 2}}, "shard.index"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalized().Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

// serializedJSONNames lists the json names a struct type marshals, in field
// order, skipping unexported and json:"-" fields — the ground truth the
// canonical-hash field lists must match.
func serializedJSONNames(t *testing.T, typ reflect.Type) []string {
	t.Helper()
	var names []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		switch tag {
		case "-":
			continue
		case "":
			t.Errorf("%s.%s has no json name; the canonical form must not depend on Go identifiers", typ.Name(), f.Name)
			continue
		}
		names = append(names, tag)
	}
	return names
}

// TestSpecHashFieldManifest cross-checks the canonical-hash field lists
// (which the spechash analyzer holds in correspondence with the struct
// declarations) against the live struct tags by reflection, so the analyzer
// and the runtime can never disagree about what feeds Spec.Hash.
func TestSpecHashFieldManifest(t *testing.T) {
	cases := []struct {
		typ  reflect.Type
		list []string
	}{
		{reflect.TypeOf(Spec{}), specHashFields},
		{reflect.TypeOf(SimSpec{}), simSpecHashFields},
		{reflect.TypeOf(ShardRef{}), shardRefHashFields},
		{reflect.TypeOf(ShardTraceRef{}), shardTraceRefHashFields},
	}
	for _, tc := range cases {
		if got := serializedJSONNames(t, tc.typ); !slices.Equal(got, tc.list) {
			t.Errorf("%sHashFields = %v, but %s serializes %v", strings.ToLower(tc.typ.Name()[:1])+tc.typ.Name()[1:], tc.list, tc.typ.Name(), got)
		}
	}
}
