package serve

import (
	"net/http"

	"fadingcr/internal/obs"
)

// handleStream serves GET /v1/jobs/{id}/stream: an NDJSON stream of the
// job's life, flushed line by line over a chunked response —
//
//	{"event":"job","id":...,"hash":...,"state":...}     once, first
//	{"event":"state","state":...}                       on transitions
//	{"event":"progress","done":...,"total":...,...}     as trials finish
//	{"event":"result","state":...,...}                  once, last
//
// The final result event embeds a done job's body as a JSON string (the
// body itself may be JSON or rendered tables; embedding keeps the stream
// one-object-per-line). Progress is latest-wins: a slow reader skips
// intermediate updates but always sees the final result.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.exec.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	// Subscribe before the first snapshot so no transition can fall
	// between the snapshot and the subscription.
	updates, unsubscribe := job.Subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := obs.NewLineEncoder(w)

	st := job.Snapshot()
	enc.Begin("job")
	enc.Str("id", st.ID)
	enc.Str("kind", st.Kind)
	enc.Str("hash", st.Hash)
	enc.Str("state", string(st.State))
	enc.Bool("cached", st.Cached)
	if enc.End() != nil {
		return
	}
	flusher.Flush()

	lastState := st.State
	for !st.State.Terminal() {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			st = job.Snapshot()
		case upd := <-updates:
			if upd.State != lastState {
				lastState = upd.State
				enc.Begin("state")
				enc.Str("state", string(upd.State))
				if enc.End() != nil {
					return
				}
			}
			if upd.State == StateRunning {
				enc.Begin("progress")
				enc.Int("done", int64(upd.Progress.Done))
				enc.Int("total", int64(upd.Progress.Total))
				enc.Int("solved", int64(upd.Progress.Solved))
				enc.Int("errors", int64(upd.Progress.Errors))
				if enc.End() != nil {
					return
				}
			}
			flusher.Flush()
			st = job.Snapshot()
		}
	}

	enc.Begin("result")
	enc.Str("state", string(st.State))
	enc.Bool("cached", st.Cached)
	if res, done := job.ResultIfDone(); done {
		enc.Str("content_type", res.ContentType)
		enc.Str("body", string(res.Body))
	} else {
		enc.Str("error", st.Error)
	}
	_ = enc.End()
	flusher.Flush()
}
