package serve

import "testing"

func res(s string) *Result {
	return &Result{Body: []byte(s), ContentType: "text/plain"}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", res("A"))
	got, ok := c.Get("a")
	if !ok || string(got.Body) != "A" {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res("A"))
	c.Put("b", res("B"))
	c.Get("a") // b is now least recently used
	c.Put("c", res("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshesExistingKey(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res("A"))
	c.Put("b", res("B"))
	c.Put("a", res("A")) // refresh, not insert
	c.Put("c", res("C"))
	if _, ok := c.Get("a"); !ok {
		t.Error("refreshed a was evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", res("A"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}
