package hitting

import (
	"fmt"

	"fadingcr/internal/radio"
	"fadingcr/internal/sim"
)

// TwoPlayerResult summarises one two-player contention resolution game.
type TwoPlayerResult struct {
	// Rounds is the 1-based round in which symmetry broke, or the budget.
	Rounds int
	// Won reports whether symmetry broke within the budget.
	Won bool
	// Winner is the transmitting node (0 or 1), or −1.
	Winner int
}

// PlayTwoPlayer runs the two-player contention resolution game of Section 4
// for an arbitrary algorithm: two nodes run b's protocol; the game is won
// the first time exactly one transmits. Before that, no messages are ever
// received (two transmitters collide, two listeners hear nothing) — which is
// precisely the collision channel, so the game runs on a 2-node radio
// channel. As the paper notes, with only two nodes the fading behaviour of
// the channel is irrelevant: there is no opportunity for spatial reuse.
func PlayTwoPlayer(b sim.Builder, seed uint64, maxRounds int) (TwoPlayerResult, error) {
	ch, err := radio.New(2, false)
	if err != nil {
		return TwoPlayerResult{}, err
	}
	res, err := sim.Run(ch, b, seed, sim.Config{MaxRounds: maxRounds})
	if err != nil {
		return TwoPlayerResult{}, fmt.Errorf("two-player game: %w", err)
	}
	return TwoPlayerResult{Rounds: res.Rounds, Won: res.Solved, Winner: res.Winner}, nil
}
