package hitting

import (
	"errors"
	"fmt"
)

// This file implements the adversarial-referee view of the restricted
// k-hitting game. Lemma 13's lower bound is against a referee that chooses
// the target *worst-case*, not at random. Every player in this repository is
// oblivious — the game's only feedback ("your proposal lost") carries no
// information, so a player's proposal sequence is a fixed random sequence
// given its seed. Against an oblivious player the optimal adversary simply
// picks the 2-element target that survives the longest prefix of that
// sequence; ObliviousWorstCase computes it exactly.

// WorstCase is the outcome of an adversarial game against an oblivious
// player.
type WorstCase struct {
	// Rounds is the number of rounds the best adversarial target survives
	// (the first winning round against that target); equals the budget when
	// some target survives every proposal.
	Rounds int
	// TargetA, TargetB is a maximising target pair.
	TargetA, TargetB int
	// Survived reports whether the target survived the entire budget.
	Survived bool
}

// ObliviousWorstCase plays the player's proposal sequence once (feeding the
// mandatory loss feedback after each round) and returns the target pair that
// maximises the winning round. It is exact for oblivious players; for a
// feedback-sensitive player it is a lower bound on the adversarial value
// (the adversary could do at least this well).
//
// Complexity: O(maxRounds·k) to ingest proposals plus O(k²) for the
// pair scan, using per-element first-appearance times.
func ObliviousWorstCase(p Player, k, maxRounds int) (WorstCase, error) {
	if k < 2 {
		return WorstCase{}, errors.New("hitting: k must be ≥ 2")
	}
	if maxRounds < 1 {
		return WorstCase{}, fmt.Errorf("hitting: maxRounds %d must be ≥ 1", maxRounds)
	}
	// inRound[r][id] via a compact bitset per round is overkill: we only
	// need, for each pair (a, b), the first round containing exactly one of
	// them. Record each element's appearance set as a sorted round list.
	appearances := make([][]int32, k+1) // 1-based ids
	for round := 1; round <= maxRounds; round++ {
		proposal := p.Propose(round)
		seen := make(map[int]bool, len(proposal))
		for _, id := range proposal {
			if id < 1 || id > k {
				return WorstCase{}, fmt.Errorf("hitting: proposal element %d outside [1, %d]", id, k)
			}
			if !seen[id] {
				seen[id] = true
				appearances[id] = append(appearances[id], int32(round))
			}
		}
		p.Reject(round)
	}
	best := WorstCase{Rounds: 0, TargetA: 1, TargetB: 2}
	for a := 1; a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			r, survived := firstAsymmetricRound(appearances[a], appearances[b], maxRounds)
			if survived && !best.Survived || (survived == best.Survived && r > best.Rounds) {
				best = WorstCase{Rounds: r, TargetA: a, TargetB: b, Survived: survived}
			}
		}
	}
	return best, nil
}

// firstAsymmetricRound returns the first round present in exactly one of the
// two sorted appearance lists, or (maxRounds, true) if none exists.
func firstAsymmetricRound(a, b []int32, maxRounds int) (int, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			return int(a[i]), false
		default:
			return int(b[j]), false
		}
	}
	if i < len(a) {
		return int(a[i]), false
	}
	if j < len(b) {
		return int(b[j]), false
	}
	return maxRounds, true
}
