package hitting

import (
	"math"
	"testing"

	"fadingcr/internal/core"
)

// scriptedPlayer replays a fixed proposal sequence.
type scriptedPlayer struct {
	script [][]int
}

func (s *scriptedPlayer) Propose(round int) []int {
	if round <= len(s.script) {
		return s.script[round-1]
	}
	return nil
}

func (s *scriptedPlayer) Reject(int) {}

func TestObliviousWorstCaseScripted(t *testing.T) {
	// k=3. Round 1 proposes {1}: kills targets (1,2) and (1,3).
	// Round 2 proposes {2}: kills (2,3). So the adversary's best is (2,3),
	// surviving until round 2.
	p := &scriptedPlayer{script: [][]int{{1}, {2}, {3}}}
	wc, err := ObliviousWorstCase(p, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Rounds != 2 || wc.Survived {
		t.Errorf("WorstCase = %+v, want rounds 2, not survived", wc)
	}
	if !(wc.TargetA == 2 && wc.TargetB == 3) {
		t.Errorf("target = (%d, %d), want (2, 3)", wc.TargetA, wc.TargetB)
	}
}

func TestObliviousWorstCaseSurvivingTarget(t *testing.T) {
	// The player always proposes {1, 2} together: target (1,2) never loses.
	p := &scriptedPlayer{script: [][]int{{1, 2}, {1, 2}, {1, 2}}}
	wc, err := ObliviousWorstCase(p, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Survived || wc.Rounds != 3 {
		t.Errorf("WorstCase = %+v, want survived for the full budget", wc)
	}
	if !(wc.TargetA == 1 && wc.TargetB == 2) {
		t.Errorf("target = (%d, %d), want (1, 2)", wc.TargetA, wc.TargetB)
	}
}

func TestObliviousWorstCaseDuplicatesAndValidation(t *testing.T) {
	// Duplicates within a proposal count once.
	p := &scriptedPlayer{script: [][]int{{1, 1, 2, 2}, {1}}}
	wc, err := ObliviousWorstCase(p, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Target must be (1,2); round 1 hits both (no win), round 2 hits one.
	if wc.Rounds != 2 || wc.Survived {
		t.Errorf("WorstCase = %+v", wc)
	}

	if _, err := ObliviousWorstCase(p, 1, 2); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := ObliviousWorstCase(p, 2, 0); err == nil {
		t.Error("maxRounds=0 accepted")
	}
	bad := &scriptedPlayer{script: [][]int{{99}}}
	if _, err := ObliviousWorstCase(bad, 2, 1); err == nil {
		t.Error("out-of-range proposal accepted")
	}
}

// TestObliviousWorstCaseDominatesRandomReferee: the adversarial value is at
// least the rounds needed against any specific random target.
func TestObliviousWorstCaseDominatesRandomReferee(t *testing.T) {
	const k = 24
	for seed := uint64(0); seed < 10; seed++ {
		mk := func() Player {
			p, err := NewFixedDensityPlayer(k, 0.5, seed)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		wc, err := ObliviousWorstCase(mk(), k, 10000)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewReferee(k, seed+500)
		if err != nil {
			t.Fatal(err)
		}
		rounds, won, err := Play(ref, mk(), 10000)
		if err != nil || !won {
			t.Fatalf("seed %d: won=%v err=%v", seed, won, err)
		}
		if rounds > wc.Rounds {
			t.Errorf("seed %d: random-target rounds %d exceed adversarial value %d", seed, rounds, wc.Rounds)
		}
	}
}

// TestObliviousWorstCaseGrowsLogarithmically: against the optimal
// half-density player, the adversarial value is Θ(log k) — with ~k²/2
// candidate targets each surviving a round w.p. 1/2, the worst survives
// ≈ 2·log₂k rounds.
func TestObliviousWorstCaseGrowsLogarithmically(t *testing.T) {
	value := func(k int, trials int) float64 {
		total := 0.0
		for seed := uint64(0); seed < uint64(trials); seed++ {
			p, err := NewFixedDensityPlayer(k, 0.5, seed)
			if err != nil {
				t.Fatal(err)
			}
			wc, err := ObliviousWorstCase(p, k, 5000)
			if err != nil {
				t.Fatal(err)
			}
			if wc.Survived {
				t.Fatalf("k=%d seed=%d: a target survived 5000 rounds", k, seed)
			}
			total += float64(wc.Rounds)
		}
		return total / float64(trials)
	}
	v16 := value(16, 12)
	v256 := value(256, 12)
	// Expected ≈ 2·log₂(k) + O(1): ~8 and ~16.
	if v16 < math.Log2(16) || v16 > 6*math.Log2(16) {
		t.Errorf("adversarial value at k=16 is %v, want Θ(log k) ≈ 8", v16)
	}
	if v256 <= v16 {
		t.Errorf("adversarial value did not grow: %v → %v", v16, v256)
	}
	if v256 > 3*v16 {
		t.Errorf("adversarial value grew super-logarithmically: %v → %v", v16, v256)
	}
}

// TestObliviousWorstCaseCRPlayer: the Lemma 14 reduction player also has a
// finite, Θ(log k)-ish adversarial value.
func TestObliviousWorstCaseCRPlayer(t *testing.T) {
	p, err := NewSimulationPlayer(core.FixedProbability{}, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := ObliviousWorstCase(p, 32, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Survived {
		t.Fatal("a target survived the CR player for 20000 rounds")
	}
	if wc.Rounds < 5 {
		t.Errorf("adversarial value %d suspiciously low for k=32", wc.Rounds)
	}
}
