package hitting

import (
	"testing"

	"fadingcr/internal/core"
	"fadingcr/internal/sim"
)

// TestSimulationConsistency formalises the consistency argument at the heart
// of Lemma 14: in the k-node simulation where every node is fed silence, the
// state (and therefore the action stream) of any single virtual node i is
// identical to that node's behaviour in an isolated execution in which it
// also receives nothing — "the states of simulated nodes i and j are
// consistent with an execution where only nodes i and j are present".
func TestSimulationConsistency(t *testing.T) {
	const k = 16
	const rounds = 60
	seed := uint64(12345)

	// The simulation player's virtual nodes.
	player, err := NewSimulationPlayer(core.FixedProbability{}, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Record each node's membership in every proposal.
	proposed := make([][]bool, rounds)
	for r := 0; r < rounds; r++ {
		proposed[r] = make([]bool, k+1)
		for _, id := range player.Propose(r + 1) {
			proposed[r][id] = true
		}
		player.Reject(r + 1)
	}

	// Isolated replicas: node i built exactly as the builder builds node i
	// (same split seed), fed silence every round.
	replicas := core.FixedProbability{}.Build(k, seed)
	for r := 1; r <= rounds; r++ {
		for i, node := range replicas {
			acted := node.Act(r) == sim.Transmit
			if acted != proposed[r-1][i+1] {
				t.Fatalf("round %d node %d: isolated action %v != simulated proposal %v",
					r, i, acted, proposed[r-1][i+1])
			}
			node.Hear(r, -1, sim.Unknown)
		}
	}
}
