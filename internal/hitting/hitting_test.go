package hitting

import (
	"math"
	"testing"
	"testing/quick"

	"fadingcr/internal/core"
	"fadingcr/internal/sim"
)

func TestNewRefereeValidation(t *testing.T) {
	if _, err := NewReferee(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	r, err := NewReferee(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r.Target()
	if a == b || a < 1 || a > 10 || b < 1 || b > 10 {
		t.Errorf("target (%d, %d) invalid", a, b)
	}
	if r.K() != 10 {
		t.Errorf("K = %d, want 10", r.K())
	}
}

func TestNewRefereeTargetUniformish(t *testing.T) {
	// Over many seeds the two target elements must not be constant and both
	// orderings must occur.
	seen := map[[2]int]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		r, err := NewReferee(5, seed)
		if err != nil {
			t.Fatal(err)
		}
		a, b := r.Target()
		seen[[2]int{a, b}] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct targets over 200 seeds (of 20 possible)", len(seen))
	}
}

func TestNewRefereeWithTargetValidation(t *testing.T) {
	for _, c := range []struct{ k, a, b int }{
		{1, 1, 2}, {5, 0, 2}, {5, 1, 6}, {5, 3, 3},
	} {
		if _, err := NewRefereeWithTarget(c.k, c.a, c.b); err == nil {
			t.Errorf("NewRefereeWithTarget(%d, %d, %d) accepted", c.k, c.a, c.b)
		}
	}
}

func TestProposeJudging(t *testing.T) {
	r, err := NewRefereeWithTarget(10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		proposal []int
		want     bool
	}{
		{nil, false},                                  // hits neither
		{[]int{1, 2, 4}, false},                       // hits neither
		{[]int{3}, true},                              // hits exactly one
		{[]int{7, 1}, true},                           // hits exactly one
		{[]int{3, 7}, false},                          // hits both
		{[]int{3, 3, 7}, false},                       // duplicates count once; still both
		{[]int{3, 3}, true},                           // duplicate of a single hit
		{[]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, false}, // full set hits both
	}
	for _, c := range cases {
		got, err := r.Propose(c.proposal)
		if err != nil {
			t.Fatalf("Propose(%v): %v", c.proposal, err)
		}
		if got != c.want {
			t.Errorf("Propose(%v) = %v, want %v", c.proposal, got, c.want)
		}
	}
	if _, err := r.Propose([]int{0}); err == nil {
		t.Error("out-of-range element 0 accepted")
	}
	if _, err := r.Propose([]int{11}); err == nil {
		t.Error("out-of-range element 11 accepted")
	}
}

// TestProposeNeverFalseWinProperty: a proposal containing both or neither
// target elements never wins, one containing exactly one always does.
func TestProposeNeverFalseWinProperty(t *testing.T) {
	f := func(seed uint64, mask uint16) bool {
		const k = 16
		r, err := NewReferee(k, seed)
		if err != nil {
			return false
		}
		var proposal []int
		for id := 1; id <= k; id++ {
			if mask&(1<<(id-1)) != 0 {
				proposal = append(proposal, id)
			}
		}
		won, err := r.Propose(proposal)
		if err != nil {
			return false
		}
		a, b := r.Target()
		inA, inB := mask&(1<<(a-1)) != 0, mask&(1<<(b-1)) != 0
		return won == (inA != inB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlayHalfDensityWinsFast(t *testing.T) {
	// Per-round win probability is exactly 1/2; over 200 trials the mean
	// winning round should be near 2 and the game always ends well inside
	// the budget.
	total := 0
	for seed := uint64(0); seed < 200; seed++ {
		r, err := NewReferee(64, seed)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewFixedDensityPlayer(64, 0.5, seed+1000)
		if err != nil {
			t.Fatal(err)
		}
		rounds, won, err := Play(r, p, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !won {
			t.Fatalf("seed %d: half-density player lost", seed)
		}
		total += rounds
	}
	mean := float64(total) / 200
	if mean < 1.4 || mean > 2.8 {
		t.Errorf("mean winning round %v far from 2", mean)
	}
}

func TestPlayBudgetExhaustion(t *testing.T) {
	r, err := NewRefereeWithTarget(4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A player that always proposes both targets can never win.
	rounds, won, err := Play(r, proposeBoth{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if won || rounds != 25 {
		t.Errorf("rounds=%d won=%v, want 25/false", rounds, won)
	}
	if _, _, err := Play(r, proposeBoth{}, 0); err == nil {
		t.Error("maxRounds=0 accepted")
	}
}

type proposeBoth struct{}

func (proposeBoth) Propose(int) []int { return []int{1, 2} }
func (proposeBoth) Reject(int)        {}

func TestPlayPropagatesProposalError(t *testing.T) {
	r, _ := NewRefereeWithTarget(4, 1, 2)
	if _, _, err := Play(r, badProposer{}, 10); err == nil {
		t.Error("invalid proposal did not surface an error")
	}
}

type badProposer struct{}

func (badProposer) Propose(int) []int { return []int{99} }
func (badProposer) Reject(int)        {}

func TestFixedDensityPlayerValidation(t *testing.T) {
	if _, err := NewFixedDensityPlayer(1, 0.5, 1); err == nil {
		t.Error("k=1 accepted")
	}
	for _, q := range []float64{0, 1, -0.5, 2} {
		if _, err := NewFixedDensityPlayer(8, q, 1); err == nil {
			t.Errorf("q=%v accepted", q)
		}
	}
}

func TestFixedDensityQuantileGrowsLogarithmically(t *testing.T) {
	// Lemma 13 empirically: the (1 − 1/k)-quantile of the winning round for
	// the optimal constant-density player is ≈ log₂ k, so it should roughly
	// double from k=16 to k=256.
	quantile := func(k, trials int) float64 {
		var rounds []int
		for seed := 0; seed < trials; seed++ {
			r, err := NewReferee(k, uint64(seed))
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewFixedDensityPlayer(k, 0.5, uint64(seed+99999))
			if err != nil {
				t.Fatal(err)
			}
			got, won, err := Play(r, p, 10000)
			if err != nil || !won {
				t.Fatalf("k=%d seed=%d: won=%v err=%v", k, seed, won, err)
			}
			rounds = append(rounds, got)
		}
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		idx := int(float64(len(rounds)) * (1 - 1/float64(k)))
		if idx >= len(rounds) {
			idx = len(rounds) - 1
		}
		return float64(rounds[idx])
	}
	q16 := quantile(16, 600)
	q256 := quantile(256, 600)
	if q16 < 2 || q16 > 9 {
		t.Errorf("quantile at k=16 is %v, want ≈ log2(16) = 4", q16)
	}
	if q256 < q16 {
		t.Errorf("quantile decreased with k: %v → %v", q16, q256)
	}
	if q256 > 4*q16+4 {
		t.Errorf("quantile grew super-logarithmically: %v → %v", q16, q256)
	}
}

func TestSimulationPlayerReduction(t *testing.T) {
	// The reduction player built from the paper's algorithm proposes
	// p-density sets and wins within a comfortable budget.
	r, err := NewReferee(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSimulationPlayer(core.FixedProbability{}, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	rounds, won, err := Play(r, p, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("simulation player never won")
	}
	if rounds > 200 {
		t.Errorf("simulation player needed %d rounds; expected O(1/p(1-p)) ≈ tens", rounds)
	}
}

func TestSimulationPlayerProposalDensity(t *testing.T) {
	p, err := NewSimulationPlayer(core.FixedProbability{P: 0.25}, 400, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 proposal should contain ≈ 100 of 400 ids; silence feedback
	// keeps every node active, so round 2 similar.
	sizes := 0
	for round := 1; round <= 10; round++ {
		prop := p.Propose(round)
		for _, id := range prop {
			if id < 1 || id > 400 {
				t.Fatalf("proposal id %d out of range", id)
			}
		}
		sizes += len(prop)
		p.Reject(round)
	}
	mean := float64(sizes) / 10
	if mean < 70 || mean > 130 {
		t.Errorf("mean proposal size %v far from 100", mean)
	}
}

func TestSimulationPlayerValidation(t *testing.T) {
	if _, err := NewSimulationPlayer(core.FixedProbability{}, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewSimulationPlayer(shortBuilder{}, 4, 1); err == nil {
		t.Error("builder with wrong node count accepted")
	}
}

type shortBuilder struct{}

func (shortBuilder) Name() string                        { return "short" }
func (shortBuilder) Build(n int, seed uint64) []sim.Node { return nil }

func TestPlayTwoPlayer(t *testing.T) {
	res, err := PlayTwoPlayer(core.FixedProbability{}, 11, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Won {
		t.Fatal("two-player game never broke symmetry")
	}
	if res.Winner != 0 && res.Winner != 1 {
		t.Errorf("winner = %d", res.Winner)
	}
	// Expected 1/(2p(1-p)) ≈ 3.1 rounds at p = 0.2; generous cap.
	if res.Rounds > 500 {
		t.Errorf("two-player game took %d rounds", res.Rounds)
	}
}

func TestPlayTwoPlayerBudget(t *testing.T) {
	// alwaysTransmit never breaks symmetry.
	res, err := PlayTwoPlayer(alwaysTransmit{}, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Won || res.Rounds != 30 || res.Winner != -1 {
		t.Errorf("res = %+v, want lost after 30", res)
	}
}

type alwaysTransmit struct{}

func (alwaysTransmit) Name() string { return "always-transmit" }
func (alwaysTransmit) Build(n int, seed uint64) []sim.Node {
	out := make([]sim.Node, n)
	for i := range out {
		out[i] = txNode{}
	}
	return out
}

type txNode struct{}

func (txNode) Act(int) sim.Action          { return sim.Transmit }
func (txNode) Hear(int, int, sim.Feedback) {}

// TestTwoPlayerMatchesHittingGameShape: the two-player (1 − 1/k)-success
// horizon for the fixed-probability algorithm grows like log k — the
// empirical face of Lemma 14 + Lemma 13.
func TestTwoPlayerMatchesHittingGameShape(t *testing.T) {
	horizon := func(k, trials int) float64 {
		var rounds []int
		for seed := 0; seed < trials; seed++ {
			res, err := PlayTwoPlayer(core.FixedProbability{}, uint64(seed), 100000)
			if err != nil || !res.Won {
				t.Fatalf("seed %d: %+v err=%v", seed, res, err)
			}
			rounds = append(rounds, res.Rounds)
		}
		for i := 1; i < len(rounds); i++ {
			for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
				rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
			}
		}
		idx := int(float64(len(rounds)) * (1 - 1/float64(k)))
		if idx >= len(rounds) {
			idx = len(rounds) - 1
		}
		return float64(rounds[idx])
	}
	h16 := horizon(16, 800)
	h256 := horizon(256, 800)
	want16 := math.Log(16.) / (2 * core.DefaultP * (1 - core.DefaultP)) // ≈ 8.7/0.32
	if h16 > 3*want16 {
		t.Errorf("horizon(16) = %v, want ≈ %v", h16, want16)
	}
	if h256 < h16 {
		t.Errorf("horizon decreased with k: %v → %v", h16, h256)
	}
}
