// Package hitting implements the combinatorial machinery behind the paper's
// Ω(log n) lower bound (Section 4):
//
//   - the restricted k-hitting game of [20]: a referee fixes a hidden target
//     set T ⊂ {1, …, k} with |T| = 2; each round the player proposes a set
//     P ⊆ {1, …, k} and wins as soon as |P ∩ T| = 1, learning nothing from
//     losing rounds. Lemma 13: any player winning with probability ≥ 1 − 1/k
//     needs Ω(log k) rounds.
//   - two-player contention resolution (Lemma 14): two symmetric nodes must
//     break symmetry — the game is won the first time exactly one transmits,
//     and in all previous rounds no messages are received.
//   - the reduction of Lemma 14: any contention resolution algorithm yields
//     a hitting-game player by simulating the algorithm on k nodes,
//     proposing each round's broadcaster set, and feeding every simulated
//     node silence. The simulated states of the two target nodes remain
//     consistent with a genuine two-node execution, so the algorithm's
//     guarantee transfers to the game — and the game's Ω(log k) bound
//     transfers back.
package hitting

import (
	"errors"
	"fmt"

	"fadingcr/internal/sim"
	"fadingcr/internal/xrand"
)

// Referee administers one instance of the restricted k-hitting game. Ids are
// 1-based: valid elements are 1 … k.
type Referee struct {
	k      int
	target [2]int
}

// NewReferee draws a uniformly random 2-element target from {1, …, k}.
func NewReferee(k int, seed uint64) (*Referee, error) {
	if k < 2 {
		return nil, errors.New("hitting: k must be ≥ 2")
	}
	rng := xrand.New(seed)
	a := 1 + rng.IntN(k)
	b := 1 + rng.IntN(k-1)
	if b >= a {
		b++
	}
	return &Referee{k: k, target: [2]int{a, b}}, nil
}

// NewRefereeWithTarget fixes the target explicitly (for tests and
// adversarial experiments).
func NewRefereeWithTarget(k, a, b int) (*Referee, error) {
	if k < 2 {
		return nil, errors.New("hitting: k must be ≥ 2")
	}
	if a < 1 || a > k || b < 1 || b > k || a == b {
		return nil, fmt.Errorf("hitting: invalid target (%d, %d) for k=%d", a, b, k)
	}
	return &Referee{k: k, target: [2]int{a, b}}, nil
}

// K returns the universe size.
func (r *Referee) K() int { return r.k }

// Target returns the hidden target pair; only experiment post-processing
// should look at it.
func (r *Referee) Target() (int, int) { return r.target[0], r.target[1] }

// Propose judges one proposal: the player wins iff exactly one of the two
// target elements is in the proposal. Elements outside 1 … k are rejected
// with an error; duplicate elements are counted once.
func (r *Referee) Propose(proposal []int) (won bool, err error) {
	hitA, hitB := false, false
	for _, id := range proposal {
		if id < 1 || id > r.k {
			return false, fmt.Errorf("hitting: proposal element %d outside [1, %d]", id, r.k)
		}
		if id == r.target[0] {
			hitA = true
		}
		if id == r.target[1] {
			hitB = true
		}
	}
	return hitA != hitB, nil
}

// Player is a hitting-game strategy.
type Player interface {
	// Propose returns the proposal for the given 1-based round.
	Propose(round int) []int
	// Reject informs the player that its last proposal did not win. This is
	// the only feedback the game provides.
	Reject(round int)
}

// Play runs a game to completion or the round budget. It returns the
// 1-based winning round, or (maxRounds, false) if the player never won.
func Play(r *Referee, p Player, maxRounds int) (rounds int, won bool, err error) {
	if maxRounds < 1 {
		return 0, false, fmt.Errorf("hitting: maxRounds %d must be ≥ 1", maxRounds)
	}
	for round := 1; round <= maxRounds; round++ {
		w, err := r.Propose(p.Propose(round))
		if err != nil {
			return round, false, err
		}
		if w {
			return round, true, nil
		}
		p.Reject(round)
	}
	return maxRounds, false, nil
}

// FixedDensityPlayer proposes each element independently with a fixed
// probability q each round. With q = 1/2 the per-round win probability is
// exactly 1/2 regardless of k, so the (1 − 1/k)-success horizon is log₂ k —
// the matching upper bound for Lemma 13.
type FixedDensityPlayer struct {
	k   int
	q   float64
	rng interface{ Float64() float64 }
}

// NewFixedDensityPlayer builds the player; q must be in (0, 1).
func NewFixedDensityPlayer(k int, q float64, seed uint64) (*FixedDensityPlayer, error) {
	if k < 2 {
		return nil, errors.New("hitting: k must be ≥ 2")
	}
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("hitting: density %v outside (0, 1)", q)
	}
	return &FixedDensityPlayer{k: k, q: q, rng: xrand.New(seed)}, nil
}

// Propose implements Player.
func (p *FixedDensityPlayer) Propose(round int) []int {
	var out []int
	for id := 1; id <= p.k; id++ {
		if p.rng.Float64() < p.q {
			out = append(out, id)
		}
	}
	return out
}

// Reject implements Player (the player is oblivious).
func (p *FixedDensityPlayer) Reject(round int) {}

// SimulationPlayer is the Lemma 14 reduction: it simulates a contention
// resolution algorithm on k virtual nodes with ids 1 … k. Each game round it
// advances the simulation one round, proposes exactly the set of virtual
// nodes that broadcast, and — when the proposal loses — completes the round
// by simulating every node receiving nothing. As the paper argues, the
// simulated states of any two nodes remain consistent with a two-node
// execution in which no message has yet been delivered, so a winning
// proposal corresponds to the algorithm breaking two-player symmetry.
type SimulationPlayer struct {
	nodes []sim.Node
}

// NewSimulationPlayer builds the reduction player for algorithm b on k
// virtual nodes.
func NewSimulationPlayer(b sim.Builder, k int, seed uint64) (*SimulationPlayer, error) {
	if k < 2 {
		return nil, errors.New("hitting: k must be ≥ 2")
	}
	nodes := b.Build(k, seed)
	if len(nodes) != k {
		return nil, fmt.Errorf("hitting: builder %q returned %d nodes for k=%d", b.Name(), len(nodes), k)
	}
	return &SimulationPlayer{nodes: nodes}, nil
}

// Propose implements Player: the ids (1-based) of the virtual broadcasters.
func (p *SimulationPlayer) Propose(round int) []int {
	var out []int
	for i, node := range p.nodes {
		if node.Act(round) == sim.Transmit {
			out = append(out, i+1)
		}
	}
	return out
}

// Reject implements Player: every virtual node receives nothing.
func (p *SimulationPlayer) Reject(round int) {
	for _, node := range p.nodes {
		node.Hear(round, -1, sim.Unknown)
	}
}
