// Package sim provides the synchronous round-based execution engine shared
// by every algorithm and channel in the repository.
//
// The model follows Section 2 of the paper: time is divided into synchronous
// rounds; in each round every participating node either transmits or
// listens; a channel implementation decides which messages are received. The
// contention resolution problem is solved in the first round in which
// exactly one participant transmits — the engine detects this with an
// omniscient oracle, while the nodes themselves observe only their own
// receptions (and, on channels with collision detection, the
// silence/message/collision trichotomy).
package sim

import (
	"errors"
	"fmt"

	"fadingcr/internal/obs"
)

// Channel is one-round message delivery over a fixed set of n nodes. It is
// satisfied by sinr.Channel, sinr.RayleighChannel, and radio.Channel.
type Channel interface {
	// N returns the number of nodes on the channel.
	N() int
	// Deliver fills recv for the given transmit vector: recv[v] is the
	// index of the transmitter whose message listener v received, or −1.
	Deliver(tx []bool, recv []int)
}

// Action is a node's choice for a round.
type Action int

const (
	// Listen keeps the radio in receive mode.
	Listen Action = iota + 1
	// Transmit broadcasts at the fixed power.
	Transmit
)

// Feedback is what a listening node perceives about the round when the
// channel supports collision detection; Unknown on channels that do not.
type Feedback int

const (
	// Unknown: the channel provides no carrier feedback.
	Unknown Feedback = iota
	// Silence: no participant transmitted.
	Silence
	// Message: exactly one participant transmitted.
	Message
	// Collision: two or more participants transmitted.
	Collision
)

// Node is the per-node state machine of a protocol. Implementations must be
// deterministic functions of their seed and observation history.
type Node interface {
	// Act returns the node's action for round (1-based). Act is called
	// exactly once per round, before Hear.
	Act(round int) Action
	// Hear reports the round's outcome to the node: from is the sender
	// index of the decoded message, or −1 when nothing was received (which
	// is always the case while transmitting); detect carries the collision
	// detection trichotomy on channels that expose it, Unknown otherwise.
	// Hear fires for every executed round, including the solving round —
	// the oracle terminates the run only after feedback is delivered, so a
	// listener can observe Message on the final round.
	Hear(round int, from int, detect Feedback)
}

// Builder constructs the per-node state machines for a run. Build must
// return exactly n nodes, deterministically in (n, seed).
type Builder interface {
	// Name identifies the protocol in reports and traces.
	Name() string
	// Build returns the protocol's n per-node state machines.
	Build(n int, seed uint64) []Node
}

// Tracer observes each executed round. The slices passed to OnRound are
// reused between rounds; implementations must copy anything they retain.
type Tracer interface {
	OnRound(round int, nodes []Node, tx []bool, recv []int)
}

// ResultTracer is an optional extension of Tracer: a tracer that also
// implements it is handed the execution's final Result exactly once, after
// the last OnRound call and before Run returns. Error returns (invalid
// configuration, a node yielding an invalid action) do not produce a
// result event. Structured tracing uses the hook to close every trace with
// a result record.
type ResultTracer interface {
	Tracer
	OnResult(Result)
}

// Result summarises one execution.
type Result struct {
	// Solved reports whether a solo broadcast occurred within the round
	// budget.
	Solved bool
	// Rounds is the 1-based index of the solving round, or the budget when
	// unsolved.
	Rounds int
	// Winner is the node that transmitted alone, or −1 when unsolved.
	Winner int
	// Transmissions is the total number of transmissions across all nodes
	// and rounds (an energy measure).
	Transmissions int64
}

// Config controls an execution.
type Config struct {
	// MaxRounds caps the execution; must be ≥ 1.
	MaxRounds int
	// CollisionDetection lets listening nodes observe the
	// silence/message/collision trichotomy, as in the radio network model
	// with receiver collision detection. Leave false for the paper's
	// models.
	CollisionDetection bool
	// Tracer, when non-nil, observes every executed round.
	Tracer Tracer
}

// Run executes the protocol built by b over the channel until a solo
// broadcast or the round budget. The seed drives all protocol randomness.
func Run(ch Channel, b Builder, seed uint64, cfg Config) (Result, error) {
	if ch == nil || b == nil {
		return Result{}, errors.New("sim: nil channel or builder")
	}
	if cfg.MaxRounds < 1 {
		return Result{}, fmt.Errorf("sim: MaxRounds %d must be ≥ 1", cfg.MaxRounds)
	}
	n := ch.N()
	nodes := b.Build(n, seed)
	if len(nodes) != n {
		return Result{}, fmt.Errorf("sim: builder %q returned %d nodes for n=%d", b.Name(), len(nodes), n)
	}
	tx := make([]bool, n)
	recv := make([]int, n)
	var transmissions int64
	var rounds, receptions int64
	mRuns.Inc()
	defer func() {
		mRounds.Add(rounds)
		mReceptions.Add(receptions)
		mTransmissions.Add(transmissions)
	}()
	for round := 1; round <= cfg.MaxRounds; round++ {
		count, solo := 0, -1
		for u, node := range nodes {
			switch a := node.Act(round); a {
			case Transmit:
				tx[u] = true
				count++
				solo = u
			case Listen:
				tx[u] = false
			default:
				return Result{}, fmt.Errorf("sim: node %d returned invalid action %d", u, a)
			}
		}
		transmissions += int64(count)
		ch.Deliver(tx, recv)
		rounds++
		if obs.Enabled() {
			// The reception scan exists only to feed the metric; skip the
			// pass entirely when recording is off.
			for _, from := range recv {
				if from >= 0 {
					receptions++
				}
			}
		}
		if cfg.Tracer != nil {
			cfg.Tracer.OnRound(round, nodes, tx, recv)
		}
		detect := Unknown
		if cfg.CollisionDetection {
			switch {
			case count == 0:
				detect = Silence
			case count == 1:
				detect = Message
			default:
				detect = Collision
			}
		}
		// Feedback is delivered for every executed round, including the
		// solving one, before the oracle terminates the run: nodes cannot
		// distinguish the final round locally, and with CollisionDetection on
		// a listener's only way to ever observe Message is the solo round
		// itself.
		for u, node := range nodes {
			node.Hear(round, recv[u], detect)
		}
		if count == 1 {
			return finish(cfg, Result{Solved: true, Rounds: round, Winner: solo, Transmissions: transmissions}), nil
		}
	}
	return finish(cfg, Result{Solved: false, Rounds: cfg.MaxRounds, Winner: -1, Transmissions: transmissions}), nil
}

// finish hands the final result to a ResultTracer before Run returns it.
func finish(cfg Config, res Result) Result {
	if rt, ok := cfg.Tracer.(ResultTracer); ok {
		rt.OnResult(res)
	}
	return res
}
