package sim

import "fadingcr/internal/obs"

// Engine metrics, exported through the CLI -metrics flag. Run accumulates
// locally and publishes once per execution (a deferred aggregate add), so
// the per-round loop carries no atomic traffic; the reception scan is
// additionally skipped entirely while recording is disabled. None of these
// touch the protocol or channel randomness (DESIGN.md §8).
var (
	mRuns          = obs.Default.Counter("sim.runs")
	mRounds        = obs.Default.Counter("sim.rounds")
	mTransmissions = obs.Default.Counter("sim.transmissions")
	mReceptions    = obs.Default.Counter("sim.receptions")
)
