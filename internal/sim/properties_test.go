package sim

import (
	"testing"
	"testing/quick"

	"fadingcr/internal/radio"
	"fadingcr/internal/xrand"
)

// randomBuilder drives each node by an independent coin with a per-node
// bias, exercising the engine across arbitrary transmit patterns.
type randomBuilder struct{ bias float64 }

func (b randomBuilder) Name() string { return "random" }
func (b randomBuilder) Build(n int, seed uint64) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = &coinNode{seed: xrand.Split(seed, uint64(i)), bias: b.bias}
	}
	return out
}

type coinNode struct {
	seed  uint64
	bias  float64
	round uint64
}

func (u *coinNode) Act(round int) Action {
	u.round++
	if xrand.New(xrand.Split(u.seed, u.round)).Float64() < u.bias {
		return Transmit
	}
	return Listen
}

func (u *coinNode) Hear(int, int, Feedback) {}

// recorder verifies the engine's oracle from the outside.
type oracleChecker struct {
	t          *testing.T
	lastTxSum  int
	totalTxSum int64
	rounds     int
}

func (o *oracleChecker) OnRound(round int, nodes []Node, tx []bool, recv []int) {
	sum := 0
	for _, b := range tx {
		if b {
			sum++
		}
	}
	o.lastTxSum = sum
	o.totalTxSum += int64(sum)
	o.rounds = round
	// No transmitter may ever have a reception.
	for v := range tx {
		if tx[v] && recv[v] != -1 {
			o.t.Errorf("round %d: transmitter %d received %d", round, v, recv[v])
		}
	}
}

// TestEngineOracleProperty: for arbitrary biases, seeds and sizes — (1) the
// run ends exactly when one transmitter appears; (2) Result.Transmissions
// equals the traced sum; (3) the tracer sees exactly Result.Rounds rounds.
func TestEngineOracleProperty(t *testing.T) {
	f := func(seed uint64, nRaw, biasRaw uint8) bool {
		n := 1 + int(nRaw%20)
		bias := 0.05 + float64(biasRaw%90)/100
		ch, err := radio.New(n, false)
		if err != nil {
			return false
		}
		o := &oracleChecker{t: t}
		res, err := Run(ch, randomBuilder{bias: bias}, seed, Config{MaxRounds: 500, Tracer: o})
		if err != nil {
			return false
		}
		if o.rounds != res.Rounds {
			return false
		}
		if o.totalTxSum != res.Transmissions {
			return false
		}
		if res.Solved {
			return o.lastTxSum == 1 && res.Winner >= 0 && res.Winner < n
		}
		return res.Winner == -1 && res.Rounds == 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEngineDeterminismProperty: equal (channel, builder, seed, config) give
// equal results.
func TestEngineDeterminismProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%16)
		run := func() Result {
			ch, err := radio.New(n, false)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(ch, randomBuilder{bias: 0.3}, seed, Config{MaxRounds: 300})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineStopsExactlyAtFirstSolo: replay the same coin schedule manually
// and confirm the engine's solving round is the first round with exactly
// one transmitter.
func TestEngineStopsExactlyAtFirstSolo(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		const n = 9
		ch, err := radio.New(n, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(ch, randomBuilder{bias: 0.25}, seed, Config{MaxRounds: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			continue
		}
		// Replay: nodes are pure functions of (seed, node index, round).
		firstSolo := 0
		for round := 1; round <= res.Rounds; round++ {
			sum := 0
			for i := 0; i < n; i++ {
				nodeSeed := xrand.Split(xrand.Split(seed, uint64(i)), uint64(round))
				if xrand.New(nodeSeed).Float64() < 0.25 {
					sum++
				}
			}
			if sum == 1 {
				firstSolo = round
				break
			}
		}
		if firstSolo != res.Rounds {
			t.Errorf("seed %d: engine solved at %d but first solo is %d", seed, res.Rounds, firstSolo)
		}
	}
}
