package sim

import (
	"testing"

	"fadingcr/internal/obs"
	"fadingcr/internal/radio"
)

// scheduleNode transmits in exactly the rounds listed in its schedule and
// records everything it hears.
type scheduleNode struct {
	schedule map[int]bool
	heard    []int
	detects  []Feedback
}

func (s *scheduleNode) Act(round int) Action {
	if s.schedule[round] {
		return Transmit
	}
	return Listen
}

func (s *scheduleNode) Hear(round int, from int, detect Feedback) {
	s.heard = append(s.heard, from)
	s.detects = append(s.detects, detect)
}

// scheduleBuilder builds one scheduleNode per participant.
type scheduleBuilder struct {
	schedules []map[int]bool
	nodes     []*scheduleNode
	short     bool // return too few nodes, for error-path tests
}

func (b *scheduleBuilder) Name() string { return "schedule" }

func (b *scheduleBuilder) Build(n int, seed uint64) []Node {
	if b.short {
		return nil
	}
	b.nodes = make([]*scheduleNode, n)
	out := make([]Node, n)
	for i := range out {
		sched := map[int]bool{}
		if i < len(b.schedules) {
			sched = b.schedules[i]
		}
		b.nodes[i] = &scheduleNode{schedule: sched}
		out[i] = b.nodes[i]
	}
	return out
}

func mustRadio(t *testing.T, n int, cd bool) Channel {
	t.Helper()
	ch, err := radio.New(n, cd)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestRunSoloBroadcastSolves(t *testing.T) {
	// Rounds 1–2: both nodes transmit (collision). Round 3: only node 1.
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true},
		{1: true, 2: true, 3: true},
	}}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds != 3 || res.Winner != 1 {
		t.Errorf("Result = %+v, want solved in round 3 by node 1", res)
	}
	if res.Transmissions != 5 {
		t.Errorf("Transmissions = %d, want 5", res.Transmissions)
	}
	// Hear fires for every executed round, including the solving one.
	if got := len(b.nodes[0].heard); got != 3 {
		t.Errorf("node 0 heard %d rounds, want 3", got)
	}
	// The solving round's message reaches the listener before termination.
	if got := b.nodes[0].heard[2]; got != 1 {
		t.Errorf("node 0 heard %d in the solving round, want 1 (the winner)", got)
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	// Both nodes always transmit: never solo.
	always := map[int]bool{}
	for r := 1; r <= 5; r++ {
		always[r] = true
	}
	b := &scheduleBuilder{schedules: []map[int]bool{always, always}}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved || res.Rounds != 5 || res.Winner != -1 {
		t.Errorf("Result = %+v, want unsolved after 5 rounds", res)
	}
	if res.Transmissions != 10 {
		t.Errorf("Transmissions = %d, want 10", res.Transmissions)
	}
}

func TestRunSingleNode(t *testing.T) {
	// One participant: its first transmission is a solo broadcast.
	b := &scheduleBuilder{schedules: []map[int]bool{{2: true}}}
	res, err := Run(mustRadio(t, 1, false), b, 1, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds != 2 || res.Winner != 0 {
		t.Errorf("Result = %+v, want solved in round 2 by node 0", res)
	}
}

func TestRunCollisionDetectionFeedback(t *testing.T) {
	// Round 1: collision; round 2: silence; round 3: solo broadcast. The
	// solving round's feedback is delivered before the oracle terminates
	// the run, so the listener observes the full trichotomy — Message was
	// once unreachable because Run returned before the final Hear
	// (regression test for that bug).
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true},
		{1: true, 3: true},
		{},
	}}
	_, err := Run(mustRadio(t, 3, true), b, 1, Config{MaxRounds: 10, CollisionDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Feedback{Collision, Silence, Message}
	if got := len(b.nodes[2].detects); got != len(want) {
		t.Fatalf("listener got %d feedback events, want %d", got, len(want))
	}
	for i, w := range want {
		if got := b.nodes[2].detects[i]; got != w {
			t.Errorf("round %d detect = %v, want %v", i+1, got, w)
		}
	}
	// The solving round also delivers the winner's message on a CD radio.
	if got := b.nodes[2].heard[2]; got != 1 {
		t.Errorf("listener heard %d in the solo round, want 1", got)
	}
}

func TestRunWithoutCollisionDetectionReportsUnknown(t *testing.T) {
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true},
		{1: true},
	}}
	_, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.nodes[0].detects[0]; got != Unknown {
		t.Errorf("detect = %v, want Unknown", got)
	}
}

func TestRunListenersReceiveOnRadio(t *testing.T) {
	// Round 1: two transmitters collide (nothing heard); round 2: node 0
	// transmits alone — solved, and the solving round's reception is
	// delivered to the listeners before the run terminates.
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true},
		{1: true},
		{},
	}}
	res, err := Run(mustRadio(t, 3, false), b, 1, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds != 2 || res.Winner != 0 {
		t.Fatalf("Result = %+v", res)
	}
	if got := b.nodes[2].heard; len(got) != 2 || got[0] != -1 || got[1] != 0 {
		t.Errorf("listener heard %v, want [-1 0] (collision, then the solo sender)", got)
	}
}

func TestRunConfigValidation(t *testing.T) {
	b := &scheduleBuilder{}
	if _, err := Run(nil, b, 1, Config{MaxRounds: 1}); err == nil {
		t.Error("nil channel accepted")
	}
	if _, err := Run(mustRadio(t, 2, false), nil, 1, Config{MaxRounds: 1}); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 0}); err == nil {
		t.Error("MaxRounds=0 accepted")
	}
}

func TestRunBuilderCountMismatch(t *testing.T) {
	b := &scheduleBuilder{short: true}
	if _, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 1}); err == nil {
		t.Error("builder returning wrong node count accepted")
	}
}

// badActionNode returns an out-of-range action.
type badActionNode struct{}

func (badActionNode) Act(int) Action          { return Action(99) }
func (badActionNode) Hear(int, int, Feedback) {}

type badActionBuilder struct{}

func (badActionBuilder) Name() string { return "bad" }
func (badActionBuilder) Build(n int, seed uint64) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = badActionNode{}
	}
	return out
}

func TestRunInvalidAction(t *testing.T) {
	if _, err := Run(mustRadio(t, 2, false), badActionBuilder{}, 1, Config{MaxRounds: 3}); err == nil {
		t.Error("invalid action accepted")
	}
}

// countingTracer records the rounds it saw.
type countingTracer struct {
	rounds []int
	txSums []int
}

func (c *countingTracer) OnRound(round int, nodes []Node, tx []bool, recv []int) {
	c.rounds = append(c.rounds, round)
	sum := 0
	for _, t := range tx {
		if t {
			sum++
		}
	}
	c.txSums = append(c.txSums, sum)
}

func TestRunTracerSeesEveryRound(t *testing.T) {
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true},
		{1: true, 2: true, 3: true},
	}}
	tr := &countingTracer{}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 10, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", res.Rounds)
	}
	if len(tr.rounds) != 3 || tr.rounds[2] != 3 {
		t.Errorf("tracer rounds = %v, want [1 2 3]", tr.rounds)
	}
	wantTx := []int{2, 2, 1}
	for i, w := range wantTx {
		if tr.txSums[i] != w {
			t.Errorf("tracer tx sums = %v, want %v", tr.txSums, wantTx)
			break
		}
	}
}

// Guard against accidental API drift: Feedback constants keep their
// documented ordering (Unknown is the zero value).
func TestFeedbackZeroValue(t *testing.T) {
	var f Feedback
	if f != Unknown {
		t.Errorf("zero Feedback = %v, want Unknown", f)
	}
}

func TestRunRecordsMetrics(t *testing.T) {
	runs0 := mRuns.Load()
	rounds0 := mRounds.Load()
	tx0 := mTransmissions.Load()
	recv0 := mReceptions.Load()
	// Rounds 1–2: both nodes transmit (collision, nothing received on a
	// plain radio channel). Round 3: only node 1 — solved, node 0 receives.
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true},
		{1: true, 2: true, 3: true},
	}}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds != 3 {
		t.Fatalf("Result = %+v, want solved in round 3", res)
	}
	if got := mRuns.Load() - runs0; got != 1 {
		t.Errorf("sim.runs delta = %d, want 1", got)
	}
	if got := mRounds.Load() - rounds0; got != 3 {
		t.Errorf("sim.rounds delta = %d, want 3", got)
	}
	if got := mTransmissions.Load() - tx0; got != 5 {
		t.Errorf("sim.transmissions delta = %d, want 5", got)
	}
	if got := mReceptions.Load() - recv0; got != 1 {
		t.Errorf("sim.receptions delta = %d, want 1 (the solo broadcast)", got)
	}
}

func TestRunDisabledMetricsStillCorrect(t *testing.T) {
	// Disabling recording must not change execution results, only stop the
	// counters (the §8 observability contract).
	obs.SetEnabled(false)
	t.Cleanup(func() { obs.SetEnabled(true) })
	runs0 := mRuns.Load()
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true},
		{1: true, 2: true, 3: true},
	}}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Rounds != 3 || res.Winner != 1 || res.Transmissions != 5 {
		t.Errorf("Result = %+v, want solved in round 3 by node 1 with 5 transmissions", res)
	}
	if got := mRuns.Load() - runs0; got != 0 {
		t.Errorf("sim.runs advanced by %d with recording disabled", got)
	}
}

// resultTracer records OnRound/OnResult invocations for the ResultTracer
// contract tests.
type resultTracer struct {
	rounds  int
	results []Result
}

func (r *resultTracer) OnRound(round int, nodes []Node, tx []bool, recv []int) { r.rounds++ }
func (r *resultTracer) OnResult(res Result)                                    { r.results = append(r.results, res) }

func TestResultTracerSolvedRun(t *testing.T) {
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true},
		{1: true, 2: true, 3: true},
	}}
	rt := &resultTracer{}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 10, Tracer: rt})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.results) != 1 {
		t.Fatalf("OnResult called %d times, want 1", len(rt.results))
	}
	if rt.results[0] != res {
		t.Errorf("OnResult got %+v, Run returned %+v", rt.results[0], res)
	}
	if rt.rounds != res.Rounds {
		t.Errorf("OnRound called %d times before OnResult, want %d", rt.rounds, res.Rounds)
	}
}

func TestResultTracerUnsolvedRun(t *testing.T) {
	// Both nodes always transmit: never solved within the budget.
	b := &scheduleBuilder{schedules: []map[int]bool{
		{1: true, 2: true, 3: true},
		{1: true, 2: true, 3: true},
	}}
	rt := &resultTracer{}
	res, err := Run(mustRadio(t, 2, false), b, 1, Config{MaxRounds: 3, Tracer: rt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("unexpectedly solved")
	}
	if len(rt.results) != 1 || rt.results[0] != res {
		t.Fatalf("OnResult calls = %+v, want exactly the returned result", rt.results)
	}
}

func TestResultTracerNotCalledOnError(t *testing.T) {
	rt := &resultTracer{}
	_, err := Run(mustRadio(t, 2, false), &scheduleBuilder{short: true}, 1, Config{MaxRounds: 3, Tracer: rt})
	if err == nil {
		t.Fatal("short builder accepted")
	}
	if len(rt.results) != 0 {
		t.Errorf("OnResult called on an error return: %+v", rt.results)
	}
}
