package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc guards the zero-allocation guarantee of the delivery hot path
// (BENCH_sinr.json: 0 allocs/op in every engine). Functions annotated with
// //crlint:hotpath in their doc comment — the Deliver family and its
// scratch-buffer helpers — may not contain explicit allocation sites:
//
//   - make/new calls,
//   - append into anything other than a scratch buffer resliced to [:0]
//     (growth would allocate; the [:0] reuse idiom is the sanctioned way to
//     fill a preallocated buffer),
//   - closure literals (captures escape to the heap),
//   - slice/map composite literals and &composite expressions,
//   - conversions that produce a fresh slice ([]byte(s), ...),
//
// nor wall-clock reads (time.Now and friends, context deadline helpers) or
// rng constructions (xrand.New/NewReseedable) — both break the hot path's
// "pure function of the seed" contract, and generator construction
// allocates.
//
// The constraints are interprocedural: a package-local call graph
// (callgraph.go) summarizes every function's direct effects, and a hot-path
// function that calls — or references, or transitively reaches through
// unannotated same-package helpers — a function with such an effect is
// flagged at the call site with the full call chain. Callees annotated
// //crlint:hotpath are checked at their own declaration and not re-reported
// through callers. Interface calls and function-value calls cannot be
// resolved statically and are not guessed through; cross-package allocation
// effects likewise remain the benchmarks' job via testing.AllocsPerRun
// regressions.
var HotAlloc = &Analyzer{
	Name:          "hotalloc",
	Doc:           "forbid allocation sites, wall-clock reads, and rng construction in (or reachable from) functions annotated //crlint:hotpath",
	SkipTestFiles: true,
	Run:           hotalloc,
}

func hotalloc(pass *Pass) error {
	g := buildCallGraph(pass)
	for _, node := range g.order {
		if !node.hotpath {
			continue
		}
		for _, e := range node.effects {
			pass.Reportf(e.pos, "hot path (//crlint:hotpath) %s", e.why)
		}
		for _, site := range node.calls {
			if site.callee == node || site.callee.hotpath {
				continue
			}
			for kind := effectKind(0); kind < numEffectKinds; kind++ {
				if path, e, ok := g.chainTo(site.callee, kind); ok {
					pass.Reportf(site.pos,
						"hot path (//crlint:hotpath) reaches %s via call chain %s: %s at %s",
						kind.phrase(), chainString(node.name, path), e.short, shortPosition(pass.Fset, e.pos))
				}
			}
		}
	}
	return nil
}

// reuseBuffers collects the objects assigned from a [...][:0] reslice
// anywhere in the function — the scratch-buffer reuse idiom appends into
// these without growing past their preallocated capacity.
func reuseBuffers(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	reuse := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isZeroReslice(rhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				reuse[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				reuse[obj] = true
			}
		}
		return true
	})
	return reuse
}

// appendsIntoReuse reports whether the append destination is a sanctioned
// reuse buffer: a direct buf[:0] reslice, an identifier assigned from one,
// or a chained append into such an identifier.
func appendsIntoReuse(info *types.Info, dst ast.Expr, reuse map[types.Object]bool) bool {
	if isZeroReslice(dst) {
		return true
	}
	id, ok := dst.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return reuse[obj]
}

// isZeroReslice reports whether expr is x[:0] (or x[0:0]).
func isZeroReslice(expr ast.Expr) bool {
	se, ok := expr.(*ast.SliceExpr)
	if !ok || se.Slice3 {
		return false
	}
	if se.Low != nil && !isZeroLit(se.Low) {
		return false
	}
	return se.High != nil && isZeroLit(se.High)
}

func isZeroLit(expr ast.Expr) bool {
	lit, ok := expr.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
