package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc guards the zero-allocation guarantee of the delivery hot path
// (BENCH_sinr.json: 0 allocs/op in every engine). Functions annotated with
// //crlint:hotpath in their doc comment — the Deliver family and its
// scratch-buffer helpers — may not contain explicit allocation sites:
//
//   - make/new calls,
//   - append into anything other than a scratch buffer resliced to [:0]
//     (growth would allocate; the [:0] reuse idiom is the sanctioned way to
//     fill a preallocated buffer),
//   - closure literals (captures escape to the heap),
//   - slice/map composite literals and &composite expressions,
//   - conversions that produce a fresh slice ([]byte(s), ...).
//
// The check covers explicit allocation sites only; escape-analysis effects
// (interface conversions in variadic calls, etc.) remain the benchmarks'
// job via testing.AllocsPerRun regressions.
var HotAlloc = &Analyzer{
	Name:          "hotalloc",
	Doc:           "forbid allocation sites in functions annotated //crlint:hotpath",
	SkipTestFiles: true,
	Run:           hotalloc,
}

func hotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotpath(fd) {
				continue
			}
			checkHotpath(pass, fd)
		}
	}
	return nil
}

func checkHotpath(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	reuse := reuseBuffers(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "make"):
				pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) calls make, which allocates every call; preallocate scratch buffers at construction time")
			case isBuiltin(info, n.Fun, "new"):
				pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) calls new, which allocates every call; preallocate at construction time")
			case isBuiltin(info, n.Fun, "append") && len(n.Args) > 0:
				if !appendsIntoReuse(info, n.Args[0], reuse) {
					pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) append may grow and allocate; append into a preallocated scratch buffer resliced to [:0]")
				}
			default:
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if t := info.TypeOf(n); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) conversion allocates a fresh slice")
						}
					}
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) closure literal allocates (captured variables escape); hoist it out of the hot path")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) &composite literal allocates; reuse a preallocated value")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "hot path (//crlint:hotpath) slice/map literal allocates; reuse a preallocated buffer")
				}
			}
		}
		return true
	})
}

// reuseBuffers collects the objects assigned from a [...][:0] reslice
// anywhere in the function — the scratch-buffer reuse idiom appends into
// these without growing past their preallocated capacity.
func reuseBuffers(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	reuse := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isZeroReslice(rhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				reuse[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				reuse[obj] = true
			}
		}
		return true
	})
	return reuse
}

// appendsIntoReuse reports whether the append destination is a sanctioned
// reuse buffer: a direct buf[:0] reslice, an identifier assigned from one,
// or a chained append into such an identifier.
func appendsIntoReuse(info *types.Info, dst ast.Expr, reuse map[types.Object]bool) bool {
	if isZeroReslice(dst) {
		return true
	}
	id, ok := dst.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return reuse[obj]
}

// isZeroReslice reports whether expr is x[:0] (or x[0:0]).
func isZeroReslice(expr ast.Expr) bool {
	se, ok := expr.(*ast.SliceExpr)
	if !ok || se.Slice3 {
		return false
	}
	if se.Low != nil && !isZeroLit(se.Low) {
		return false
	}
	return se.High != nil && isZeroLit(se.High)
}

func isZeroLit(expr ast.Expr) bool {
	lit, ok := expr.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
