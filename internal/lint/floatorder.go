package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder generalizes maporder's floating-point sink to sort-free
// reductions: float addition is not associative, so the repository fixes
// ascending-index summation as the canonical order (DESIGN.md §8 — the
// far-field pruning path re-sorts its survivor set to restore exactly this
// order). Two accumulation shapes violate it:
//
//   - a compound float accumulation inside a descending for loop, driven by
//     the descending variable: the sum visits values in reverse index
//     order, so it differs from the ascending reference even though each
//     run is internally deterministic;
//   - a compound float accumulation fed from a channel receive (directly,
//     or via a `for v := range ch` loop): with more than one sender the
//     arrival order is scheduling-dependent, so the sum varies run to run.
//     Collect per-worker partial sums instead and merge them in fixed
//     worker order — the Welford-merge idiom internal/runner uses.
//
// Accumulators declared inside the loop itself are per-iteration and
// order-insensitive; integer accumulation is associative and always legal.
var FloatOrder = &Analyzer{
	Name:          "floatorder",
	Doc:           "flag floating-point accumulation fed from descending loops or channel receives, which breaks ascending-order summation",
	SkipTestFiles: true,
	Run:           floatorder,
}

func floatorder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFloatOrder(pass, fd)
		}
	}
	return nil
}

func checkFloatOrder(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || !floatAccumulation(info, as) {
			stack = append(stack, n)
			return true
		}
		mentioned := stmtObjs(info, as)
		if receivesFromChannel(info, as) {
			pass.Reportf(as.Pos(), "floating-point accumulation from a channel receive depends on goroutine scheduling order; accumulate per-worker partial sums and merge them in fixed worker order (or //crlint:allow floatorder <reason>)")
		} else {
			for i := len(stack) - 1; i >= 0; i-- {
				loop, ok := stack[i].(ast.Stmt)
				if !ok {
					continue
				}
				switch l := stack[i].(type) {
				case *ast.ForStmt:
					v := descendingVar(info, l)
					if v != nil && mentioned[v] && !accumulatorLocal(info, as, loop) {
						pass.Reportf(as.Pos(), "floating-point accumulation driven by the descending loop on line %d sums in reverse index order; the determinism contract fixes ascending-index summation — iterate ascending (or //crlint:allow floatorder <reason>)", pass.Fset.Position(l.Pos()).Line)
						i = 0
					}
				case *ast.RangeStmt:
					if chanValueVar(info, l, mentioned) && !accumulatorLocal(info, as, loop) {
						pass.Reportf(as.Pos(), "floating-point accumulation from a channel receive depends on goroutine scheduling order; accumulate per-worker partial sums and merge them in fixed worker order (or //crlint:allow floatorder <reason>)")
						i = 0
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// stmtObjs collects every object mentioned anywhere in the assignment.
func stmtObjs(info *types.Info, as *ast.AssignStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range as.Lhs {
		for o := range exprObjs(info, e) {
			objs[o] = true
		}
	}
	for _, e := range as.Rhs {
		for o := range exprObjs(info, e) {
			objs[o] = true
		}
	}
	return objs
}

// receivesFromChannel reports whether any right-hand side contains a <-ch
// receive expression.
func receivesFromChannel(info *types.Info, as *ast.AssignStmt) bool {
	found := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// descendingVar returns the loop variable of a descending for loop (post
// statement i-- or i -= ...), or nil.
func descendingVar(info *types.Info, fs *ast.ForStmt) types.Object {
	var target ast.Expr
	switch post := fs.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok == token.DEC {
			target = post.X
		}
	case *ast.AssignStmt:
		if post.Tok == token.SUB_ASSIGN && len(post.Lhs) == 1 {
			target = post.Lhs[0]
		}
	}
	root := rootIdent(target)
	if root == nil {
		return nil
	}
	if obj := info.Uses[root]; obj != nil {
		return obj
	}
	return info.Defs[root]
}

// chanValueVar reports whether rs ranges over a channel and the received
// value variable is among the mentioned objects.
func chanValueVar(info *types.Info, rs *ast.RangeStmt, mentioned map[types.Object]bool) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	return obj != nil && mentioned[obj]
}

// accumulatorLocal reports whether every accumulated left-hand side is
// declared inside the loop — a per-iteration temporary, reset each pass and
// therefore order-insensitive across iterations.
func accumulatorLocal(info *types.Info, as *ast.AssignStmt, loop ast.Stmt) bool {
	for _, lhs := range as.Lhs {
		root := rootIdent(lhs)
		if root == nil {
			return false
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		if obj == nil || obj.Pos() < loop.Pos() || obj.Pos() >= loop.End() {
			return false
		}
	}
	return true
}
