package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder enforces deterministic iteration order: Go randomizes map
// iteration, so a `for range` over a map whose body feeds anything
// order-sensitive — output streams, slices built up across iterations,
// floating-point accumulation (non-associative), random-number streams, or
// an early return of a loop-dependent value — produces run-to-run
// differences even under a fixed seed. Such loops must iterate over sorted
// keys instead.
//
// The check is local to the loop body (it does not chase the call graph);
// the recognized sinks are exactly the ways nondeterminism has bitten or
// can bite the result paths of this repository. Two idioms stay legal
// without a directive: order-insensitive bodies (integer counting, writing
// into another map, membership tests), and the collect-then-sort idiom where
// the body only appends keys to a slice that is later passed to a
// sort/slices sorting call in the same function.
var MapOrder = &Analyzer{
	Name:          "maporder",
	Doc:           "flag map iteration whose body reaches output, aggregation, or rng consumption without sorting keys first",
	SkipTestFiles: true,
	Run:           maporder,
}

func maporder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if sink := mapRangeSink(pass, fd, rs); sink != "" {
					pass.Reportf(rs.Pos(), "map iteration order is randomized and this loop %s; iterate over sorted keys (or //crlint:allow maporder <reason>)", sink)
				}
				return true
			})
		}
	}
	return nil
}

// mapRangeSink returns a description of the first order-sensitive operation
// in the loop body, or "" if the body is order-insensitive.
func mapRangeSink(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) string {
	info := pass.TypesInfo
	loopObjs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopObjs[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				loopObjs[obj] = true
			}
		}
	}
	isLocal := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}

	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n.Fun, "append") && len(n.Args) > 0 {
				root := rootIdent(n.Args[0])
				if root == nil {
					return true
				}
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if isLocal(obj) {
					return true
				}
				if sortedLater(pass, fd, rs, obj) {
					return true
				}
				sink = fmt.Sprintf("appends to %s in visit order", root.Name)
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn := pkgFunc(info, sel.Sel); fn != nil {
					switch {
					case fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
						sink = fmt.Sprintf("writes output via fmt.%s", fn.Name())
						return false
					case fn.Pkg().Name() == "xrand":
						sink = fmt.Sprintf("consumes a random stream via xrand.%s", fn.Name())
						return false
					}
				}
				if m := method(info, sel.Sel); m != nil {
					if rngMethod(m) {
						sink = fmt.Sprintf("consumes a random stream via %s", m.Name())
						return false
					}
					if writerMethod(m.Name()) {
						sink = fmt.Sprintf("writes output via %s", m.Name())
						return false
					}
				}
			}
		case *ast.AssignStmt:
			if floatAccumulation(info, n) {
				for _, lhs := range n.Lhs {
					if root := rootIdent(lhs); root != nil {
						obj := info.Uses[root]
						if obj == nil {
							obj = info.Defs[root]
						}
						if !isLocal(obj) {
							sink = "accumulates floating-point values (addition is not associative, so the sum depends on visit order)"
							return false
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for obj := range exprObjs(info, res) {
					if loopObjs[obj] || isLocal(obj) {
						sink = "returns a value that depends on which key is visited first"
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

// rngMethod reports whether m is a method of math/rand/v2.Rand or of
// internal/xrand's Reseedable — i.e. a call that consumes a random stream.
func rngMethod(m *types.Func) bool {
	pkgPath, typeName := recvTypeName(m)
	if pkgPath == "math/rand/v2" && typeName == "Rand" {
		return true
	}
	return strings.HasSuffix(pkgPath, xrandPkgSuffix) && typeName == "Reseedable"
}

// writerMethod reports whether the method name is a conventional stream
// output call (io.Writer, strings.Builder, bytes.Buffer, tabwriter, ...).
func writerMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println":
		return true
	}
	return false
}

// floatAccumulation reports whether the assignment compounds (+= -= *= /=)
// into a floating-point location.
func floatAccumulation(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	for _, lhs := range as.Lhs {
		t := info.TypeOf(lhs)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return true
		}
	}
	return false
}

// sortedLater reports whether obj (a slice the loop appends to) is passed to
// a sort.*/slices.Sort* call positioned after the loop in the same function
// — the sanctioned collect-then-sort idiom.
func sortedLater(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	info := pass.TypesInfo
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pkgFunc(info, sel.Sel)
		if fn == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if pkg == "slices" && !strings.HasPrefix(fn.Name(), "Sort") {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && info.Uses[root] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
