// Package lint implements crlint, the repository's static-analysis suite.
//
// The reproduction's headline claims (Theorem 1 / Theorem 12 statistics,
// baseline comparisons) rest on bit-identical reruns: identical seeds must
// yield identical executions. DESIGN.md states the contracts — all randomness
// flows through internal/xrand, no wall-clock reads in simulation logic,
// deterministic iteration and summation order, zero allocations on the
// delivery hot path — and this package enforces them mechanically on every
// build instead of by convention.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, analysistest-style fixtures under
// testdata/src/...) so the analyzers port to the upstream driver verbatim if
// that dependency ever becomes available; it is implemented on the standard
// library alone (go/ast, go/types, go/importer) because the build
// environment is offline.
//
// # Directives
//
// Three comment directives tune the suite:
//
//	//crlint:allow <rule> <reason...>
//	//crlint:hotpath
//	//crlint:spechash
//
// An allow directive on the offending line, or on the line directly above
// it, suppresses diagnostics of the named rule at that site; the reason is
// mandatory so every exemption is justified in the source, and an allow
// that suppresses nothing is itself diagnosed as stale. A hotpath directive
// in a function's doc comment opts the function into the hotalloc
// analyzer's interprocedural zero-allocation checks; a spechash directive
// in a struct's doc comment opts it into the spechash analyzer's
// canonical-hash field discipline.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, self-contained check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// SkipTestFiles excludes _test.go files from the analyzer. Checks that
	// guard simulation logic (map order, seed reuse, hot-path allocations)
	// skip tests; checks that guard reproducibility of every run (xrandonly)
	// do not.
	SkipTestFiles bool
	// Run performs the check over one package, reporting findings through
	// the pass.
	Run func(*Pass) error
}

// All returns the full analyzer registry in stable order. The driver,
// `go vet -vettool` flag discovery, and directive validation all derive from
// this list.
func All() []*Analyzer {
	return []*Analyzer{XRandOnly, NoWallClock, MapOrder, SeedSplit, HotAlloc, PartWrite, FloatOrder, SpecHash}
}

// A Package is one type-checked compilation unit ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path, possibly with a " [test-variant]" suffix
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// A Pass carries one analyzer's view of one package, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkgPath  string
	suppress *directiveIndex
	diags    *[]Diagnostic
}

// PkgPath returns the canonical import path of the package under analysis:
// the unit's path with any " [test-variant]" suffix (as produced by
// `go vet` and `go list -test`) stripped.
func (p *Pass) PkgPath() string {
	if i := strings.IndexByte(p.pkgPath, ' '); i >= 0 {
		return p.pkgPath[:i]
	}
	return p.pkgPath
}

// Reportf records a diagnostic at pos unless an allow directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the package and returns the surviving
// diagnostics in deterministic (position, rule) order. Malformed crlint
// directives are reported under the pseudo-rule "directive" regardless of
// which analyzers run: a typo in an escape hatch must never silently widen
// it. Allow directives that suppressed nothing are reported as stale under
// the same pseudo-rule — but only for rules whose analyzer actually ran in
// this invocation, so running a subset of analyzers never misreports the
// other rules' exemptions.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	idx := collectDirectives(pkg, &diags)
	for _, a := range analyzers {
		files := pkg.Files
		if a.SkipTestFiles {
			files = nonTestFiles(pkg.Fset, pkg.Files)
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			pkgPath:   pkg.Path,
			suppress:  idx,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Pos:     token.Position{},
				Rule:    a.Name,
				Message: fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, e := range idx.entries {
		if ran[e.rule] && !e.used {
			diags = append(diags, Diagnostic{
				Pos:     e.pos,
				Rule:    "directive",
				Message: fmt.Sprintf("crlint:allow %s suppresses no diagnostic; delete the stale directive", e.rule),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// IsTestFile reports whether the file the position belongs to is a _test.go
// file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// --- directives ---

// HotpathDirective is the doc-comment directive marking a function for
// hotalloc's zero-allocation checks.
const HotpathDirective = "//crlint:hotpath"

// IsHotpath reports whether the function declaration carries a
// //crlint:hotpath directive in its doc comment.
func IsHotpath(decl *ast.FuncDecl) bool {
	return hasDirective(decl.Doc, HotpathDirective)
}

type fileLine struct {
	file string
	line int
}

// allowEntry is one well-formed crlint:allow directive; used tracks whether
// it suppressed at least one diagnostic, for stale-exemption reporting.
type allowEntry struct {
	pos  token.Position
	rule string
	used bool
}

// directiveIndex maps (file, line) to the allow entries registered there.
type directiveIndex struct {
	allow   map[fileLine]map[string]*allowEntry
	entries []*allowEntry // collection order, for deterministic stale reports
}

// allows reports whether a well-formed allow directive for rule sits on the
// diagnostic's line or on the line directly above it, marking the directive
// as used.
func (idx *directiveIndex) allows(rule string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if e := idx.allow[fileLine{pos.Filename, line}][rule]; e != nil {
			e.used = true
			return true
		}
	}
	return false
}

// collectDirectives indexes every //crlint: comment in the package and
// appends a diagnostic for each malformed one. Only comments with the exact
// `//crlint:` prefix (no space, per Go directive convention) are directives.
func collectDirectives(pkg *Package, diags *[]Diagnostic) *directiveIndex {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	idx := &directiveIndex{allow: map[fileLine]map[string]*allowEntry{}}
	report := func(pos token.Pos, format string, args ...any) {
		*diags = append(*diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Rule:    "directive",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, "//crlint:") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, "//"))
				switch fields[0] {
				case "crlint:hotpath", "crlint:spechash":
					// Validity is positional (doc comment of a FuncDecl or
					// struct TypeSpec); the analyzers ignore misplaced ones.
				case "crlint:allow":
					if len(fields) < 2 {
						report(c.Pos(), "crlint:allow needs a rule name and a reason, e.g. //crlint:allow nowallclock progress reporting")
						continue
					}
					rule := fields[1]
					if !known[rule] {
						report(c.Pos(), "crlint:allow names unknown rule %q (known: %s)", rule, strings.Join(ruleNames(), ", "))
						continue
					}
					if len(fields) < 3 {
						report(c.Pos(), "crlint:allow %s needs a justification after the rule name", rule)
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fileLine{pos.Filename, pos.Line}
					if idx.allow[key] == nil {
						idx.allow[key] = map[string]*allowEntry{}
					}
					e := &allowEntry{pos: pos, rule: rule}
					idx.allow[key][rule] = e
					idx.entries = append(idx.entries, e)
				default:
					report(c.Pos(), "unknown crlint directive %q (known: crlint:allow, crlint:hotpath, crlint:spechash)", fields[0])
				}
			}
		}
	}
	return idx
}

func ruleNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// --- shared type-resolution helpers ---

// pkgFunc resolves id to the package-level function it uses, or nil if it is
// anything else (a method, a type, a variable, ...).
func pkgFunc(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// method resolves id to the method it uses, or nil.
func method(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil
	}
	return fn
}

// recvTypeName returns the package path and type name of a method's
// receiver, dereferencing one pointer.
func recvTypeName(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return pkgPath, obj.Name()
}

// isBuiltin reports whether id resolves to the named builtin.
func isBuiltin(info *types.Info, expr ast.Expr, name string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x[i], x.f[i].g, *x, ...), or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// exprObjs collects the objects of every identifier mentioned in expr.
func exprObjs(info *types.Info, expr ast.Expr) map[types.Object]bool {
	objs := map[types.Object]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				objs[obj] = true
			}
			if obj := info.Defs[id]; obj != nil {
				objs[obj] = true
			}
		}
		return true
	})
	return objs
}
