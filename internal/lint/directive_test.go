package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"fadingcr/internal/lint"
)

func typeCheckSource(t *testing.T, src string) (*lint.Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	imp := lint.ExportImporter(fset, func(path string) (string, error) {
		return "", fmt.Errorf("fixture must not import anything, got %q", path)
	})
	pkg, err := lint.TypeCheck(fset, "fixture", []*ast.File{f}, imp, "")
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	return pkg, fset
}

// Malformed //crlint: directives are diagnosed under the pseudo-rule
// "directive" regardless of which analyzers run.
func TestDirectiveValidation(t *testing.T) {
	const src = `package fixture

func f() int {
	//crlint:allow
	//crlint:allow nowallclock
	//crlint:allow nosuchrule because reasons
	//crlint:frobnicate
	return 0
}
`
	pkg, _ := typeCheckSource(t, src)
	diags := lint.Run(pkg, lint.All())
	wants := []struct {
		line int
		frag string
	}{
		{4, "needs a rule name and a reason"},
		{5, "crlint:allow nowallclock needs a justification"},
		{6, `unknown rule "nosuchrule"`},
		{7, `unknown crlint directive "crlint:frobnicate"`},
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		d := diags[i]
		if d.Rule != "directive" {
			t.Errorf("diag %d: rule = %q, want \"directive\"", i, d.Rule)
		}
		if d.Pos.Line != w.line {
			t.Errorf("diag %d: line = %d, want %d", i, d.Pos.Line, w.line)
		}
		if !strings.Contains(d.Message, w.frag) {
			t.Errorf("diag %d: message %q does not contain %q", i, d.Message, w.frag)
		}
	}
}

// A well-formed allow directive on the line directly above the offending
// statement suppresses exactly that rule; an identical loop without the
// directive is still reported.
func TestAllowDirectivePlacement(t *testing.T) {
	const src = `package fixture

func suppressed(m map[string]int) string {
	//crlint:allow maporder unit test for directive placement
	for k := range m {
		return k
	}
	return ""
}

func unsuppressed(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
`
	pkg, _ := typeCheckSource(t, src)
	diags := lint.Run(pkg, lint.All())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed loop:\n%v", len(diags), diags)
	}
	if diags[0].Rule != "maporder" || diags[0].Pos.Line != 12 {
		t.Errorf("got %v, want maporder diagnostic on line 12", diags[0])
	}
}
