package maporder

import (
	"fmt"
	"sort"
	"strings"

	"fadingcr/internal/xrand"
)

func printsUnsorted(m map[string]int) {
	for k, v := range m { // want `writes output via fmt.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func appendsUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys in visit order`
		keys = append(keys, k)
	}
	return keys
}

// The sanctioned collect-then-sort idiom: the slice is sorted before anyone
// can observe the visit order.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `accumulates floating-point`
		sum += v
	}
	return sum
}

// Integer counting is order-insensitive.
func intCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Writing into another map is order-insensitive: maps have no order to leak.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func consumesRNG(m map[string]bool, rng *xrand.Reseedable) int {
	hits := 0
	for k := range m { // want `consumes a random stream`
		if xrand.Bernoulli(rng.Rand, 0.5) && k != "" {
			hits++
		}
	}
	return hits
}

func earlyReturn(m map[string]int) string {
	for k := range m { // want `returns a value that depends on which key`
		return k
	}
	return ""
}

func buildsString(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `writes output via WriteString`
		sb.WriteString(k)
	}
}

func escapeHatch(m map[string]int) {
	//crlint:allow maporder fixture exercising the escape hatch
	for k := range m {
		fmt.Println(k)
	}
}
