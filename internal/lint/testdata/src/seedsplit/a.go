package seedsplit

import "fadingcr/internal/xrand"

func reusesSeed(seed uint64) {
	a := xrand.New(seed)
	b := xrand.New(seed) // want `seed expression seed is reused from the xrand.New call`
	_, _ = a, b
}

// Deriving distinct child seeds with Split is the sanctioned pattern.
func distinctSeeds(seed uint64) {
	a := xrand.New(xrand.Split(seed, 0))
	b := xrand.New(xrand.Split(seed, 1))
	_, _ = a, b
}

func reusesDerivedSeed(seed uint64) {
	a := xrand.New(xrand.Split(seed, 1))
	b := xrand.New(xrand.Split(seed, 1)) // want `is reused from the xrand.New call`
	_, _ = a, b
}

func reseedToSameStream(seed uint64) *xrand.Reseedable {
	r := xrand.NewReseedable(seed)
	r.Reseed(seed) // want `seed expression seed is reused from the xrand.NewReseedable call`
	return r
}

func invariantInLoop(seed uint64, n int) uint64 {
	acc := uint64(0)
	for i := 0; i < n; i++ {
		rng := xrand.New(seed) // want `seed seed does not vary across iterations`
		acc += rng.Uint64()
	}
	return acc
}

// Per-iteration child seeds vary with the loop variable: fine.
func variesInLoop(seed uint64, n int) uint64 {
	acc := uint64(0)
	for i := 0; i < n; i++ {
		rng := xrand.New(xrand.Split(seed, uint64(i)))
		acc += rng.Uint64()
	}
	return acc
}

func escapeHatch(seed uint64) bool {
	a := xrand.New(seed)
	b := xrand.New(seed) //crlint:allow seedsplit fixture intentionally compares identical streams
	return a.Uint64() == b.Uint64()
}
