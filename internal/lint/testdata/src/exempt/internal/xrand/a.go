// Package xrand is a fixture standing in for the real seed-derivation layer:
// any package whose import path ends in internal/xrand may construct raw
// math/rand/v2 generators, so nothing in this file is flagged.
package xrand

import "math/rand/v2"

func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
