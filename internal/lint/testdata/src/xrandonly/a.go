package xrandonly

import (
	oldrand "math/rand" // want `math/rand \(v1\) is banned`
	"math/rand/v2"

	"fadingcr/internal/xrand"
)

// v1 use so the import compiles; the import line above carries the finding.
var legacy = oldrand.Int

func direct() int {
	rng := rand.New(rand.NewPCG(1, 2)) // want `math/rand/v2.New bypasses` `math/rand/v2.NewPCG bypasses`
	return rng.IntN(10)
}

func global() int {
	return rand.IntN(10) // want `math/rand/v2.IntN bypasses`
}

// Methods on an already-constructed generator are fine: it was necessarily
// built, and therefore seeded, by internal/xrand.
func methods(rng *rand.Rand) float64 {
	return rng.Float64()
}

func viaXrand() int {
	return xrand.New(7).IntN(10)
}

func escapeHatch() *rand.Rand {
	return rand.New(rand.NewPCG(3, 4)) //crlint:allow xrandonly fixture exercising the escape hatch
}
