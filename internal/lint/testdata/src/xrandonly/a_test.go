package xrandonly

import "math/rand/v2"

// Unlike the rest of the suite, xrandonly covers _test.go files too: a
// wall-clock-seeded test is nondeterministic in exactly the way the seed
// contract forbids.
func shuffleForTests(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand/v2.Shuffle bypasses`
}
