package spechash

// Positive: a field without omitempty silently changes legacy hashes when
// added, and an untagged field marshals under its Go name.

//crlint:spechash
type BadSpec struct {
	Name  string `json:"name,omitempty"`
	Count int    `json:"count"` // want `exported field BadSpec.Count needs a json tag with omitempty`
	Extra bool   // want `exported field BadSpec.Extra needs a json tag with omitempty`
	Skip  string `json:"-"`
	inner int
}

var badSpecHashFields = []string{"name", "count", "Extra", "stale"} // want `names "stale", which is not serialized by BadSpec`

// Positive: an annotated struct with no canonical-hash field list at all.

//crlint:spechash
type NoListSpec struct { // want `has no canonical-hash field list`
	A int `json:"a,omitempty"`
}

// Positive: a serialized field missing from the list.

//crlint:spechash
type MissingFieldSpec struct {
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
}

var missingFieldSpecHashFields = []string{"a"} // want `does not name serialized field\(s\) "b" of MissingFieldSpec`

// Negative: a compliant struct — omitempty everywhere except an explicitly
// allowed required field, a complete field list, and json:"-" exclusions.

//crlint:spechash
type GoodSpec struct {
	Kind string `json:"kind,omitempty"`
	//crlint:allow spechash seed is always serialized; omitempty would change legacy hashes
	Seed    uint64 `json:"seed"`
	N       int    `json:"n,omitempty"`
	scratch []byte
	Cache   map[string]string `json:"-"`
}

var goodSpecHashFields = []string{"kind", "seed", "n"}

// Negative: unannotated structs owe spechash nothing.
type Plain struct {
	X int `json:"x"`
}

func use() (BadSpec, NoListSpec, MissingFieldSpec, GoodSpec, Plain, [][]string) {
	return BadSpec{inner: 0}, NoListSpec{}, MissingFieldSpec{}, GoodSpec{scratch: nil}, Plain{},
		[][]string{badSpecHashFields, missingFieldSpecHashFields, goodSpecHashFields}
}
