package floatorder

// Positive: a descending loop sums in reverse index order, diverging from
// the ascending-index reference sum.
func badDescending(xs []float64) float64 {
	sum := 0.0
	for i := len(xs) - 1; i >= 0; i-- {
		sum += xs[i] // want `descending loop`
	}
	return sum
}

// Positive: i -= step descends too.
func badDescendingStep(xs []float64) float64 {
	sum := 0.0
	for i := len(xs) - 1; i >= 0; i -= 2 {
		sum += xs[i] // want `descending loop`
	}
	return sum
}

// Positive: accumulation over channel receives depends on goroutine
// scheduling order.
func badChannelRange(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		total += v // want `channel receive`
	}
	return total
}

// Positive: a direct receive in the accumulation is the same bug.
func badDirectReceive(ch chan float64) float64 {
	var sum float64
	for i := 0; i < 4; i++ {
		sum += <-ch // want `channel receive`
	}
	return sum
}

// Negative: ascending-index summation is the contract's canonical order.
func goodAscending(xs []float64) float64 {
	sum := 0.0
	for i := 0; i < len(xs); i++ {
		sum += xs[i]
	}
	return sum
}

// Negative: integer accumulation is associative; arrival order is harmless.
func goodIntChannel(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Negative: a descending loop whose accumulation ignores the loop variable
// adds the same value every pass — order-insensitive.
func goodDescendingConstant(n int) float64 {
	sum := 0.0
	for i := n; i > 0; i-- {
		sum += 0.5
	}
	return sum
}

// Negative: a per-iteration accumulator declared inside the loop resets
// every pass, so cross-iteration order cannot leak into it.
func goodLocalAccumulator(xs []float64, out []float64) {
	for i := len(xs) - 1; i >= 0; i-- {
		v := 1.0
		v *= xs[i]
		out[i] = v
	}
}

// The escape hatch documents a deliberate exception.
func escapeHatch(xs []float64) float64 {
	sum := 0.0
	for i := len(xs) - 1; i >= 0; i-- {
		sum += xs[i] //crlint:allow floatorder fixture exercising the escape hatch
	}
	return sum
}
