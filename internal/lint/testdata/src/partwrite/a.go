package partwrite

import "sync"

// Positive: a write into a fixed cell shared by every goroutine the loop
// launches — last writer wins.
func badShared(n int, out []int) {
	for w := 0; w < n; w++ {
		go func() {
			out[0] = w // want `write to captured out inside a goroutine launched in a loop is not partitioned`
		}()
	}
}

// Positive: a non-atomic counter bump on captured state.
func badCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want `non-atomic update of captured total`
		}()
	}
	wg.Wait()
	return total
}

// Positive: compound accumulation races the same way.
func badAccumulate(n int, sum *float64, xs []float64) {
	for w := 0; w < n; w++ {
		go func(w int) {
			*sum += xs[w] // want `non-atomic update of captured sum`
		}(w)
	}
}

// Positive: concurrent map writes fault regardless of key partitioning.
func badMap(n int, m map[int]int) {
	for w := 0; w < n; w++ {
		go func(w int) {
			m[w] = w * w // want `write to captured map m inside a goroutine launched in a loop is a concurrent map write`
		}(w)
	}
}

// Negative: the canonical worker-pool shape — each goroutine writes only
// the cell indexed by its own worker parameter (tile t → worker t mod W).
func goodPartition(workers int, out []int) {
	for w := 0; w < workers; w++ {
		go func(w int) {
			out[w] = w * w
		}(w)
	}
}

// Negative: Go ≥1.22 gives each iteration its own loop variable, so the
// captured index is goroutine-owned.
func goodLoopVar(out []int) {
	for i := range out {
		go func() {
			out[i] = i * i
		}()
	}
}

// Negative: an index received from a channel inside the goroutine is
// goroutine-owned — the work-stealing shape internal/runner uses.
func goodChannelIndex(out []float64, idx chan int) {
	for w := 0; w < 4; w++ {
		go func() {
			for i := range idx {
				out[i] = float64(i)
			}
		}()
	}
}

// Negative: a single goroutine launched outside any loop (the
// wait-then-close join idiom) has no concurrent siblings.
func goodJoin(wg *sync.WaitGroup, done chan struct{}, flag *bool) {
	go func() {
		wg.Wait()
		*flag = true
		close(done)
	}()
}

// Negative: a mutex-guarded closure is left to the race detector.
func goodLocked(n int, mu *sync.Mutex, total *int) {
	for w := 0; w < n; w++ {
		go func() {
			mu.Lock()
			*total += 1
			mu.Unlock()
		}()
	}
}

// Negative: channel sends are the sanctioned way out of a goroutine.
func goodChannelSend(n int, results chan int) {
	for w := 0; w < n; w++ {
		go func(w int) {
			results <- w * w
		}(w)
	}
}

// The escape hatch documents a deliberate exception.
func escapeHatch(n int, out []int) {
	for w := 0; w < n; w++ {
		go func() {
			out[0]++ //crlint:allow partwrite fixture exercising the escape hatch
		}()
	}
}
