package nowallclock

import "time"

// Test files may time things freely: nowallclock skips them, so the call
// below carries no want comment.
func timerForTests() time.Time {
	return time.Now()
}
