package nowallclock

import "time"

func reads() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func times(t0 time.Time) time.Duration {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Since(t0)        // want `time.Since reads the wall clock`
}

// Pure time construction and arithmetic stay legal.
func pure() time.Time {
	return time.Date(2016, time.July, 25, 0, 0, 0, 0, time.UTC).Add(3 * time.Second)
}

func escapeHatch() time.Time {
	return time.Now() //crlint:allow nowallclock fixture timing site
}
