package nowallclock

import (
	"context"
	"time"
)

func reads() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func times(t0 time.Time) time.Duration {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Since(t0)        // want `time.Since reads the wall clock`
}

// Pure time construction and arithmetic stay legal.
func pure() time.Time {
	return time.Date(2016, time.July, 25, 0, 0, 0, 0, time.UTC).Add(3 * time.Second)
}

func escapeHatch() time.Time {
	return time.Now() //crlint:allow nowallclock fixture timing site
}

// Timer constructors depend on the wall/monotonic clock exactly like Now.
func timers(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want `time.NewTicker reads the wall clock`
	defer t.Stop()
	select {
	case <-time.After(time.Millisecond): // want `time.After reads the wall clock`
	case <-stop:
	}
	time.AfterFunc(time.Second, func() {}) // want `time.AfterFunc reads the wall clock`
}

// Context deadline helpers arm a wall-clock timer behind the context.
func deadlines(ctx context.Context, t time.Time) {
	c1, cancel1 := context.WithTimeout(ctx, time.Second) // want `context.WithTimeout arms a wall-clock deadline`
	defer cancel1()
	c2, cancel2 := context.WithDeadline(c1, t) // want `context.WithDeadline arms a wall-clock deadline`
	defer cancel2()
	_ = c2
	// Plain cancellation is clock-free and stays legal.
	c3, cancel3 := context.WithCancel(ctx)
	defer cancel3()
	_ = c3
}

// An allow that suppresses nothing is itself diagnosed as stale.
func pureWithStaleAllow() time.Time {
	//crlint:allow nowallclock nothing here reads the clock // want `suppresses no diagnostic`
	return time.Date(2016, time.July, 25, 0, 0, 0, 0, time.UTC)
}
