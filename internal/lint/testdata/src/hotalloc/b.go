package hotalloc

// Transitive cases: //crlint:hotpath constraints propagate through
// unannotated same-package helpers via the call graph, reporting the full
// chain at the hot path's call site.

import (
	"time"

	"fadingcr/internal/xrand"
)

func allocHelper(n int) []int {
	return make([]int, n)
}

func viaHelper(n int) []int {
	return allocHelper(n)
}

//crlint:hotpath
func badChain(n int) []int {
	return viaHelper(n) // want `reaches an allocation via call chain badChain → viaHelper → allocHelper: make call`
}

func readsClock() time.Time {
	return time.Now()
}

//crlint:hotpath
func badClockChain() time.Time {
	return readsClock() // want `reaches a wall-clock read via call chain badClockChain → readsClock: time.Now call`
}

func makesRNG(seed uint64) {
	r := xrand.New(seed)
	_ = r
}

//crlint:hotpath
func badRNGChain(seed uint64) {
	makesRNG(seed) // want `reaches an rng construction via call chain badRNGChain → makesRNG: xrand.New call`
}

// Direct rng construction in a hot path is flagged without a chain.
//
//crlint:hotpath
func badDirectRNG(seed uint64) {
	r := xrand.New(seed) // want `calls xrand.New, which constructs a generator`
	_ = r
}

// A method value reference is a potential call: the chain is found even
// though sumVia never syntactically calls grow.
func (s *scratch) grow() {
	s.buf = append(s.buf, 0)
}

//crlint:hotpath
func sumVia(s *scratch) func() {
	return s.grow // want `reaches an allocation via call chain sumVia → scratch.grow: growing append`
}

// Negative: a pure helper chain stays silent.
func pureHelper(s *scratch, xs []int) []int {
	out := s.buf[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//crlint:hotpath
func goodChain(s *scratch, xs []int) []int {
	return pureHelper(s, xs)
}

// Negative: a callee that is itself annotated //crlint:hotpath is checked
// at its own declaration and not re-reported through callers.
//
//crlint:hotpath
func callsAnnotated(n int) []int {
	return badMake(n)
}
