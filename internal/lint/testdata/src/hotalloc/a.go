package hotalloc

type scratch struct {
	buf []int
}

//crlint:hotpath
func badMake(n int) []int {
	return make([]int, n) // want `calls make`
}

//crlint:hotpath
func badAppend(dst, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x) // want `append may grow and allocate`
	}
	return dst
}

// The sanctioned reuse idiom: append into a preallocated buffer resliced to
// [:0] never grows past its capacity.
//
//crlint:hotpath
func goodReuse(s *scratch, xs []int) []int {
	out := s.buf[:0]
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	s.buf = out
	return out
}

//crlint:hotpath
func badClosure(xs []int) int {
	total := 0
	add := func(x int) { total += x } // want `closure literal allocates`
	for _, x := range xs {
		add(x)
	}
	return total
}

//crlint:hotpath
func badLiterals() []int {
	return []int{1, 2, 3} // want `slice/map literal allocates`
}

//crlint:hotpath
func badPointerLit() *scratch {
	return &scratch{} // want `&composite literal allocates`
}

//crlint:hotpath
func badConversion(s string) []byte {
	return []byte(s) // want `conversion allocates a fresh slice`
}

// Not annotated: cold-path code allocates freely.
func coldPath(n int) []int {
	out := make([]int, 0, n)
	return append(out, n)
}
