package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// xrandPkgSuffix identifies the one package allowed to construct raw
// math/rand/v2 generators: the seed-derivation layer itself.
const xrandPkgSuffix = "internal/xrand"

// XRandOnly enforces the seed-derivation contract (DESIGN.md §8): every
// random stream in the repository is built by internal/xrand from an
// explicit seed. math/rand v1 is forbidden outright (its global generator is
// seeded from the wall clock), and outside internal/xrand no code may call
// math/rand/v2 package-level functions — neither the constructors (New,
// NewPCG, NewChaCha8, ...) nor the convenience functions (IntN, Float64,
// ...) that consume the runtime-seeded global stream. Methods on an existing
// *rand.Rand are fine: the generator was necessarily built, and therefore
// seeded, by internal/xrand.
//
// Unlike most of the suite this analyzer also covers _test.go files:
// a wall-clock-seeded test is exactly the kind of "works on my machine"
// nondeterminism the contract exists to kill.
var XRandOnly = &Analyzer{
	Name: "xrandonly",
	Doc:  "forbid math/rand v1 and direct math/rand/v2 construction or global-stream use outside internal/xrand",
	Run:  xrandonly,
}

func xrandonly(pass *Pass) error {
	exempt := strings.HasSuffix(pass.PkgPath(), xrandPkgSuffix)
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" {
				pass.Reportf(spec.Pos(), "math/rand (v1) is banned: its global stream is wall-clock seeded; derive generators with internal/xrand")
			}
		}
		if exempt {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := pkgFunc(pass.TypesInfo, id)
			if fn == nil || fn.Pkg().Path() != "math/rand/v2" {
				return true
			}
			pass.Reportf(id.Pos(), "math/rand/v2.%s bypasses the seed-derivation contract; construct and split streams via internal/xrand", fn.Name())
			return true
		})
	}
	return nil
}
