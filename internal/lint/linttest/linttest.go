// Package linttest runs lint analyzers over fixture packages under
// testdata/src, in the style of golang.org/x/tools/go/analysis/analysistest:
// each fixture line that should trigger a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (several per line allowed), and the harness fails the test on any
// unexpected, missing, or mismatched diagnostic.
//
// Fixture packages may import the standard library and this module's own
// packages (e.g. fadingcr/internal/xrand): dependencies are resolved through
// `go list -export`, which compiles them into the build cache and hands back
// gc export data — the same pipeline crlint's drivers use.
package linttest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fadingcr/internal/lint"
)

// Run analyzes the fixture package in testdata/src/<dir> (relative to the
// calling test's working directory) with the given analyzer and compares
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	base := filepath.Join("testdata", "src", filepath.FromSlash(dir))
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("linttest: no fixture files in %s", base)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(base, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}

	resolve, err := exportResolver(imports)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := lint.TypeCheck(fset, dir, files, lint.ExportImporter(fset, resolve), "")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags := lint.Run(pkg, []*lint.Analyzer{a})
	checkExpectations(t, fset, files, diags)
}

// want is one expectation: a diagnostic on a given file line whose message
// matches the regexp.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkExpectations cross-matches diagnostics against // want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// exportCache memoizes import path → export-data file across fixtures; one
// `go list` run per new import set keeps the suite fast.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

// exportResolver returns a resolve function covering the given imports and,
// transitively, everything their export data references.
func exportResolver(imports map[string]bool) (func(string) (string, error), error) {
	var missing []string
	exportMu.Lock()
	for path := range imports {
		if _, ok := exportCache[path]; !ok && path != "unsafe" {
			missing = append(missing, path)
		}
	}
	exportMu.Unlock()
	sort.Strings(missing)
	if len(missing) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json"}, missing...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return nil, fmt.Errorf("go list %v: %v\n%s", missing, err, ee.Stderr)
			}
			return nil, fmt.Errorf("go list %v: %v", missing, err)
		}
		dec := json.NewDecoder(strings.NewReader(string(out)))
		exportMu.Lock()
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				exportMu.Unlock()
				return nil, fmt.Errorf("parse go list output: %v", err)
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
		exportMu.Unlock()
	}
	return func(path string) (string, error) {
		exportMu.Lock()
		file, ok := exportCache[path]
		exportMu.Unlock()
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	}, nil
}
