package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// graphFor type-checks one import-free source string and builds its call
// graph under the hotalloc pass.
func graphFor(t *testing.T, src string) (*callGraph, *Pass) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	imp := ExportImporter(fset, func(path string) (string, error) {
		return "", fmt.Errorf("fixture must not import anything, got %q", path)
	})
	pkg, err := TypeCheck(fset, "fixture", []*ast.File{f}, imp, "")
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	pass := &Pass{
		Analyzer:  HotAlloc,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	return buildCallGraph(pass), pass
}

func (g *callGraph) byName(t *testing.T, name string) *funcNode {
	t.Helper()
	for _, n := range g.order {
		if n.name == name {
			return n
		}
	}
	t.Fatalf("no node named %q (have %v)", name, func() []string {
		var names []string
		for _, n := range g.order {
			names = append(names, n.name)
		}
		return names
	}())
	return nil
}

// Direct recursion must produce a self-edge and a terminating chain search.
func TestCallGraphRecursion(t *testing.T) {
	g, _ := graphFor(t, `package fixture

func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}
`)
	fact := g.byName(t, "fact")
	if len(fact.calls) != 1 || fact.calls[0].callee != fact {
		t.Fatalf("fact should have exactly one self-edge, got %d calls", len(fact.calls))
	}
	if fact.unknown {
		t.Error("recursion is statically resolvable; unknown should be false")
	}
	if _, _, found := g.chainTo(fact, effectAlloc); found {
		t.Error("fact has no effects; chain search through the cycle must come up empty")
	}
}

// Mutual recursion must terminate and still find effects across the cycle.
func TestCallGraphMutualRecursion(t *testing.T) {
	g, _ := graphFor(t, `package fixture

func even(n int) []int {
	if n == 0 {
		return nil
	}
	return odd(n - 1)
}

func odd(n int) []int {
	if n == 0 {
		return make([]int, 1)
	}
	return even(n - 1)
}
`)
	even := g.byName(t, "even")
	path, e, found := g.chainTo(even, effectAlloc)
	if !found {
		t.Fatal("chain search must reach odd's make through the mutual recursion")
	}
	if len(path) != 2 || path[0] != "even" || path[1] != "odd" {
		t.Errorf("chain = %v, want [even odd]", path)
	}
	if e.kind != effectAlloc || e.short != "make call" {
		t.Errorf("effect = %q (%v), want a make call allocation", e.short, e.kind)
	}
	if _, _, found := g.chainTo(g.byName(t, "odd"), effectClock); found {
		t.Error("no clock effects exist; search for them must terminate empty")
	}
}

// A method value reference is a potential call and must produce an edge to
// the method.
func TestCallGraphMethodValue(t *testing.T) {
	g, _ := graphFor(t, `package fixture

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func handler(c *counter) func() {
	return c.bump
}
`)
	handler := g.byName(t, "handler")
	bump := g.byName(t, "counter.bump")
	if len(handler.calls) != 1 || handler.calls[0].callee != bump {
		t.Fatalf("handler should have one edge to counter.bump, got %d calls", len(handler.calls))
	}
	if handler.unknown {
		t.Error("a method value on a concrete receiver is statically resolvable")
	}
}

// Interface dispatch cannot be resolved statically: the caller gets the
// conservative unknown-callee summary and the chain search does not guess.
func TestCallGraphInterfaceCallUnknown(t *testing.T) {
	g, _ := graphFor(t, `package fixture

type observer interface {
	OnEvent(v int)
}

type alloci struct{}

func (alloci) OnEvent(v int) { _ = make([]int, v) }

func notify(o observer, v int) {
	o.OnEvent(v)
}
`)
	notify := g.byName(t, "notify")
	if !notify.unknown {
		t.Error("an interface method call must mark the caller unknown")
	}
	if len(notify.calls) != 0 {
		t.Errorf("notify must not claim resolved edges, got %d", len(notify.calls))
	}
	if _, _, found := g.chainTo(notify, effectAlloc); found {
		t.Error("the chain search must not guess through interface dispatch")
	}
}

// Calls of function values are equally unresolvable.
func TestCallGraphFuncValueCallUnknown(t *testing.T) {
	g, _ := graphFor(t, `package fixture

func apply(fn func(int) int, v int) int {
	return fn(v)
}
`)
	if !g.byName(t, "apply").unknown {
		t.Error("calling a function value must mark the caller unknown")
	}
}

// Hot-path-annotated callees are boundaries: they are checked at their own
// declaration, so the chain search must not traverse them.
func TestCallGraphHotpathBoundary(t *testing.T) {
	g, _ := graphFor(t, `package fixture

func leaf(n int) []int { return make([]int, n) }

//crlint:hotpath
func mid(n int) []int { return leaf(n) }

func root(n int) []int { return mid(n) }
`)
	root := g.byName(t, "root")
	if _, _, found := g.chainTo(root, effectAlloc); found {
		t.Error("mid is //crlint:hotpath and must act as a chain boundary")
	}
}
